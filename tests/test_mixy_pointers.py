"""Tests for the Andersen points-to analysis and call graph."""

from repro.mixy.c import parse_program
from repro.mixy.c.ast import Block, Call, ExprStmt, If, While
from repro.mixy.pointers import (
    PointsTo,
    obj_field,
    obj_global,
    obj_local,
    obj_malloc,
)


def analyze(source):
    program = parse_program(source)
    return program, PointsTo(program)


def find_calls(program, fn):
    out = []

    def walk(stmt):
        if isinstance(stmt, Block):
            for s in stmt.stmts:
                walk(s)
        elif isinstance(stmt, If):
            walk(stmt.then)
            if stmt.els is not None:
                walk(stmt.els)
        elif isinstance(stmt, While):
            walk(stmt.body)
        elif isinstance(stmt, ExprStmt) and isinstance(stmt.expr, Call):
            out.append(stmt.expr)

    walk(program.functions[fn].body)
    return out


class TestBasicPointsTo:
    def test_address_of(self):
        _, pts = analyze("void f(void) { int x; int *p = &x; }")
        assert pts.pts(obj_local("f", "p")) == {obj_local("f", "x")}

    def test_copy(self):
        _, pts = analyze("void f(void) { int x; int *p = &x; int *q = p; }")
        assert pts.pts(obj_local("f", "q")) == {obj_local("f", "x")}

    def test_double_indirection(self):
        src = "void f(void) { int x; int *p = &x; int **pp = &p; int *q = *pp; }"
        _, pts = analyze(src)
        assert pts.pts(obj_local("f", "q")) == {obj_local("f", "x")}

    def test_store_through_pointer(self):
        src = """
        void f(void) {
          int x; int y;
          int *p; int **pp = &p;
          *pp = &y;
          int *q = p;
        }
        """
        _, pts = analyze(src)
        assert obj_local("f", "y") in pts.pts(obj_local("f", "q"))

    def test_malloc_site(self):
        _, pts = analyze("void f(void) { int *p = (int *) malloc(sizeof(int)); }")
        (obj,) = pts.pts(obj_local("f", "p"))
        assert obj[0] == "malloc"

    def test_malloc_sites_conflated_across_paths_not_sites(self):
        src = """
        void f(int c) {
          int *a = (int *) malloc(sizeof(int));
          int *b = (int *) malloc(sizeof(int));
        }
        """
        _, pts = analyze(src)
        assert pts.pts(obj_local("f", "a")) != pts.pts(obj_local("f", "b"))

    def test_globals(self):
        src = "int g; int *p; void f(void) { p = &g; }"
        _, pts = analyze(src)
        assert pts.pts(obj_global("p")) == {obj_global("g")}

    def test_null_points_nowhere(self):
        _, pts = analyze("void f(void) { int *p = NULL; }")
        assert pts.pts(obj_local("f", "p")) == set()


class TestFields:
    def test_field_store_load(self):
        src = """
        struct box { int *item; };
        int g;
        void f(void) {
          struct box *b = (struct box *) malloc(sizeof(struct box));
          b->item = &g;
          int *q = b->item;
        }
        """
        _, pts = analyze(src)
        assert pts.pts(obj_local("f", "q")) == {obj_global("g")}

    def test_direct_field_of_local_struct(self):
        src = """
        struct box { int *item; };
        int g;
        void f(void) {
          struct box b;
          b.item = &g;
          int *q = b.item;
        }
        """
        _, pts = analyze(src)
        assert pts.pts(obj_local("f", "q")) == {obj_global("g")}


class TestInterprocedural:
    def test_args_flow_to_params(self):
        src = """
        int g;
        void callee(int *p) { int *local = p; }
        void caller(void) { callee(&g); }
        """
        _, pts = analyze(src)
        assert pts.pts(obj_local("callee", "local")) == {obj_global("g")}

    def test_return_flows_back(self):
        src = """
        int g;
        int *get(void) { return &g; }
        void caller(void) { int *p = get(); }
        """
        _, pts = analyze(src)
        assert pts.pts(obj_local("caller", "p")) == {obj_global("g")}

    def test_extern_pointer_return_gets_opaque_object(self):
        src = """
        char *getenv_model(char *name);
        void f(void) { char *v = getenv_model("PATH"); }
        """
        _, pts = analyze(src)
        objs = pts.pts(obj_local("f", "v"))
        assert any(o[0] == "ext" for o in objs)


class TestCallGraph:
    SOURCE = """
    void h1(void) { }
    void h2(void) { }
    void h3(void) { }
    void (*handler)(void);
    void f(int c) {
      handler = h1;
      if (c) { handler = h2; }
      handler();
      h3();
    }
    """

    def test_indirect_call_targets(self):
        program, pts = analyze(self.SOURCE)
        indirect, direct = find_calls(program, "f")
        assert pts.callees(indirect, "f") == ["h1", "h2"]

    def test_direct_call(self):
        program, pts = analyze(self.SOURCE)
        _, direct = find_calls(program, "f")
        assert pts.callees(direct, "f") == ["h3"]

    def test_may_alias(self):
        src = """
        int g;
        void f(void) {
          int *p = &g;
          int *q = &g;
          int x;
          int *r = &x;
          int unused = *p + *q + *r;
        }
        """
        program, pts = analyze(src)
        assert pts.pts(obj_local("f", "p")) & pts.pts(obj_local("f", "q"))
        assert not (pts.pts(obj_local("f", "p")) & pts.pts(obj_local("f", "r")))
