"""Tests for the MIX mix rules and driver (paper Sections 2 and 3.2).

Each test in ``TestSection2Idioms`` transcribes one of the paper's
motivating examples and checks the headline claim: pure type checking
rejects (a false positive), MIX with the paper's block placement accepts.
"""

import pytest

from repro.core import MixConfig, SoundnessMode, analyze_source
from repro.core.mix import abstract_env
from repro.lang import parse
from repro.symexec import IfStrategy, SymConfig, SymEnv, SymExecutor
from repro.symexec.values import fresh_of_type
from repro.typecheck import TypeEnv, TypeError_, check_expr
from repro.typecheck.types import BOOL, INT, RefType, STR, UNIT, FunType


def pure_typecheck_rejects(source, env=None):
    with pytest.raises(TypeError_):
        check_expr(parse(source), env)


class TestBasicMix:
    def test_trivial_symbolic_block(self):
        report = analyze_source("{s 1 + 1 s}")
        assert report.ok and report.type == INT

    def test_trivial_typed_block_in_symbolic(self):
        report = analyze_source("{t 1 + 1 t}", entry="symbolic")
        assert report.ok and report.type == INT

    def test_nested_alternation(self):
        report = analyze_source("{s {t {s {t 42 t} s} t} s}")
        assert report.ok and report.type == INT

    def test_type_error_in_symbolic_block_reported(self):
        report = analyze_source('{s 1 + true s}')
        assert not report.ok
        assert report.diagnostics[0].origin == "symbolic"

    def test_type_error_in_typed_block_reported(self):
        report = analyze_source("{t 1 + true t}", entry="symbolic")
        assert not report.ok

    def test_environment_crosses_into_symbolic_block(self):
        report = analyze_source(
            "let x = 1 in {s x + 2 s}",
        )
        assert report.ok and report.type == INT

    def test_environment_crosses_into_typed_block(self):
        report = analyze_source(
            "let x = 1 in {t x + 2 t}", entry="symbolic"
        )
        assert report.ok and report.type == INT

    def test_stats_populated(self):
        report = analyze_source("{s if 1 < 2 then 1 else 2 s}")
        assert report.stats["symbolic_blocks"] == 1


class TestSection2Idioms:
    def test_unreachable_code(self):
        """{t ... {s if true then {t 5 t} else {t "foo" + 3 t} s} ... t}"""
        source = '{s if true then {t 5 t} else {t "foo" + 3 t} s}'
        pure_typecheck_rejects('if true then 5 else "foo" + 3')
        report = analyze_source(source)
        assert report.ok and report.type == INT

    def test_flow_sensitive_variable_reuse(self):
        """var x = 1; {t ... t}; x = "foo"  — reuse at two types."""
        source = '{s let x = ref 1 in {t !x + 1 t}; x := 2; !x s}'
        report = analyze_source(source)
        assert report.ok and report.type == INT

    def test_null_then_malloc_analog(self):
        # x := dummy; x := real value — flow-insensitive typing of the
        # paper's x->obj = NULL; x->obj = malloc(...) pattern.  Our analog
        # overwrites an ill-typed placeholder before any read.
        source = "{s let x = ref 1 in x := 1 = 1; x := 7; {t !x + 1 t} s}"
        report = analyze_source(source)
        assert report.ok and report.type == INT

    def test_context_sensitivity_id(self):
        """let id x = x in ... id used at two types via symbolic blocks."""
        source = """
        {s let id = fun x : int -> x in
           let id_b = fun b : bool -> b in
           (if id_b true then id 3 else id 4)
        s}
        """
        report = analyze_source(source)
        assert report.ok and report.type == INT

    def test_div_returns_int_or_string(self):
        """div returns str only when the divisor is 0; at call site
        ``div 7 4`` the symbolic executor sees only the int path."""
        source = """
        {s
          let div = fun x : int -> fun y : int ->
            if y = 0 then "err" else x / y in
          {t 1 + {s (let div2 = fun x : int -> fun y : int ->
                        if y = 0 then "err" else x / y in div2 7 4) s} t}
        s}
        """
        report = analyze_source(source)
        assert report.ok

    def test_sign_refinement(self):
        """The pos/zero/neg split: all three branches type check with the
        symbolic executor distinguishing them; exhaustiveness holds."""
        source = """
        let x = 5 in
        {s
          if 0 < x then {t x + 1 t}
          else if x = 0 then {t 0 t}
          else {t 0 - x t}
        s}
        """
        report = analyze_source(source)
        assert report.ok and report.type == INT

    def test_sign_refinement_with_unknown_input(self):
        source = """
        {s
          if 0 < x then {t x + 1 t}
          else if x = 0 then {t 0 t}
          else {t 0 - x t}
        s}
        """
        report = analyze_source(source, env=TypeEnv({"x": INT}))
        assert report.ok and report.type == INT

    def test_local_initialization(self):
        """The malloc-then-initialize idiom: temporary states confined to
        the symbolic block; a consistent value flows out through types."""
        source = """
        {t
          let make = {s
            let x = ref 0 in
            x := 1;
            x := 2;
            x
          s} in !make
        t}
        """
        report = analyze_source(source)
        assert report.ok and report.type == INT

    def test_helping_symbolic_execution_unknown_function(self):
        """y = {t unknown_function() t} — conservative typing of a call
        symbolic execution cannot make."""
        source = "{s {t f 1 t} + 1 s}"
        env = TypeEnv({"f": FunType(INT, INT)})
        # Without the typed block, symbolic execution fails:
        bare = analyze_source("{s f 1 + 1 s}", env=env)
        assert not bare.ok
        report = analyze_source(source, env=env)
        assert report.ok and report.type == INT

    def test_helping_symbolic_execution_nonlinear(self):
        """z * z wrapped in a typed block when the solver cannot model it."""
        env = TypeEnv({"z": INT})
        bare = analyze_source("{s z * z s}", env=env)
        assert not bare.ok
        report = analyze_source("{s {t z * z t} s}", env=env)
        assert report.ok and report.type == INT

    def test_helping_symbolic_execution_long_loop(self):
        """A loop beyond the unroll budget, skipped via a typed block."""
        env = TypeEnv({"n": INT})
        config = MixConfig(sym=SymConfig(max_loop_unroll=4))
        loop = "let i = ref 0 in while !i < n do i := !i + 1 done; !i"
        bare = analyze_source("{s " + loop + " s}", env=env, config=config)
        assert not bare.ok
        wrapped = analyze_source("{s {t " + loop + " t} s}", env=env, config=config)
        assert wrapped.ok and wrapped.type == INT

    def test_intro_multithreaded_example(self):
        """The introduction's fork/lock example, transcribed with ints
        standing in for the thread operations."""
        source = """
        {s
          (if multithreaded then {t fork t} else {t 0 t});
          {t work1 t};
          (if multithreaded then {t lock t} else {t 0 t});
          {t work2 t};
          (if multithreaded then {t unlock t} else {t 0 t})
        s}
        """
        env = TypeEnv(
            {
                "multithreaded": BOOL,
                "fork": INT,
                "lock": INT,
                "unlock": INT,
                "work1": INT,
                "work2": INT,
            }
        )
        report = analyze_source(source, env=env)
        assert report.ok and report.type == INT


class TestMixBoundaries:
    def test_typed_block_havocs_memory(self):
        """After a typed block, prior writes are forgotten (fresh μ')."""
        source = "{s let x = ref 1 in {t 0 t}; !x s}"
        report = analyze_source(source)
        # Still int-typed: havoc loses the value 1 but not the type.
        assert report.ok and report.type == INT

    def test_symbolic_block_result_types_must_agree(self):
        report = analyze_source(
            "{s if p then 1 else true s}", env=TypeEnv({"p": BOOL})
        )
        assert not report.ok
        assert "disagree" in report.diagnostics[0].message

    def test_inconsistent_memory_blocks_typed_entry(self):
        """Entering {t ... t} with an ill-typed write pending fails ⊢ m ok."""
        source = "{s let x = ref 1 in x := 1 = 1; {t 0 t} s}"
        report = analyze_source(source)
        assert not report.ok
        assert "m ok" in report.diagnostics[0].message

    def test_inconsistent_memory_blocks_symbolic_exit(self):
        """A symbolic block must leave memory consistent (⊢ m(S_i) ok)."""
        source = "{t let y = {s let x = ref 1 in x := 1 = 1; 0 s} in y t}"
        report = analyze_source(source)
        assert not report.ok

    def test_escaping_closure_rejected(self):
        report = analyze_source("{s fun x : int -> x s}")
        assert not report.ok
        assert "function" in report.diagnostics[0].message

    def test_abstract_env_drops_latent_closures(self):
        executor = SymExecutor()
        from repro.lang import parse as parse_expr

        outs = executor.execute_all(parse_expr("fun x : int -> x"))
        closure_value = outs[0].value
        sigma = SymEnv({"f": closure_value})
        gamma = abstract_env(sigma)
        assert "f" not in gamma

    def test_abstract_env_keeps_unknown_funs(self):
        fn, _ = fresh_of_type(FunType(INT, INT), SymExecutor().names)
        gamma = abstract_env(SymEnv({"f": fn}))
        assert gamma.lookup("f") == FunType(INT, INT)


class TestSoundnessModes:
    LOOP = "{s let i = ref 0 in while !i < n do i := !i + 1 done; !i s}"

    def test_sound_mode_rejects_unfinished_loop(self):
        config = MixConfig(sym=SymConfig(max_loop_unroll=4))
        report = analyze_source(self.LOOP, env=TypeEnv({"n": INT}), config=config)
        assert not report.ok

    def test_good_enough_mode_accepts_bounded_exploration(self):
        config = MixConfig(
            sym=SymConfig(max_loop_unroll=4), soundness=SoundnessMode.GOOD_ENOUGH
        )
        report = analyze_source(self.LOOP, env=TypeEnv({"n": INT}), config=config)
        assert report.ok and report.type == INT


class TestDeferUnderMix:
    def test_defer_strategy_through_blocks(self):
        config = MixConfig(sym=SymConfig(if_strategy=IfStrategy.DEFER))
        report = analyze_source(
            "{s if p then 1 else 2 s}", env=TypeEnv({"p": BOOL}), config=config
        )
        assert report.ok and report.type == INT

    def test_defer_is_more_conservative_on_branch_types(self):
        source = "{s if true then 1 else true s}"
        fork = analyze_source(source)
        assert fork.ok  # concrete folding takes only the int branch
        # With a symbolic condition, defer requires equal branch types:
        config = MixConfig(sym=SymConfig(if_strategy=IfStrategy.DEFER))
        deferred = analyze_source(
            "{s if p then 1 else true s}", env=TypeEnv({"p": BOOL}), config=config
        )
        assert not deferred.ok
