"""The term wire codec (``terms.to_wire`` / ``from_wire``).

Terms hash by identity under hash-consing, so they cannot cross a
process boundary as pickles; the wire format ships a structure-shared
post-order node table and re-interns on receipt.  The contract the
parallel engine relies on: decoding in the *same* process returns the
identical interned object — ``from_wire(to_wire(t)) is t`` — and
decoding in any process yields a term that renders and solves the same.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import smt
from repro.smt.terms import (
    FuncDecl,
    from_wire,
    from_wire_many,
    to_wire,
    to_wire_many,
)

INT_VARS = [smt.var(name, smt.INT) for name in ("i", "j", "k")]
BOOL_VARS = [smt.var(name, smt.BOOL) for name in ("a", "b")]


def int_terms(depth: int):
    leaves = st.one_of(
        st.sampled_from(INT_VARS),
        st.integers(min_value=-8, max_value=8).map(smt.int_const),
    )
    if depth == 0:
        return leaves
    sub_terms = int_terms(depth - 1)
    return st.one_of(
        leaves,
        st.tuples(sub_terms, sub_terms).map(lambda t: smt.add(*t)),
        st.tuples(sub_terms, sub_terms).map(lambda t: smt.sub(*t)),
        sub_terms.map(smt.neg),
        st.tuples(st.integers(-3, 3), sub_terms).map(
            lambda t: smt.mul(smt.int_const(t[0]), t[1])
        ),
    )


def bool_terms(depth: int):
    atoms = st.one_of(
        st.sampled_from(BOOL_VARS),
        st.just(smt.true()),
        st.just(smt.false()),
        st.tuples(int_terms(1), int_terms(1)).map(lambda t: smt.le(*t)),
        st.tuples(int_terms(1), int_terms(1)).map(lambda t: smt.lt(*t)),
        st.tuples(int_terms(1), int_terms(1)).map(lambda t: smt.eq(*t)),
    )
    if depth == 0:
        return atoms
    sub_terms = bool_terms(depth - 1)
    return st.one_of(
        atoms,
        sub_terms.map(smt.not_),
        st.tuples(sub_terms, sub_terms).map(lambda t: smt.and_(*t)),
        st.tuples(sub_terms, sub_terms).map(lambda t: smt.or_(*t)),
        st.tuples(sub_terms, sub_terms).map(lambda t: smt.implies(*t)),
        st.tuples(sub_terms, int_terms(1), int_terms(1)).map(
            lambda t: smt.eq(smt.ite(*t), smt.int_const(0))
        ),
    )


class TestRoundTrip:
    @given(bool_terms(3))
    @settings(max_examples=200, deadline=None)
    def test_same_process_round_trip_is_identity(self, term):
        assert from_wire(to_wire(term)) is term

    @given(int_terms(3))
    @settings(max_examples=100, deadline=None)
    def test_int_terms_round_trip(self, term):
        assert from_wire(to_wire(term)) is term

    @given(st.lists(bool_terms(2), min_size=1, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_many_preserves_order_and_identity(self, terms):
        back = from_wire_many(to_wire_many(terms))
        assert len(back) == len(terms)
        assert all(a is b for a, b in zip(back, terms))

    def test_arrays_and_uninterpreted_functions(self):
        i, j = INT_VARS[0], INT_VARS[1]
        mem = smt.var("mem", smt.array_sort(smt.INT, smt.INT))
        stored = smt.store(mem, i, smt.add(j, smt.int_const(1)))
        f = FuncDecl("f", (smt.INT, smt.INT), smt.INT)
        term = smt.and_(
            smt.eq(smt.select(stored, j), smt.apply_func(f, i, j)),
            smt.lt(smt.apply_func(f, j, i), smt.int_const(9)),
        )
        assert from_wire(to_wire(term)) is term


class TestStructureSharing:
    def test_shared_subterms_encoded_once(self):
        i = INT_VARS[0]
        shared = smt.add(i, smt.int_const(2))
        term = smt.and_(
            smt.lt(shared, smt.int_const(5)), smt.eq(shared, shared)
        )
        nodes, roots = to_wire(term) if False else to_wire_many([term])
        # 'shared' contributes its spine exactly once: i, 2, i+2, 5,
        # lt, eq, and — seven nodes, not the nine a tree walk would emit.
        assert len(nodes) == 7
        assert roots == [len(nodes) - 1]

    def test_sharing_across_roots(self):
        i, j = INT_VARS[0], INT_VARS[1]
        common = smt.le(i, j)
        wire = to_wire_many([common, smt.not_(common), common])
        nodes, roots = wire
        assert len(nodes) == 4  # i, j, le, not
        back = from_wire_many(wire)
        assert back[0] is common and back[2] is common

    def test_empty_many(self):
        assert from_wire_many(to_wire_many([])) == []


class TestErrors:
    def test_from_wire_rejects_multiple_roots(self):
        import pytest

        wire = to_wire_many([smt.true(), smt.false()])
        with pytest.raises(smt.SortError):
            from_wire(wire)


class TestSemanticTransparency:
    """A decoded term is the same formula: the solver agrees with the
    original verdict (this is what makes shipped cache deltas safe)."""

    @given(bool_terms(2))
    @settings(max_examples=50, deadline=None)
    def test_verdict_survives_round_trip(self, term):
        decoded = from_wire(to_wire(term))
        assert smt.is_satisfiable(decoded) == smt.is_satisfiable(term)
