"""Differential tests of the incremental Solver against fresh solvers.

``Solver.push``/``pop`` retain the preprocessor, the Tseitin encoding,
theory blocking clauses, and CDCL-learned clauses across ``check()``
calls (scoped assertions are guarded by selector literals; ``pop``
permanently falsifies the selector).  These tests pin down the contract:
any ``push``/``add``/``pop``/``check`` sequence must produce exactly the
verdicts a fresh solver gives for the same live assertions.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.smt import (
    BOOL,
    INT,
    FuncDecl,
    SatResult,
    Solver,
    SolverError,
    add,
    and_,
    eq,
    gt,
    int_const,
    le,
    lt,
    not_,
    or_,
    var,
)

x = var("x", INT)
y = var("y", INT)
z = var("z", INT)
p = var("p", BOOL)
q = var("q", BOOL)


def fresh_verdict(assertions) -> SatResult:
    solver = Solver()
    solver.add(*assertions)
    return solver.check()


# ---------------------------------------------------------------------------
# Directed incrementality tests
# ---------------------------------------------------------------------------


class TestScopes:
    def test_repeated_push_pop_restores_verdicts(self):
        solver = Solver()
        solver.add(gt(x, int_const(0)))
        for _ in range(5):
            solver.push()
            solver.add(lt(x, int_const(0)))
            assert solver.check() is SatResult.UNSAT
            solver.pop()
            assert solver.check() is SatResult.SAT

    def test_nested_scopes(self):
        solver = Solver()
        solver.push()
        solver.add(gt(x, int_const(5)))
        solver.push()
        solver.add(lt(x, int_const(3)))
        assert solver.check() is SatResult.UNSAT
        solver.pop()
        assert solver.check() is SatResult.SAT
        solver.pop()
        solver.add(lt(x, int_const(3)))
        assert solver.check() is SatResult.SAT

    def test_add_after_pop_reuses_scope_slot(self):
        solver = Solver()
        solver.push()
        solver.add(eq(x, int_const(1)))
        assert solver.check() is SatResult.SAT
        solver.pop()
        solver.push()
        solver.add(eq(x, int_const(2)), gt(x, int_const(1)))
        assert solver.check() is SatResult.SAT
        assert solver.model().eval(x) == 2

    def test_extra_assumptions_do_not_leak(self):
        solver = Solver()
        solver.add(gt(x, int_const(0)))
        assert solver.check(lt(x, int_const(0))) is SatResult.UNSAT
        assert solver.check() is SatResult.SAT
        assert solver.check(gt(x, int_const(10))) is SatResult.SAT
        assert solver.check() is SatResult.SAT

    def test_model_after_pop_reflects_live_assertions(self):
        solver = Solver()
        solver.add(gt(x, int_const(0)))
        solver.push()
        solver.add(gt(x, int_const(100)))
        assert solver.check() is SatResult.SAT
        assert solver.model().eval(x) > 100
        solver.pop()
        assert solver.check() is SatResult.SAT
        assert solver.model().eval(x) > 0


class TestLearnedStateSurvives:
    def test_theory_lemma_reused_across_pop(self):
        """The integer-gap conflict is learned once; re-asserting the same
        constraints in a new scope must not re-run the theory engine."""
        solver = Solver()
        gap = (gt(x, int_const(3)), lt(x, int_const(4)))
        solver.push()
        solver.add(*gap)
        assert solver.check() is SatResult.UNSAT
        rounds_after_first = solver.stats["theory_rounds"]
        assert rounds_after_first >= 1
        solver.pop()
        solver.push()
        solver.add(*gap)
        assert solver.check() is SatResult.UNSAT
        assert solver.stats["theory_rounds"] == rounds_after_first
        solver.pop()
        assert solver.check() is SatResult.SAT

    def test_congruence_across_scopes(self):
        f = FuncDecl("f", (INT,), INT)
        solver = Solver()
        solver.add(eq(x, y))
        solver.push()
        solver.add(eq(f(x), int_const(1)), eq(f(y), int_const(2)))
        assert solver.check() is SatResult.UNSAT
        solver.pop()
        assert solver.check() is SatResult.SAT
        solver.push()
        solver.add(eq(f(x), int_const(1)), eq(f(y), int_const(1)))
        assert solver.check() is SatResult.SAT

    def test_pop_without_push_still_raises(self):
        solver = Solver()
        solver.add(gt(x, int_const(0)))
        assert solver.check() is SatResult.SAT
        try:
            solver.pop()
        except SolverError:
            pass
        else:
            raise AssertionError("pop without push must raise")


# ---------------------------------------------------------------------------
# Randomized differential test: incremental vs fresh on assertion stacks
# ---------------------------------------------------------------------------

ATOMS = [
    p,
    q,
    le(x, int_const(2)),
    lt(int_const(0), x),
    eq(x, y),
    eq(y, add(x, int_const(1))),
    le(add(x, y), int_const(5)),
    lt(y, z),
    eq(z, int_const(3)),
    gt(x, int_const(-2)),
]


def formulas(depth: int):
    if depth == 0:
        return st.sampled_from(ATOMS)
    inner = formulas(depth - 1)
    return st.one_of(
        st.sampled_from(ATOMS),
        inner.map(not_),
        st.tuples(inner, inner).map(lambda t: and_(*t)),
        st.tuples(inner, inner).map(lambda t: or_(*t)),
    )


operations = st.lists(
    st.one_of(
        st.just(("push",)),
        st.just(("pop",)),
        st.just(("check",)),
        st.tuples(st.just("add"), formulas(2)),
        st.tuples(st.just("check_extra"), formulas(2)),
    ),
    min_size=2,
    max_size=24,
)


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(operations)
def test_incremental_matches_fresh_solver(ops):
    solver = Solver()
    live: list = []  # shadow assertion stack
    scopes: list[int] = []
    checked = 0
    for op in ops:
        name = op[0]
        if name == "push":
            solver.push()
            scopes.append(len(live))
        elif name == "pop":
            if not scopes:
                continue  # no matching push: skip (raises, tested above)
            solver.pop()
            del live[scopes.pop() :]
        elif name == "add":
            solver.add(op[1])
            live.append(op[1])
        elif name == "check":
            assert solver.check() is fresh_verdict(live)
            checked += 1
        elif name == "check_extra":
            assert solver.check(op[1]) is fresh_verdict(live + [op[1]])
            assert solver.check() is fresh_verdict(live)
            checked += 1
    # Every script ends with one more differential comparison.
    assert solver.check() is fresh_verdict(live)
