"""Property tests for the shared operation encodings."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import smt
from repro.smt.encodings import encode_trunc_div, trunc_div_constant

x = smt.var("xq", smt.INT)
q = smt.var("qq", smt.INT)


class TestTruncDivConstant:
    @pytest.mark.parametrize(
        "a,c,expected",
        [(7, 2, 3), (-7, 2, -3), (7, -2, -3), (-7, -2, 3), (0, 5, 0), (6, 3, 2)],
    )
    def test_matches_c_semantics(self, a, c, expected):
        assert trunc_div_constant(a, c) == expected

    def test_zero_divisor_rejected(self):
        with pytest.raises(ZeroDivisionError):
            encode_trunc_div(x, 0, q)


@settings(max_examples=60, deadline=None)
@given(st.integers(-30, 30), st.integers(-6, 6).filter(lambda c: c != 0))
def test_encoding_pins_exactly_the_truncated_quotient(a, c):
    """Under x = a, the definitional constraint is satisfied by q = a/c
    (truncating) and by no other value."""
    expected = trunc_div_constant(a, c)
    definition = encode_trunc_div(x, c, q)
    binding = smt.eq(x, smt.int_const(a))
    # The right quotient satisfies the definition...
    assert smt.is_satisfiable(
        smt.and_(definition, binding, smt.eq(q, smt.int_const(expected)))
    )
    # ...and the definition forces it.
    assert smt.is_valid(
        smt.eq(q, smt.int_const(expected)), assuming=[definition, binding]
    )
