"""Unit tests for sorts and hash-consed term construction."""

import pytest

from repro.smt import (
    BOOL,
    INT,
    FuncDecl,
    SortError,
    add,
    and_,
    apply_func,
    array_sort,
    bool_const,
    distinct,
    eq,
    false,
    ge,
    gt,
    iff,
    int_const,
    ite,
    le,
    lt,
    mul,
    neg,
    not_,
    or_,
    select,
    store,
    sub,
    true,
    var,
)
from repro.smt.terms import Kind


class TestHashConsing:
    def test_identical_constants_are_shared(self):
        assert int_const(42) is int_const(42)
        assert true() is bool_const(True)
        assert false() is bool_const(False)

    def test_identical_variables_are_shared(self):
        assert var("x", INT) is var("x", INT)

    def test_same_name_different_sort_not_shared(self):
        assert var("x", INT) is not var("x", BOOL)

    def test_compound_terms_are_shared(self):
        x, y = var("x", INT), var("y", INT)
        assert add(x, y) is add(x, y)
        assert add(x, y) is not add(y, x)

    def test_terms_are_immutable(self):
        x = var("x", INT)
        with pytest.raises(AttributeError):
            x.kind = Kind.ADD


class TestSortChecking:
    def test_add_rejects_bool(self):
        with pytest.raises(SortError):
            add(var("p", BOOL), int_const(1))

    def test_not_rejects_int(self):
        with pytest.raises(SortError):
            not_(int_const(1))

    def test_eq_requires_matching_sorts(self):
        with pytest.raises(SortError):
            eq(var("x", INT), var("p", BOOL))

    def test_ite_requires_matching_branches(self):
        with pytest.raises(SortError):
            ite(true(), int_const(1), true())

    def test_ite_requires_bool_condition(self):
        with pytest.raises(SortError):
            ite(int_const(1), int_const(1), int_const(2))

    def test_select_checks_index_sort(self):
        mem = var("m", array_sort(INT, INT))
        with pytest.raises(SortError):
            select(mem, true())

    def test_store_checks_value_sort(self):
        mem = var("m", array_sort(INT, INT))
        with pytest.raises(SortError):
            store(mem, int_const(0), true())

    def test_select_of_non_array_rejected(self):
        with pytest.raises(SortError):
            select(var("x", INT), int_const(0))

    def test_func_decl_arity_checked(self):
        f = FuncDecl("f", (INT, INT), INT)
        with pytest.raises(SortError):
            apply_func(f, int_const(1))

    def test_func_decl_arg_sorts_checked(self):
        f = FuncDecl("f", (INT,), BOOL)
        with pytest.raises(SortError):
            apply_func(f, true())

    def test_int_const_rejects_bool(self):
        with pytest.raises(SortError):
            int_const(True)

    def test_distinct_mixed_sorts_rejected(self):
        with pytest.raises(SortError):
            distinct(var("x", INT), true())


class TestConstructors:
    def test_sub_is_add_of_neg(self):
        x, y = var("x", INT), var("y", INT)
        term = sub(x, y)
        assert term.kind is Kind.ADD
        assert term.args[1].kind is Kind.NEG

    def test_ge_gt_swap_arguments(self):
        x, y = var("x", INT), var("y", INT)
        assert ge(x, y) is le(y, x)
        assert gt(x, y) is lt(y, x)

    def test_empty_and_or(self):
        assert and_().is_true
        assert or_().is_false

    def test_single_argument_collapses(self):
        p = var("p", BOOL)
        assert and_(p) is p
        assert or_(p) is p

    def test_distinct_single_is_true(self):
        assert distinct(var("x", INT)).is_true

    def test_sorts_of_results(self):
        x = var("x", INT)
        mem = var("m", array_sort(INT, INT))
        assert eq(x, x).sort == BOOL
        assert select(mem, x).sort == INT
        assert store(mem, x, x).sort == mem.sort
        assert iff(true(), false()).sort == BOOL

    def test_func_decl_call_syntax(self):
        f = FuncDecl("f", (INT,), INT)
        assert f(int_const(1)) is apply_func(f, int_const(1))


class TestTraversalAndPrinting:
    def test_subterms_visits_each_once(self):
        x = var("x", INT)
        term = add(x, x)
        subs = list(term.subterms())
        assert len(subs) == 2  # the add node and x, shared

    def test_str_roundtrips_structure(self):
        x = var("x", INT)
        assert str(add(x, int_const(1))) == "(x + 1)"
        assert str(not_(true())) == "(not true)"
        assert "ite" in str(ite(var("p", BOOL), x, int_const(0)))
