"""Tests for the effect analysis and effect-aware havoc (paper §3.2)."""

import pytest

from repro.core import MixConfig, analyze_source
from repro.lang import parse
from repro.lang.effects import may_write
from repro.typecheck import TypeEnv
from repro.typecheck.types import INT


class TestMayWrite:
    @pytest.mark.parametrize(
        "source",
        ["1 + 2", "!r", "ref 5", "let x = !r in x + 1", "if p then 1 else 2",
         "fun x : int -> r := x"],  # a *literal* closure does not write
    )
    def test_pure(self, source):
        assert not may_write(parse(source))

    @pytest.mark.parametrize(
        "source",
        [
            "r := 1",
            "let x = ref 0 in x := 1",
            "if p then r := 1 else 2",
            "while p do r := 1 done",
            "(fun x : int -> x) 1",  # application is conservatively impure
            "!(ref (r := 1))",
        ],
    )
    def test_impure(self, source):
        assert may_write(parse(source))


#: A program that is provable only if the typed block's havoc is skipped:
#: the read-only typed block leaves !x = 5, so the string branch is dead.
PRESERVED = """
{s
  let x = ref 5 in
  {t !x * 2 t};
  if !x = 5 then 1 else "boom" + 1
s}
"""

#: The same shape but the typed block writes: havoc is required.
CLOBBERED = """
{s
  let x = ref 5 in
  {t x := 6 t};
  if !x = 5 then 1 else "boom" + 1
s}
"""


class TestEffectAwareHavoc:
    def test_default_havoc_rejects_preserved(self):
        """Without effects, SETypBlock forgets everything — the paper's
        §4.6 limitation ('symbolic blocks are forced to start with a
        fresh memory ... even if there were no effects')."""
        report = analyze_source(PRESERVED)
        assert not report.ok

    def test_effect_aware_accepts_preserved(self):
        config = MixConfig(effect_aware_havoc=True)
        report = analyze_source(PRESERVED, config=config)
        assert report.ok and str(report.type) == "int"

    def test_effect_aware_still_havocs_writers(self):
        config = MixConfig(effect_aware_havoc=True)
        report = analyze_source(CLOBBERED, config=config)
        assert not report.ok  # the write forces the havoc; "boom" reachable

    def test_soundness_on_writing_block(self):
        """Effect-aware mode must not claim the old value after a write."""
        source = """
        {s
          let x = ref 5 in
          {t x := 6 t};
          !x
        s}
        """
        config = MixConfig(effect_aware_havoc=True)
        report = analyze_source(source, config=config)
        assert report.ok and str(report.type) == "int"

    def test_allocating_block_keeps_memory(self):
        """Allocation alone is not a write effect."""
        source = """
        {s
          let x = ref 5 in
          let y = {t ref 1 t} in
          if !x = 5 then 1 else "boom" + 1
        s}
        """
        config = MixConfig(effect_aware_havoc=True)
        report = analyze_source(source, config=config)
        assert report.ok

    def test_differential_soundness_spot_check(self):
        """Effect-aware acceptance implies concrete safety (samples)."""
        from repro.lang import run

        config = MixConfig(effect_aware_havoc=True)
        for source in (PRESERVED, CLOBBERED):
            report = analyze_source(source, config=config)
            if report.ok:
                run(parse(source))  # must not raise
