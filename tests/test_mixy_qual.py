"""Tests for the null/nonnull qualifier inference engine."""

import pytest

from repro.mixy.c import parse_program
from repro.mixy.qual import NONNULL, NULL, QualConfig, QualInference


def infer(source, config=None):
    program = parse_program(source)
    inference = QualInference(program, config)
    inference.constrain_globals()
    for name in program.functions:
        inference.constrain_function(name)
    return inference


class TestPaperWorkedExample:
    SOURCE = """
    void free(int *nonnull x);
    int *id(int *p) { return p; }
    int main(void) {
      int *x = NULL;
      int *y = id(x);
      free(y);
      return 0;
    }
    """

    def test_single_warning(self):
        """The paper's Section 4 example: null = beta = gamma = delta =
        epsilon = nonnull is inconsistent, one warning."""
        warnings = infer(self.SOURCE).warnings()
        assert len(warnings) == 1
        assert "free" in warnings[0].sink_reason

    def test_witness_traverses_id(self):
        (warning,) = infer(self.SOURCE).warnings()
        text = str(warning)
        assert "id" in text  # the flow runs through id's param/return

    def test_fix_removes_warning(self):
        fixed = self.SOURCE.replace("int *x = NULL;", "int *x = malloc(sizeof(int));")
        assert infer(fixed).warnings() == []


class TestFlowInsensitivity:
    def test_assignment_order_is_ignored(self):
        """free(p); p = NULL;  warns even though the NULL comes later."""
        source = """
        void free(int *nonnull x);
        void f(int *p) {
          free(p);
          p = NULL;
        }
        """
        assert len(infer(source).warnings()) == 1

    def test_path_insensitivity(self):
        """A null check does not silence the qualifier system."""
        source = """
        void free(int *nonnull x);
        void f(int *p) {
          p = NULL;
          if (p != NULL) { free(p); }
        }
        """
        assert len(infer(source).warnings()) == 1


class TestSourcesAndSinks:
    def test_malloc_is_nonnull(self):
        source = """
        void free(int *nonnull x);
        void f(void) { free((int *) malloc(sizeof(int))); }
        """
        assert infer(source).warnings() == []

    def test_string_literal_is_nonnull(self):
        source = """
        void use(char *nonnull s);
        void f(void) { use("hi"); }
        """
        assert infer(source).warnings() == []

    def test_address_of_is_nonnull(self):
        source = """
        void use(int *nonnull s);
        void f(void) { int x; use(&x); }
        """
        assert infer(source).warnings() == []

    def test_nonnull_return_annotation(self):
        source = """
        char *nonnull name(void);
        void use(char *nonnull s);
        void f(void) { use(name()); }
        """
        assert infer(source).warnings() == []

    def test_global_null_initializer(self):
        source = """
        void free(int *nonnull x);
        int *g = NULL;
        void f(void) { free(g); }
        """
        assert len(infer(source).warnings()) == 1

    def test_deref_requires_nonnull_option(self):
        source = "void f(void) { int *p = NULL; int x = *p; }"
        assert infer(source).warnings() == []  # default: only annotations sink
        strict = infer(source, QualConfig(deref_requires_nonnull=True))
        assert len(strict.warnings()) == 1


class TestFieldsAndDeepPointers:
    def test_field_conflation(self):
        """Monomorphic field slots conflate all instances of a struct."""
        source = """
        struct box { int *item; };
        void free(int *nonnull x);
        void fill_a(struct box *b) { b->item = NULL; }
        void fill_b(struct box *b) { b->item = (int *) malloc(sizeof(int)); }
        void use(struct box *b) { free(b->item); }
        """
        assert len(infer(source).warnings()) == 1

    def test_deep_unification_through_double_pointer(self):
        """Writing NULL through a pointer-to-pointer taints the caller's
        lvalue (the Case 1 mechanism)."""
        source = """
        void free(int *nonnull x);
        void clear(int **pp) { *pp = NULL; }
        void caller(void) {
          int *p = (int *) malloc(sizeof(int));
          clear(&p);
          free(p);
        }
        """
        assert len(infer(source).warnings()) == 1

    def test_no_taint_without_null_write(self):
        source = """
        void free(int *nonnull x);
        void keep(int **pp) { }
        void caller(void) {
          int *p = (int *) malloc(sizeof(int));
          keep(&p);
          free(p);
        }
        """
        assert infer(source).warnings() == []


class TestSolutions:
    def test_solution_null_and_optimistic_nonnull(self):
        source = """
        void sink(int *q);
        void f(int *unconstrained) {
          int *p = NULL;
          sink(p);
          sink(unconstrained);
        }
        """
        program = parse_program(source)
        inference = QualInference(program)
        for name in program.functions:
            inference.constrain_function(name)
        fn = program.functions["f"]
        p_slot = inference.local_slot("f", "p", fn.params[0].typ)
        u_slot = inference.param_slot(fn, 0)
        assert inference.solution(p_slot) is NULL
        # Unconstrained: optimistic nonnull (paper Section 4.1).
        assert inference.solution(u_slot) is NONNULL

    def test_warning_listing_is_stable(self):
        source = """
        void free(int *nonnull x);
        void f(void) { free(NULL); }
        """
        w1 = [w.key for w in infer(source).warnings()]
        w2 = [w.key for w in infer(source).warnings()]
        assert w1 == w2  # identical sink reasons across runs (fresh ids differ)


class TestCallGraphIntegration:
    def test_function_pointer_callees_via_hook(self):
        source = """
        void free(int *nonnull x);
        void handler_a(int *p) { free(p); }
        void (*h)(int *);
        void f(void) {
          int *bad = NULL;
          h(bad);
        }
        """
        program = parse_program(source)
        from repro.mixy.pointers import PointsTo

        # Without call-graph info the indirect call constrains nothing.
        blind = QualInference(program)
        for name in program.functions:
            blind.constrain_function(name)
        assert blind.warnings() == []
        # With an oracle sending h to handler_a, the flow is found.
        oracle = QualInference(
            program, callees_of=lambda call, fn: ["handler_a"]
        )
        for name in program.functions:
            oracle.constrain_function(name)
        assert len(oracle.warnings()) == 1
