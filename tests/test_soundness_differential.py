"""Empirical validation of Theorem 1 (MIX soundness).

Hypothesis generates random programs by *type-directed construction*
(so most are accepted), sprinkled with typed and symbolic blocks, over
free input variables.  For each program:

1. run the mixed analysis from a typed entry;
2. if the analysis **accepts** with type τ, evaluate the program
   concretely on many random inputs — Theorem 1 then demands the result
   is never ``error`` and the value inhabits τ.

Rejections are allowed (static analysis may be imprecise), so the
property is exactly the soundness direction of the theorem.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import MixConfig, analyze
from repro.lang.ast import (
    Assign,
    BinOp,
    BinOpKind,
    BoolLit,
    Deref,
    Expr,
    If,
    IntLit,
    Let,
    Not,
    Ref,
    Seq,
    StrLit,
    SymBlock,
    TypedBlock,
    Var,
)
from repro.lang.interp import Interpreter, Location, RuntimeTypeError, run
from repro.symexec import SymConfig
from repro.typecheck.types import BOOL, INT, RefType, STR, Type, TypeEnv

INPUTS: dict[str, Type] = {"i1": INT, "i2": INT, "b1": BOOL, "b2": BOOL}


@st.composite
def int_expr(draw, depth: int, scope: tuple[str, ...]) -> Expr:
    choices = ["lit", "var"]
    if depth > 0:
        choices += ["add", "sub", "mulc", "divc", "if", "let", "refderef", "block"]
    kind = draw(st.sampled_from(choices))
    if kind == "lit" or (kind == "var" and not _int_vars(scope)):
        return IntLit(draw(st.integers(-8, 8)))
    if kind == "var":
        return Var(draw(st.sampled_from(_int_vars(scope))))
    if kind == "add":
        return BinOp(
            BinOpKind.ADD,
            draw(int_expr(depth - 1, scope)),
            draw(int_expr(depth - 1, scope)),
        )
    if kind == "sub":
        return BinOp(
            BinOpKind.SUB,
            draw(int_expr(depth - 1, scope)),
            draw(int_expr(depth - 1, scope)),
        )
    if kind == "mulc":
        return BinOp(
            BinOpKind.MUL,
            draw(int_expr(depth - 1, scope)),
            IntLit(draw(st.integers(-3, 3))),
        )
    if kind == "divc":
        return BinOp(
            BinOpKind.DIV,
            draw(int_expr(depth - 1, scope)),
            IntLit(draw(st.integers(-3, 3))),  # may be 0: division is total
        )
    if kind == "if":
        return If(
            draw(bool_expr(depth - 1, scope)),
            draw(int_expr(depth - 1, scope)),
            draw(int_expr(depth - 1, scope)),
        )
    if kind == "let":
        name = draw(st.sampled_from(["v1", "v2", "v3"]))
        return Let(
            name,
            draw(int_expr(depth - 1, scope)),
            draw(int_expr(depth - 1, scope + (name,))),
        )
    if kind == "refderef":
        # let r = ref e in (r := e'); !r  — exercises the memory log.
        bound = draw(int_expr(depth - 1, scope))
        update = draw(int_expr(depth - 1, scope))
        return Let(
            "r0",
            Ref(bound),
            Seq(Assign(Var("r0"), update), Deref(Var("r0"))),
        )
    # block: wrap a subexpression in a typed or symbolic block.
    inner = draw(int_expr(depth - 1, scope))
    return draw(st.sampled_from([TypedBlock, SymBlock]))(inner)


@st.composite
def bool_expr(draw, depth: int, scope: tuple[str, ...]) -> Expr:
    choices = ["lit", "var"]
    if depth > 0:
        choices += ["cmp", "not", "andor", "block"]
    kind = draw(st.sampled_from(choices))
    if kind == "lit" or (kind == "var" and not _bool_vars(scope)):
        return BoolLit(draw(st.booleans()))
    if kind == "var":
        return Var(draw(st.sampled_from(_bool_vars(scope))))
    if kind == "cmp":
        op = draw(st.sampled_from([BinOpKind.EQ, BinOpKind.LT, BinOpKind.LE]))
        return BinOp(op, draw(int_expr(depth - 1, scope)), draw(int_expr(depth - 1, scope)))
    if kind == "not":
        return Not(draw(bool_expr(depth - 1, scope)))
    if kind == "andor":
        op = draw(st.sampled_from([BinOpKind.AND, BinOpKind.OR]))
        return BinOp(op, draw(bool_expr(depth - 1, scope)), draw(bool_expr(depth - 1, scope)))
    inner = draw(bool_expr(depth - 1, scope))
    return draw(st.sampled_from([TypedBlock, SymBlock]))(inner)


def _int_vars(scope: tuple[str, ...]) -> list[str]:
    return [v for v in scope if v.startswith(("i", "v"))]


def _bool_vars(scope: tuple[str, ...]) -> list[str]:
    return [v for v in scope if v.startswith("b")]


def _python_type_matches(value, typ: Type) -> bool:
    if typ == INT:
        return isinstance(value, int) and not isinstance(value, bool)
    if typ == BOOL:
        return isinstance(value, bool)
    if typ == STR:
        return isinstance(value, str)
    if isinstance(typ, RefType):
        return isinstance(value, Location)
    return True


PROGRAMS = st.one_of(
    int_expr(3, tuple(INPUTS)),
    bool_expr(3, tuple(INPUTS)),
)


@settings(
    max_examples=150,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(PROGRAMS, st.integers(0, 2**32 - 1))
def test_accepted_programs_never_error_concretely(program, seed):
    report = analyze(program, env=TypeEnv(INPUTS), entry="typed")
    if not report.ok:
        return  # rejection is always permitted
    rng = random.Random(seed)
    for _ in range(5):
        env = {
            "i1": rng.randint(-10, 10),
            "i2": rng.randint(-10, 10),
            "b1": rng.random() < 0.5,
            "b2": rng.random() < 0.5,
        }
        result = run(program, env)  # must not raise RuntimeTypeError
        assert _python_type_matches(result.value, report.type), (
            f"value {result.value!r} does not inhabit {report.type} "
            f"for program {program}"
        )


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(PROGRAMS, st.integers(0, 2**32 - 1))
def test_symbolic_entry_soundness(program, seed):
    """Same property with the program treated as one symbolic block."""
    report = analyze(program, env=TypeEnv(INPUTS), entry="symbolic")
    if not report.ok:
        return
    rng = random.Random(seed)
    env = {
        "i1": rng.randint(-10, 10),
        "i2": rng.randint(-10, 10),
        "b1": rng.random() < 0.5,
        "b2": rng.random() < 0.5,
    }
    result = run(program, env)
    assert _python_type_matches(result.value, report.type)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(PROGRAMS)
def test_entries_agree_on_acceptance_type(program):
    """When both entries accept, they derive the same type."""
    typed = analyze(program, env=TypeEnv(INPUTS), entry="typed")
    symbolic = analyze(program, env=TypeEnv(INPUTS), entry="symbolic")
    if typed.ok and symbolic.ok:
        assert typed.type == symbolic.type


def test_rejected_program_that_errors_is_caught():
    """Sanity: an erroring program must not be accepted."""
    program = BinOp(BinOpKind.ADD, IntLit(1), BoolLit(True))
    report = analyze(program, entry="typed")
    assert not report.ok
    with pytest.raises(RuntimeTypeError):
        run(program)
