"""Tests for the concrete big-step interpreter."""

import pytest

from repro.lang import parse, run
from repro.lang.interp import (
    Closure,
    EvalBudgetExceeded,
    Location,
    RuntimeTypeError,
)


def value_of(source, env=None, **kwargs):
    return run(parse(source), env, **kwargs).value


class TestPureEvaluation:
    def test_arithmetic(self):
        assert value_of("1 + 2 * 3") == 7
        assert value_of("10 - 4") == 6
        assert value_of("7 / 2") == 3
        assert value_of("-7 / 2") == -3  # truncating division

    def test_division_by_zero_is_total(self):
        assert value_of("1 / 0") == 0

    def test_booleans(self):
        assert value_of("true && false") is False
        assert value_of("true || false") is True
        assert value_of("not true") is False

    def test_strict_boolean_operators(self):
        # As in the paper's SEAnd rule, && and || are strict: the right
        # operand is evaluated (and may error) even if the left decides.
        with pytest.raises(RuntimeTypeError):
            value_of("false && (1 = true)")
        with pytest.raises(RuntimeTypeError):
            value_of("true || (1 = true)")

    def test_comparisons(self):
        assert value_of("1 < 2") is True
        assert value_of("2 <= 2") is True
        assert value_of("1 = 2") is False
        assert value_of('"a" = "a"') is True

    def test_if(self):
        assert value_of("if 1 < 2 then 10 else 20") == 10

    def test_let_shadowing(self):
        assert value_of("let x = 1 in let x = 2 in x") == 2

    def test_functions(self):
        assert value_of("(fun x : int -> x + 1) 41") == 42
        assert value_of("let twice = fun f : (int -> int) -> fun x : int -> f (f x) in twice (fun y : int -> y * 2) 3") == 12

    def test_closures_capture_environment(self):
        assert value_of("let y = 10 in let f = fun x : int -> x + y in let y = 0 in f 1") == 11

    def test_unit(self):
        assert value_of("()") is None


class TestReferences:
    def test_ref_deref(self):
        assert value_of("!(ref 5)") == 5

    def test_assignment(self):
        assert value_of("let x = ref 0 in x := 41; !x + 1") == 42

    def test_aliasing(self):
        assert value_of("let x = ref 1 in let y = x in y := 9; !x") == 9

    def test_assignment_returns_value(self):
        assert value_of("let x = ref 0 in x := 7") == 7

    def test_memory_in_result(self):
        result = run(parse("ref 3"))
        assert isinstance(result.value, Location)
        assert result.memory[result.value] == 3

    def test_ref_of_ref(self):
        assert value_of("let x = ref (ref 1) in !(!x)") == 1


class TestWhile:
    def test_loop_computes(self):
        source = """
        let i = ref 0 in
        let acc = ref 0 in
        while !i < 5 do
          acc := !acc + !i;
          i := !i + 1
        done;
        !acc
        """
        assert value_of(source) == 10

    def test_budget_stops_infinite_loop(self):
        with pytest.raises(EvalBudgetExceeded):
            value_of("while true do () done", step_budget=1000)


class TestBlocksAreTransparent:
    def test_typed_block(self):
        assert value_of("{t 1 + 2 t}") == 3

    def test_symbolic_block(self):
        assert value_of("{s 1 + 2 s}") == 3

    def test_nested(self):
        assert value_of("{s {t {s 5 s} t} s}") == 5

    def test_intro_example_runs(self):
        source = """
        {s
          let multithreaded = true in
          (if multithreaded then {t 1 t} else {t 0 t})
        s}
        """
        assert value_of(source) == 1


class TestDynamicErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "1 + true",
            '"foo" + 3',
            "if 1 then 2 else 3",
            "not 1",
            "!5",
            "5 := 1",
            "(1) 2",
            "x",
            "1 = true",
            "(fun x : int -> x) = (fun x : int -> x)",
            "while 1 do () done",
        ],
    )
    def test_error_token(self, source):
        with pytest.raises(RuntimeTypeError):
            value_of(source)

    def test_error_in_untaken_branch_is_fine(self):
        assert value_of('if true then 5 else "foo" + 3') == 5

    def test_flow_sensitive_reuse_runs(self):
        # The paper's flow-sensitivity example: x reused at another type.
        assert value_of('let x = ref 1 in x := 2; !x') == 2


class TestEnvironmentInput:
    def test_initial_environment(self):
        assert value_of("x + y", env={"x": 1, "y": 2}) == 3

    def test_closure_value(self):
        result = run(parse("fun x : int -> x"))
        assert isinstance(result.value, Closure)
