"""Property-based differential testing of the C symbolic executor
against the concrete mini-C interpreter.

Hypothesis generates small, terminating, well-typed mini-C functions
over integer parameters and locals (arithmetic, branches, bounded
loops, pointers to locals); each is executed two ways on random concrete
arguments:

- by :class:`repro.mixy.c.interp.CInterpreter` (ground truth);
- by :class:`repro.mixy.symexec.CSymExecutor` with the same concrete
  arguments, which must follow exactly one path to the same value.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import smt
from repro.mixy.c.interp import CInterpreter
from repro.mixy.c.parser import parse_program
from repro.mixy.symexec import CSymExecutor

# ---------------------------------------------------------------------------
# Program generation (as source text: exercises the parser too)
# ---------------------------------------------------------------------------

INT_VARS = ["a", "b", "x", "y"]


@st.composite
def int_expr(draw, depth: int) -> str:
    if depth == 0:
        return draw(
            st.one_of(
                st.integers(-9, 9).map(str),
                st.sampled_from(INT_VARS),
            )
        )
    kind = draw(st.sampled_from(["bin", "neg", "not", "leaf", "cmp"]))
    if kind == "leaf":
        return draw(int_expr(0))
    if kind == "bin":
        op = draw(st.sampled_from(["+", "-", "*"]))
        left = draw(int_expr(depth - 1))
        right = draw(int_expr(depth - 1))
        if op == "*":
            right = draw(st.integers(-4, 4).map(str))  # keep it linear
        return f"({left} {op} {right})"
    if kind == "neg":
        return f"(-{draw(int_expr(depth - 1))})"
    if kind == "not":
        return f"(!{draw(int_expr(depth - 1))})"
    op = draw(st.sampled_from(["==", "!=", "<", "<=", ">", ">="]))
    return f"({draw(int_expr(depth - 1))} {op} {draw(int_expr(depth - 1))})"


@st.composite
def cond_expr(draw) -> str:
    op = draw(st.sampled_from(["==", "!=", "<", "<=", ">", ">=", "&&", "||"]))
    return f"({draw(int_expr(1))} {op} {draw(int_expr(1))})"


@st.composite
def statement(draw, depth: int) -> str:
    kind = draw(
        st.sampled_from(["assign", "if", "loop", "ptr", "assign", "assign"])
    )
    if kind == "assign" or depth == 0:
        var = draw(st.sampled_from(["x", "y"]))
        return f"{var} = {draw(int_expr(2))};"
    if kind == "if":
        then = draw(statement(depth - 1))
        els = draw(statement(depth - 1))
        return f"if ({draw(cond_expr())}) {{ {then} }} else {{ {els} }}"
    if kind == "loop":
        # A canned, always-terminating counted loop.  Each nesting level
        # uses its own counter so an inner loop cannot reset an outer one.
        body = draw(statement(depth - 1))
        limit = draw(st.integers(1, 4))
        counter = f"i{depth}"
        return (
            f"{counter} = 0; "
            f"while ({counter} < {limit}) {{ {body} {counter} = {counter} + 1; }}"
        )
    # ptr: write through a pointer to a local.
    target = draw(st.sampled_from(["x", "y"]))
    return f"p = &{target}; *p = {draw(int_expr(1))};"


@st.composite
def c_function(draw) -> str:
    statements = " ".join(draw(statement(2)) for _ in range(draw(st.integers(1, 4))))
    ret = draw(int_expr(2))
    return (
        "int f(int a, int b) { int x = 0; int y = 1; "
        "int i1 = 0; int i2 = 0; int *p = &x; "
        + statements
        + f" return {ret}; }}"
    )


@settings(
    max_examples=40,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(c_function(), st.integers(-9, 9), st.integers(-9, 9))
def test_concrete_agreement(source, a, b):
    program = parse_program(source)
    expected = CInterpreter(program).call("f", [a, b])
    executor = CSymExecutor(program)
    results = list(
        executor.execute_function(
            program.functions["f"],
            [smt.int_const(a), smt.int_const(b)],
            executor.initial_state(),
        )
    )
    assert len(results) == 1
    assert results[0].ret is smt.int_const(expected), source
    assert not executor.warnings


@settings(
    max_examples=12,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(c_function(), st.integers(-6, 6), st.integers(-6, 6))
def test_symbolic_covers_concrete(source, a, b):
    """With symbolic arguments, some explored path must match each
    concrete input and predict its result (Corollary 1.1 for mini-C)."""
    program = parse_program(source)
    expected = CInterpreter(program).call("f", [a, b])
    executor = CSymExecutor(program)
    alpha = executor.fresh_symbol("a")
    beta = executor.fresh_symbol("b")
    results = list(
        executor.execute_function(
            program.functions["f"], [alpha, beta], executor.initial_state()
        )
    )
    binding = smt.and_(
        smt.eq(alpha, smt.int_const(a)), smt.eq(beta, smt.int_const(b))
    )
    matched = False
    for result in results:
        condition = smt.and_(result.state.condition(), binding)
        try:
            feasible = smt.is_satisfiable(condition)
        except smt.SolverError:
            continue
        if feasible:
            matched = True
            assert smt.is_valid(
                smt.eq(result.ret, smt.int_const(expected)), assuming=[condition]
            ), source
    assert matched, source
