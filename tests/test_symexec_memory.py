"""Unit tests for symbolic memories and the ⊢ m ok judgment (Figure 3)."""

import pytest

from repro import smt
from repro.symexec.memory import (
    MemBase,
    MemMerge,
    MemUpdate,
    allocate,
    fresh_memory,
    lower_memory,
    memory_ok,
    read,
    write,
)
from repro.symexec.values import NameSupply, SymValue, bool_value, int_value
from repro.typecheck.types import BOOL, INT, RefType


def loc(address: int, elem=INT) -> SymValue:
    return SymValue(RefType(elem), smt.int_const(address))


def sym_loc(name: str, elem=INT) -> SymValue:
    return SymValue(RefType(elem), smt.var(name, smt.INT))


class TestJudgmentCases:
    def test_empty_ok(self):
        """Empty-OK: the arbitrary well-typed memory μ is consistent."""
        assert memory_ok(MemBase("mu"))

    def test_alloc_ok(self):
        """Alloc-OK: allocations preserve consistency."""
        m = allocate(MemBase("mu"), loc(1), int_value(5))
        assert memory_ok(m)

    def test_well_typed_write_ok(self):
        m = write(allocate(MemBase("mu"), loc(1), int_value(5)), loc(1), int_value(6))
        assert memory_ok(m)

    def test_arbitrary_not_ok(self):
        """Arbitrary-NotOK: an ill-typed write persists as inconsistent."""
        m = write(MemBase("mu"), loc(1), bool_value(True))
        assert not memory_ok(m)

    def test_overwrite_ok_syntactic(self):
        """Overwrite-OK: a well-typed write to the ≡ location erases the
        earlier ill-typed one."""
        bad = write(MemBase("mu"), loc(1), bool_value(True))
        fixed = write(bad, loc(1), int_value(7))
        assert memory_ok(fixed)

    def test_overwrite_different_location_does_not_erase(self):
        bad = write(MemBase("mu"), loc(1), bool_value(True))
        other = write(bad, loc(2), int_value(7))
        assert not memory_ok(other)

    def test_two_bad_writes_need_two_overwrites(self):
        m = MemBase("mu")
        m = write(m, loc(1), bool_value(True))
        m = write(m, loc(2), bool_value(False))
        m = write(m, loc(1), int_value(0))
        assert not memory_ok(m)
        m = write(m, loc(2), int_value(0))
        assert memory_ok(m)

    def test_merge_requires_both_arms(self):
        good = write(MemBase("mu"), loc(1), int_value(3))
        bad = write(MemBase("mu"), loc(1), bool_value(True))
        guard = smt.var("g", smt.BOOL)
        assert memory_ok(MemMerge(guard, good, good))
        assert not memory_ok(MemMerge(guard, good, bad))


class TestSemanticOverwrite:
    """The refinement the paper mentions: validate location equality ≡
    with the solver under the path condition."""

    def test_syntactic_mode_misses_provable_alias(self):
        a = sym_loc("a")
        b = sym_loc("b")
        bad = write(MemBase("mu"), a, bool_value(True))
        fixed = write(bad, b, int_value(7))
        path = smt.eq(a.term, b.term)  # a = b on this path
        assert not memory_ok(fixed, path, semantic_overwrite=False)

    def test_semantic_mode_validates_equality(self):
        a = sym_loc("a")
        b = sym_loc("b")
        bad = write(MemBase("mu"), a, bool_value(True))
        fixed = write(bad, b, int_value(7))
        path = smt.eq(a.term, b.term)
        assert memory_ok(fixed, path, semantic_overwrite=True)

    def test_semantic_mode_requires_validity_not_satisfiability(self):
        a = sym_loc("a")
        b = sym_loc("b")
        bad = write(MemBase("mu"), a, bool_value(True))
        fixed = write(bad, b, int_value(7))
        # a = b merely possible: the overwrite must NOT be assumed.
        assert not memory_ok(fixed, smt.true(), semantic_overwrite=True)


class TestMergeGuardStrengthening:
    """Regression: each arm of ``g ? m1 : m2`` exists only on paths where
    its side of the guard holds, so the ⊢ m ok judgment must check the
    then-arm under ``pc ∧ g`` and the else-arm under ``pc ∧ ¬g``."""

    def test_overwrite_valid_only_under_guard_erases_in_then_arm(self):
        # In the then-arm, the locations a and b are equal *only because
        # the guard says so*; the overwrite must still erase the bad write.
        a = sym_loc("a")
        b = sym_loc("b")
        guard = smt.eq(a.term, b.term)
        then_mem = write(write(MemBase("mu"), a, bool_value(True)), b, int_value(7))
        merged = MemMerge(guard, then_mem, MemBase("mu"))
        assert memory_ok(merged, smt.true(), semantic_overwrite=True)

    def test_guard_does_not_leak_into_else_arm(self):
        # The same memory as the *else* arm sits under ¬(a = b): the
        # overwrite cannot be validated there, so the bad write persists.
        a = sym_loc("a")
        b = sym_loc("b")
        guard = smt.eq(a.term, b.term)
        else_mem = write(write(MemBase("mu"), a, bool_value(True)), b, int_value(7))
        merged = MemMerge(guard, MemBase("mu"), else_mem)
        assert not memory_ok(merged, smt.true(), semantic_overwrite=True)

    def test_negated_guard_strengthens_else_arm(self):
        a = sym_loc("a")
        b = sym_loc("b")
        guard = smt.not_(smt.eq(a.term, b.term))  # ¬g gives a = b
        else_mem = write(write(MemBase("mu"), a, bool_value(True)), b, int_value(7))
        merged = MemMerge(guard, MemBase("mu"), else_mem)
        assert memory_ok(merged, smt.true(), semantic_overwrite=True)

    def test_path_condition_still_conjoined_with_guard(self):
        # pc: a = c, guard: c = b — only together do they give a = b.
        a = sym_loc("a")
        b = sym_loc("b")
        c = sym_loc("c")
        pc = smt.eq(a.term, c.term)
        guard = smt.eq(c.term, b.term)
        then_mem = write(write(MemBase("mu"), a, bool_value(True)), b, int_value(7))
        merged = MemMerge(guard, then_mem, MemBase("mu"))
        assert memory_ok(merged, pc, semantic_overwrite=True)
        assert not memory_ok(merged, smt.true(), semantic_overwrite=True)


class TestDepthTracking:
    """The governor's max_memlog_depth check relies on O(1) depth fields."""

    def test_base_depth_zero(self):
        assert MemBase("mu").depth == 0

    def test_update_increments(self):
        m = MemBase("mu")
        for i in range(1, 5):
            m = write(m, loc(i), int_value(i))
            assert m.depth == i

    def test_merge_takes_max_plus_one(self):
        deep = write(write(MemBase("mu"), loc(1), int_value(1)), loc(2), int_value(2))
        shallow = MemBase("nu")
        merged = MemMerge(smt.var("g", smt.BOOL), deep, shallow)
        assert merged.depth == 3

    def test_depth_does_not_affect_equality(self):
        assert MemBase("mu") == MemBase("mu")
        a = write(MemBase("mu"), loc(1), int_value(1))
        b = write(MemBase("mu"), loc(1), int_value(1))
        assert a == b and a.depth == b.depth == 1


class TestLoweringAndRead:
    def test_read_type_follows_pointer_annotation(self):
        m = fresh_memory(NameSupply())
        value = read(m, loc(1, BOOL))
        assert value.typ == BOOL

    def test_read_of_written_value(self):
        m = write(MemBase("mu"), loc(1), int_value(42))
        value = read(m, loc(1))
        # The lowered select over the store chain simplifies to 42.
        from repro.smt.simplify import simplify

        assert simplify(value.term) is smt.int_const(42)

    def test_lower_merge_is_array_ite(self):
        guard = smt.var("g", smt.BOOL)
        m = MemMerge(guard, MemBase("m1"), MemBase("m2"))
        lowered = lower_memory(m)
        from repro.smt.terms import Kind

        assert lowered.kind is Kind.ITE

    def test_bool_values_stored_as_zero_one(self):
        m = write(MemBase("mu"), loc(1), bool_value(True))
        lowered = lower_memory(m)
        # select at 1 gives the encoded boolean 1
        from repro.smt.simplify import simplify

        assert simplify(smt.select(lowered, smt.int_const(1))) is smt.int_const(1)

    def test_read_through_non_ref_rejected(self):
        with pytest.raises(ValueError):
            read(MemBase("mu"), int_value(1))


class TestConcolicAgreement:
    """With fully concrete inputs the symbolic executor is a (typed)
    interpreter: single path, concrete values, agreeing with the
    big-step semantics — including reference programs."""

    @pytest.mark.parametrize(
        "source",
        [
            "let x = ref 0 in x := 41; !x + 1",
            "let x = ref 1 in let y = x in y := 9; !x",
            "let i = ref 0 in while !i < 5 do i := !i + 1 done; !i",
            "(fun f : (int -> int) -> f 10) (fun y : int -> y * 3)",
            "let r = ref (1 = 1) in (if !r then 7 else 8)",
            "!(ref (ref 5)) ",
        ],
    )
    def test_matches_interpreter(self, source):
        from repro.lang import parse, run
        from repro.symexec import SymExecutor

        program = parse(source)
        expected = run(program).value
        outcomes = SymExecutor().execute_all(program)
        assert len(outcomes) == 1 and outcomes[0].ok
        term = outcomes[0].value.term
        if isinstance(expected, bool):
            from repro.smt.simplify import simplify

            assert simplify(term).payload == expected
        elif isinstance(expected, int):
            assert term.payload == expected
        # reference results compare by type only (addresses differ)
