"""Unit tests for symbolic memories and the ⊢ m ok judgment (Figure 3)."""

import pytest

from repro import smt
from repro.symexec.memory import (
    MemBase,
    MemMerge,
    MemUpdate,
    allocate,
    fresh_memory,
    lower_memory,
    memory_ok,
    read,
    write,
)
from repro.symexec.values import NameSupply, SymValue, bool_value, int_value
from repro.typecheck.types import BOOL, INT, RefType


def loc(address: int, elem=INT) -> SymValue:
    return SymValue(RefType(elem), smt.int_const(address))


def sym_loc(name: str, elem=INT) -> SymValue:
    return SymValue(RefType(elem), smt.var(name, smt.INT))


class TestJudgmentCases:
    def test_empty_ok(self):
        """Empty-OK: the arbitrary well-typed memory μ is consistent."""
        assert memory_ok(MemBase("mu"))

    def test_alloc_ok(self):
        """Alloc-OK: allocations preserve consistency."""
        m = allocate(MemBase("mu"), loc(1), int_value(5))
        assert memory_ok(m)

    def test_well_typed_write_ok(self):
        m = write(allocate(MemBase("mu"), loc(1), int_value(5)), loc(1), int_value(6))
        assert memory_ok(m)

    def test_arbitrary_not_ok(self):
        """Arbitrary-NotOK: an ill-typed write persists as inconsistent."""
        m = write(MemBase("mu"), loc(1), bool_value(True))
        assert not memory_ok(m)

    def test_overwrite_ok_syntactic(self):
        """Overwrite-OK: a well-typed write to the ≡ location erases the
        earlier ill-typed one."""
        bad = write(MemBase("mu"), loc(1), bool_value(True))
        fixed = write(bad, loc(1), int_value(7))
        assert memory_ok(fixed)

    def test_overwrite_different_location_does_not_erase(self):
        bad = write(MemBase("mu"), loc(1), bool_value(True))
        other = write(bad, loc(2), int_value(7))
        assert not memory_ok(other)

    def test_two_bad_writes_need_two_overwrites(self):
        m = MemBase("mu")
        m = write(m, loc(1), bool_value(True))
        m = write(m, loc(2), bool_value(False))
        m = write(m, loc(1), int_value(0))
        assert not memory_ok(m)
        m = write(m, loc(2), int_value(0))
        assert memory_ok(m)

    def test_merge_requires_both_arms(self):
        good = write(MemBase("mu"), loc(1), int_value(3))
        bad = write(MemBase("mu"), loc(1), bool_value(True))
        guard = smt.var("g", smt.BOOL)
        assert memory_ok(MemMerge(guard, good, good))
        assert not memory_ok(MemMerge(guard, good, bad))


class TestSemanticOverwrite:
    """The refinement the paper mentions: validate location equality ≡
    with the solver under the path condition."""

    def test_syntactic_mode_misses_provable_alias(self):
        a = sym_loc("a")
        b = sym_loc("b")
        bad = write(MemBase("mu"), a, bool_value(True))
        fixed = write(bad, b, int_value(7))
        path = smt.eq(a.term, b.term)  # a = b on this path
        assert not memory_ok(fixed, path, semantic_overwrite=False)

    def test_semantic_mode_validates_equality(self):
        a = sym_loc("a")
        b = sym_loc("b")
        bad = write(MemBase("mu"), a, bool_value(True))
        fixed = write(bad, b, int_value(7))
        path = smt.eq(a.term, b.term)
        assert memory_ok(fixed, path, semantic_overwrite=True)

    def test_semantic_mode_requires_validity_not_satisfiability(self):
        a = sym_loc("a")
        b = sym_loc("b")
        bad = write(MemBase("mu"), a, bool_value(True))
        fixed = write(bad, b, int_value(7))
        # a = b merely possible: the overwrite must NOT be assumed.
        assert not memory_ok(fixed, smt.true(), semantic_overwrite=True)


class TestLoweringAndRead:
    def test_read_type_follows_pointer_annotation(self):
        m = fresh_memory(NameSupply())
        value = read(m, loc(1, BOOL))
        assert value.typ == BOOL

    def test_read_of_written_value(self):
        m = write(MemBase("mu"), loc(1), int_value(42))
        value = read(m, loc(1))
        # The lowered select over the store chain simplifies to 42.
        from repro.smt.simplify import simplify

        assert simplify(value.term) is smt.int_const(42)

    def test_lower_merge_is_array_ite(self):
        guard = smt.var("g", smt.BOOL)
        m = MemMerge(guard, MemBase("m1"), MemBase("m2"))
        lowered = lower_memory(m)
        from repro.smt.terms import Kind

        assert lowered.kind is Kind.ITE

    def test_bool_values_stored_as_zero_one(self):
        m = write(MemBase("mu"), loc(1), bool_value(True))
        lowered = lower_memory(m)
        # select at 1 gives the encoded boolean 1
        from repro.smt.simplify import simplify

        assert simplify(smt.select(lowered, smt.int_const(1))) is smt.int_const(1)

    def test_read_through_non_ref_rejected(self):
        with pytest.raises(ValueError):
            read(MemBase("mu"), int_value(1))


class TestConcolicAgreement:
    """With fully concrete inputs the symbolic executor is a (typed)
    interpreter: single path, concrete values, agreeing with the
    big-step semantics — including reference programs."""

    @pytest.mark.parametrize(
        "source",
        [
            "let x = ref 0 in x := 41; !x + 1",
            "let x = ref 1 in let y = x in y := 9; !x",
            "let i = ref 0 in while !i < 5 do i := !i + 1 done; !i",
            "(fun f : (int -> int) -> f 10) (fun y : int -> y * 3)",
            "let r = ref (1 = 1) in (if !r then 7 else 8)",
            "!(ref (ref 5)) ",
        ],
    )
    def test_matches_interpreter(self, source):
        from repro.lang import parse, run
        from repro.symexec import SymExecutor

        program = parse(source)
        expected = run(program).value
        outcomes = SymExecutor().execute_all(program)
        assert len(outcomes) == 1 and outcomes[0].ok
        term = outcomes[0].value.term
        if isinstance(expected, bool):
            from repro.smt.simplify import simplify

            assert simplify(term).payload == expected
        elif isinstance(expected, int):
            assert term.payload == expected
        # reference results compare by type only (addresses differ)
