"""The resource governor and its degradation ladder.

Every breach — a solver query timing out mid-block, the run deadline
passing mid-fork, the path budget running dry inside a loop unroll, a
memory log growing past its cap — must terminate the analysis with a
*documented conservative verdict*, never an unhandled exception and
never a verdict flip from "error" to "no error".  The
:class:`repro.smt.FaultInjector` makes the solver-side failures
deterministic so the whole ladder is exercisable in CI.
"""

from __future__ import annotations

import time

import pytest

from repro import smt
from repro.budget import Budget
from repro.core import MixConfig, SoundnessMode, analyze_source
from repro.core.analysis import MixReport
from repro.mixy import Mixy, MixyConfig
from repro.smt import FaultInjector, SatResult, SolverError, SolverService
from repro.symexec import SymConfig
from repro.symexec.executor import ErrKind
from repro.typecheck import TypeEnv
from repro.typecheck.types import BOOL, INT, RefType


@pytest.fixture
def fresh_service():
    """Isolate each test behind its own solver service."""
    service = SolverService()
    previous = smt.set_service(service)
    yield service
    smt.set_service(previous)


FORK_SOURCE = "{s (if p then 1 else 0) + (if q then 1 else 0) s}"
FORK_ENV = TypeEnv({"p": BOOL, "q": BOOL})

WHILE_SOURCE = "{s let i = ref 0 in while !i < 4 do i := !i + 1 done; !i s}"

# A loop over a *symbolic* bound: one exit path per unroll, so the path
# budget is genuinely chargeable inside the unroll.
SYM_WHILE_SOURCE = "{s let i = ref 0 in while !i < n do i := !i + 1 done; !i s}"
SYM_WHILE_ENV = TypeEnv({"n": INT})

WRITES_SOURCE = "{s r := 1; r := 2; r := 3; !r s}"
WRITES_ENV = TypeEnv({"r": RefType(INT)})


def good_enough(**budget_kwargs) -> MixConfig:
    return MixConfig(
        soundness=SoundnessMode.GOOD_ENOUGH, budget=Budget(**budget_kwargs)
    )


def sound(**budget_kwargs) -> MixConfig:
    return MixConfig(soundness=SoundnessMode.SOUND, budget=Budget(**budget_kwargs))


# ---------------------------------------------------------------------------
# Budget unit behavior
# ---------------------------------------------------------------------------


class TestBudget:
    def test_unbounded_by_default(self):
        budget = Budget()
        assert not budget.expired()
        assert budget.remaining() is None
        assert budget.query_deadline_at() is None
        assert budget.charge_path()
        assert not budget.memlog_exceeded(10**6)

    def test_deadline_expires(self):
        budget = Budget(deadline=0.0).start()
        assert budget.expired()
        assert budget.remaining() <= 0.0

    def test_clock_arms_lazily_and_idempotently(self):
        budget = Budget(deadline=100.0)
        assert budget._started is None
        assert not budget.expired()  # first question arms the clock
        first = budget._started
        assert first is not None
        budget.start()
        assert budget._started == first

    def test_query_deadline_capped_by_run_deadline(self):
        budget = Budget(deadline=0.0, query_timeout=100.0).start()
        assert budget.query_deadline_at() <= time.monotonic()

    def test_query_deadline_without_run_deadline(self):
        budget = Budget(query_timeout=100.0).start()
        assert budget.query_deadline_at() > time.monotonic() + 50

    def test_charge_path_breaches_past_cap(self):
        budget = Budget(max_paths=2)
        assert budget.charge_path()
        assert budget.charge_path()
        assert not budget.charge_path()
        assert budget.paths_exhausted()

    def test_restart_resets(self):
        budget = Budget(deadline=0.0, max_paths=1).start()
        budget.charge_path()
        budget.charge_path()
        budget.restart()
        assert budget.paths_used == 0

    def test_memlog_cap(self):
        budget = Budget(max_memlog_depth=3)
        assert not budget.memlog_exceeded(3)
        assert budget.memlog_exceeded(4)


# ---------------------------------------------------------------------------
# FaultInjector determinism
# ---------------------------------------------------------------------------


class TestFaultInjector:
    def test_at_query_fires_exactly_once(self):
        injector = FaultInjector.at_query(3)
        fired = [injector.next_fault() for _ in range(6)]
        assert fired == [None, None, FaultInjector.TIMEOUT, None, None, None]
        assert injector.injected == 1

    def test_seeded_rate_is_reproducible(self):
        a = FaultInjector(seed=7, rate=0.3, kind=FaultInjector.ERROR)
        b = FaultInjector(seed=7, rate=0.3, kind=FaultInjector.ERROR)
        assert [a.next_fault() for _ in range(50)] == [
            b.next_fault() for _ in range(50)
        ]
        assert a.injected > 0  # the rate actually fires at this seed

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(kind="segfault")
        with pytest.raises(ValueError):
            FaultInjector(faults={1: "segfault"})

    def test_injected_timeout_counts_and_skips_cache(self, fresh_service):
        x = smt.var("x", smt.INT)
        formula = smt.gt(x, smt.int_const(0))
        fresh_service.fault_injector = FaultInjector.at_query(1)
        assert fresh_service.check_sat([formula]) is SatResult.UNKNOWN
        assert fresh_service.stats.query_timeouts == 1
        assert fresh_service.stats.injected_faults == 1
        # The UNKNOWN was not cached: the retry gets the true verdict.
        assert fresh_service.check_sat([formula]) is SatResult.SAT

    def test_injected_error_contained_as_unknown(self, fresh_service):
        # Regression: error-kind faults used to escape check_sat() as raw
        # SolverErrors; they are now contained like timeouts (uncached
        # UNKNOWN + solver_errors_contained), so no caller can crash on
        # a solver-internal failure.
        p = smt.var("p", smt.BOOL)
        fresh_service.fault_injector = FaultInjector.at_query(1, FaultInjector.ERROR)
        assert fresh_service.check_sat([p]) is SatResult.UNKNOWN
        assert fresh_service.stats.solver_errors_contained == 1
        assert fresh_service.stats.injected_faults == 1
        # Not cached: the retry reaches the solver and gets the verdict.
        assert fresh_service.check_sat([p]) is SatResult.SAT

    def test_injected_error_in_model_still_raises(self, fresh_service):
        # model() has no UNKNOWN channel; SolverError *is* its contained
        # degradation path and every caller already handles it.
        fresh_service.fault_injector = FaultInjector.at_query(1, FaultInjector.ERROR)
        with pytest.raises(SolverError):
            fresh_service.model(smt.var("p", smt.BOOL))
        assert fresh_service.stats.solver_errors_contained == 1


# ---------------------------------------------------------------------------
# Degradation: injected solver faults mid-block (MIX)
# ---------------------------------------------------------------------------


def count_queries(source, env, config=None):
    service = SolverService()
    previous = smt.set_service(service)
    try:
        analyze_source(source, env=env, config=config or MixConfig())
    finally:
        smt.set_service(previous)
    return service.stats.queries


class TestInjectedFaultsMix:
    """Sweep a single injected fault over *every* query position of an
    analysis: whatever it hits, analyze() returns a report — conservative
    at worst, never an unhandled exception."""

    @pytest.mark.parametrize("kind", FaultInjector.KINDS)
    @pytest.mark.parametrize("source,env", [(FORK_SOURCE, FORK_ENV), (WHILE_SOURCE, TypeEnv())])
    def test_single_fault_sweep_terminates(self, kind, source, env):
        total = count_queries(source, env)
        assert total > 0
        for n in range(1, total + 1):
            service = SolverService()
            service.fault_injector = FaultInjector.at_query(n, kind)
            previous = smt.set_service(service)
            try:
                report = analyze_source(source, env=env)
            finally:
                smt.set_service(previous)
            assert isinstance(report, MixReport)
            if report.ok:
                # A fault may be absorbed (e.g. a conservative feasibility
                # keep), but it can never invent a wrong accepting type.
                assert str(report.type) == "int"

    def test_fault_on_accepting_program_never_flips_to_wrong_type(self, fresh_service):
        fresh_service.fault_injector = FaultInjector(
            seed=11, rate=0.5, kind=FaultInjector.TIMEOUT
        )
        report = analyze_source(FORK_SOURCE, env=FORK_ENV)
        assert isinstance(report, MixReport)
        if report.ok:
            assert str(report.type) == "int"


# ---------------------------------------------------------------------------
# Degradation: deadline breach mid-fork (MIX)
# ---------------------------------------------------------------------------


class TestDeadlineBreach:
    def test_sound_mode_rejects_with_budget_diagnostic(self, fresh_service):
        report = analyze_source(FORK_SOURCE, env=FORK_ENV, config=sound(deadline=0.0))
        assert not report.ok
        assert any(d.kind is ErrKind.BUDGET for d in report.diagnostics)
        assert any("deadline" in d.message for d in report.diagnostics)
        assert fresh_service.stats.deadline_breaches >= 1

    def test_good_enough_mode_terminates_conservatively(self, fresh_service):
        report = analyze_source(
            FORK_SOURCE, env=FORK_ENV, config=good_enough(deadline=0.0)
        )
        # The whole frontier was abandoned, so even good-enough mode has
        # no result type to offer — it reports the breach rather than
        # silently accepting.
        assert not report.ok
        assert any(d.kind is ErrKind.BUDGET for d in report.diagnostics)

    def test_generous_deadline_changes_nothing(self, fresh_service):
        governed = analyze_source(
            FORK_SOURCE, env=FORK_ENV, config=sound(deadline=3600.0)
        )
        assert governed.ok and str(governed.type) == "int"
        assert fresh_service.stats.deadline_breaches == 0
        assert governed.warnings == []


# ---------------------------------------------------------------------------
# Degradation: path budget breach inside a While unroll (MIX)
# ---------------------------------------------------------------------------


class TestPathBudgetBreach:
    def test_sound_mode_rejects_inside_while_unroll(self, fresh_service):
        config = MixConfig(
            soundness=SoundnessMode.SOUND,
            sym=SymConfig(max_loop_unroll=6),
            budget=Budget(max_paths=1),
        )
        report = analyze_source(SYM_WHILE_SOURCE, env=SYM_WHILE_ENV, config=config)
        assert not report.ok
        assert any(d.kind is ErrKind.BUDGET for d in report.diagnostics)
        assert any("path budget" in d.message for d in report.diagnostics)
        assert fresh_service.stats.path_budget_breaches >= 1

    def test_good_enough_mode_truncates_with_warning(self, fresh_service):
        # 4 paths exist through the fork program; allow 2 and truncate.
        source = "{s (if p then 1 else 0) + (if q then 1 else 0) s}"
        report = analyze_source(source, env=FORK_ENV, config=good_enough(max_paths=2))
        assert report.ok  # the surviving paths already fix the type
        assert str(report.type) == "int"
        assert any("path budget" in w for w in report.warnings)
        assert report.stats["budget_breaches"] >= 1
        assert fresh_service.stats.path_budget_breaches >= 1

    def test_budget_spans_blocks(self, fresh_service):
        # One global cap across sequential blocks: the second block pays
        # for paths the first already used.
        source = "{s (if p then 1 else 0) s} + {s (if q then 1 else 0) s}"
        report = analyze_source(source, env=FORK_ENV, config=sound(max_paths=3))
        assert not report.ok
        assert any(d.kind is ErrKind.BUDGET for d in report.diagnostics)


# ---------------------------------------------------------------------------
# Degradation: memory-log depth breach (MIX)
# ---------------------------------------------------------------------------


class TestMemlogBreach:
    def test_deep_write_log_breaches(self, fresh_service):
        report = analyze_source(
            WRITES_SOURCE, env=WRITES_ENV, config=sound(max_memlog_depth=2)
        )
        assert not report.ok
        assert any(d.kind is ErrKind.BUDGET for d in report.diagnostics)
        assert any("memory log" in d.message for d in report.diagnostics)
        assert fresh_service.stats.memlog_breaches >= 1

    def test_cap_above_depth_is_inert(self, fresh_service):
        report = analyze_source(
            WRITES_SOURCE, env=WRITES_ENV, config=sound(max_memlog_depth=64)
        )
        assert report.ok and str(report.type) == "int"
        assert fresh_service.stats.memlog_breaches == 0


# ---------------------------------------------------------------------------
# Degradation: MIXY falls back to pure qualifier inference
# ---------------------------------------------------------------------------


MIXY_PROGRAM = """
void sysutil_free(int *p) {
  if (p == 0) { return; }
  *p = 0;
}
void helper(int *p, int flag) MIX(symbolic) {
  if (flag) { *p = 1; }
  sysutil_free(p);
}
int main(void) {
  int x;
  helper(&x, 1);
  helper(0, 0);
  return 0;
}
"""


class TestMixyDegradation:
    def test_deadline_breach_falls_back_to_quals(self):
        config = MixyConfig(budget=Budget(deadline=0.0))
        mixy = Mixy(MIXY_PROGRAM, config)
        warnings = mixy.run()  # must terminate, not raise
        assert mixy.stats["budget_fallbacks"] >= 1
        assert mixy.executor.stats["budget_breaches"] >= 1
        # The breach is visible to the caller as a symbolic warning…
        assert any("resource budget exceeded" in str(w) for w in warnings)
        # …and the offending function was still analyzed (pure inference).
        assert "helper" in mixy.qual.constrained_functions

    def test_ungoverned_run_unchanged(self):
        baseline = Mixy(MIXY_PROGRAM)
        baseline_warnings = baseline.run()
        governed = Mixy(MIXY_PROGRAM, MixyConfig(budget=Budget(deadline=3600.0)))
        governed_warnings = governed.run()
        assert sorted(map(str, governed_warnings)) == sorted(
            map(str, baseline_warnings)
        )
        assert governed.stats["budget_fallbacks"] == 0

    def test_path_budget_breach_terminates(self):
        config = MixyConfig(budget=Budget(max_paths=1))
        mixy = Mixy(MIXY_PROGRAM, config)
        mixy.run()
        assert mixy.stats["budget_fallbacks"] >= 1

    def test_breached_block_is_not_cached(self):
        config = MixyConfig(budget=Budget(deadline=0.0))
        mixy = Mixy(MIXY_PROGRAM, config)
        mixy.run()
        assert not any(key[0] == "helper" for key in mixy._cache)

    @pytest.mark.parametrize("kind", FaultInjector.KINDS)
    def test_injected_faults_never_escape(self, kind, fresh_service):
        fresh_service.fault_injector = FaultInjector(seed=3, rate=0.4, kind=kind)
        mixy = Mixy(MIXY_PROGRAM)
        warnings = mixy.run()  # every degradation path is handled
        assert isinstance(warnings, list)


# ---------------------------------------------------------------------------
# Per-query timeouts reach the DPLL(T) core
# ---------------------------------------------------------------------------


class TestQueryTimeout:
    def test_expired_deadline_returns_unknown_without_solving(self, fresh_service):
        x = smt.var("x", smt.INT)
        with fresh_service.governed(Budget(deadline=0.0).start()):
            verdict = fresh_service.check_sat(
                [smt.gt(x, smt.int_const(0)), smt.lt(x, smt.int_const(10))]
            )
        assert verdict is SatResult.UNKNOWN
        assert fresh_service.stats.deadline_breaches == 1
        assert fresh_service.stats.full_solves == 0

    def test_syntactic_tier_still_answers_after_deadline(self, fresh_service):
        # Cheap verdicts keep flowing after the deadline: degradation
        # never makes trivially-decidable queries undecided.
        with fresh_service.governed(Budget(deadline=0.0).start()):
            assert fresh_service.check_sat([smt.false()]) is SatResult.UNSAT
            assert fresh_service.check_sat([]) is SatResult.SAT

    def test_timeout_unknown_is_never_cached(self, fresh_service):
        x = smt.var("x", smt.INT)
        formula = smt.gt(x, smt.int_const(0))
        with fresh_service.governed(Budget(deadline=0.0).start()):
            assert fresh_service.check_sat([formula]) is SatResult.UNKNOWN
        # Outside the governed scope the same query resolves for real.
        assert fresh_service.check_sat([formula]) is SatResult.SAT


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------


class TestStatsSurface:
    def test_breach_counters_in_stats_table(self, fresh_service):
        analyze_source(FORK_SOURCE, env=FORK_ENV, config=good_enough(deadline=0.0))
        table = fresh_service.stats.format_table()
        for counter in (
            "query_timeouts",
            "deadline_breaches",
            "path_budget_breaches",
            "memlog_breaches",
            "injected_faults",
        ):
            assert counter in table
        assert fresh_service.stats.as_dict()["deadline_breaches"] >= 1


class TestCliFlags:
    def test_mix_budget_flags(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "p.mix"
        path.write_text(FORK_SOURCE)
        code = main(
            [
                "mix",
                str(path),
                "--env",
                "p:bool,q:bool",
                "--deadline",
                "0",
                "--solver-stats",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1  # conservative rejection, not a crash
        assert "deadline_breaches" in out

    def test_mix_max_paths_flag_good_enough(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "p.mix"
        path.write_text(FORK_SOURCE)
        code = main(
            [
                "mix",
                str(path),
                "--env",
                "p:bool,q:bool",
                "--good-enough",
                "--max-paths",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "accepted: int" in out
        assert "path budget" in out  # the truncation warning is printed

    def test_mixy_budget_flags(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "p.c"
        path.write_text(MIXY_PROGRAM)
        code = main(["mixy", str(path), "--deadline", "0", "--solver-stats"])
        out = capsys.readouterr().out
        assert code in (0, 1)  # terminated with a verdict either way
        assert "deadline_breaches" in out

    def test_query_timeout_flag_parses(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "p.mix"
        path.write_text("{s 1 + 1 s}")
        assert main(["mix", str(path), "--query-timeout-ms", "5000"]) == 0
