"""Tests for the taint instance of the qualifier engine."""

import pytest

from repro.mixy.c import parse_program
from repro.mixy.pointers import PointsTo
from repro.mixy.taint import TaintSpec, analyze_taint

SPEC = TaintSpec(
    sources=frozenset({"read_user_input", "getenv_model"}),
    sinks={"exec_query": (0,), "system_model": (0,)},
)

PRELUDE = """
char *read_user_input(void);
char *getenv_model(char *name);
int exec_query(char *sql);
int system_model(char *cmd);
char *sanitize(char *raw);
"""


def taint(source):
    program = parse_program(PRELUDE + source)
    return analyze_taint(program, SPEC, callees_of=PointsTo(program).callees)


class TestDirectFlows:
    def test_source_to_sink(self):
        warnings = taint(
            "int f(void) { char *q = read_user_input(); return exec_query(q); }"
        )
        assert len(warnings) == 1
        assert "read_user_input" in str(warnings[0])
        assert "exec_query" in str(warnings[0])

    def test_clean_constant_query(self):
        assert taint('int f(void) { return exec_query("SELECT 1"); }') == []

    def test_sanitizer_breaks_flow(self):
        warnings = taint(
            """
            int f(void) {
              char *q = sanitize(read_user_input());
              return exec_query(q);
            }
            """
        )
        assert warnings == []

    def test_two_sources_two_warnings(self):
        warnings = taint(
            """
            int f(void) {
              exec_query(read_user_input());
              system_model(getenv_model("PATH"));
              return 0;
            }
            """
        )
        assert len(warnings) == 2

    def test_non_sink_parameter_ignored(self):
        spec = TaintSpec(sources=frozenset({"read_user_input"}), sinks={"dual": (1,)})
        program = parse_program(
            """
            char *read_user_input(void);
            int dual(char *log_text, char *query);
            int f(void) { return dual(read_user_input(), "SELECT 1"); }
            """
        )
        assert analyze_taint(program, spec) == []


class TestIndirectFlows:
    def test_through_helper_function(self):
        warnings = taint(
            """
            char *wrap(char *s) { return s; }
            int f(void) { return exec_query(wrap(read_user_input())); }
            """
        )
        assert len(warnings) == 1
        assert "wrap" in str(warnings[0])  # the witness names the conduit

    def test_through_struct_field(self):
        warnings = taint(
            """
            struct request { char *body; int size; };
            void fill(struct request *r) { r->body = read_user_input(); }
            int handle(struct request *r) { return exec_query(r->body); }
            """
        )
        assert len(warnings) == 1

    def test_through_global(self):
        warnings = taint(
            """
            char *g_last_cmd;
            void store(void) { g_last_cmd = read_user_input(); }
            int replay(void) { return system_model(g_last_cmd); }
            """
        )
        assert len(warnings) == 1

    def test_through_function_pointer(self):
        warnings = taint(
            """
            int handler_a(char *s) { return exec_query(s); }
            int (*dispatch)(char *);
            int f(void) {
              dispatch = handler_a;
              return dispatch(read_user_input());
            }
            """
        )
        assert len(warnings) == 1

    def test_flow_insensitive_like_nullness(self):
        # The sink call happens before the taint assignment: still warned.
        warnings = taint(
            """
            int f(void) {
              char *q = "safe";
              exec_query(q);
              q = read_user_input();
              return 0;
            }
            """
        )
        assert len(warnings) == 1


class TestSpecValidation:
    def test_source_sink_overlap_rejected(self):
        with pytest.raises(ValueError):
            TaintSpec(sources=frozenset({"f"}), sinks={"f": (0,)})

    def test_nullness_seeds_are_inert(self):
        """NULL/malloc/nonnull machinery must not produce taint warnings."""
        warnings = taint(
            """
            void free_model(char *nonnull p);
            int f(void) {
              char *p = NULL;
              char *q = (char *) malloc(sizeof(char));
              exec_query("const");
              return 0;
            }
            """
        )
        assert warnings == []

    def test_warning_text_uses_taint_vocabulary(self):
        (warning,) = taint(
            "int f(void) { return exec_query(read_user_input()); }"
        )
        text = str(warning)
        assert "TAINTED" in text and "untainted" in text
