"""Unit tests for the Tseitin CNF layer."""

import itertools

import pytest

from repro.smt import BOOL, INT, and_, iff, implies, int_const, ite, le, lt, not_, or_, true, false, var
from repro.smt.cnf import CnfBuilder
from repro.smt.linear import LinAtom
from repro.smt.sat import SatSolver
from repro.smt.terms import SortError

p = var("p", BOOL)
q = var("q", BOOL)
r = var("r", BOOL)
x = var("x", INT)


def models_of(formula, over):
    """All assignments of the given boolean vars satisfying the formula."""
    sat = SatSolver()
    cnf = CnfBuilder(sat)
    cnf.add_assertion(formula)
    lits = {v: cnf.atom_literal(v) for v in over}
    found = set()
    while True:
        model = sat.solve()
        if model is None:
            return found
        assignment = tuple(model[lits[v]] for v in over)
        found.add(assignment)
        sat.add_clause([-lits[v] if model[lits[v]] else lits[v] for v in over])


def brute_models(fn, arity):
    return {
        bits for bits in itertools.product([False, True], repeat=arity) if fn(*bits)
    }


class TestEquisatisfiability:
    @pytest.mark.parametrize(
        "formula,fn",
        [
            (and_(p, q), lambda a, b: a and b),
            (or_(p, q), lambda a, b: a or b),
            (implies(p, q), lambda a, b: (not a) or b),
            (iff(p, q), lambda a, b: a == b),
            (not_(and_(p, not_(q))), lambda a, b: not (a and not b)),
            (or_(and_(p, q), not_(p)), lambda a, b: (a and b) or not a),
        ],
    )
    def test_binary_connectives(self, formula, fn):
        assert models_of(formula, [p, q]) == brute_models(fn, 2)

    def test_ite(self):
        formula = ite(p, q, r)
        expected = brute_models(lambda a, b, c: b if a else c, 3)
        assert models_of(formula, [p, q, r]) == expected

    def test_constants(self):
        sat = SatSolver()
        cnf = CnfBuilder(sat)
        cnf.add_assertion(true())
        assert sat.solve() is not None
        cnf.add_assertion(false())
        assert sat.solve() is None


class TestAtomMapping:
    def test_same_atom_shares_variable(self):
        sat = SatSolver()
        cnf = CnfBuilder(sat)
        # x <= 3 written twice (even via < rewriting) maps to one SAT var.
        l1 = cnf.encode(le(x, int_const(3)))
        l2 = cnf.encode(le(x, int_const(3)))
        l3 = cnf.encode(lt(x, int_const(4)))  # same canonical atom over ints
        assert l1 == l2 == l3

    def test_trivial_atoms_are_constants(self):
        sat = SatSolver()
        cnf = CnfBuilder(sat)
        assert cnf.encode(le(int_const(1), int_const(2))) == cnf.true_literal()
        assert cnf.encode(le(int_const(2), int_const(1))) == -cnf.true_literal()
        assert not cnf.atom_to_var  # nothing reached the theory map

    def test_var_to_atom_inverse(self):
        sat = SatSolver()
        cnf = CnfBuilder(sat)
        lit = cnf.encode(le(x, int_const(3)))
        atom = cnf.var_to_atom[abs(lit)]
        assert isinstance(atom, LinAtom)
        assert atom.constant == 3

    def test_non_boolean_rejected(self):
        sat = SatSolver()
        cnf = CnfBuilder(sat)
        with pytest.raises(SortError):
            cnf.encode(x)

    def test_uneliminated_kind_rejected(self):
        from repro.smt import eq

        sat = SatSolver()
        cnf = CnfBuilder(sat)
        with pytest.raises(SortError):
            cnf.encode(eq(x, int_const(1)))  # preprocessing must rewrite eq
