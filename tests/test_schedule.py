"""Unit tests for the trace-driven scheduler (repro.schedule).

The scheduler's contract has three parts, tested here without any
process fan-out: plans are a *pure function* of their inputs plus
accumulated feedback (determinism), hints degrade gracefully on any
bad input (robustness), and strategy variants answer queries with the
same verdicts as the default solver (the portfolio's soundness
precondition — the parallel equivalence tests then check the full
pipeline end to end).
"""

from __future__ import annotations

import json

import pytest

from repro import smt
from repro.smt import INT, SatResult, eq, int_const, le, lt, not_, var
from repro.schedule import (
    CHEAP_STRATEGIES,
    RACE_STRATEGIES,
    STRATEGIES,
    BlockHint,
    RoundPlan,
    Scheduler,
    ScheduleHints,
    build_hints,
    make_scheduler,
)

# ---------------------------------------------------------------------------
# Hint files
# ---------------------------------------------------------------------------


def _hints_with(**block_kwargs) -> ScheduleHints:
    hints = ScheduleHints()
    hints.blocks["aa" * 8] = BlockHint(name="blk", **block_kwargs)
    return hints


class TestHintFile:
    def test_round_trip(self, tmp_path):
        hints = ScheduleHints()
        hints.blocks["ab" * 8] = BlockHint(
            name="f",
            rank=0,
            solver_seconds=1.25,
            queries=40,
            tier_order=("superset", "subset"),
            strategy="intfirst",
            cold_only=True,
        )
        hints.blocks["cd" * 8] = BlockHint(name="g", rank=1)
        hints.hot = ("ab" * 8,)
        path = tmp_path / "h.json"
        hints.save(str(path))
        loaded = ScheduleHints.load(str(path))
        assert loaded.as_dict() == hints.as_dict()
        assert loaded.get("ab" * 8).strategy == "intfirst"
        assert loaded.get("ab" * 8).tier_order == ("superset", "subset")
        assert loaded.is_hot("ab" * 8)
        assert not loaded.is_hot("cd" * 8)
        assert loaded.note is None

    def test_missing_file_degrades(self, tmp_path):
        loaded = ScheduleHints.load(str(tmp_path / "nope.json"))
        assert len(loaded) == 0
        assert "not found" in loaded.note

    def test_corrupt_json_degrades(self, tmp_path):
        path = tmp_path / "h.json"
        path.write_text("{oops", encoding="utf-8")
        loaded = ScheduleHints.load(str(path))
        assert len(loaded) == 0
        assert "corrupt" in loaded.note

    def test_foreign_version_degrades(self, tmp_path):
        path = tmp_path / "h.json"
        path.write_text(json.dumps({"version": 99, "blocks": {}}))
        loaded = ScheduleHints.load(str(path))
        assert len(loaded) == 0
        assert "version" in loaded.note

    def test_mistyped_entries_are_dropped_or_sanitized(self, tmp_path):
        path = tmp_path / "h.json"
        path.write_text(json.dumps({
            "version": 1,
            "blocks": {
                "good": {"name": "f", "rank": 1},
                "badrank": {"name": "g", "rank": "many"},
                "notadict": [1, 2],
                "badtier": {"name": "h", "tier_order": ["up", "down"]},
                "badstrat": {"name": "i", "strategy": "quantum"},
            },
            "hot": ["good"],
        }))
        loaded = ScheduleHints.load(str(path))
        assert set(loaded.blocks) == {"good", "badtier", "badstrat"}
        assert loaded.get("badtier").tier_order is None
        assert loaded.get("badstrat").strategy is None

    def test_stale_hash_simply_never_matches(self):
        hints = _hints_with(rank=0)
        assert hints.get("ff" * 8) is None
        assert hints.get(None) is None


class TestBuildHints:
    DIGEST = {
        "blocks": [
            {"name": "hot_block", "chash": "11" * 8, "solver_seconds": 2.0,
             "queries": 50, "tiers": {"subset": 1, "superset": 9},
             "spec_runs": 3, "spec_first_solver_seconds": 1.0,
             "spec_later_solver_seconds": 0.01},
            {"name": "cool_block", "chash": "22" * 8, "solver_seconds": 0.5,
             "queries": 10, "tiers": {"subset": 5, "superset": 0},
             "spec_runs": 3, "spec_first_solver_seconds": 0.2,
             "spec_later_solver_seconds": 0.2},
            {"name": "serial_block", "solver_seconds": 9.9},  # no chash
        ],
        "scheduler": {"race_winners": {
            "hot_block": "intfirst", "cool_block": "warpdrive",
        }},
    }

    def test_distillation(self):
        hints = build_hints(self.DIGEST)
        assert set(h.name for h in hints.blocks.values()) == {
            "hot_block", "cool_block"
        }  # chash-less rows never produce hints
        hot = hints.get("11" * 8)
        assert hot.rank == 0 and hot.cold_only and hot.strategy == "intfirst"
        assert hot.tier_order == ("superset", "subset")
        cool = hints.get("22" * 8)
        assert cool.rank == 1 and not cool.cold_only
        assert cool.strategy is None  # unknown winner name is ignored
        assert cool.tier_order is None
        assert hints.hot == ("11" * 8, "22" * 8)

    def test_round_trips_through_disk(self, tmp_path):
        path = tmp_path / "h.json"
        build_hints(self.DIGEST).save(str(path))
        assert ScheduleHints.load(str(path)).as_dict() == build_hints(
            self.DIGEST
        ).as_dict()


# ---------------------------------------------------------------------------
# Round planning
# ---------------------------------------------------------------------------

NAMES = ["a", "b", "c", "d", "e", "f"]
FEATURES = {
    "a": frozenset({"g1", "g2"}),
    "b": frozenset({"g1", "g2", "g3"}),
    "c": frozenset({"h1"}),
    "d": frozenset({"h1", "h2"}),
    "e": frozenset({"k1"}),
    "f": frozenset(),
}
HASHES = {n: (n * 16)[:16] for n in NAMES}


def _plan(sched: Scheduler) -> RoundPlan:
    return sched.plan_mixy_round(NAMES, FEATURES, HASHES)


class TestPlanning:
    def test_plans_are_deterministic(self):
        plans = [
            _plan(Scheduler("waves", jobs=4, cores=4)) for _ in range(3)
        ]
        first = plans[0]
        assert first.waves  # similar blocks actually grouped
        for p in plans[1:]:
            assert p.waves == first.waves
            assert p.wave_strategies == first.wave_strategies

    def test_similar_blocks_share_a_wave(self):
        plan = _plan(Scheduler("waves", jobs=4, cores=4))
        by_member = {n: w for w in plan.waves for n in w}
        assert by_member["a"] == by_member["b"]
        assert by_member["c"] == by_member["d"]
        assert sorted(n for w in plan.waves for n in w) == NAMES

    def test_wave_slots_fold_to_cores(self):
        sched = Scheduler("waves", jobs=4, cores=1)
        assert sched.wave_slots == 1
        plan = _plan(sched)
        assert len(plan.waves) == 1  # one strategy group, one core
        assert plan.waves[0] == tuple(NAMES)

    def test_waves_are_strategy_homogeneous(self):
        hints = ScheduleHints()
        for n in ("a", "b"):  # a and b are similar but learn differently
            hints.blocks[HASHES[n]] = BlockHint(
                name=n, strategy="intfirst" if n == "a" else "flip"
            )
        sched = Scheduler("portfolio", jobs=4, hints=hints, cores=4)
        sched._raced.update(NAMES)  # focus on waves, not races
        plan = _plan(sched)
        strat_of = {
            n: plan.wave_strategies[i]
            for i, w in enumerate(plan.waves) for n in w
        }
        assert strat_of["a"] == "intfirst"
        assert strat_of["b"] == "flip"
        assert strat_of["c"] == "default"

    def test_first_round_never_skips(self):
        plan = _plan(Scheduler("waves", jobs=4, cores=1))
        assert plan.skipped == ()

    def test_converged_blocks_skip(self):
        sched = Scheduler("waves", jobs=4, cores=4)
        _plan(sched)
        sched.note_result(("a",), imported=0)  # converged
        sched.note_result(("b",), imported=100)  # still producing
        plan = _plan(sched)
        assert "a" in plan.skipped
        assert any("b" in w for w in plan.waves)

    def test_single_core_skips_all_rerunds_without_cheap_strategy(self):
        sched = Scheduler("waves", jobs=4, cores=1)
        _plan(sched)
        plan = _plan(sched)
        assert plan.skipped == tuple(NAMES)
        assert plan.empty

    def test_cheap_strategy_rerunds_even_on_one_core(self):
        assert "intfirst" in CHEAP_STRATEGIES
        sched = Scheduler("portfolio", jobs=4, cores=1)
        sched._raced.update(NAMES)
        sched.note_winner("a", "intfirst")
        sched.note_winner("b", "flip")  # not cheap: still skips
        _plan(sched)
        plan = _plan(sched)
        assert plan.waves == [("a",)]
        assert plan.wave_strategies == ["intfirst"]
        assert "b" in plan.skipped

    def test_races_only_on_first_speculation_and_never_twice(self):
        sched = Scheduler("portfolio", jobs=4, cores=4)
        plan = _plan(sched)
        assert sorted(r.name for r in plan.races) == NAMES  # unhinted: all
        assert all(r.strategies == RACE_STRATEGIES for r in plan.races)
        assert _plan(sched).races == []

    def test_hints_gate_racing_to_hot_unlearned_blocks(self):
        hints = ScheduleHints()
        hints.blocks[HASHES["a"]] = BlockHint(name="a", strategy="intfirst")
        hints.blocks[HASHES["b"]] = BlockHint(name="b")
        hints.hot = (HASHES["b"], HASHES["c"])
        sched = Scheduler("portfolio", jobs=4, hints=hints, cores=4)
        plan = _plan(sched)
        # a already learned; b hot and unlearned; c hot; d/e/f not hot.
        assert sorted(r.name for r in plan.races) == ["b", "c"]

    def test_hot_waves_dispatch_first(self):
        hints = ScheduleHints()
        hints.blocks[HASHES["e"]] = BlockHint(name="e", rank=0)
        hints.hot = (HASHES["e"],)
        sched = Scheduler("waves", jobs=4, hints=hints, cores=4)
        plan = _plan(sched)
        assert "e" in plan.waves[0]

    def test_tier_order_lookup(self):
        hints = _hints_with(rank=0, tier_order=("superset", "subset"))
        sched = Scheduler("waves", jobs=2, hints=hints, cores=2)
        assert sched.tier_order_for("aa" * 8) == ("superset", "subset")
        assert sched.tier_order_for("bb" * 8) == ("subset", "superset")
        assert sched.tier_order_for(None) == ("subset", "superset")

    def test_query_waves_cluster_shared_conjuncts(self):
        sched = Scheduler("waves", jobs=2, cores=2)
        positions = [(0, 1), (1, 2), (3,), (4,)]
        roots = [10, 11, 12, 13, 13]
        waves = sched.plan_query_waves(positions, roots)
        assert waves == sched.plan_query_waves(positions, roots)
        by_member = {g: w for w in waves for g in w}
        assert by_member[0] == by_member[1]  # share root 11
        assert by_member[2] == by_member[3]  # share root 13
        assert sorted(g for w in waves for g in w) == [0, 1, 2, 3]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule mode"):
            Scheduler("lifo")


class TestMakeScheduler:
    class Cfg:
        def __init__(self, jobs=4, schedule="waves", sched_hints=None):
            self.jobs = jobs
            self.schedule = schedule
            self.sched_hints = sched_hints

    def test_serial_and_fifo_bypass(self):
        assert make_scheduler(self.Cfg(jobs=1)) is None
        assert make_scheduler(self.Cfg(schedule="fifo")) is None

    def test_bad_mode_raises_even_for_serial(self):
        with pytest.raises(ValueError):
            make_scheduler(self.Cfg(jobs=1, schedule="???"))

    def test_bad_hint_file_warns_but_schedules(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("%%%", encoding="utf-8")
        sched = make_scheduler(self.Cfg(sched_hints=str(path)))
        assert sched is not None and len(sched.hints) == 0
        assert "ignoring corrupt hint file" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Strategy variants: verdict equivalence
# ---------------------------------------------------------------------------

x = var("sched_x", INT)
y = var("sched_y", INT)

QUERIES = [
    # SAT: a satisfiable staircase segment.
    (le(int_const(0), x), lt(x, int_const(10)), eq(y, smt.add(x, int_const(1)))),
    # UNSAT: contradictory bounds (intfirst minimizes a conjunct core).
    (le(x, int_const(3)), le(int_const(5), x), lt(y, x)),
    # SAT: single conjunct.
    (not_(eq(x, int_const(0))),),
    # UNSAT: propositional-flavored contradiction.
    (eq(x, int_const(1)), not_(eq(x, int_const(1)))),
]


class TestStrategyEquivalence:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_all_strategies_agree_with_default(self, strategy):
        expected = []
        service = smt.SolverService()
        for conjuncts in QUERIES:
            expected.append(service.check_sat(conjuncts))
        varied = smt.SolverService()
        varied.strategy = strategy
        got = [varied.check_sat(conjuncts) for conjuncts in QUERIES]
        assert got == expected
        assert SatResult.UNKNOWN not in got

    def test_intfirst_core_is_a_sound_proper_subset(self):
        service = smt.SolverService()
        service.strategy = "intfirst"
        conjuncts = (le(x, int_const(3)), le(int_const(5), x), lt(y, x))
        assert service.check_sat(conjuncts) is SatResult.UNSAT
        if service.stats.cores_minimized:
            shard = service._shards[4000]
            cores = [c for c in shard.unsat_cores if c < frozenset(conjuncts)]
            assert cores, "minimized core should be recorded as its own entry"
            for core in cores:
                # The recorded core must itself be UNSAT on a cold solver.
                fresh = smt.SolverService()
                assert fresh.check_sat(tuple(core)) is SatResult.UNSAT

    def test_cancel_check_aborts_with_sat_cancelled(self):
        from repro.smt.sat import SatCancelled

        service = smt.SolverService()
        service.cancel_check = lambda: True
        with pytest.raises(SatCancelled):
            service.check_sat(QUERIES[0])


# ---------------------------------------------------------------------------
# block_content_hash: normalized content identity (hint + store keying)
# ---------------------------------------------------------------------------

FN_SOURCE = """
int helper(int a) {
  if (a < 0) { return 0; }
  return a + 1;
}
"""

#: Same function, gratuitously reformatted: the hash must not move.
FN_REFORMATTED = """

int   helper( int   a )
{
    if (a < 0)
        { return 0; }

    return a    + 1;
}
"""


class TestBlockContentHash:
    """The store/hint key is the SHA-1 of the *pretty-printed* function,
    so it is normalized by construction: whitespace and layout edits
    cannot retire memo entries; any edit to the function itself does."""

    def _hash(self, source, name="helper", context=None):
        from repro.mixy.c import parse_program
        from repro.schedule import block_content_hash

        return block_content_hash(parse_program(source), name, context)

    def test_reformatting_is_hash_stable(self):
        assert self._hash(FN_SOURCE) == self._hash(FN_REFORMATTED)

    def test_body_edits_change_the_hash(self):
        edited = FN_SOURCE.replace("a + 1", "a + 2")
        assert self._hash(FN_SOURCE) != self._hash(edited)

    def test_edits_elsewhere_do_not_change_the_hash(self):
        grown = FN_SOURCE + "\nint other(int b) { return b; }\n"
        assert self._hash(FN_SOURCE) == self._hash(grown)

    def test_context_widens_the_key_and_stays_normalized(self):
        plain = self._hash(FN_SOURCE)
        ctx = ("cone-text", "ctx-key")
        assert self._hash(FN_SOURCE, context=ctx) != plain
        # Same context, reformatted body: still the same widened key.
        assert self._hash(FN_SOURCE, context=ctx) == self._hash(
            FN_REFORMATTED, context=ctx
        )
        assert self._hash(FN_SOURCE, context=("other",)) != self._hash(
            FN_SOURCE, context=ctx
        )
