"""Unit and randomized tests for the CDCL SAT core."""

import itertools
import random

import pytest

from repro.smt.sat import SatSolver, _luby


def make_solver(num_vars: int) -> SatSolver:
    solver = SatSolver()
    for _ in range(num_vars):
        solver.new_var()
    return solver


class TestBasics:
    def test_empty_is_sat(self):
        assert SatSolver().solve() == {}

    def test_single_unit(self):
        s = make_solver(1)
        s.add_clause([1])
        assert s.solve() == {1: True}

    def test_contradictory_units(self):
        s = make_solver(1)
        s.add_clause([1])
        s.add_clause([-1])
        assert s.solve() is None

    def test_empty_clause_unsat(self):
        s = make_solver(1)
        s.add_clause([])
        assert s.solve() is None

    def test_simple_implication_chain(self):
        s = make_solver(3)
        s.add_clause([1])
        s.add_clause([-1, 2])
        s.add_clause([-2, 3])
        model = s.solve()
        assert model == {1: True, 2: True, 3: True}

    def test_tautological_clause_ignored(self):
        s = make_solver(1)
        s.add_clause([1, -1])
        assert s.solve() is not None

    def test_duplicate_literals_deduped(self):
        s = make_solver(1)
        s.add_clause([1, 1, 1])
        assert s.solve() == {1: True}

    def test_out_of_range_literal_rejected(self):
        s = make_solver(1)
        with pytest.raises(ValueError):
            s.add_clause([2])
        with pytest.raises(ValueError):
            s.add_clause([0])

    def test_pigeonhole_two_in_one(self):
        # Two pigeons, one hole: p1h1 and p2h1 both required but exclusive.
        s = make_solver(2)
        s.add_clause([1])
        s.add_clause([2])
        s.add_clause([-1, -2])
        assert s.solve() is None

    def test_incremental_blocking(self):
        """Adding blocking clauses between solves enumerates models."""
        s = make_solver(2)
        s.add_clause([1, 2])
        models = []
        while True:
            model = s.solve()
            if model is None:
                break
            models.append(model)
            s.add_clause([-v if val else v for v, val in model.items()])
        assert len(models) == 3  # all assignments except (False, False)


def pigeonhole(pigeons: int, holes: int) -> tuple[SatSolver, int]:
    """The classic PHP formula; UNSAT when pigeons > holes."""
    s = SatSolver()
    grid = [[s.new_var() for _ in range(holes)] for _ in range(pigeons)]
    for p in range(pigeons):
        s.add_clause(grid[p])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                s.add_clause([-grid[p1][h], -grid[p2][h]])
    return s, pigeons * holes


class TestHarderInstances:
    def test_php_4_3_unsat(self):
        s, _ = pigeonhole(4, 3)
        assert s.solve() is None

    def test_php_5_5_sat(self):
        s, _ = pigeonhole(5, 5)
        assert s.solve() is not None

    def test_php_6_5_unsat_exercises_learning(self):
        s, _ = pigeonhole(6, 5)
        assert s.solve() is None
        assert s.num_conflicts > 0


def brute_force(num_vars: int, clauses: list[list[int]]) -> bool:
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = {v: bits[v - 1] for v in range(1, num_vars + 1)}
        if all(
            any(assignment[abs(lit)] == (lit > 0) for lit in clause)
            for clause in clauses
        ):
            return True
    return False


class TestRandomizedAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(30))
    def test_random_3sat_matches_brute_force(self, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(3, 8)
        num_clauses = rng.randint(2, 4 * num_vars)
        clauses = []
        for _ in range(num_clauses):
            width = rng.randint(1, 3)
            variables = rng.sample(range(1, num_vars + 1), min(width, num_vars))
            clauses.append([v if rng.random() < 0.5 else -v for v in variables])
        s = make_solver(num_vars)
        for clause in clauses:
            s.add_clause(list(clause))
        model = s.solve()
        expected = brute_force(num_vars, clauses)
        assert (model is not None) == expected
        if model is not None:
            for clause in clauses:
                assert any(model[abs(lit)] == (lit > 0) for lit in clause)


class TestLuby:
    def test_prefix(self):
        expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
        assert [_luby(i) for i in range(1, 16)] == expected
