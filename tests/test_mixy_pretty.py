"""Round-trip tests for the mini-C pretty-printer."""

import pytest

from repro.mixy.c import parse_program
from repro.mixy.c.pretty import expr_text, pretty_program, type_text
from repro.mixy.corpus import CASES
from repro.mixy.corpus_vsftpd import mini_vsftpd


def roundtrip(source: str):
    first = parse_program(source)
    printed = pretty_program(first)
    second = parse_program(printed)
    return first, second, printed


def assert_equivalent(first, second):
    assert set(first.structs) == set(second.structs)
    assert set(first.globals) == set(second.globals)
    assert set(first.functions) == set(second.functions)
    for name, struct in first.structs.items():
        assert second.structs[name] == struct
    for name, g in first.globals.items():
        assert second.globals[name].typ == g.typ
        assert second.globals[name].init == g.init
    for name, fn in first.functions.items():
        other = second.functions[name]
        assert other.params == fn.params
        assert other.ret == fn.ret
        assert other.mix == fn.mix
        assert other.nonnull_return == fn.nonnull_return
        assert other.body == fn.body


class TestRoundTrip:
    @pytest.mark.parametrize(
        "source",
        [
            "int g; int f(void) { return g + 1; }",
            "struct s { int a; char *b; }; struct s *make(void) { return NULL; }",
            "void (*h)(int); void g(void) { h(1); }",
            "void f(int *nonnull p) MIX(typed);",
            "char *nonnull name(void) { return \"x\"; }",
            """
            int f(int a) {
              int *p = (int *) malloc(sizeof(int));
              *p = a * 2 + 1;
              if (a > 0 && *p < 10) { return *p; } else { return -a; }
            }
            """,
            """
            struct node { int v; struct node *next; };
            int sum(struct node *n) {
              int total = 0;
              while (n != NULL) { total = total + n->v; n = n->next; }
              return total;
            }
            """,
            "int f(void) { int x; int *p = &x; (*p) = 1; return !x; }",
        ],
    )
    def test_small_programs(self, source):
        first, second, _printed = roundtrip(source)
        assert_equivalent(first, second)

    @pytest.mark.parametrize("name", sorted(CASES))
    @pytest.mark.parametrize("annotated", [False, True])
    def test_corpus_cases(self, name, annotated):
        first, second, _ = roundtrip(CASES[name].source(annotated))
        assert_equivalent(first, second)

    def test_mini_vsftpd(self):
        first, second, _ = roundtrip(mini_vsftpd())
        assert_equivalent(first, second)

    def test_analysis_agrees_on_printed_program(self):
        """The analyses must not care whether they see the original or
        the pretty-printed program."""
        from repro.mixy import Mixy

        source = CASES["case1"].source(True)
        original = [str(w) for w in Mixy(source).run()]
        printed = pretty_program(parse_program(source))
        reprinted = [str(w) for w in Mixy(printed).run()]
        assert (original == []) == (reprinted == [])


class TestRendering:
    def test_precedence_parens(self):
        program = parse_program("int f(int a) { return (a + 1) * 2; }")
        body = program.functions["f"].body.stmts[0]
        assert expr_text(body.value) == "(a + 1) * 2"

    def test_no_spurious_parens(self):
        program = parse_program("int f(int a) { return a + 1 * 2; }")
        body = program.functions["f"].body.stmts[0]
        assert expr_text(body.value) == "a + 1 * 2"

    def test_type_text(self):
        from repro.mixy.c.ast import INT_T, PtrType, StructType

        assert type_text(INT_T) == "int"
        assert type_text(PtrType(PtrType(StructType("s")))) == "struct s * *"
