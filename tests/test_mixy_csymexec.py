"""Tests for the mini-C symbolic executor (Otter substitute)."""

import pytest

from repro import smt
from repro.mixy.c import parse_program
from repro.mixy.symexec import CErrKind, CSymConfig, CSymExecutor


def run_function(source, name, make_args=None, config=None):
    program = parse_program(source)
    executor = CSymExecutor(program, config)
    fn = program.functions[name]
    args = make_args(executor) if make_args else []
    results = list(executor.execute_function(fn, args, executor.initial_state()))
    return executor, results


class TestValuesAndControl:
    def test_concrete_arithmetic(self):
        _, results = run_function("int f(void) { return 2 + 3 * 4; }", "f")
        assert [str(r.ret) for r in results] == ["14"]

    def test_locals_and_assignment(self):
        src = "int f(void) { int x = 5; x = x + 1; return x; }"
        _, results = run_function(src, "f")
        assert results[0].ret is smt.int_const(6)

    def test_if_forks_on_symbolic(self):
        src = "int f(int c) { if (c) { return 1; } return 0; }"
        ex, results = run_function(
            src, "f", make_args=lambda e: [e.fresh_symbol("c")]
        )
        assert sorted(str(r.ret) for r in results) == ["0", "1"]
        assert ex.stats["forks"] == 1

    def test_concrete_condition_no_fork(self):
        src = "int f(void) { int c = 1; if (c) { return 1; } return 0; }"
        ex, results = run_function(src, "f")
        assert len(results) == 1 and results[0].ret is smt.int_const(1)

    def test_infeasible_branch_pruned(self):
        src = """
        int f(int c) {
          if (c > 0) {
            if (c < 0) { return 99; }
            return 1;
          }
          return 0;
        }
        """
        _, results = run_function(src, "f", make_args=lambda e: [e.fresh_symbol("c")])
        assert "99" not in {str(r.ret) for r in results}

    def test_while_loop_concrete(self):
        src = """
        int f(void) {
          int i = 0; int acc = 0;
          while (i < 5) { acc = acc + i; i = i + 1; }
          return acc;
        }
        """
        _, results = run_function(src, "f")
        assert results[0].ret is smt.int_const(10)

    def test_loop_bound_warns(self):
        src = "void f(int n) { int i = 0; while (i < n) { i = i + 1; } }"
        ex, _results = run_function(
            src,
            "f",
            make_args=lambda e: [e.fresh_symbol("n")],
            config=CSymConfig(max_loop_unroll=4),
        )
        assert any(w.kind is CErrKind.LOOP_BOUND for w in ex.warnings)

    def test_logical_and_or(self):
        src = "int f(int a, int b) { return (a && b) || !a; }"
        ex, results = run_function(
            src, "f", make_args=lambda e: [e.fresh_symbol("a"), e.fresh_symbol("b")]
        )
        assert results  # evaluates without forking (conditions are terms)


class TestNullDereference:
    def test_definite_null_deref(self):
        src = "int f(void) { int *p = NULL; return *p; }"
        ex, results = run_function(src, "f")
        assert any(w.kind is CErrKind.NULL_DEREF for w in ex.warnings)
        assert results == []  # the path dies at the error

    def test_maybe_null_deref(self):
        src = "int f(int *p) { return *p; }"
        ex, results = run_function(
            src, "f", make_args=lambda e: [e.fresh_symbol("p")]
        )
        assert any(w.kind is CErrKind.NULL_DEREF for w in ex.warnings)
        # Execution continues on the non-null resolution.
        assert len(results) == 1

    def test_null_check_is_respected(self):
        """Path sensitivity: no warning under `if (p != NULL)`."""
        src = "int f(int *p) { if (p != NULL) { return *p; } return 0; }"
        ex, results = run_function(
            src, "f", make_args=lambda e: [e.fresh_symbol("p")]
        )
        assert not any(w.kind is CErrKind.NULL_DEREF for w in ex.warnings)
        assert len(results) == 2

    def test_null_overwritten_before_deref(self):
        """Flow sensitivity: NULL then malloc then deref is clean — the
        paper's x->obj = NULL; x->obj = malloc(...) idiom."""
        src = """
        struct box { int *obj; };
        int f(void) {
          struct box b;
          b.obj = NULL;
          b.obj = (int *) malloc(sizeof(int));
          return *(b.obj);
        }
        """
        ex, results = run_function(src, "f")
        assert not any(w.kind is CErrKind.NULL_DEREF for w in ex.warnings)

    def test_write_through_null(self):
        src = "void f(void) { int *p = NULL; *p = 1; }"
        ex, _ = run_function(src, "f")
        assert any(w.kind is CErrKind.NULL_DEREF for w in ex.warnings)

    def test_warnings_deduplicated(self):
        src = """
        int f(int c) {
          int *p = NULL;
          if (c) { return *p; }
          return *p;
        }
        """
        ex, _ = run_function(src, "f", make_args=lambda e: [e.fresh_symbol("c")])
        null_warnings = [w for w in ex.warnings if w.kind is CErrKind.NULL_DEREF]
        assert len(null_warnings) == 1  # same description, reported once


class TestMemoryModel:
    def test_struct_fields_are_separate_cells(self):
        src = """
        struct pair { int a; int b; };
        int f(void) {
          struct pair p;
          p.a = 1;
          p.b = 2;
          return p.a + p.b;
        }
        """
        _, results = run_function(src, "f")
        assert results[0].ret is smt.int_const(3)

    def test_pointer_to_local(self):
        src = "int f(void) { int x = 7; int *p = &x; *p = 8; return x; }"
        _, results = run_function(src, "f")
        assert results[0].ret is smt.int_const(8)

    def test_double_pointer_update(self):
        src = """
        void clear(int **pp) { *pp = NULL; }
        int f(void) {
          int x = 3;
          int *p = &x;
          clear(&p);
          return p == NULL;
        }
        """
        _, results = run_function(src, "f")
        assert results[0].ret is smt.int_const(1)

    def test_lazy_materialization(self):
        """Dereferencing an unconstrained pointer materializes an object
        (paper Section 4.2's lazy initialization)."""
        src = "int f(int **pp) { if (pp != NULL) { return **pp; } return 0; }"
        ex, results = run_function(
            src, "f", make_args=lambda e: [e.fresh_symbol("pp")]
        )
        assert ex.stats["lazy_objects"] >= 1

    def test_malloc_is_nonnull(self):
        src = "int f(void) { int *p = (int *) malloc(sizeof(int)); return p == NULL; }"
        _, results = run_function(src, "f")
        assert results[0].ret is smt.int_const(0)


class TestCalls:
    def test_inline_call(self):
        src = """
        int add(int a, int b) { return a + b; }
        int f(void) { return add(2, 3); }
        """
        _, results = run_function(src, "f")
        assert results[0].ret is smt.int_const(5)

    def test_callee_forks_propagate(self):
        src = """
        int sign(int x) { if (x < 0) { return 0 - 1; } return 1; }
        int f(int x) { return sign(x); }
        """
        _, results = run_function(src, "f", make_args=lambda e: [e.fresh_symbol("x")])
        assert len(results) == 2

    def test_recursion_depth_capped(self):
        src = "int f(int n) { return f(n); }"
        ex, results = run_function(
            src, "f", make_args=lambda e: [e.fresh_symbol("n")],
            config=CSymConfig(max_call_depth=4),
        )
        assert any(w.kind is CErrKind.RECURSION for w in ex.warnings)

    def test_extern_call_havocs(self):
        src = """
        int external_thing(int x);
        int f(void) { return external_thing(1); }
        """
        _, results = run_function(src, "f")
        assert len(results) == 1 and not results[0].ret.is_const

    def test_function_pointer_known_targets(self):
        src = """
        int h1(void) { return 1; }
        int h2(void) { return 2; }
        int f(int c) {
          int (*h)(void);
          h = h1;
          if (c) { h = h2; }
          return h();
        }
        """
        _, results = run_function(src, "f", make_args=lambda e: [e.fresh_symbol("c")])
        assert sorted(str(r.ret) for r in results) == ["1", "2"]

    def test_symbolic_function_pointer_unsupported(self):
        """Case 4's mechanism: an opaque function pointer cannot be called."""
        src = """
        void f(void (*h)(void)) { h(); }
        """
        ex, _ = run_function(src, "f", make_args=lambda e: [e.fresh_symbol("h")])
        assert any(w.kind is CErrKind.UNSUPPORTED for w in ex.warnings)
