"""Property test: the pretty-printer inverts the parser on random ASTs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import parse, pretty
from repro.lang.ast import (
    App,
    Assign,
    BinOp,
    BinOpKind,
    BoolLit,
    Deref,
    Fun,
    If,
    IntLit,
    Let,
    Not,
    Ref,
    Seq,
    StrLit,
    SymBlock,
    TypedBlock,
    UnitLit,
    Var,
    While,
)
from repro.typecheck.types import BOOL, INT, RefType

NAMES = ["x", "y", "f", "g", "acc"]
BINOPS = list(BinOpKind)


@st.composite
def expr(draw, depth: int):
    if depth == 0:
        return draw(
            st.one_of(
                st.integers(-20, 20).map(IntLit),
                st.booleans().map(BoolLit),
                st.sampled_from(NAMES).map(Var),
                st.just(UnitLit()),
                st.text(
                    alphabet="ab c\nd\t\"\\", min_size=0, max_size=6
                ).map(StrLit),
            )
        )
    sub = expr(depth - 1)
    kind = draw(
        st.sampled_from(
            ["binop", "not", "if", "let", "seq", "ref", "deref", "assign",
             "while", "fun", "app", "tblock", "sblock", "leaf"]
        )
    )
    if kind == "leaf":
        return draw(expr(0))
    if kind == "binop":
        return BinOp(draw(st.sampled_from(BINOPS)), draw(sub), draw(sub))
    if kind == "not":
        return Not(draw(sub))
    if kind == "if":
        return If(draw(sub), draw(sub), draw(sub))
    if kind == "let":
        annotation = draw(st.sampled_from([None, INT, BOOL, RefType(INT)]))
        return Let(draw(st.sampled_from(NAMES)), draw(sub), draw(sub), annotation)
    if kind == "seq":
        return Seq(draw(sub), draw(sub))
    if kind == "ref":
        return Ref(draw(sub))
    if kind == "deref":
        return Deref(draw(sub))
    if kind == "assign":
        return Assign(draw(sub), draw(sub))
    if kind == "while":
        return While(draw(sub), draw(sub))
    if kind == "fun":
        param_type = draw(st.sampled_from([INT, BOOL, RefType(INT)]))
        return Fun(draw(st.sampled_from(NAMES)), param_type, draw(sub))
    if kind == "app":
        return App(draw(sub), draw(sub))
    if kind == "tblock":
        return TypedBlock(draw(sub))
    return SymBlock(draw(sub))


@settings(max_examples=200, deadline=None)
@given(expr(4))
def test_parse_inverts_pretty(tree):
    assert parse(pretty(tree)) == tree


@settings(max_examples=100, deadline=None)
@given(expr(3))
def test_pretty_is_stable(tree):
    """pretty . parse . pretty == pretty (a fixed point after one trip)."""
    once = pretty(tree)
    assert pretty(parse(once)) == once
