"""End-to-end tests for the SMT solver (preprocessing + CDCL + theory)."""

import pytest

from repro.smt import (
    BOOL,
    INT,
    FuncDecl,
    SatResult,
    Solver,
    SolverError,
    add,
    and_,
    array_sort,
    distinct,
    eq,
    false,
    ge,
    gt,
    iff,
    implies,
    int_const,
    is_satisfiable,
    is_valid,
    ite,
    le,
    lt,
    mul,
    not_,
    or_,
    select,
    store,
    sub,
    true,
    var,
)

x = var("x", INT)
y = var("y", INT)
z = var("z", INT)
p = var("p", BOOL)
q = var("q", BOOL)


def check(*formulas):
    solver = Solver()
    solver.add(*formulas)
    return solver.check(), solver


class TestPropositional:
    def test_true_sat(self):
        assert check(true())[0] is SatResult.SAT

    def test_false_unsat(self):
        assert check(false())[0] is SatResult.UNSAT

    def test_contradiction(self):
        assert check(p, not_(p))[0] is SatResult.UNSAT

    def test_model_values(self):
        result, solver = check(p, not_(q))
        assert result is SatResult.SAT
        model = solver.model()
        assert model.eval(p) is True
        assert model.eval(q) is False

    def test_iff_and_implies(self):
        assert check(iff(p, q), p, not_(q))[0] is SatResult.UNSAT
        assert check(implies(p, q), p, not_(q))[0] is SatResult.UNSAT
        assert check(implies(p, q), not_(p), not_(q))[0] is SatResult.SAT

    def test_bool_ite(self):
        assert check(ite(p, q, not_(q)), p, not_(q))[0] is SatResult.UNSAT


class TestArithmetic:
    def test_simple_bounds(self):
        assert check(lt(x, int_const(5)), gt(x, int_const(3)))[0] is SatResult.SAT
        result, solver = check(lt(x, int_const(5)), gt(x, int_const(3)))
        assert solver.model().eval(x) == 4

    def test_integer_gap_unsat(self):
        # 3 < x < 4 has no integer solution.
        assert check(gt(x, int_const(3)), lt(x, int_const(4)))[0] is SatResult.UNSAT

    def test_equation_system(self):
        # x + y = 10, x - y = 4  =>  x = 7, y = 3.
        result, solver = check(
            eq(add(x, y), int_const(10)), eq(sub(x, y), int_const(4))
        )
        assert result is SatResult.SAT
        model = solver.model()
        assert model.eval(x) == 7
        assert model.eval(y) == 3

    def test_infeasible_system(self):
        assert (
            check(eq(add(x, y), int_const(1)), eq(add(x, y), int_const(2)))[0]
            is SatResult.UNSAT
        )

    def test_gcd_trap(self):
        # 3x - 3y = 1 has rational but no integer solutions.
        three_x = mul(int_const(3), x)
        three_y = mul(int_const(3), y)
        assert check(eq(sub(three_x, three_y), int_const(1)))[0] is SatResult.UNSAT

    def test_parity_via_doubling(self):
        # 2x = 7 is unsatisfiable over the integers.
        assert check(eq(mul(int_const(2), x), int_const(7)))[0] is SatResult.UNSAT

    def test_transitivity_chain(self):
        assert (
            check(lt(x, y), lt(y, z), lt(z, x))[0] is SatResult.UNSAT
        )

    def test_disjunction_picks_feasible_branch(self):
        result, solver = check(
            or_(eq(x, int_const(1)), eq(x, int_const(2))), gt(x, int_const(1))
        )
        assert result is SatResult.SAT
        assert solver.model().eval(x) == 2

    def test_int_ite(self):
        # y = ite(p, 1, 2), y = 2  =>  p must be false.
        result, solver = check(eq(y, ite(p, int_const(1), int_const(2))), eq(y, int_const(2)))
        assert result is SatResult.SAT
        assert solver.model().eval(p) is False

    def test_distinct(self):
        assert (
            check(distinct(x, y, z), ge(x, int_const(0)), le(x, int_const(2)),
                  ge(y, int_const(0)), le(y, int_const(2)),
                  ge(z, int_const(0)), le(z, int_const(2)))[0]
            is SatResult.SAT
        )
        assert (
            check(distinct(x, y, z), ge(x, int_const(0)), le(x, int_const(1)),
                  ge(y, int_const(0)), le(y, int_const(1)),
                  ge(z, int_const(0)), le(z, int_const(1)))[0]
            is SatResult.UNSAT
        )


class TestUninterpretedFunctions:
    def test_congruence(self):
        f = FuncDecl("f", (INT,), INT)
        assert (
            check(eq(x, y), not_(eq(f(x), f(y))))[0] is SatResult.UNSAT
        )

    def test_no_spurious_congruence(self):
        f = FuncDecl("f", (INT,), INT)
        assert check(not_(eq(f(x), f(y))))[0] is SatResult.SAT

    def test_functional_consistency_chain(self):
        f = FuncDecl("f", (INT,), INT)
        # x = y, f(x) = 1, f(y) = 2 is inconsistent.
        assert (
            check(eq(x, y), eq(f(x), int_const(1)), eq(f(y), int_const(2)))[0]
            is SatResult.UNSAT
        )

    def test_bool_valued_function(self):
        g = FuncDecl("g", (INT,), BOOL)
        assert check(eq(x, y), g(x), not_(g(y)))[0] is SatResult.UNSAT
        assert check(g(x), not_(g(y)))[0] is SatResult.SAT

    def test_binary_function(self):
        h = FuncDecl("h", (INT, INT), INT)
        assert (
            check(eq(x, y), not_(eq(h(x, z), h(y, z))))[0] is SatResult.UNSAT
        )


class TestArrays:
    mem = var("m", array_sort(INT, INT))

    def test_read_over_write_same_index(self):
        written = store(self.mem, x, int_const(5))
        assert (
            check(not_(eq(select(written, x), int_const(5))))[0] is SatResult.UNSAT
        )

    def test_read_over_write_distinct_indices(self):
        written = store(self.mem, int_const(0), int_const(5))
        # Reading index 1 sees the base memory: satisfiable either way.
        assert check(eq(select(written, int_const(1)), int_const(7)))[0] is SatResult.SAT

    def test_aliasing_forced(self):
        written = store(self.mem, x, int_const(5))
        # If x = y then reading y must give 5.
        assert (
            check(eq(x, y), not_(eq(select(written, y), int_const(5))))[0]
            is SatResult.UNSAT
        )

    def test_base_select_consistency(self):
        assert (
            check(eq(x, y), not_(eq(select(self.mem, x), select(self.mem, y))))[0]
            is SatResult.UNSAT
        )

    def test_two_writes_last_wins(self):
        written = store(store(self.mem, x, int_const(1)), x, int_const(2))
        assert (
            check(not_(eq(select(written, x), int_const(2))))[0] is SatResult.UNSAT
        )


class TestHelpers:
    def test_is_valid_tautology(self):
        assert is_valid(or_(p, not_(p)))

    def test_is_valid_excluded_middle_arithmetic(self):
        g = gt(x, int_const(0))
        assert is_valid(or_(g, not_(g)))

    def test_exhaustive_three_way_split(self):
        # The paper's sign example: x>0, x=0, x<0 covers all integers.
        guards = [gt(x, int_const(0)), eq(x, int_const(0)), lt(x, int_const(0))]
        assert is_valid(or_(*guards))
        # Dropping one case is no longer exhaustive.
        assert not is_valid(or_(guards[0], guards[1]))

    def test_is_satisfiable(self):
        assert is_satisfiable(gt(x, int_const(0)))
        assert not is_satisfiable(and_(gt(x, int_const(0)), lt(x, int_const(0))))

    def test_is_valid_with_assumptions(self):
        assert is_valid(gt(x, int_const(0)), assuming=[gt(x, int_const(5))])


class TestSolverInterface:
    def test_push_pop(self):
        solver = Solver()
        solver.add(gt(x, int_const(0)))
        solver.push()
        solver.add(lt(x, int_const(0)))
        assert solver.check() is SatResult.UNSAT
        solver.pop()
        assert solver.check() is SatResult.SAT

    def test_pop_without_push_raises(self):
        with pytest.raises(SolverError):
            Solver().pop()

    def test_check_with_extra_assumptions(self):
        solver = Solver()
        solver.add(gt(x, int_const(0)))
        assert solver.check(lt(x, int_const(0))) is SatResult.UNSAT
        assert solver.check() is SatResult.SAT

    def test_model_before_check_raises(self):
        with pytest.raises(SolverError):
            Solver().model()

    def test_non_bool_assertion_rejected(self):
        with pytest.raises(Exception):
            Solver().add(x)

    def test_model_evaluates_compound_terms(self):
        result, solver = check(eq(x, int_const(3)), eq(y, int_const(4)))
        model = solver.model()
        assert model.eval(add(x, y)) == 7
        assert model.eval(lt(x, y)) is True
        assert model.eval(eq(x, y)) is False
