"""Tests for the lexer, parser, and pretty-printer round trip."""

import pytest

from repro.lang import parse, pretty
from repro.lang.ast import (
    App,
    Assign,
    BinOp,
    BinOpKind,
    BoolLit,
    Deref,
    Fun,
    If,
    IntLit,
    Let,
    Not,
    Ref,
    Seq,
    StrLit,
    SymBlock,
    TypedBlock,
    UnitLit,
    Var,
    While,
)
from repro.lang.lexer import LexError, tokenize
from repro.lang.parser import ParseError, parse_type
from repro.typecheck.types import BOOL, INT, STR, UNIT, FunType, RefType


class TestLexer:
    def test_block_delimiters(self):
        tokens = [t.kind.value for t in tokenize("{t x t} {s y s}")]
        assert tokens == ["{t", "ident", "t}", "{s", "ident", "s}", "eof"]

    def test_identifier_starting_with_t_not_block(self):
        tokens = tokenize("{two}")
        assert [t.text for t in tokens[:3]] == ["{", "two", "}"]

    def test_nested_comments(self):
        tokens = tokenize("1 (* a (* b *) c *) 2")
        assert [t.text for t in tokens if t.text] == ["1", "2"]

    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            tokenize("(* oops")

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_string_escapes(self):
        (token, _eof) = tokenize(r'"a\nb\"c"')
        assert token.text == 'a\nb"c'

    def test_positions(self):
        tokens = tokenize("x\n  y")
        assert (tokens[0].pos.line, tokens[0].pos.column) == (1, 1)
        assert (tokens[1].pos.line, tokens[1].pos.column) == (2, 3)


class TestParserBasics:
    def test_literals(self):
        assert parse("42") == IntLit(42)
        assert parse("true") == BoolLit(True)
        assert parse('"hi"') == StrLit("hi")
        assert parse("()") == UnitLit()

    def test_negative_literal(self):
        assert parse("-3") == IntLit(-3)

    def test_arith_precedence(self):
        assert parse("1 + 2 * 3") == BinOp(
            BinOpKind.ADD, IntLit(1), BinOp(BinOpKind.MUL, IntLit(2), IntLit(3))
        )

    def test_left_associativity(self):
        assert parse("1 - 2 - 3") == BinOp(
            BinOpKind.SUB, BinOp(BinOpKind.SUB, IntLit(1), IntLit(2)), IntLit(3)
        )

    def test_comparison_below_arithmetic(self):
        expr = parse("x + 1 = 2")
        assert isinstance(expr, BinOp) and expr.op is BinOpKind.EQ

    def test_boolean_precedence(self):
        expr = parse("a && b || c")
        assert isinstance(expr, BinOp) and expr.op is BinOpKind.OR

    def test_let(self):
        expr = parse("let x = 1 in x")
        assert expr == Let("x", IntLit(1), Var("x"))

    def test_let_with_annotation(self):
        expr = parse("let x : int = 1 in x")
        assert expr == Let("x", IntLit(1), Var("x"), INT)

    def test_if(self):
        expr = parse("if true then 1 else 2")
        assert expr == If(BoolLit(True), IntLit(1), IntLit(2))

    def test_references(self):
        assert parse("ref 1") == Ref(IntLit(1))
        assert parse("!x") == Deref(Var("x"))
        assert parse("x := 1") == Assign(Var("x"), IntLit(1))

    def test_assign_binds_value_loosely(self):
        expr = parse("x := 1 + 2")
        assert expr == Assign(Var("x"), BinOp(BinOpKind.ADD, IntLit(1), IntLit(2)))

    def test_seq(self):
        expr = parse("x := 1; !x")
        assert expr == Seq(Assign(Var("x"), IntLit(1)), Deref(Var("x")))

    def test_seq_extends_right_through_let(self):
        expr = parse("f 1; let x = 2 in x")
        assert isinstance(expr, Seq) and isinstance(expr.second, Let)

    def test_while(self):
        expr = parse("while x < 3 do x := !y done")
        assert isinstance(expr, While)

    def test_fun_and_application(self):
        expr = parse("(fun x : int -> x + 1) 2")
        assert isinstance(expr, App) and isinstance(expr.fn, Fun)

    def test_application_left_assoc(self):
        expr = parse("f x y")
        assert expr == App(App(Var("f"), Var("x")), Var("y"))

    def test_not(self):
        assert parse("not true") == Not(BoolLit(True))


class TestBlocks:
    def test_paper_syntax(self):
        assert parse("{t 1 t}") == TypedBlock(IntLit(1))
        assert parse("{s 1 s}") == SymBlock(IntLit(1))

    def test_keyword_syntax(self):
        assert parse("typed { 1 }") == TypedBlock(IntLit(1))
        assert parse("sym { 1 }") == SymBlock(IntLit(1))

    def test_nested_blocks(self):
        expr = parse("{s if true then {t 5 t} else {t 6 t} s}")
        assert isinstance(expr, SymBlock)
        assert isinstance(expr.body, If)
        assert isinstance(expr.body.then, TypedBlock)

    def test_mismatched_block_close(self):
        with pytest.raises(ParseError):
            parse("{t 1 s}")

    def test_paper_intro_example_parses(self):
        source = """
        {s
          let multithreaded = true in
          (if multithreaded then {t 1 t} else {t 0 t});
          {t 2 t}
        s}
        """
        expr = parse(source)
        assert isinstance(expr, SymBlock)


class TestTypes:
    def test_base_types(self):
        assert parse_type("int") == INT
        assert parse_type("bool") == BOOL
        assert parse_type("str") == STR
        assert parse_type("unit") == UNIT

    def test_ref_types(self):
        assert parse_type("int ref") == RefType(INT)
        assert parse_type("int ref ref") == RefType(RefType(INT))

    def test_fun_types_right_assoc(self):
        assert parse_type("int -> int -> bool") == FunType(
            INT, FunType(INT, BOOL)
        )

    def test_parens(self):
        assert parse_type("(int -> int) ref") == RefType(FunType(INT, INT))


class TestErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "let = 1 in x",
            "if x then y",
            "(1",
            "x :=",
            "1 2 +",
            "fun x -> x",  # missing annotation
            "",
        ],
    )
    def test_rejects(self, source):
        with pytest.raises((ParseError, LexError)):
            parse(source)


class TestPrettyRoundTrip:
    @pytest.mark.parametrize(
        "source",
        [
            "1 + 2 * 3",
            "(1 + 2) * 3",
            "let x = ref 0 in x := !x + 1; !x",
            "if a && b then 1 else 0 - 1",
            "{s let x = 1 in {t x + 1 t} s}",
            "fun f : (int -> int) -> f",
            "(fun x : int -> x) 3",
            "while !i < 10 do i := !i + 1 done",
            'let s = "a\\nb" in s',
            "not (x = y)",
            "f (g x) y",
        ],
    )
    def test_parse_pretty_parse(self, source):
        first = parse(source)
        assert parse(pretty(first)) == first
