"""Ablation tests for the MIXY driver's §4.2 machinery: what breaks (and
how) when aliasing restoration or typed-call havoc is disabled."""

import pytest

from repro.mixy import Mixy, MixyConfig


class TestAliasingRestore:
    """§4.2: 'when we transition from a symbolic block to a typed block,
    we add constraints to require that all may-aliased expressions have
    the same type'."""

    # Two pointer params that may alias the same caller object: a NULL
    # discovered through one must taint the other's qualifier.
    PROGRAM = """
    void sysutil_free(void *nonnull p_ptr) MIX(typed);
    void clear_first(int **pa, int **pb) MIX(symbolic) {
      *pa = NULL;
    }
    int main(void) {
      int *x = (int *) malloc(sizeof(int));
      clear_first(&x, &x);
      sysutil_free(x);
      return 0;
    }
    """

    def test_restore_on_taints_alias(self):
        mixy = Mixy(self.PROGRAM, MixyConfig(restore_aliasing=True))
        warnings = mixy.run()
        assert any("sysutil_free" in str(w) for w in warnings)

    def test_ablation_changes_connectivity(self):
        """Without restoration the unification edges are absent (the
        deep-unify at the call site may still find the flow — the
        ablation is about the §4.2 edges specifically)."""
        on = Mixy(self.PROGRAM, MixyConfig(restore_aliasing=True))
        on.run()
        off = Mixy(self.PROGRAM, MixyConfig(restore_aliasing=False))
        off.run()
        assert on.qual.graph.num_edges > off.qual.graph.num_edges


class TestTypedCallHavoc:
    """SETypBlock havocs memory a typed callee may reach; disabling it
    approximates the paper's effect-based refinement."""

    # The typed callee writes NULL through its pointer argument; with
    # havoc the executor forgets the cell (fresh symbol: could be null,
    # could be anything); without havoc it would wrongly keep the old
    # non-null value.
    PROGRAM = """
    void sysutil_free(void *nonnull p_ptr) MIX(typed);
    void typed_clear(int **pp) MIX(typed) {
      *pp = NULL;
    }
    void worker(int *q) MIX(symbolic) {
      int *local = q;
      typed_clear(&local);
      if (local != NULL) {
        sysutil_free(local);
      }
    }
    int main(void) {
      worker((int *) malloc(sizeof(int)));
      return 0;
    }
    """

    def test_havoc_on_is_conservative(self):
        mixy = Mixy(self.PROGRAM, MixyConfig(havoc_on_typed_call=True))
        warnings = mixy.run()
        # The guard protects the free on every path the executor retains.
        assert not any("NULL dereference" in str(w) for w in warnings)

    def test_havoc_off_keeps_stale_value(self):
        """The ablation is *unsound* here: the callee's write is missed,
        so the executor believes local is still the old non-null malloc
        result — the analysis stays quiet for the wrong reason.  This
        test documents the behavior difference."""
        on = Mixy(self.PROGRAM, MixyConfig(havoc_on_typed_call=True))
        on.run()
        off = Mixy(self.PROGRAM, MixyConfig(havoc_on_typed_call=False))
        off.run()
        # With havoc, the executor re-reads an unknown; without, a
        # constant: observable through solver traffic.
        assert on.executor.stats["solver_calls"] >= off.executor.stats["solver_calls"]


class TestStrictDerefMode:
    PROGRAM = """
    int readit(int *p) MIX(symbolic) {
      if (p != NULL) { return *p; }
      return 0;
    }
    int main(void) {
      int *x = NULL;
      int y = *x;
      return readit(x) + y;
    }
    """

    def test_default_mode_silent_on_unannotated_deref(self):
        from repro.mixy.qual import QualConfig

        mixy = Mixy(self.PROGRAM, MixyConfig())
        warnings = mixy.run()
        assert not any("dereference" in str(w) for w in warnings)

    def test_strict_mode_flags_typed_deref(self):
        from repro.mixy.qual import QualConfig

        config = MixyConfig(qual=QualConfig(deref_requires_nonnull=True))
        mixy = Mixy(self.PROGRAM, config)
        warnings = mixy.run()
        assert any("dereference" in str(w) for w in warnings)

    def test_strict_mode_spares_guarded_symbolic_deref(self):
        """The symbolic block's guarded deref stays clean even in strict
        mode — path sensitivity where it matters."""
        from repro.mixy.qual import QualConfig

        config = MixyConfig(qual=QualConfig(deref_requires_nonnull=True))
        mixy = Mixy(self.PROGRAM, config)
        warnings = mixy.run()
        assert not any("readit" in str(w) and "NULL deref" in str(w) for w in warnings)


class TestTypedBlockCaching:
    """§4.3 'Caching Typed Blocks': the calling context is the translated
    types of the arguments; compatible contexts skip re-translation."""

    PROGRAM = """
    void log_it(int *p) MIX(typed);
    void worker(int *a, int *b) MIX(symbolic) {
      log_it(a);
      log_it(b);
      log_it(a);
    }
    int main(void) {
      worker((int *) malloc(sizeof(int)), (int *) malloc(sizeof(int)));
      return 0;
    }
    """

    def test_repeated_compatible_typed_calls_hit_cache(self):
        from repro.mixy import Mixy, MixyConfig

        mixy = Mixy(self.PROGRAM, MixyConfig(enable_cache=True))
        mixy.run()
        assert mixy.stats["typed_calls"] >= 3
        assert mixy.stats["cache_hits"] >= 1

    def test_cache_off_never_hits(self):
        from repro.mixy import Mixy, MixyConfig

        mixy = Mixy(self.PROGRAM, MixyConfig(enable_cache=False))
        mixy.run()
        assert mixy.stats["cache_hits"] == 0

    def test_verdicts_identical_either_way(self):
        from repro.mixy import Mixy, MixyConfig

        on = [str(w) for w in Mixy(self.PROGRAM, MixyConfig(enable_cache=True)).run()]
        off = [str(w) for w in Mixy(self.PROGRAM, MixyConfig(enable_cache=False)).run()]
        assert on == off
