"""The ``repro serve`` daemon: protocol, determinism, durability.

The contract under test (see ``repro.serve``): ``result`` — exit
status plus diagnostic lines — is bitwise-identical between a cold
request, a warm request, a request after a daemon restart, and a fresh
one-shot CLI run.  The warm cache only ever changes ``served`` (the
timing/counters side channel).  End-to-end tests run the real daemon
as a subprocess over TCP (loopback, port 0) so they exercise the same
path as the CI smoke job, including ``kill -9`` durability.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import threading

import pytest

import repro
from repro.mixy.corpus import CASES
from repro.mixy.corpus_vsftpd import parallel_vsftpd
from repro.serve import ReproDaemon, analyze_source, request

#: Fast corpus (qualifier inference only — no symbolic blocks).
SOURCE = CASES["case1"].source(False)
#: Corpus whose symbolic blocks are mostly pure, i.e. memoizable —
#: what the warm-hit assertions need.
STAIRCASE = parallel_vsftpd(depth=1)
SRC_DIR = str(pathlib.Path(repro.__file__).resolve().parents[1])


# ---------------------------------------------------------------------------
# analyze_source: the deterministic result contract, in process
# ---------------------------------------------------------------------------


class TestAnalyzeSource:
    def test_mixy_result_shape(self):
        result = analyze_source("mixy", SOURCE, {})
        assert result["exit"] == 1
        assert result["lines"][-1].endswith("warning(s)")
        assert any("sysutil_free" in line for line in result["lines"])

    def test_mixy_is_deterministic_across_runs(self):
        first = analyze_source("mixy", SOURCE, {})
        second = analyze_source("mixy", SOURCE, {})
        assert first == second

    def test_mixy_parse_error_is_exit_2(self):
        result = analyze_source("mixy", "int main( {", {})
        assert result["exit"] == 2
        assert result["lines"][0].startswith("error:")

    def test_mix_accept_and_reject(self):
        assert analyze_source("mix", "{s 1 + 1 s}", {}) == {
            "exit": 0,
            "lines": ["accepted: int"],
        }
        rejected = analyze_source("mix", "{s 1 + true s}", {})
        assert rejected["exit"] == 1

    def test_mix_env_and_parse_errors_are_exit_2(self):
        assert analyze_source("mix", "x", {"env": "x-int"})["exit"] == 2
        assert analyze_source("mix", "let let", {})["exit"] == 2

    def test_unknown_lang_raises(self):
        with pytest.raises(ValueError, match="unknown lang"):
            analyze_source("cobol", "", {})

    def test_budgeted_request_builds_a_budget(self):
        # A generous deadline changes nothing about the result...
        result = analyze_source("mixy", SOURCE, {"deadline": 3600.0})
        assert result == analyze_source("mixy", SOURCE, {})


# ---------------------------------------------------------------------------
# Request handling without sockets
# ---------------------------------------------------------------------------


def _line_daemon() -> ReproDaemon:
    return ReproDaemon(socket_path="unused.sock", store_dir=None)


class TestHandleLine:
    def test_ping(self):
        response = _line_daemon().handle_line('{"cmd": "ping"}')
        assert response["ok"] and response["pong"]

    def test_bad_json_is_an_error_response(self):
        response = _line_daemon().handle_line("{nope")
        assert response["ok"] is False and "bad request" in response["error"]

    def test_non_object_request_is_an_error_response(self):
        response = _line_daemon().handle_line("[1, 2]")
        assert response["ok"] is False

    def test_unknown_cmd(self):
        response = _line_daemon().handle_line('{"cmd": "frobnicate"}')
        assert response["ok"] is False and "unknown cmd" in response["error"]

    def test_analyze_needs_a_source(self):
        response = _line_daemon().handle_line('{"cmd": "analyze"}')
        assert response["ok"] is False and "source" in response["error"]

    def test_analyzer_failures_do_not_kill_the_daemon(self):
        daemon = _line_daemon()
        bad = daemon.handle_line(
            '{"cmd": "analyze", "lang": "cobol", "source": ""}'
        )
        assert bad["ok"] is False and "unknown lang" in bad["error"]
        # The daemon still serves the next request.
        assert daemon.handle_line('{"cmd": "ping"}')["ok"]

    def test_shutdown_stops_the_loop(self):
        daemon = _line_daemon()
        assert daemon.handle_line('{"cmd": "shutdown"}')["bye"]
        assert daemon._stop

    def test_stats_reports_counters(self):
        daemon = _line_daemon()
        daemon.handle_line('{"cmd": "ping"}')
        response = daemon.handle_line('{"cmd": "stats"}')
        assert response["stats"]["requests_served"] == 2
        assert "queries" in response["stats"]["solver"]


# ---------------------------------------------------------------------------
# End to end: the real daemon over TCP
# ---------------------------------------------------------------------------


def _subprocess_env():
    """Environment for daemon / baseline subprocesses.  The hash seed is
    pinned because qualifier-id *rendering* in warning texts depends on
    it (pre-existing, analyzer-wide); cross-process bitwise identity is
    defined modulo an equal seed — forked parallel workers inherit
    theirs, and the CI smoke job pins it the same way."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = "0"
    return env


def _start_daemon(tmp_path, *extra, store="store"):
    """Launch ``repro serve`` on a loopback port; returns (proc, addr)."""
    argv = [
        sys.executable, "-m", "repro.cli", "serve",
        "--listen", "127.0.0.1:0", "--store", str(tmp_path / store), *extra,
    ]
    env = _subprocess_env()
    proc = subprocess.Popen(
        argv, cwd=tmp_path, env=env, text=True,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )
    announce = proc.stdout.readline()
    assert "listening on tcp:" in announce, announce
    return proc, announce.rsplit(" ", 1)[-1].strip()


def _finish(proc) -> str:
    """Collect the daemon's stderr after it exited (or kill it)."""
    try:
        _, err = proc.communicate(timeout=20)
    except subprocess.TimeoutExpired:
        proc.kill()
        _, err = proc.communicate()
        raise AssertionError(f"daemon did not exit; stderr: {err}")
    return err


def _analyze_request(address, source=SOURCE, **options):
    return request(
        address,
        {"cmd": "analyze", "lang": "mixy", "source": source,
         "options": options},
        timeout=300.0,
    )


def _fresh_cli_result(tmp_path, source=SOURCE):
    """The deterministic result a fresh one-shot ``repro mixy --jobs 1``
    process produces — the identity baseline the daemon must match.
    (An in-process run is NOT a valid baseline here: earlier tests in
    this pytest process leave warmed global caches that shift qualifier
    ids, exactly the state leak the daemon's per-request reset guards
    against.)"""
    path = tmp_path / "baseline.c"
    path.write_text(source)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "mixy", str(path), "--jobs", "1"],
        capture_output=True, text=True, env=_subprocess_env(),
        cwd=tmp_path, timeout=300,
    )
    # Drop the one-shot perf summary (timing, block/solver counts); the
    # daemon result carries the deterministic `N warning(s)` count only.
    warnings = proc.stdout.splitlines()[:-1]
    return {
        "exit": proc.returncode,
        "lines": warnings + [f"{len(warnings)} warning(s)"],
    }


class TestDaemonEndToEnd:
    def test_cold_warm_identity_and_memo_hits(self, tmp_path):
        proc, address = _start_daemon(tmp_path, "--max-requests", "3")
        cold = _analyze_request(address, source=STAIRCASE)
        warm = _analyze_request(address, source=STAIRCASE)
        stats = request(address, {"cmd": "stats"})
        _finish(proc)
        assert cold["ok"] and warm["ok"]
        # The deterministic payload is identical; only `served` differs.
        assert cold["result"] == warm["result"]
        assert cold["result"] == _fresh_cli_result(tmp_path, STAIRCASE)
        assert warm["served"]["store"].get("mixy_hits", 0) > 0
        assert stats["stats"]["store"]["mixy_records"] > 0

    def test_restart_starts_warm_from_the_persisted_store(self, tmp_path):
        proc, address = _start_daemon(tmp_path, "--max-requests", "1")
        cold = _analyze_request(address, source=STAIRCASE)
        _finish(proc)
        proc, address = _start_daemon(tmp_path, "--max-requests", "1")
        warm = _analyze_request(address, source=STAIRCASE)
        err = _finish(proc)
        assert warm["result"] == cold["result"]
        assert warm["served"]["store"].get("mixy_hits", 0) > 0
        assert "warmed" in err  # solver cache loaded at startup

    def test_concurrent_clients_serialize_deterministically(self, tmp_path):
        proc, address = _start_daemon(tmp_path, "--max-requests", "4")
        responses = [None] * 4

        def client(i):
            responses[i] = _analyze_request(address)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        _finish(proc)
        assert all(r is not None and r["ok"] for r in responses)
        results = {json.dumps(r["result"], sort_keys=True) for r in responses}
        assert len(results) == 1  # every client saw the same analysis

    def test_kill9_then_restart_serves_cold_but_correct(self, tmp_path):
        proc, address = _start_daemon(tmp_path)
        expected = _analyze_request(address)["result"]
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=20)
        proc.stdout.close()
        proc.stderr.close()
        # Whatever the store directory now holds (complete files or a
        # pre-crash subset — atomic_write forbids torn files), a new
        # daemon must come up and answer identically.
        proc, address = _start_daemon(tmp_path, "--max-requests", "1")
        after = _analyze_request(address)
        _finish(proc)
        assert after["ok"] and after["result"] == expected

    def test_corrupt_store_degrades_to_cold_service(self, tmp_path):
        store_dir = tmp_path / "store"
        store_dir.mkdir()
        (store_dir / "meta.json").write_text(
            json.dumps({"schema": "repro-store", "version": 1})
        )
        (store_dir / "solver-cache.pkl").write_bytes(b"garbage")
        (store_dir / "blocks.pkl").write_bytes(b"\x80")
        proc, address = _start_daemon(tmp_path, "--max-requests", "1")
        response = _analyze_request(address)
        err = _finish(proc)
        assert "note:" in err and "corrupt" in err
        assert response["result"] == _fresh_cli_result(tmp_path)

    def test_ping_shutdown_cycle(self, tmp_path):
        proc, address = _start_daemon(tmp_path, "--no-store")
        assert request(address, {"cmd": "ping"})["pong"]
        assert request(address, {"cmd": "shutdown"})["bye"]
        _finish(proc)
