"""The ``repro serve`` daemon: protocol, determinism, durability.

The contract under test (see ``repro.serve``): ``result`` — exit
status plus diagnostic lines — is bitwise-identical between a cold
request, a warm request, a request after a daemon restart, and a fresh
one-shot CLI run.  The warm cache only ever changes ``served`` (the
timing/counters side channel).  End-to-end tests run the real daemon
as a subprocess over TCP (loopback, port 0) so they exercise the same
path as the CI smoke job, including ``kill -9`` durability.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import threading

import pytest

import repro
from repro.mixy.corpus import CASES
from repro.mixy.corpus_vsftpd import parallel_vsftpd
from repro.serve import (
    ClientError,
    ReproDaemon,
    TERMINAL_STATUSES,
    analyze_source,
    bench,
    request,
    request_with_retry,
)

#: Fast corpus (qualifier inference only — no symbolic blocks).
SOURCE = CASES["case1"].source(False)
#: Corpus whose symbolic blocks are mostly pure, i.e. memoizable —
#: what the warm-hit assertions need.
STAIRCASE = parallel_vsftpd(depth=1)
SRC_DIR = str(pathlib.Path(repro.__file__).resolve().parents[1])


# ---------------------------------------------------------------------------
# analyze_source: the deterministic result contract, in process
# ---------------------------------------------------------------------------


class TestAnalyzeSource:
    def test_mixy_result_shape(self):
        result = analyze_source("mixy", SOURCE, {})
        assert result["exit"] == 1
        assert result["lines"][-1].endswith("warning(s)")
        assert any("sysutil_free" in line for line in result["lines"])

    def test_mixy_is_deterministic_across_runs(self):
        first = analyze_source("mixy", SOURCE, {})
        second = analyze_source("mixy", SOURCE, {})
        assert first == second

    def test_mixy_parse_error_is_exit_2(self):
        result = analyze_source("mixy", "int main( {", {})
        assert result["exit"] == 2
        assert result["lines"][0].startswith("error:")

    def test_mix_accept_and_reject(self):
        assert analyze_source("mix", "{s 1 + 1 s}", {}) == {
            "exit": 0,
            "lines": ["accepted: int"],
        }
        rejected = analyze_source("mix", "{s 1 + true s}", {})
        assert rejected["exit"] == 1

    def test_mix_env_and_parse_errors_are_exit_2(self):
        assert analyze_source("mix", "x", {"env": "x-int"})["exit"] == 2
        assert analyze_source("mix", "let let", {})["exit"] == 2

    def test_unknown_lang_raises(self):
        with pytest.raises(ValueError, match="unknown lang"):
            analyze_source("cobol", "", {})

    def test_budgeted_request_builds_a_budget(self):
        # A generous deadline changes nothing about the result...
        result = analyze_source("mixy", SOURCE, {"deadline": 3600.0})
        assert result == analyze_source("mixy", SOURCE, {})


# ---------------------------------------------------------------------------
# Request handling without sockets
# ---------------------------------------------------------------------------


def _line_daemon() -> ReproDaemon:
    return ReproDaemon(socket_path="unused.sock", store_dir=None)


class TestHandleLine:
    def test_ping(self):
        response = _line_daemon().handle_line('{"cmd": "ping"}')
        assert response["ok"] and response["pong"]

    def test_bad_json_is_an_error_response(self):
        response = _line_daemon().handle_line("{nope")
        assert response["ok"] is False and "bad request" in response["error"]

    def test_non_object_request_is_an_error_response(self):
        response = _line_daemon().handle_line("[1, 2]")
        assert response["ok"] is False

    def test_unknown_cmd(self):
        response = _line_daemon().handle_line('{"cmd": "frobnicate"}')
        assert response["ok"] is False and "unknown cmd" in response["error"]

    def test_analyze_needs_a_source(self):
        response = _line_daemon().handle_line('{"cmd": "analyze"}')
        assert response["ok"] is False and "source" in response["error"]

    def test_analyzer_failures_do_not_kill_the_daemon(self):
        daemon = _line_daemon()
        bad = daemon.handle_line(
            '{"cmd": "analyze", "lang": "cobol", "source": ""}'
        )
        assert bad["ok"] is False and "unknown lang" in bad["error"]
        # The daemon still serves the next request.
        assert daemon.handle_line('{"cmd": "ping"}')["ok"]

    def test_shutdown_stops_the_loop(self):
        daemon = _line_daemon()
        assert daemon.handle_line('{"cmd": "shutdown"}')["bye"]
        assert daemon._stop

    def test_stats_reports_counters(self):
        daemon = _line_daemon()
        daemon.handle_line('{"cmd": "ping"}')
        response = daemon.handle_line('{"cmd": "stats"}')
        assert response["stats"]["requests_served"] == 2
        assert "queries" in response["stats"]["solver"]


# ---------------------------------------------------------------------------
# End to end: the real daemon over TCP
# ---------------------------------------------------------------------------


def _subprocess_env():
    """Environment for daemon / baseline subprocesses.  No hash-seed
    pinning: qualifier-id rendering is seed-independent (per-analyzer
    ordinals), so cross-process bitwise identity holds under any
    PYTHONHASHSEED."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _start_daemon(tmp_path, *extra, store="store"):
    """Launch ``repro serve`` on a loopback port; returns (proc, addr)."""
    argv = [
        sys.executable, "-m", "repro.cli", "serve",
        "--listen", "127.0.0.1:0", "--store", str(tmp_path / store), *extra,
    ]
    env = _subprocess_env()
    proc = subprocess.Popen(
        argv, cwd=tmp_path, env=env, text=True,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )
    announce = proc.stdout.readline()
    assert "listening on tcp:" in announce, announce
    return proc, announce.rsplit(" ", 1)[-1].strip()


def _finish(proc) -> str:
    """Collect the daemon's stderr after it exited (or kill it)."""
    try:
        _, err = proc.communicate(timeout=20)
    except subprocess.TimeoutExpired:
        proc.kill()
        _, err = proc.communicate()
        raise AssertionError(f"daemon did not exit; stderr: {err}")
    return err


def _analyze_request(address, source=SOURCE, **options):
    return request(
        address,
        {"cmd": "analyze", "lang": "mixy", "source": source,
         "options": options},
        timeout=300.0,
    )


def _fresh_cli_result(tmp_path, source=SOURCE):
    """The deterministic result a fresh one-shot ``repro mixy --jobs 1``
    process produces — the identity baseline the daemon must match.
    (An in-process run is NOT a valid baseline here: earlier tests in
    this pytest process leave warmed global caches that shift qualifier
    ids, exactly the state leak the daemon's per-request reset guards
    against.)"""
    path = tmp_path / "baseline.c"
    path.write_text(source)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "mixy", str(path), "--jobs", "1"],
        capture_output=True, text=True, env=_subprocess_env(),
        cwd=tmp_path, timeout=300,
    )
    # Drop the one-shot perf summary (timing, block/solver counts); the
    # daemon result carries the deterministic `N warning(s)` count only.
    warnings = proc.stdout.splitlines()[:-1]
    return {
        "exit": proc.returncode,
        "lines": warnings + [f"{len(warnings)} warning(s)"],
    }


class TestDaemonEndToEnd:
    def test_cold_warm_identity_and_memo_hits(self, tmp_path):
        proc, address = _start_daemon(tmp_path, "--max-requests", "3")
        cold = _analyze_request(address, source=STAIRCASE)
        warm = _analyze_request(address, source=STAIRCASE)
        stats = request(address, {"cmd": "stats"})
        _finish(proc)
        assert cold["ok"] and warm["ok"]
        # The deterministic payload is identical; only `served` differs.
        assert cold["result"] == warm["result"]
        assert cold["result"] == _fresh_cli_result(tmp_path, STAIRCASE)
        assert warm["served"]["store"].get("mixy_hits", 0) > 0
        assert stats["stats"]["store"]["mixy_records"] > 0

    def test_restart_starts_warm_from_the_persisted_store(self, tmp_path):
        proc, address = _start_daemon(tmp_path, "--max-requests", "1")
        cold = _analyze_request(address, source=STAIRCASE)
        _finish(proc)
        proc, address = _start_daemon(tmp_path, "--max-requests", "1")
        warm = _analyze_request(address, source=STAIRCASE)
        err = _finish(proc)
        assert warm["result"] == cold["result"]
        assert warm["served"]["store"].get("mixy_hits", 0) > 0
        assert "warmed" in err  # solver cache loaded at startup

    def test_concurrent_clients_serialize_deterministically(self, tmp_path):
        proc, address = _start_daemon(tmp_path, "--max-requests", "4")
        responses = [None] * 4

        def client(i):
            responses[i] = _analyze_request(address)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        _finish(proc)
        assert all(r is not None and r["ok"] for r in responses)
        results = {json.dumps(r["result"], sort_keys=True) for r in responses}
        assert len(results) == 1  # every client saw the same analysis

    def test_kill9_then_restart_serves_cold_but_correct(self, tmp_path):
        proc, address = _start_daemon(tmp_path)
        expected = _analyze_request(address)["result"]
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=20)
        proc.stdout.close()
        proc.stderr.close()
        # Whatever the store directory now holds (complete files or a
        # pre-crash subset — atomic_write forbids torn files), a new
        # daemon must come up and answer identically.
        proc, address = _start_daemon(tmp_path, "--max-requests", "1")
        after = _analyze_request(address)
        _finish(proc)
        assert after["ok"] and after["result"] == expected

    def test_corrupt_store_degrades_to_cold_service(self, tmp_path):
        # A v2 store whose only recorded generation fails its checksum in
        # every section: the daemon must note the corruption, start cold,
        # and still answer identically to a fresh one-shot run.
        store_dir = tmp_path / "store"
        store_dir.mkdir()
        (store_dir / "solver-cache.1.pkl").write_bytes(b"garbage")
        (store_dir / "blocks.1.pkl").write_bytes(b"\x80")
        (store_dir / "meta.json").write_text(json.dumps({
            "schema": "repro-store", "version": 2, "generation": 1,
            "sections": {
                "solver-cache": {
                    "file": "solver-cache.1.pkl", "crc32": 1, "size": 7,
                },
                "blocks": {"file": "blocks.1.pkl", "crc32": 1, "size": 1},
            },
            "previous": None,
        }))
        proc, address = _start_daemon(tmp_path, "--max-requests", "1")
        response = _analyze_request(address)
        err = _finish(proc)
        assert "note:" in err and "corrupt" in err
        assert response["result"] == _fresh_cli_result(tmp_path)

    def test_corrupt_current_generation_rolls_back_to_previous(self, tmp_path):
        # Two daemon lives build two store generations; flipping bytes in
        # the newest generation's sections must roll the next life back to
        # the previous generation — warm, not cold.
        proc, address = _start_daemon(tmp_path, "--max-requests", "1")
        expected = _analyze_request(address, source=STAIRCASE)["result"]
        _finish(proc)
        proc, address = _start_daemon(tmp_path, "--max-requests", "1")
        _analyze_request(address, source=STAIRCASE)
        _finish(proc)
        store_dir = tmp_path / "store"
        meta = json.loads((store_dir / "meta.json").read_text())
        assert meta["generation"] >= 2 and meta["previous"] is not None
        for record in meta["sections"].values():
            path = store_dir / record["file"]
            blob = bytearray(path.read_bytes())
            blob[len(blob) // 2] ^= 0xFF
            path.write_bytes(bytes(blob))
        proc, address = _start_daemon(tmp_path, "--max-requests", "1")
        response = _analyze_request(address, source=STAIRCASE)
        err = _finish(proc)
        assert "rolled back to last-known-good generation" in err
        assert response["result"] == expected
        assert response["served"]["store"].get("mixy_hits", 0) > 0

    def test_ping_shutdown_cycle(self, tmp_path):
        proc, address = _start_daemon(tmp_path, "--no-store")
        assert request(address, {"cmd": "ping"})["pong"]
        assert request(address, {"cmd": "shutdown"})["bye"]
        _finish(proc)


# ---------------------------------------------------------------------------
# Worker isolation: request crashes never take the daemon down
# ---------------------------------------------------------------------------


@pytest.mark.skipif(not hasattr(os, "fork"), reason="needs fork isolation")
class TestWorkerIsolation:
    def test_worker_sigkill_degrades_and_daemon_survives(self, tmp_path):
        proc, address = _start_daemon(tmp_path)
        killed = _analyze_request(
            address, source=STAIRCASE, inject_fault=["1:die"]
        )
        after = _analyze_request(address, source=STAIRCASE)
        stats = request(address, {"cmd": "stats"})
        request(address, {"cmd": "shutdown"})
        _finish(proc)
        assert killed["ok"] is False
        assert killed["status"] == "degraded"
        assert "SIGKILL" in killed["error"]
        # The dead worker left a content-addressed crash repro behind.
        repro_path = killed.get("crash_repro")
        assert repro_path and (tmp_path / repro_path).exists()
        assert stats["stats"]["worker_crashes"] == 1
        # The crashed request merged nothing; the survivor answers clean.
        assert after["ok"]
        assert after["result"] == _fresh_cli_result(tmp_path, STAIRCASE)

    def test_worker_exception_is_a_structured_error(self, monkeypatch):
        # An exception the analysis layers do NOT absorb (i.e. a real bug
        # in the analyzer) comes back as a structured error reply — the
        # monkeypatched raise is inherited by the forked worker.
        import repro.serve as serve_mod

        def boom(*args, **kwargs):
            raise RuntimeError("analyzer bug")

        monkeypatch.setattr(serve_mod, "analyze_source", boom)
        daemon = ReproDaemon(socket_path="unused.sock", store_dir=None)
        assert daemon._isolate
        response = daemon.handle_line(json.dumps(
            {"cmd": "analyze", "lang": "mix", "source": "{s 1 s}"}
        ))
        assert response["ok"] is False and response["status"] == "error"
        assert "RuntimeError: analyzer bug" in response["error"]
        assert daemon.handle_line('{"cmd": "ping"}')["ok"]

    def test_faulted_request_never_poisons_the_warm_cache(self, tmp_path):
        # A request with an injected solver fault — whether it degrades
        # soundly in the worker or kills it — must merge nothing back, so
        # later requests still match the fresh one-shot baseline.
        proc, address = _start_daemon(tmp_path)
        faulted = _analyze_request(
            address, source=STAIRCASE, inject_fault=["1:crash", "3:timeout"]
        )
        after = _analyze_request(address, source=STAIRCASE)
        request(address, {"cmd": "shutdown"})
        _finish(proc)
        assert faulted["status"] in TERMINAL_STATUSES
        assert after["ok"]
        assert after["result"] == _fresh_cli_result(tmp_path, STAIRCASE)
        # The faulted request contributed no warm hits to the follow-up.
        assert after["served"]["store"].get("mixy_hits", 0) == 0


# ---------------------------------------------------------------------------
# Overload: bounded queue, shedding, retry_after_ms
# ---------------------------------------------------------------------------


class TestOverload:
    def test_full_queue_sheds_with_busy_and_retry_hint(self):
        daemon = ReproDaemon(
            socket_path="unused.sock", store_dir=None, queue_depth=1,
            isolate=False,
        )
        # Occupy the only slot by hand; the next analyze must be shed.
        assert daemon._slots.acquire(blocking=False)
        response = daemon.handle_line(json.dumps(
            {"cmd": "analyze", "lang": "mix", "source": "{s 1 s}"}
        ))
        assert response["ok"] is False
        assert response["status"] == "busy"
        assert response["retry_after_ms"] >= 50
        stats = daemon.handle_line('{"cmd": "stats"}')["stats"]
        assert stats["shed"] == 1
        # Release the slot and the same request goes through.
        daemon._slots.release()
        assert daemon.handle_line(json.dumps(
            {"cmd": "analyze", "lang": "mix", "source": "{s 1 s}"}
        ))["ok"]


# ---------------------------------------------------------------------------
# Protocol hardening: fuzz the wire with garbage
# ---------------------------------------------------------------------------


class TestProtocolFuzz:
    GARBAGE = [
        b"{nope\n",
        b"[1, 2, 3]\n",
        b'"just a string"\n',
        b"42\n",
        b"null\n",
        b"\x00\xff\xfe\x80 binary trash\n",
        b'{"cmd": "no-such-cmd"}\n',
        b'{"cmd": 42}\n',
        b'{"cmd": "analyze"}\n',
        b'{"cmd": "analyze", "lang": "mixy", "source": 13}\n',
        b'{"cmd": "analyze", "lang": "mixy", "source": "x", "options": [1]}\n',
        b'{"cmd": "analyze", "lang": "fortran", "source": "x"}\n',
        b'{"cmd": "analyze", "lang": "mixy", "source": "x", '
        b'"options": {"inject_fault": ["bogus"]}}\n',
        b"}}{{\n",
        b"\n",
    ]

    def test_unit_every_garbage_line_gets_a_terminal_reply(self):
        daemon = _line_daemon()
        for line in self.GARBAGE:
            if line == b"\n":
                continue
            response = daemon.handle_line(
                line.decode("utf-8", errors="replace").rstrip("\n")
            )
            assert response["status"] in TERMINAL_STATUSES, line
            assert response["status"] != "ok", line
        assert daemon.handle_line('{"cmd": "ping"}')["ok"]

    def test_e2e_garbage_stream_then_oversized_line(self, tmp_path):
        import socket as socket_mod

        proc, address = _start_daemon(
            tmp_path, "--no-store", "--max-request-bytes", "4096",
        )
        host, _, port = address[len("tcp:"):].rpartition(":")
        with socket_mod.create_connection((host, int(port)), timeout=30) as sock:
            reader = sock.makefile("rb")
            sent = 0
            for line in self.GARBAGE:
                if line == b"\n":
                    continue  # blank lines are skipped, not answered
                sock.sendall(line)
                sent += 1
                reply = json.loads(reader.readline())
                assert reply["status"] in TERMINAL_STATUSES, line
            # An oversized line is dropped with a protocol_error and the
            # connection keeps working afterwards.
            sock.sendall(b'{"pad": "' + b"x" * 8192 + b'"}\n')
            reply = json.loads(reader.readline())
            assert reply["status"] == "protocol_error"
            assert "exceeds" in reply["error"]
            sock.sendall(b'{"cmd": "ping"}\n')
            assert json.loads(reader.readline())["pong"]
        assert request(address, {"cmd": "ping"})["pong"]
        request(address, {"cmd": "shutdown"})
        _finish(proc)


# ---------------------------------------------------------------------------
# Client failure modes and retry
# ---------------------------------------------------------------------------


class TestClientFailureModes:
    def test_no_such_socket_is_a_retryable_client_error(self, tmp_path):
        with pytest.raises(ClientError, match="no such socket") as info:
            request(f"unix:{tmp_path}/never-bound.sock", {"cmd": "ping"})
        assert info.value.retryable

    def test_connection_refused_is_a_retryable_client_error(self):
        import socket as socket_mod

        probe = socket_mod.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nobody listens here any more
        with pytest.raises(ClientError) as info:
            request(f"tcp:127.0.0.1:{port}", {"cmd": "ping"}, timeout=5)
        assert info.value.retryable

    @staticmethod
    def _one_shot_server(behavior):
        """A fake daemon that serves exactly one connection per accept."""
        import socket as socket_mod

        server = socket_mod.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(4)
        port = server.getsockname()[1]

        def serve():
            while True:
                try:
                    conn, _ = server.accept()
                except OSError:
                    return
                with conn:
                    if not behavior(conn):
                        server.close()
                        return

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        return f"tcp:127.0.0.1:{port}", server

    def test_closed_without_reply_is_diagnosed(self):
        address, server = self._one_shot_server(lambda conn: False)
        try:
            # Depending on who loses the race with close(), the client sees
            # either a clean empty read or a reset; both must be diagnosed
            # as the daemon going away, retryably.
            with pytest.raises(
                ClientError, match="without replying|connection lost"
            ) as info:
                request(address, {"cmd": "ping"}, timeout=5)
            assert info.value.retryable
        finally:
            server.close()

    def test_truncated_reply_is_diagnosed(self):
        def behavior(conn):
            conn.recv(65536)
            conn.sendall(b'{"ok": true')  # no newline: died mid-reply
            return False

        address, server = self._one_shot_server(behavior)
        try:
            with pytest.raises(ClientError, match="truncated") as info:
                request(address, {"cmd": "ping"}, timeout=5)
            assert info.value.retryable
        finally:
            server.close()

    def test_retry_honors_busy_and_succeeds(self):
        import random

        hits = []

        def behavior(conn):
            conn.recv(65536)
            if not hits:
                conn.sendall(
                    b'{"ok": false, "status": "busy", "retry_after_ms": 10}\n'
                )
                hits.append("busy")
                return True
            conn.sendall(b'{"ok": true, "status": "ok", "pong": true}\n')
            hits.append("ok")
            return False

        address, server = self._one_shot_server(behavior)
        try:
            response = request_with_retry(
                address, {"cmd": "ping"}, timeout=5, retries=3,
                rng=random.Random(0),
            )
            assert response["pong"] and hits == ["busy", "ok"]
        finally:
            server.close()

    def test_retry_zero_surfaces_the_failure(self, tmp_path):
        with pytest.raises(ClientError):
            request_with_retry(
                f"unix:{tmp_path}/never-bound.sock", {"cmd": "ping"},
                retries=0,
            )


# ---------------------------------------------------------------------------
# The prefork pool: concurrent dispatch, epochs, recycling
# ---------------------------------------------------------------------------


def _concurrent_requests(address, sources):
    """One analyze per source, all in flight at once; replies returned
    in source order."""
    replies = [None] * len(sources)

    def client(i):
        replies[i] = _analyze_request(address, source=sources[i])

    threads = [
        threading.Thread(target=client, args=(i,))
        for i in range(len(sources))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)
    assert all(r is not None for r in replies)
    return replies


class TestPoolConcurrency:
    def test_concurrent_distinct_corpora_match_their_one_shots(self, tmp_path):
        """Three clients with structurally different programs, dispatched
        concurrently over a two-worker pool: each reply is bitwise
        identical to that program's own fresh one-shot run — concurrency
        never lets one request's analysis bleed into another's."""
        sources = [SOURCE, STAIRCASE, parallel_vsftpd(depth=2)]
        baselines = [_fresh_cli_result(tmp_path, s) for s in sources]
        proc, address = _start_daemon(
            tmp_path, "--pool", "2", "--max-requests", "3"
        )
        replies = _concurrent_requests(address, sources)
        _finish(proc)
        for reply, baseline in zip(replies, baselines):
            assert reply["status"] == "ok"
            assert reply["result"] == baseline

    def test_racy_burst_merges_deterministically_and_warms(self, tmp_path):
        """A concurrent burst of identical memoizable requests: every
        reply matches the one-shot baseline regardless of merge race
        outcomes, the first merge bumps the epoch, and a follow-up
        request is served warm from the merged store."""
        baseline = _fresh_cli_result(tmp_path, STAIRCASE)
        proc, address = _start_daemon(
            tmp_path, "--pool", "2", "--max-requests", "6"
        )
        replies = _concurrent_requests(address, [STAIRCASE] * 4)
        warm = _analyze_request(address, source=STAIRCASE)
        stats = request(address, {"cmd": "stats"})["stats"]
        _finish(proc)
        for reply in replies + [warm]:
            assert reply["status"] == "ok"
            assert reply["result"] == baseline
        assert warm["served"]["store"].get("mixy_hits", 0) > 0
        assert stats["epoch"] >= 1
        assert stats["pool"]["forks"] >= 1

    def test_recycle_mid_burst_drops_and_duplicates_nothing(self, tmp_path):
        """With ``--worker-requests 1`` every worker is recycled after a
        single request — mid-burst, the pool must replace workers without
        dropping or double-serving any request."""
        baseline = _fresh_cli_result(tmp_path)
        proc, address = _start_daemon(
            tmp_path, "--pool", "2", "--worker-requests", "1",
            "--max-requests", "7",
        )
        replies = _concurrent_requests(address, [SOURCE] * 6)
        stats = request(address, {"cmd": "stats"})["stats"]
        _finish(proc)
        assert [r["status"] for r in replies] == ["ok"] * 6
        for reply in replies:
            assert reply["result"] == baseline
        assert stats["requests_served"] == 7  # six analyses + stats
        assert stats["pool"]["recycles"] >= 6
        assert stats["pool"]["forks"] > 2  # replacements beyond the first pair

    def test_bench_reports_complete_identical_replies(self, tmp_path):
        """The load generator behind ``repro client --bench``: all
        requests complete, every reply is the same analysis, and the
        latency percentiles are ordered."""
        proc, address = _start_daemon(
            tmp_path, "--pool", "2", "--max-requests", "6"
        )
        report = bench(
            address,
            {"cmd": "analyze", "lang": "mixy", "source": SOURCE,
             "options": {}},
            requests=6, concurrency=3, timeout=300.0,
        )
        _finish(proc)
        assert report["completed"] == 6 and report["ok"] == 6
        assert report["statuses"] == {"ok": 6}
        distinct = {json.dumps(r, sort_keys=True) for r in report["results"]}
        assert len(distinct) == 1
        assert report["p50_ms"] <= report["p95_ms"] <= report["p99_ms"]
        assert report["throughput_rps"] > 0

    def test_retry_hint_accounts_for_pool_width(self):
        """The shed-client backoff hint divides the in-flight queue over
        the pool's parallel width instead of assuming serial turns."""
        pooled = ReproDaemon(
            socket_path="unused.sock", store_dir=None, pool_size=4
        )
        pooled._avg_secs = 1.0
        pooled._inflight = 8
        assert pooled._retry_after_ms() == 2000  # two dispatch waves

        serial = ReproDaemon(
            socket_path="unused.sock", store_dir=None, pool_size=0
        )
        serial._avg_secs = 1.0
        serial._inflight = 8
        assert serial._retry_after_ms() == 8000  # eight serialized turns
