"""Tests for the mini-C frontend (lexer, parser, typeinfo)."""

import pytest

from repro.mixy.c import parse_program
from repro.mixy.c.ast import (
    Assign,
    Binary,
    Block,
    Call,
    Cast,
    Deref,
    ExprStmt,
    Field,
    FunType,
    Global,
    If,
    IntLit,
    Malloc,
    NullLit,
    PtrType,
    Return,
    Scalar,
    StructType,
    VarDecl,
    VarRef,
    While,
    INT_T,
    VOID_T,
    CHAR_T,
    pointer_depth,
)
from repro.mixy.c.parser import CParseError
from repro.mixy.c.typeinfo import CTypeError, TypeInfo


class TestParserDeclarations:
    def test_struct(self):
        p = parse_program("struct foo { int a; char *b; struct foo *next; };")
        s = p.structs["foo"]
        assert s.field_type("a") == INT_T
        assert s.field_type("b") == PtrType(CHAR_T)
        assert s.field_type("next") == PtrType(StructType("foo"))
        assert s.field_index("b") == 1

    def test_global_with_init(self):
        p = parse_program("int *g = NULL;")
        g = p.globals["g"]
        assert g.typ == PtrType(INT_T) and isinstance(g.init, NullLit)

    def test_function_pointer_global(self):
        p = parse_program("void (*handler)(int);")
        g = p.globals["handler"]
        assert g.typ == PtrType(FunType((INT_T,), VOID_T))

    def test_function_definition(self):
        p = parse_program("int add(int a, int b) { return a + b; }")
        f = p.functions["add"]
        assert f.ret == INT_T and len(f.params) == 2 and f.body is not None

    def test_extern_declaration(self):
        p = parse_program("void exit_model(int code);")
        assert p.functions["exit_model"].body is None

    def test_definition_supersedes_extern(self):
        p = parse_program("void f(void); void f(void) { return; }")
        assert p.functions["f"].body is not None

    def test_mix_annotations(self):
        p = parse_program(
            "void f(void) MIX(typed); void g(void) MIX(symbolic) { return; }"
        )
        assert p.functions["f"].mix == "typed"
        assert p.functions["g"].mix == "symbolic"

    def test_nonnull_param(self):
        p = parse_program("void free_it(void *nonnull p) MIX(typed);")
        assert p.functions["free_it"].params[0].nonnull

    def test_nonnull_return(self):
        p = parse_program('char *nonnull get_name(void) { return "x"; }')
        assert p.functions["get_name"].nonnull_return

    def test_double_pointer_param(self):
        p = parse_program("void clear(struct sockaddr **pp) { *pp = NULL; }")
        assert pointer_depth(p.functions["clear"].params[0].typ) == 2

    def test_void_param_list(self):
        p = parse_program("int f(void) { return 0; }")
        assert p.functions["f"].params == ()

    def test_bad_mix_annotation_rejected(self):
        with pytest.raises(CParseError):
            parse_program("void f(void) MIX(banana);")

    def test_comments(self):
        p = parse_program("/* block */ int g; // line\nint h;")
        assert set(p.globals) == {"g", "h"}


class TestParserStatements:
    def parse_body(self, body):
        p = parse_program(f"void f(int x, int *p) {{ {body} }}")
        return p.functions["f"].body.stmts

    def test_if_else(self):
        (stmt,) = self.parse_body("if (x) { x = 1; } else { x = 2; }")
        assert isinstance(stmt, If) and stmt.els is not None

    def test_if_without_braces(self):
        (stmt,) = self.parse_body("if (x) x = 1;")
        assert isinstance(stmt, If) and isinstance(stmt.then, Block)

    def test_while(self):
        (stmt,) = self.parse_body("while (x < 10) { x = x + 1; }")
        assert isinstance(stmt, While)

    def test_local_declaration(self):
        (stmt,) = self.parse_body("struct foo *q = NULL;")
        assert isinstance(stmt, VarDecl) and stmt.typ == PtrType(StructType("foo"))

    def test_return_void(self):
        (stmt,) = self.parse_body("return;")
        assert isinstance(stmt, Return) and stmt.value is None


class TestParserExpressions:
    def parse_expr(self, text):
        p = parse_program(f"void f(int x, int *p, struct s *o) {{ {text}; }}")
        stmt = p.functions["f"].body.stmts[0]
        assert isinstance(stmt, ExprStmt)
        return stmt.expr

    def test_precedence(self):
        e = self.parse_expr("x == 1 + 2 * 3")
        assert isinstance(e, Binary) and e.op == "=="

    def test_assignment_expression(self):
        e = self.parse_expr("x = x + 1")
        assert isinstance(e, Assign)

    def test_deref_assign(self):
        e = self.parse_expr("*p = 0")
        assert isinstance(e, Assign) and isinstance(e.lhs, Deref)

    def test_arrow_field(self):
        e = self.parse_expr("o->data = NULL")
        assert isinstance(e.lhs, Field) and e.lhs.arrow

    def test_call_through_deref(self):
        e = self.parse_expr("(*p)()")
        assert isinstance(e, Call) and isinstance(e.fn, Deref)

    def test_malloc_cast(self):
        e = self.parse_expr("p = (int *) malloc(sizeof(int))")
        assert isinstance(e.rhs, Cast) and isinstance(e.rhs.operand, Malloc)

    def test_logical_operators(self):
        e = self.parse_expr("x && x || x")
        assert isinstance(e, Binary) and e.op == "||"

    def test_not(self):
        e = self.parse_expr("!x")
        assert e.op == "!"


class TestTypeInfo:
    PROGRAM = """
    struct node { int value; struct node *next; };
    struct node *head;
    int length(struct node *n) { return 0; }
    """

    def make(self, locals_=None):
        return TypeInfo(parse_program(self.PROGRAM), locals_ or {})

    def test_global(self):
        ti = self.make()
        assert ti.type_of(VarRef("head")) == PtrType(StructType("node"))

    def test_deref(self):
        ti = self.make()
        assert ti.type_of(Deref(VarRef("head"))) == StructType("node")

    def test_field_arrow(self):
        ti = self.make()
        expr = Field(VarRef("head"), "next", arrow=True)
        assert ti.type_of(expr) == PtrType(StructType("node"))

    def test_function_type(self):
        ti = self.make()
        assert isinstance(ti.var_type("length"), FunType)

    def test_call_result(self):
        ti = self.make()
        call = Call(VarRef("length"), (VarRef("head"),))
        assert ti.type_of(call) == INT_T

    def test_unknown_identifier(self):
        with pytest.raises(CTypeError):
            self.make().type_of(VarRef("nope"))

    def test_deref_non_pointer(self):
        with pytest.raises(CTypeError):
            self.make({"x": INT_T}).type_of(Deref(VarRef("x")))
