"""Edge cases and failure modes of the SMT stack."""

import pytest

from repro import smt
from repro.smt import (
    BOOL,
    INT,
    FuncDecl,
    SatResult,
    Solver,
    SolverError,
    array_sort,
    eq,
    int_const,
    mul,
    not_,
    select,
    store,
    var,
)
from repro.smt.preprocess import Preprocessor, UnsupportedTermError
from repro.smt.terms import Sort, SortError

x = var("x", INT)
y = var("y", INT)


class TestUnknownResults:
    def test_tiny_budget_returns_unknown(self):
        solver = Solver(int_budget=0)
        solver.add(smt.gt(x, int_const(0)))
        assert solver.check() is SatResult.UNKNOWN

    def test_helpers_raise_on_unknown(self):
        with pytest.raises(SolverError):
            smt.is_satisfiable(smt.gt(x, int_const(0)), int_budget=0)
        with pytest.raises(SolverError):
            smt.is_valid(smt.gt(x, int_const(0)), int_budget=0)


class TestFragmentLimits:
    def test_nonlinear_rejected(self):
        solver = Solver()
        solver.add(eq(mul(x, y), int_const(6)))
        with pytest.raises(SortError):
            solver.check()

    def test_array_equality_rejected(self):
        sort = array_sort(INT, INT)
        a, b = var("a", sort), var("b", sort)
        solver = Solver()
        solver.add(eq(a, b))
        with pytest.raises(UnsupportedTermError):
            solver.check()

    def test_free_sorts_rejected(self):
        weird = var("w", Sort("Widget"))
        solver = Solver()
        solver.add(eq(weird, weird))
        # eq(w, w) simplifies to true; force a real occurrence:
        solver2 = Solver()
        solver2.add(eq(weird, var("w2", Sort("Widget"))))
        with pytest.raises(UnsupportedTermError):
            solver2.check()

    def test_dollar_namespace_is_reserved_but_not_enforced_for_reads(self):
        # Preprocessing introduces $-variables; user terms should avoid
        # them, but nothing crashes if they appear.
        dollar = var("$mine", INT)
        assert smt.is_satisfiable(eq(dollar, int_const(1)))


class TestPreprocessor:
    def test_side_conditions_share_across_assertions(self):
        """Ackermann congruence must relate applications from different
        assertions of the same check()."""
        f = FuncDecl("f", (INT,), INT)
        solver = Solver()
        solver.add(eq(f(x), int_const(1)))
        solver.add(eq(f(y), int_const(2)))
        solver.add(eq(x, y))
        assert solver.check() is SatResult.UNSAT

    def test_repeated_identical_application_shares_variable(self):
        f = FuncDecl("f", (INT,), INT)
        pre = Preprocessor()
        processed = pre.process(eq(f(x), f(x)))
        # f(x) = f(x) must collapse to true-like (same ack var both sides).
        solver = Solver()
        solver.add(not_(processed.goal))
        assert solver.check() is SatResult.UNSAT

    def test_select_from_distinct_arrays_independent(self):
        sort = array_sort(INT, INT)
        a, b = var("a", sort), var("b", sort)
        formula = smt.and_(
            eq(select(a, x), int_const(1)), eq(select(b, x), int_const(2))
        )
        assert smt.is_satisfiable(formula)

    def test_nested_stores_with_symbolic_indices(self):
        sort = array_sort(INT, INT)
        a = var("a", sort)
        m = store(store(a, x, int_const(1)), y, int_const(2))
        # Reading x gives 1 unless y aliases x.
        claim = smt.implies(
            not_(eq(x, y)), eq(select(m, x), int_const(1))
        )
        assert smt.is_valid(claim)


class TestModelDetails:
    def test_model_as_dict(self):
        solver = Solver()
        solver.add(eq(x, int_const(3)))
        p = var("p", BOOL)
        solver.add(p)
        assert solver.check() is SatResult.SAT
        snapshot = solver.model().as_dict()
        assert snapshot["x"] == 3 and snapshot["p"] is True

    def test_model_select_evaluation(self):
        sort = array_sort(INT, INT)
        a = var("a", sort)
        solver = Solver()
        solver.add(eq(select(a, int_const(0)), int_const(9)))
        assert solver.check() is SatResult.SAT
        model = solver.model()
        assert model.eval(select(a, int_const(0))) == 9

    def test_model_function_evaluation(self):
        f = FuncDecl("f", (INT,), INT)
        solver = Solver()
        solver.add(eq(f(int_const(1)), int_const(10)))
        assert solver.check() is SatResult.SAT
        assert solver.model().eval(f(int_const(1))) == 10

    def test_unconstrained_defaults(self):
        solver = Solver()
        solver.add(smt.true())
        assert solver.check() is SatResult.SAT
        model = solver.model()
        assert model.eval(var("never_seen", INT)) == 0
        assert model.eval(var("never_seen_b", BOOL)) is False


class TestSolverStress:
    def test_many_theory_rounds_converge(self):
        """A formula whose boolean abstraction has many spurious models."""
        solver = Solver()
        atoms = []
        for i in range(6):
            vi = var(f"s{i}", INT)
            atoms.append(smt.or_(eq(vi, int_const(0)), eq(vi, int_const(1))))
        total = smt.add(*[var(f"s{i}", INT) for i in range(6)])
        solver.add(*atoms)
        solver.add(eq(total, int_const(3)))
        assert solver.check() is SatResult.SAT
        model = solver.model()
        assert sum(model.eval(var(f"s{i}", INT)) for i in range(6)) == 3

    def test_unsat_with_many_rounds(self):
        solver = Solver()
        for i in range(5):
            vi = var(f"t{i}", INT)
            solver.add(smt.or_(eq(vi, int_const(0)), eq(vi, int_const(1))))
        total = smt.add(*[var(f"t{i}", INT) for i in range(5)])
        solver.add(smt.gt(total, int_const(5)))
        assert solver.check() is SatResult.UNSAT

    def test_stats_populated(self):
        solver = Solver()
        solver.add(smt.or_(eq(x, int_const(1)), eq(x, int_const(2))))
        solver.add(smt.gt(x, int_const(1)))
        solver.check()
        assert solver.stats["checks"] == 1
