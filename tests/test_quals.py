"""Tests for the sign-qualifier system (paper §2, "Local Refinements of
Data") and its mixing with symbolic execution."""

import pytest

from repro.core import MixConfig
from repro.lang import parse
from repro.quals import (
    QualTypeError,
    Sign,
    SignChecker,
    SignEnv,
    analyze_signs,
)
from repro.quals import signs
from repro.quals.checker import QType, int_q
from repro.typecheck.types import BOOL, INT


def check(source, env=None, **kwargs):
    return SignChecker(**kwargs).check(parse(source), env)


class TestLattice:
    def test_join(self):
        assert signs.join(Sign.POS, Sign.POS) is Sign.POS
        assert signs.join(Sign.POS, Sign.NEG) is Sign.UNKNOWN
        assert signs.join(Sign.ZERO, Sign.UNKNOWN) is Sign.UNKNOWN

    def test_add(self):
        assert signs.add(Sign.POS, Sign.POS) is Sign.POS
        assert signs.add(Sign.POS, Sign.ZERO) is Sign.POS
        assert signs.add(Sign.POS, Sign.NEG) is Sign.UNKNOWN
        assert signs.add(Sign.ZERO, Sign.ZERO) is Sign.ZERO

    def test_mul(self):
        assert signs.mul(Sign.NEG, Sign.NEG) is Sign.POS
        assert signs.mul(Sign.NEG, Sign.POS) is Sign.NEG
        assert signs.mul(Sign.ZERO, Sign.UNKNOWN) is Sign.ZERO

    def test_negate(self):
        assert signs.negate(Sign.POS) is Sign.NEG
        assert signs.negate(Sign.ZERO) is Sign.ZERO

    @pytest.mark.parametrize(
        "a,b", [(3, 5), (-3, 5), (0, 7), (-2, -2), (6, 0), (0, 0)]
    )
    def test_transfer_functions_sound(self, a, b):
        """Abstract ops over-approximate the concrete ones."""
        from repro.quals.signs import sign_of_int

        for op, abstract in (
            (lambda x, y: x + y, signs.add),
            (lambda x, y: x - y, signs.sub),
            (lambda x, y: x * y, signs.mul),
        ):
            result = abstract(sign_of_int(a), sign_of_int(b))
            concrete = sign_of_int(op(a, b))
            assert result is Sign.UNKNOWN or result is concrete


class TestChecker:
    def test_literal_signs(self):
        assert check("5").sign is Sign.POS
        assert check("0").sign is Sign.ZERO
        assert check("-3").sign is Sign.NEG

    def test_arithmetic_signs(self):
        assert check("2 + 3").sign is Sign.POS
        assert check("2 * -3").sign is Sign.NEG
        assert check("let x = 2 in x + x").sign is Sign.POS

    def test_if_joins(self):
        assert check("if true then 1 else 2").sign is Sign.POS
        assert check("if true then 1 else -2").sign is Sign.UNKNOWN

    def test_division_by_sign_safe_divisor(self):
        assert check("10 / 2").sign is Sign.UNKNOWN  # truncation widens
        assert check("0 / 2").sign is Sign.ZERO

    def test_division_by_possible_zero_rejected(self):
        with pytest.raises(QualTypeError, match="may be zero"):
            check("10 / 0")
        env = SignEnv({"x": int_q(Sign.UNKNOWN)})
        with pytest.raises(QualTypeError, match="may be zero"):
            check("10 / x", env)

    def test_division_guard_is_invisible_to_pure_checker(self):
        """Path-insensitivity: the guard does not refine x's sign."""
        env = SignEnv({"x": int_q(Sign.UNKNOWN)})
        with pytest.raises(QualTypeError):
            check("if x = 0 then 1 else 10 / x", env)

    def test_strict_division_off(self):
        env = SignEnv({"x": int_q(Sign.UNKNOWN)})
        qt = check("10 / x", env, strict_division=False)
        assert qt.typ == INT

    def test_env_signs_respected(self):
        env = SignEnv({"p": int_q(Sign.POS), "n": int_q(Sign.NEG)})
        assert check("p * n", env).sign is Sign.NEG
        assert check("10 / p", env).typ == INT

    def test_refs_erase_signs(self):
        assert check("!(ref 5)").sign is Sign.UNKNOWN

    def test_symbolic_block_requires_hook(self):
        with pytest.raises(QualTypeError, match="SignMix"):
            check("{s 1 s}")


class TestMixedSignAnalysis:
    def test_paper_sign_refinement_example(self):
        """The §2 example verbatim: after each test, the typed block sees
        the refined sign."""
        source = """
        {s
          if 0 < x then {t 10 / x t}
          else if x = 0 then {t 0 t}
          else {t 10 / x t}
        s}
        """
        env = SignEnv({"x": int_q(Sign.UNKNOWN)})
        report = analyze_signs(source, env)
        assert report.ok, report

    def test_unguarded_division_still_rejected(self):
        report = analyze_signs(
            "{s {t 10 / x t} s}", SignEnv({"x": int_q(Sign.UNKNOWN)})
        )
        assert not report.ok

    def test_sign_enters_symbolic_block(self):
        """typed -> symbolic: a pos int variable is constrained α > 0, so
        the zero branch is infeasible."""
        source = "{s if x = 0 then 1 / 0 else 1 s}"
        report = analyze_signs(source, SignEnv({"x": int_q(Sign.POS)}))
        assert report.ok

    def test_sign_leaves_symbolic_block(self):
        """symbolic -> typed: the block's result sign is computed from
        the path conditions and survives the boundary."""
        source = "{s if 0 < x then x else 1 s}"
        report = analyze_signs(source, SignEnv({"x": int_q(Sign.UNKNOWN)}))
        assert report.ok
        assert report.qtype.sign is Sign.POS

    def test_block_sign_usable_by_outer_checker(self):
        """A symbolic block whose value is provably positive can be used
        as a divisor by the enclosing typed code."""
        source = "let d = {s if 0 < x then x else 1 s} in 100 / d"
        report = analyze_signs(source, SignEnv({"x": int_q(Sign.UNKNOWN)}))
        assert report.ok

    def test_nested_alternation(self):
        source = "{s if 0 < x then {t {s x + 1 s} t} else {t 1 t} s}"
        report = analyze_signs(source, SignEnv({"x": int_q(Sign.UNKNOWN)}))
        assert report.ok
        assert report.qtype.sign is Sign.POS

    def test_symbolic_entry(self):
        report = analyze_signs(
            "if 0 < x then x else 0 - x",
            SignEnv({"x": int_q(Sign.UNKNOWN)}),
            entry="symbolic",
        )
        assert report.ok
        # |x| is non-negative but not strictly positive: paths join to
        # unknown in the flat lattice (pos join zero-or-pos).
        assert report.qtype.typ == INT

    def test_feasible_division_error_reported(self):
        report = analyze_signs(
            "{s if x = 0 then {t 10 / x t} else 1 s}",
            SignEnv({"x": int_q(Sign.UNKNOWN)}),
        )
        assert not report.ok
        assert "zero" in report.diagnostics[0]
