"""Trust ring 3: per-block crash containment and the repro shrinker.

An unexpected exception inside a typed/symbolic block's analysis — a
bug of ours, or an injected solver crash — must degrade that one block
(exactly like a budget breach), bump ``blocks_contained``, and leave a
minimized repro in the crash directory.  It must never take down the
whole analysis or the CLI.
"""

import json
import os

import pytest

from repro import smt
from repro.core import MixConfig, analyze_source
from repro.core.mix import Mix
from repro.crash import record_crash
from repro.lang.ast import BinOp, BoolLit, IntLit, Var
from repro.lang.parser import parse_type
from repro.mixy import Mixy, MixyConfig
from repro.mixy.symexec import CErrKind, CSymExecutor
from repro.shrink import ProbeBudget, node_count, shrink_c_program, shrink_expr
from repro.smt.service import FaultInjector, InjectedCrash, SolverService
from repro.typecheck.types import TypeEnv


@pytest.fixture(autouse=True)
def fresh_service():
    saved = smt.get_service()
    smt.set_service(SolverService())
    yield
    smt.set_service(saved)


class TestMixContainment:
    SOURCE = "let x = 5 in {s if x < 3 then 1 else 2 s} + 1"

    def _crash_explore(self, monkeypatch):
        def boom(self, *args, **kwargs):
            raise ZeroDivisionError("synthetic analysis crash")

        monkeypatch.setattr(Mix, "_explore", boom)

    def test_crash_degrades_to_type_checker(self, monkeypatch, tmp_path):
        self._crash_explore(monkeypatch)
        report = analyze_source(
            self.SOURCE, config=MixConfig(crash_dir=str(tmp_path))
        )
        # The block degraded to the type checker, which accepts it.
        assert report.ok
        assert any("crashed" in w for w in report.warnings)
        assert smt.get_service().stats.blocks_contained == 1

    def test_crash_report_written_and_shrunk(self, monkeypatch, tmp_path):
        self._crash_explore(monkeypatch)
        analyze_source(self.SOURCE, config=MixConfig(crash_dir=str(tmp_path)))
        (name,) = os.listdir(tmp_path)
        report = json.loads((tmp_path / name).read_text())
        assert report["exception_type"] == "ZeroDivisionError"
        assert report["phase"] == "mix:symbolic-block"
        assert report["source"]
        # The probe re-crashes on any symbolic block, so the shrunk
        # repro is no larger than the original block body.
        assert len(report["shrunk_source"]) <= len(report["source"])

    def test_containment_can_be_disabled(self, monkeypatch, tmp_path):
        self._crash_explore(monkeypatch)
        with pytest.raises(ZeroDivisionError):
            analyze_source(
                self.SOURCE,
                config=MixConfig(
                    crash_dir=str(tmp_path), contain_crashes=False
                ),
            )

    def test_analysis_findings_are_not_contained(self, tmp_path):
        # A genuine rejection must surface as a diagnostic, not a crash.
        report = analyze_source(
            "{s 1 + true s}", config=MixConfig(crash_dir=str(tmp_path))
        )
        assert not report.ok
        assert smt.get_service().stats.blocks_contained == 0
        assert not os.listdir(tmp_path)


class TestMixyContainment:
    SOURCE = """
    int *gp;
    void bad(int *p) MIX(symbolic) { *p = 1; }
    void main() { bad(gp); }
    """

    def _crash_resolver(self, monkeypatch):
        def boom(self, *args, **kwargs):
            raise ZeroDivisionError("synthetic analysis crash")

        monkeypatch.setattr(CSymExecutor, "_resolve_pointer", boom)

    def test_crash_degrades_to_qualifier_inference(self, monkeypatch, tmp_path):
        self._crash_resolver(monkeypatch)
        mixy = Mixy(self.SOURCE, MixyConfig(crash_dir=str(tmp_path)))
        warnings = mixy.run()
        assert any(w.kind is CErrKind.CRASH for w in mixy.executor.warnings)
        assert smt.get_service().stats.blocks_contained >= 1
        assert os.listdir(tmp_path)
        # The run terminated with an answer despite the crash.
        assert isinstance(warnings, list)

    def test_crash_report_content(self, monkeypatch, tmp_path):
        self._crash_resolver(monkeypatch)
        Mixy(self.SOURCE, MixyConfig(crash_dir=str(tmp_path))).run()
        (name,) = os.listdir(tmp_path)
        report = json.loads((tmp_path / name).read_text())
        assert report["exception_type"] == "ZeroDivisionError"
        assert report["phase"].startswith("mixy:symbolic-block:")
        assert "MIX(symbolic)" in report["source"]

    def test_injected_crash_fault_contained(self, tmp_path):
        service = SolverService()
        service.fault_injector = FaultInjector(faults={1: FaultInjector.CRASH})
        smt.set_service(service)
        source = """
        void ok(int *p) MIX(symbolic) { if (p != NULL) { *p = 1; } }
        void main() { ok(NULL); }
        """
        mixy = Mixy(source, MixyConfig(crash_dir=str(tmp_path)))
        mixy.run()
        assert service.stats.blocks_contained >= 1
        (name,) = os.listdir(tmp_path)
        report = json.loads((tmp_path / name).read_text())
        assert report["exception_type"] == "InjectedCrash"
        assert report["fault_injection"] is not None

    def test_containment_can_be_disabled(self, monkeypatch, tmp_path):
        self._crash_resolver(monkeypatch)
        with pytest.raises(ZeroDivisionError):
            Mixy(
                self.SOURCE,
                MixyConfig(crash_dir=str(tmp_path), contain_crashes=False),
            ).run()


class TestCli:
    GUARDED = """
    void ok(int *p) MIX(symbolic) { if (p != NULL) { *p = 1; } }
    void main() { ok(NULL); }
    """

    def test_injected_crash_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        source = tmp_path / "guarded.c"
        source.write_text(self.GUARDED)
        crash_dir = tmp_path / "crashes"
        code = main(
            [
                "mixy",
                str(source),
                "--inject-fault",
                "1:crash",
                "--crash-dir",
                str(crash_dir),
            ]
        )
        assert code == 0
        assert os.listdir(crash_dir)
        out = capsys.readouterr().out
        assert "crash contained" in out

    def test_clean_run_unaffected(self, tmp_path):
        from repro.cli import main

        source = tmp_path / "guarded.c"
        source.write_text(self.GUARDED)
        assert main(["mixy", str(source)]) == 0

    def test_bad_inject_fault_spec_is_usage_error(self, tmp_path):
        from repro.cli import main

        source = tmp_path / "guarded.c"
        source.write_text(self.GUARDED)
        assert main(["mixy", str(source), "--inject-fault", "nope"]) == 2


class TestShrinker:
    def test_shrinks_to_the_crashing_node(self):
        # Crash requires the variable "bomb" somewhere in the tree.
        expr = BinOp("+", BinOp("*", Var("bomb"), IntLit(2)), IntLit(3))

        def crashes(candidate):
            return "bomb" in repr(candidate)

        shrunk = shrink_expr(expr, crashes)
        assert shrunk == Var("bomb")

    def test_unreproducible_crash_keeps_original(self):
        expr = BinOp("+", IntLit(1), IntLit(2))
        assert shrink_expr(expr, lambda _c: False) == expr

    def test_probe_exceptions_do_not_escape(self):
        expr = BinOp("+", Var("bomb"), IntLit(1))
        calls = {"n": 0}

        def crashes(candidate):
            calls["n"] += 1
            if calls["n"] > 1:
                raise RuntimeError("probe blew up")
            return True

        shrunk = shrink_expr(expr, crashes)  # must not raise
        assert node_count(shrunk) <= node_count(expr)

    def test_probe_budget_caps_probes(self):
        budget = ProbeBudget(max_probes=3, max_seconds=60.0)
        assert [budget.take() for _ in range(5)] == [
            True,
            True,
            True,
            False,
            False,
        ]

    def test_c_program_shrinks_to_crashing_function(self):
        from repro.mixy.c.parser import parse_program

        program = parse_program(
            """
            int *gp;
            void helper(int x) { }
            void bad(int *p) MIX(symbolic) { *p = 1; if (p) { *p = 2; } }
            void main() { helper(1); bad(gp); }
            """
        )

        def crashes(candidate):
            bad = candidate.functions.get("bad")
            return bad is not None and bad.body is not None and bad.body.stmts

        shrunk = shrink_c_program(program, crashes)
        assert "bad" in shrunk.functions
        # The irrelevant declarations and statements were stripped.
        assert "helper" not in shrunk.functions
        assert len(shrunk.functions["bad"].body.stmts) == 1


class TestRecordCrash:
    def test_content_addressed(self, tmp_path):
        error = ValueError("boom")
        p1 = record_crash(error, "phase", "src", "src", str(tmp_path))
        p2 = record_crash(error, "phase", "src", "src", str(tmp_path))
        assert p1 == p2
        assert len(os.listdir(tmp_path)) == 1

    def test_different_sources_get_different_files(self, tmp_path):
        error = ValueError("boom")
        p1 = record_crash(error, "phase", "src-a", "src-a", str(tmp_path))
        p2 = record_crash(error, "phase", "src-b", "src-b", str(tmp_path))
        assert p1 != p2

    def test_unwritable_directory_swallowed(self, tmp_path):
        target = tmp_path / "blocked"
        target.write_text("a file, not a directory")
        path = record_crash(ValueError("x"), "phase", "s", "s", str(target))
        assert path is None
