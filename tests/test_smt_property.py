"""Property-based differential testing of the SMT solver.

Random small formulas over a few integer and boolean variables are decided
two ways: by the solver and by brute-force enumeration of variables over a
small domain.  Because a formula may be satisfiable only outside the
enumerated domain, the oracle direction is asymmetric:

- oracle SAT   =>  solver must say SAT (and its model must evaluate true);
- solver UNSAT =>  oracle must not have found a model.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import (
    BOOL,
    INT,
    SatResult,
    Solver,
    add,
    and_,
    eq,
    int_const,
    le,
    lt,
    mul,
    neg,
    not_,
    or_,
    sub,
    var,
)

INT_VARS = [var(name, INT) for name in ("i", "j", "k")]
BOOL_VARS = [var(name, BOOL) for name in ("a", "b")]
DOMAIN = range(-3, 4)


def int_terms(depth: int):
    leaves = st.one_of(
        st.sampled_from(INT_VARS),
        st.integers(min_value=-4, max_value=4).map(int_const),
    )
    if depth == 0:
        return leaves
    sub_terms = int_terms(depth - 1)
    return st.one_of(
        leaves,
        st.tuples(sub_terms, sub_terms).map(lambda t: add(*t)),
        st.tuples(sub_terms, sub_terms).map(lambda t: sub(*t)),
        sub_terms.map(neg),
        st.tuples(st.integers(-3, 3), sub_terms).map(
            lambda t: mul(int_const(t[0]), t[1])
        ),
    )


def bool_terms(depth: int):
    atoms = st.one_of(
        st.sampled_from(BOOL_VARS),
        st.tuples(int_terms(1), int_terms(1)).map(lambda t: le(*t)),
        st.tuples(int_terms(1), int_terms(1)).map(lambda t: lt(*t)),
        st.tuples(int_terms(1), int_terms(1)).map(lambda t: eq(*t)),
    )
    if depth == 0:
        return atoms
    sub_terms = bool_terms(depth - 1)
    return st.one_of(
        atoms,
        sub_terms.map(not_),
        st.tuples(sub_terms, sub_terms).map(lambda t: and_(*t)),
        st.tuples(sub_terms, sub_terms).map(lambda t: or_(*t)),
    )


def brute_force_sat(formula) -> bool:
    from repro.smt.terms import Kind

    def eval_term(term, env):
        kind = term.kind
        if kind in (Kind.CONST_BOOL, Kind.CONST_INT):
            return term.payload
        if kind is Kind.VAR:
            return env[term]
        if kind is Kind.NOT:
            return not eval_term(term.args[0], env)
        if kind is Kind.AND:
            return all(eval_term(a, env) for a in term.args)
        if kind is Kind.OR:
            return any(eval_term(a, env) for a in term.args)
        if kind is Kind.EQ:
            return eval_term(term.args[0], env) == eval_term(term.args[1], env)
        if kind is Kind.LE:
            return eval_term(term.args[0], env) <= eval_term(term.args[1], env)
        if kind is Kind.LT:
            return eval_term(term.args[0], env) < eval_term(term.args[1], env)
        if kind is Kind.ADD:
            return sum(eval_term(a, env) for a in term.args)
        if kind is Kind.MUL:
            return eval_term(term.args[0], env) * eval_term(term.args[1], env)
        if kind is Kind.NEG:
            return -eval_term(term.args[0], env)
        raise AssertionError(f"unexpected kind {kind}")

    for ints in itertools.product(DOMAIN, repeat=len(INT_VARS)):
        for bools in itertools.product([False, True], repeat=len(BOOL_VARS)):
            env = dict(zip(INT_VARS, ints)) | dict(zip(BOOL_VARS, bools))
            if eval_term(formula, env):
                return True
    return False


@settings(max_examples=120, deadline=None)
@given(bool_terms(2))
def test_solver_agrees_with_bounded_brute_force(formula):
    solver = Solver()
    solver.add(formula)
    verdict = solver.check()
    oracle = brute_force_sat(formula)
    if oracle:
        assert verdict is SatResult.SAT
    if verdict is SatResult.UNSAT:
        assert not oracle


@settings(max_examples=80, deadline=None)
@given(bool_terms(2))
def test_models_evaluate_to_true(formula):
    solver = Solver()
    solver.add(formula)
    if solver.check() is SatResult.SAT:
        assert solver.model().eval(formula) is True
