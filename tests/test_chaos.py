"""The chaos harness (``repro.chaos``) — unit checks plus a short live
campaign.

The long campaign (200+ faults) runs in CI's ``chaos-smoke`` job and by
hand via ``repro chaos``; here we keep the fault count small so the
tier-1 suite stays fast while still covering every layer: op menu
dispatch, report bookkeeping, and a real daemon surviving a seeded
mixed-fault barrage with the post-campaign identity intact.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.chaos import (
    CampaignReport,
    ChaosCampaign,
    OP_WEIGHTS,
    default_source,
    main,
    one_shot_result,
)
from repro.serve import TERMINAL_STATUSES


class TestReport:
    def test_counts_and_json_shape(self):
        report = CampaignReport(seed=7, faults=3)
        report.count("malformed_json", "protocol_error")
        report.count("analyze_ok", "ok")
        report.count("analyze_ok", "ok")
        report.violate("something broke")
        payload = report.to_json()
        assert payload["ops"] == {"analyze_ok": 2, "malformed_json": 1}
        assert payload["statuses"] == {"ok": 2, "protocol_error": 1}
        assert payload["violations"] == ["something broke"]
        assert json.dumps(payload)  # serializable as-is

    def test_every_menu_op_has_a_handler(self):
        campaign = ChaosCampaign.__new__(ChaosCampaign)
        for op, weight in OP_WEIGHTS:
            assert weight > 0
            assert callable(getattr(campaign, f"_op_{op}")), op

    def test_expect_status_flags_non_terminal_and_unexpected(self):
        campaign = ChaosCampaign.__new__(ChaosCampaign)
        campaign.report = CampaignReport()
        campaign._expect_status("x", {"status": "weird"})
        campaign._expect_status("x", {"status": "error"}, "ok")
        campaign._expect_status("x", None)
        assert len(campaign.report.violations) == 3
        campaign._expect_status("x", {"status": "error"})  # any terminal ok
        assert len(campaign.report.violations) == 3


class TestOneShotBaseline:
    def test_mixy_baseline_is_normalized_to_the_daemon_shape(self):
        result = one_shot_result("mixy", default_source())
        assert result["exit"] == 1
        assert result["lines"][-1].endswith("warning(s)")
        # No perf-summary residue (timings would break bitwise identity).
        assert not any("solver call" in line for line in result["lines"])

    def test_parse_error_keeps_stderr_and_exit_2(self):
        result = one_shot_result("mixy", "int main( {")
        assert result["exit"] == 2
        assert result["lines"][0].startswith("error:")


@pytest.mark.skipif(not hasattr(os, "fork"), reason="campaign expects fork")
class TestLiveCampaign:
    def test_short_campaign_has_no_violations(self):
        campaign = ChaosCampaign(faults=12, seed=5, quiet=True)
        report = campaign.run()
        assert report.violations == []
        assert report.final_match is True
        assert sum(report.ops.values()) >= 12
        assert set(report.statuses) <= set(TERMINAL_STATUSES) | {"no_reply"}

    def test_cli_entry_point_json_report(self, tmp_path):
        env = dict(os.environ)
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
        )
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "chaos", "--",
                "--faults", "6", "--seed", "2", "--json",
            ],
            capture_output=True, text=True, env=env, cwd=tmp_path,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["violations"] == []
        assert payload["faults"] == 6


class TestMainArgs:
    def test_unknown_flag_exits_2(self):
        with pytest.raises(SystemExit) as info:
            main(["--no-such-flag"])
        assert info.value.code == 2
