"""Differential testing of the arithmetic core.

- The exact rational simplex is compared against scipy's linprog on
  random systems of linear inequalities (rational feasibility).
- The integer search (gcd tightening + branch & bound) is compared
  against brute-force enumeration over a bounded box, with box bounds
  included in the constraints so the domains agree exactly.
"""

import itertools
import random
from fractions import Fraction

import numpy as np
import pytest
from scipy.optimize import linprog

from repro.smt import INT, var
from repro.smt.intsolve import check_integer
from repro.smt.linear import make_atom
from repro.smt.simplex import check_rational

VARS = [var(name, INT) for name in ("u", "v", "w")]


def random_system(rng, n_constraints, bound=None):
    """Random atoms sum(c_i x_i) <= k with small integer coefficients."""
    atoms = []
    raw = []
    for _ in range(n_constraints):
        coeffs = {v: rng.randint(-4, 4) for v in VARS}
        k = rng.randint(-8, 8)
        atoms.append(make_atom(coeffs, k))
        raw.append((coeffs, k))
    if bound is not None:
        for v in VARS:
            atoms.append(make_atom({v: 1}, bound))
            atoms.append(make_atom({v: -1}, bound))
            raw.append(({v: 1}, bound))
            raw.append(({v: -1}, bound))
    return atoms, raw


def scipy_feasible(raw):
    """LP feasibility via scipy: minimize 0 subject to Ax <= b."""
    A = []
    b = []
    for coeffs, k in raw:
        A.append([coeffs.get(v, 0) for v in VARS])
        b.append(k)
    result = linprog(
        c=[0.0] * len(VARS),
        A_ub=np.array(A, dtype=float),
        b_ub=np.array(b, dtype=float),
        bounds=[(None, None)] * len(VARS),
        method="highs",
    )
    return result.status == 0  # 0 = optimal (feasible); 2 = infeasible


class TestSimplexAgainstScipy:
    @pytest.mark.parametrize("seed", range(60))
    def test_rational_feasibility_matches(self, seed):
        rng = random.Random(seed)
        atoms, raw = random_system(rng, rng.randint(1, 7))
        ours = check_rational(atoms).feasible
        # NOTE: make_atom gcd-tightens over the *integers*, which can make
        # a rationally-feasible system infeasible (that is its purpose!).
        # For a fair rational comparison, rebuild untightened rows.
        from repro.smt.linear import LinAtom

        untightened = [
            LinAtom(tuple(sorted(c.items(), key=lambda i: str(i[0]))), k)
            for c, k in ((dict((v, c2) for v, c2 in cs.items() if c2), k) for cs, k in raw)
        ]
        ours_raw = check_rational(untightened).feasible
        assert ours_raw == scipy_feasible(raw)
        # Tightening may only cut rational space, never add to it.
        if ours:
            assert ours_raw

    @pytest.mark.parametrize("seed", range(30))
    def test_feasible_assignment_satisfies_system(self, seed):
        rng = random.Random(seed)
        atoms, _raw = random_system(rng, rng.randint(1, 6))
        result = check_rational(atoms)
        if not result.feasible:
            return
        for atom in atoms:
            total = sum(
                Fraction(c) * result.assignment.get(v, Fraction(0))
                for v, c in atom.coeffs
            )
            assert total <= atom.constant


def brute_force_integer(raw, bound):
    for values in itertools.product(range(-bound, bound + 1), repeat=len(VARS)):
        assignment = dict(zip(VARS, values))
        if all(
            sum(c * assignment[v] for v, c in coeffs.items() if v in assignment) <= k
            for coeffs, k in raw
        ):
            return True
    return False


class TestIntegerSearchAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(40))
    def test_bounded_integer_feasibility_matches(self, seed):
        rng = random.Random(seed)
        bound = 3
        atoms, raw = random_system(rng, rng.randint(1, 5), bound=bound)
        result = check_integer(atoms)
        expected = brute_force_integer(raw, bound)
        assert result.feasible == expected
        if result.feasible:
            for coeffs, k in raw:
                total = sum(c * result.model.get(v, 0) for v, c in coeffs.items())
                assert total <= k
