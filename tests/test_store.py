"""The cross-run analysis store and the atomic-write durability layer.

Two contracts under test here:

1. :func:`repro.fsio.atomic_write` — readers never observe a torn
   file: either the old content or the complete new content exists,
   and a failed write leaves no temp droppings behind.
2. :class:`repro.store.AnalysisStore` — persisting the solver cache
   and block memos is an *accelerator, never a correctness input*:
   a warm run produces bitwise-identical warnings to a cold one, and
   any corrupt / truncated / version-mismatched store file degrades
   to a cold start with a stderr note, never a crash or a changed
   verdict.
"""

import itertools
import json
import os
import pickle

import pytest

from repro import smt
from repro.budget import Budget
from repro.fsio import atomic_write
from repro.mixy import Mixy, MixyConfig
from repro.mixy.corpus import CASES
from repro.mixy.corpus_vsftpd import parallel_vsftpd
from repro.mixy.qual import QVar
from repro.store import STORE_VERSION, AnalysisStore
from repro.symexec import values

#: Fast corpus for degradation tests.  Its symbolic blocks all make
#: typed calls, so it exercises the store plumbing without recording.
SOURCE = CASES["case1"].source(False)
#: Corpus with *pure* symbolic blocks (no typed calls), the memoizable
#: kind — what the round-trip tests need.
STAIRCASE = parallel_vsftpd(depth=1)


def _fresh_process_state():
    """Reset everything that carries ordinal state across runs in one
    process (same discipline as the parallel-equivalence tests)."""
    smt.reset_service()
    QVar._ids = itertools.count(1)
    values._STRING_CODES.clear()


def _analyze(store=None, budget=None, source=SOURCE):
    """One serial MIXY run in a reproducible process state; returns
    (warning texts, store-stat snapshot)."""
    _fresh_process_state()
    if store is not None:
        store.load_into_service(smt.get_service())
    config = MixyConfig(budget=budget)
    config.jobs = 1  # the memo is serial-only; don't inherit REPRO_JOBS
    config.store = store
    mixy = Mixy(source, config)
    warnings = [str(w) for w in mixy.run()]
    return warnings, dict(store.stats) if store is not None else {}


# ---------------------------------------------------------------------------
# atomic_write
# ---------------------------------------------------------------------------


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "out.json"
        with atomic_write(str(path)) as fh:
            fh.write("hello\n")
        assert path.read_text() == "hello\n"

    def test_binary_mode(self, tmp_path):
        path = tmp_path / "out.pkl"
        with atomic_write(str(path), binary=True) as fh:
            pickle.dump({"k": 1}, fh)
        with open(path, "rb") as fh:
            assert pickle.load(fh) == {"k": 1}

    def test_replaces_existing_file(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        with atomic_write(str(path)) as fh:
            fh.write("new")
        assert path.read_text() == "new"

    def test_failed_write_keeps_old_content_and_no_droppings(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        with pytest.raises(RuntimeError):
            with atomic_write(str(path)) as fh:
                fh.write("half-written")
                raise RuntimeError("boom")
        # The old content survives and no *.tmp siblings are left over.
        assert path.read_text() == "old"
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_no_partial_file_on_first_write_failure(self, tmp_path):
        path = tmp_path / "never.txt"
        with pytest.raises(RuntimeError):
            with atomic_write(str(path)) as fh:
                fh.write("half")
                raise RuntimeError("boom")
        assert os.listdir(tmp_path) == []


# ---------------------------------------------------------------------------
# Store round trip
# ---------------------------------------------------------------------------


class TestStoreRoundTrip:
    def test_memo_entries_survive_save_open(self, tmp_path):
        store = AnalysisStore.open(str(tmp_path / "store"))
        store.mixy_put("k1", {"null_indices": (0,), "warnings": (),
                              "symbols": 3, "addresses": 1})
        store.mix_put("k2", {"names": 2})
        store.save()
        reopened = AnalysisStore.open(str(tmp_path / "store"))
        assert reopened.mixy_get("k1") == store.mixy_blocks["k1"]
        assert reopened.mix_get("k2") == store.mix_blocks["k2"]
        assert reopened.notes == []

    def test_solver_cache_round_trips_through_disk(self, tmp_path):
        _fresh_process_state()
        service = smt.get_service()
        from repro.smt import eq, int_const, var
        from repro.smt.terms import INT

        x = var("store_rt_x", INT)
        verdict = service.check_sat((eq(x, int_const(1)),))
        store = AnalysisStore.open(str(tmp_path / "store"))
        store.save(service)
        reopened = AnalysisStore.open(str(tmp_path / "store"))
        fresh = smt.SolverService()
        imported = reopened.solver_cache is not None and fresh.import_cache(
            reopened.solver_cache
        )
        assert imported and imported >= 1
        # The imported entry answers without a fresh solve.
        solves_before = fresh.stats.full_solves
        assert fresh.check_sat((eq(x, int_const(1)),)) is verdict
        assert fresh.stats.full_solves == solves_before

    def test_warm_run_is_bitwise_identical_and_hits(self, tmp_path):
        cold_warnings, _ = _analyze(source=STAIRCASE)
        store = AnalysisStore.open(str(tmp_path / "store"))
        first_warnings, first_stats = _analyze(store, source=STAIRCASE)
        store.save(smt.get_service())
        assert first_warnings == cold_warnings
        assert first_stats["mixy_records"] > 0

        warm = AnalysisStore.open(str(tmp_path / "store"))
        assert warm.notes == []
        warm_warnings, warm_stats = _analyze(warm, source=STAIRCASE)
        assert warm_warnings == cold_warnings
        assert warm_stats["mixy_hits"] > 0
        assert warm_stats["solver_entries_loaded"] > 0

    def test_memo_is_inactive_under_a_budget(self, tmp_path):
        store = AnalysisStore.open(str(tmp_path / "store"))
        _, stats = _analyze(
            store, budget=Budget(deadline=3600.0), source=STAIRCASE
        )
        assert stats["mixy_records"] == 0
        assert stats["mixy_hits"] == 0


# ---------------------------------------------------------------------------
# Degradation: every broken store starts cold, never crashes
# ---------------------------------------------------------------------------


def _populated_store_dir(tmp_path) -> str:
    root = str(tmp_path / "store")
    store = AnalysisStore.open(root)
    _analyze(store)
    store.save(smt.get_service())
    return root


class TestDegradation:
    def test_missing_store_is_silent_cold(self, tmp_path, capsys):
        store = AnalysisStore.open(str(tmp_path / "nope"))
        assert store.notes == []
        assert store.mixy_blocks == {} and store.solver_cache is None
        assert capsys.readouterr().err == ""

    def test_corrupt_pickles_degrade_with_a_note(self, tmp_path, capsys):
        root = _populated_store_dir(tmp_path)
        # A first save has no previous generation to roll back to, so a
        # corrupt section can only start cold.
        for name in os.listdir(root):
            if name.endswith(".pkl"):
                with open(os.path.join(root, name), "wb") as fh:
                    fh.write(b"not a pickle")
        store = AnalysisStore.open(root)
        err = capsys.readouterr().err
        assert "failed its checksum" in err
        assert "corrupt in every recorded generation" in err
        assert store.stats["sections_lost"] == 2
        warnings, stats = _analyze(store)
        cold_warnings, _ = _analyze()
        assert warnings == cold_warnings
        assert stats["mixy_hits"] == 0 and stats["solver_entries_loaded"] == 0

    def test_version_mismatched_meta_starts_cold(self, tmp_path, capsys):
        root = _populated_store_dir(tmp_path)
        with open(os.path.join(root, "meta.json"), "w") as fh:
            json.dump({"schema": "repro-store", "version": STORE_VERSION + 1}, fh)
        store = AnalysisStore.open(root)
        assert "unsupported meta" in capsys.readouterr().err
        assert store.mixy_blocks == {} and store.solver_cache is None

    def test_version_mismatched_sections_start_cold(self, tmp_path, capsys):
        # A section whose *payload* declares a different version (but
        # passes its checksum) is ignored — forward compatibility.
        root = _populated_store_dir(tmp_path)
        from repro.fsio import checksummed_write

        with open(os.path.join(root, "meta.json")) as fh:
            meta = json.load(fh)
        name = meta["sections"]["blocks"]["file"]
        record = checksummed_write(
            os.path.join(root, name),
            pickle.dumps({"version": STORE_VERSION + 1, "mixy": {}, "mix": {}}),
        )
        meta["sections"]["blocks"] = {"file": name, **record}
        with open(os.path.join(root, "meta.json"), "w") as fh:
            json.dump(meta, fh)
        store = AnalysisStore.open(root)
        assert "corrupt blocks section" in capsys.readouterr().err
        assert store.mixy_blocks == {}
        # The untouched solver cache still loads.
        assert store.solver_cache is not None

    def test_unreadable_meta_starts_cold(self, tmp_path, capsys):
        root = str(tmp_path / "store")
        os.makedirs(root)
        with open(os.path.join(root, "meta.json"), "w") as fh:
            fh.write("{half a json")
        store = AnalysisStore.open(root)
        assert "unreadable meta.json" in capsys.readouterr().err
        assert store.solver_cache is None

    def test_quiet_open_suppresses_notes(self, tmp_path, capsys):
        root = str(tmp_path / "store")
        os.makedirs(root)
        with open(os.path.join(root, "meta.json"), "w") as fh:
            fh.write("%%%")
        store = AnalysisStore.open(root, quiet=True)
        assert store.notes  # recorded...
        assert capsys.readouterr().err == ""  # ...but not printed


# ---------------------------------------------------------------------------
# Checksummed I/O (repro.fsio)
# ---------------------------------------------------------------------------


class TestChecksummedIO:
    def test_round_trip(self, tmp_path):
        from repro.fsio import checksummed_write, read_checksummed

        path = str(tmp_path / "blob.bin")
        record = checksummed_write(path, b"payload bytes")
        assert set(record) == {"crc32", "size"} and record["size"] == 13
        assert read_checksummed(path, record) == b"payload bytes"

    def test_flipped_byte_fails_verification(self, tmp_path):
        from repro.fsio import checksummed_write, read_checksummed

        path = str(tmp_path / "blob.bin")
        record = checksummed_write(path, b"payload bytes")
        data = bytearray((tmp_path / "blob.bin").read_bytes())
        data[4] ^= 0xFF
        (tmp_path / "blob.bin").write_bytes(bytes(data))
        assert read_checksummed(path, record) is None

    def test_truncation_fails_verification(self, tmp_path):
        from repro.fsio import checksummed_write, read_checksummed

        path = str(tmp_path / "blob.bin")
        record = checksummed_write(path, b"payload bytes")
        (tmp_path / "blob.bin").write_bytes(b"payload")
        assert read_checksummed(path, record) is None

    def test_missing_file_and_bad_record_return_none(self, tmp_path):
        from repro.fsio import checksummed_write, read_checksummed

        path = str(tmp_path / "blob.bin")
        assert read_checksummed(path, {"crc32": 0, "size": 0}) is None
        checksummed_write(path, b"x")
        assert read_checksummed(path, {}) is None
        assert read_checksummed(path, {"crc32": "nope", "size": None}) is None


# ---------------------------------------------------------------------------
# atomic_write under injected filesystem faults
# ---------------------------------------------------------------------------


class TestAtomicWriteFaults:
    """Simulated ENOSPC, failed fsync, and rename interruption: the
    destination must keep its old content bit for bit, and no ``*.tmp``
    siblings may survive."""

    def _assert_intact(self, tmp_path, path):
        assert path.read_text() == "old"
        assert os.listdir(tmp_path) == [path.name]

    def test_enospc_during_write(self, tmp_path, monkeypatch):
        import errno

        path = tmp_path / "out.txt"
        path.write_text("old")

        def fail_fsync(fd):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr(os, "fsync", fail_fsync)
        with pytest.raises(OSError, match="No space left"):
            with atomic_write(str(path)) as fh:
                fh.write("new content that never lands")
        self._assert_intact(tmp_path, path)

    def test_failed_fsync(self, tmp_path, monkeypatch):
        import errno

        path = tmp_path / "out.txt"
        path.write_text("old")

        def fail_fsync(fd):
            raise OSError(errno.EIO, "Input/output error")

        monkeypatch.setattr(os, "fsync", fail_fsync)
        with pytest.raises(OSError, match="Input/output"):
            with atomic_write(str(path)) as fh:
                fh.write("new")
        self._assert_intact(tmp_path, path)

    def test_rename_interruption(self, tmp_path, monkeypatch):
        path = tmp_path / "out.txt"
        path.write_text("old")
        real_replace = os.replace

        def fail_replace(src, dst, **kwargs):
            if str(dst) == str(path):
                raise OSError("interrupted rename")
            return real_replace(src, dst, **kwargs)

        monkeypatch.setattr(os, "replace", fail_replace)
        with pytest.raises(OSError, match="interrupted rename"):
            with atomic_write(str(path)) as fh:
                fh.write("new")
        self._assert_intact(tmp_path, path)

    def test_store_save_survives_write_failure(self, tmp_path, monkeypatch):
        """A store whose persist fails mid-save keeps serving from
        memory and leaves the on-disk generation untouched."""
        import errno

        store = AnalysisStore.open(str(tmp_path / "store"))
        store.mixy_put("k1", {"v": 1})
        store.save()
        generation = store.generation

        def fail_fsync(fd):
            raise OSError(errno.ENOSPC, "No space left on device")

        store.mixy_put("k2", {"v": 2})
        monkeypatch.setattr(os, "fsync", fail_fsync)
        store.save()  # swallowed with a note, never raises
        monkeypatch.undo()
        assert any("could not persist" in note for note in store.notes)
        assert store.generation == generation  # no half-flipped manifest
        reopened = AnalysisStore.open(str(tmp_path / "store"))
        assert reopened.mixy_get("k1") == {"v": 1}  # old generation intact
        assert reopened.mixy_get("k2") is None


# ---------------------------------------------------------------------------
# Two-generation integrity: checksum mismatch rolls back, never crashes
# ---------------------------------------------------------------------------


def _section_file(root, section, generation="current"):
    with open(os.path.join(root, "meta.json")) as fh:
        meta = json.load(fh)
    entry = meta if generation == "current" else meta["previous"]
    return os.path.join(root, entry["sections"][section]["file"])


def _flip_byte(path):
    with open(path, "r+b") as fh:
        fh.seek(0)
        first = fh.read(1)
        fh.seek(0)
        fh.write(bytes([first[0] ^ 0xFF]))


class TestGenerationRollback:
    def _two_generations(self, tmp_path):
        """gen 1 holds k1; gen 2 holds k1+k2.  Distinct file slots."""
        root = str(tmp_path / "store")
        store = AnalysisStore.open(root)
        store.mixy_put("k1", {"v": 1})
        store.save()
        store.mixy_put("k2", {"v": 2})
        store.save()
        assert store.generation == 2
        current = _section_file(root, "blocks")
        previous = _section_file(root, "blocks", "previous")
        assert current != previous  # saves alternate slots
        return root

    def test_save_alternates_slots_and_records_previous(self, tmp_path):
        root = self._two_generations(tmp_path)
        with open(os.path.join(root, "meta.json")) as fh:
            meta = json.load(fh)
        assert meta["generation"] == 2
        assert meta["previous"]["generation"] == 1

    def test_checksum_mismatch_rolls_back_a_generation(self, tmp_path, capsys):
        root = self._two_generations(tmp_path)
        _flip_byte(_section_file(root, "blocks"))
        store = AnalysisStore.open(root)
        err = capsys.readouterr().err
        assert "failed its checksum" in err and "rolled back" in err
        assert store.stats["sections_recovered"] == 1
        # Generation 1's content, not generation 2's.
        assert store.mixy_get("k1") == {"v": 1}
        assert store.mixy_get("k2") is None

    def test_rollback_is_per_section(self, tmp_path, capsys):
        root = self._two_generations(tmp_path)
        _flip_byte(_section_file(root, "blocks"))
        store = AnalysisStore.open(root)
        capsys.readouterr()
        # blocks rolled back; a later save writes a complete fresh
        # generation and recovers full integrity.
        store.mixy_put("k3", {"v": 3})
        store.save()
        reopened = AnalysisStore.open(root)
        assert reopened.notes == []
        assert reopened.mixy_get("k1") == {"v": 1}
        assert reopened.mixy_get("k3") == {"v": 3}

    def test_both_generations_corrupt_starts_cold(self, tmp_path, capsys):
        root = self._two_generations(tmp_path)
        _flip_byte(_section_file(root, "blocks"))
        _flip_byte(_section_file(root, "blocks", "previous"))
        store = AnalysisStore.open(root)
        err = capsys.readouterr().err
        assert "corrupt in every recorded generation" in err
        assert store.stats["sections_lost"] == 1
        assert store.mixy_blocks == {}

    def test_truncated_section_rolls_back(self, tmp_path, capsys):
        root = self._two_generations(tmp_path)
        current = _section_file(root, "blocks")
        with open(current, "r+b") as fh:
            fh.truncate(4)  # a torn tail, as after a mid-write SIGKILL
        store = AnalysisStore.open(root)
        assert store.stats["sections_recovered"] == 1
        assert store.mixy_get("k1") == {"v": 1}
        capsys.readouterr()
