"""Tests for the concrete mini-C interpreter, plus differential testing
of the C symbolic executor against it."""

import random

import pytest

from repro import smt
from repro.mixy.c import parse_program
from repro.mixy.c.interp import (
    CInterpreter,
    CNullDereference,
    CRuntimeError,
    CStepBudgetExceeded,
    run_function,
)
from repro.mixy.symexec import CSymExecutor


class TestInterpreterBasics:
    def test_arithmetic(self):
        assert run_function(parse_program("int f(void) { return 2 + 3 * 4; }"), "f") == 14

    def test_truncating_division(self):
        p = parse_program("int f(int a, int b) { return a / b; }")
        assert run_function(p, "f", [7, 2]) == 3
        assert run_function(p, "f", [-7, 2]) == -3

    def test_division_by_zero_raises(self):
        p = parse_program("int f(void) { return 1 / 0; }")
        with pytest.raises(CRuntimeError):
            run_function(p, "f")

    def test_locals_params_and_control(self):
        src = """
        int gcd(int a, int b) {
          while (b != 0) {
            int t = b;
            b = a - (a / b) * b;
            a = t;
          }
          return a;
        }
        """
        assert run_function(parse_program(src), "gcd", [48, 18]) == 6

    def test_pointers(self):
        src = """
        void bump(int *p) { *p = *p + 1; }
        int f(void) { int x = 41; bump(&x); return x; }
        """
        assert run_function(parse_program(src), "f") == 42

    def test_structs(self):
        src = """
        struct pair { int a; int b; };
        int f(void) {
          struct pair *p = (struct pair *) malloc(sizeof(struct pair));
          p->a = 1;
          p->b = 2;
          return p->a + p->b;
        }
        """
        assert run_function(parse_program(src), "f") == 3

    def test_null_deref_raises(self):
        p = parse_program("int f(void) { int *q = NULL; return *q; }")
        with pytest.raises(CNullDereference):
            run_function(p, "f")

    def test_function_pointers(self):
        src = """
        int one(void) { return 1; }
        int two(void) { return 2; }
        int f(int c) {
          int (*h)(void);
          h = one;
          if (c) { h = two; }
          return h();
        }
        """
        p = parse_program(src)
        assert run_function(p, "f", [0]) == 1
        assert run_function(p, "f", [1]) == 2

    def test_globals_initialized(self):
        src = """
        int counter = 7;
        int *never = NULL;
        int f(void) { counter = counter + 1; return counter; }
        """
        interp = CInterpreter(parse_program(src))
        assert interp.call("f") == 8
        assert interp.call("f") == 9  # state persists within one instance

    def test_short_circuit(self):
        src = """
        int boom(void) { int *q = NULL; return *q; }
        int f(void) { return 0 && boom(); }
        int g(void) { return 1 || boom(); }
        """
        p = parse_program(src)
        assert run_function(p, "f") == 0
        assert run_function(p, "g") == 1

    def test_step_budget(self):
        p = parse_program("int f(void) { while (1) { } return 0; }")
        with pytest.raises(CStepBudgetExceeded):
            CInterpreter(p, step_budget=500).call("f")


# ---------------------------------------------------------------------------
# Differential testing: interpreter vs symbolic executor on concrete runs
# ---------------------------------------------------------------------------

PROGRAMS = [
    (
        """
        int f(int a, int b) {
          int m = a;
          if (b > a) { m = b; }
          return m * 2 - a;
        }
        """,
        "f",
        2,
    ),
    (
        """
        int f(int n) {
          int acc = 0;
          int i = 0;
          while (i < n) { acc = acc + i; i = i + 1; }
          return acc;
        }
        """,
        "f",
        1,
    ),
    (
        """
        int helper(int x) { if (x < 0) { return 0 - x; } return x; }
        int f(int a, int b) { return helper(a - b) + helper(b - a); }
        """,
        "f",
        2,
    ),
    (
        """
        struct acc { int total; int count; };
        int f(int a, int b) {
          struct acc s;
          s.total = 0;
          s.count = 0;
          int *p = &(s.total);
          *p = a + b;
          s.count = 2;
          return s.total / s.count;
        }
        """,
        "f",
        2,
    ),
    (
        """
        int f(int a, int b) {
          return (a > 0 && b > 0) + (a > 0 || b > 0);
        }
        """,
        "f",
        2,
    ),
]


@pytest.mark.parametrize("source,name,arity", PROGRAMS, ids=[str(i) for i in range(len(PROGRAMS))])
@pytest.mark.parametrize("seed", range(4))
def test_concrete_executor_agrees_with_interpreter(source, name, arity, seed):
    rng = random.Random(seed)
    args = [rng.randint(-6, 9) for _ in range(arity)]
    program = parse_program(source)
    expected = run_function(program, name, list(args))
    executor = CSymExecutor(program)
    results = list(
        executor.execute_function(
            program.functions[name],
            [smt.int_const(a) for a in args],
            executor.initial_state(),
        )
    )
    assert len(results) == 1, "concrete inputs must follow one path"
    assert results[0].ret is smt.int_const(expected)
    assert not executor.warnings


def test_symbolic_covers_all_concrete_paths():
    """Every concrete result appears among the symbolic paths' values
    under the matching path condition."""
    source = """
    int f(int a) {
      if (a < 0) { return 0 - a; }
      if (a == 0) { return 100; }
      return a;
    }
    """
    program = parse_program(source)
    executor = CSymExecutor(program)
    alpha = executor.fresh_symbol("a")
    results = list(
        executor.execute_function(
            program.functions["f"], [alpha], executor.initial_state()
        )
    )
    for concrete in (-5, 0, 7):
        expected = run_function(program, "f", [concrete])
        matched = False
        for result in results:
            binding = smt.eq(alpha, smt.int_const(concrete))
            if smt.is_satisfiable(smt.and_(result.state.condition(), binding)):
                assert smt.is_valid(
                    smt.eq(result.ret, smt.int_const(expected)),
                    assuming=[result.state.condition(), binding],
                )
                matched = True
        assert matched, f"no symbolic path matches input {concrete}"
