"""The structured event-trace subsystem (``repro/trace.py``).

Three layers under test:

1. the :class:`~repro.trace.Tracer` itself — span nesting, the JSONL
   schema, worker-file merging, and the cost discipline that a disabled
   tracer adds zero events and allocates no span objects;
2. the aggregation behind ``repro trace-report`` and ``trace_digest``;
3. determinism — ``--jobs 1`` and ``--jobs 4`` runs produce identical
   trace *aggregates* (span counts per block, per-block query counts,
   witness verdicts) even though the raw interleavings differ.

The ``--solver-stats`` table snapshot (satellite: ``format_table`` /
``as_dict`` single code path) also lives here.
"""

import itertools
import json

import pytest

from repro import smt
from repro.cli import main
from repro.core import analyze_source
from repro.mixy import Mixy, MixyConfig
from repro.mixy.c import parse_program
from repro.mixy.qual import QVar
from repro.smt.service import SolverStats
from repro.trace import (
    TRACER,
    TraceSchemaError,
    aggregate,
    digest_file,
    format_report,
    read_trace,
    validate_line,
)

MIX_PROGRAM = "let x = 3 in {s if x < 5 then x + 1 else 0 s}"

C_PROGRAM = """
void sysutil_free(void *nonnull p_ptr) MIX(typed);
int *g_ptr;

int block_a(int a, int b) MIX(symbolic) {
  if (a < 0) { return 0; }
  if (3 * a + 2 * b < 7) {
    return 1;
  }
  return 2;
}

int block_b(int c) MIX(symbolic) {
  if (c > 10) {
    sysutil_free(g_ptr);
    g_ptr = NULL;
  }
  return c;
}

int main(void) {
  int r;
  r = block_a(1, 2);
  r = r + block_b(3);
  return r;
}
"""


@pytest.fixture(autouse=True)
def _tracer_is_left_disabled():
    """Every test must leave the process-wide tracer disabled."""
    yield
    TRACER.close()
    assert not TRACER.enabled


def _fresh_process_state():
    smt.reset_service()
    QVar._ids = itertools.count(1)


# ---------------------------------------------------------------------------
# Cost discipline: a disabled tracer is a single attribute check
# ---------------------------------------------------------------------------


class TestDisabledTracer:
    def test_disabled_tracer_adds_zero_events_and_no_span_objects(self):
        _fresh_process_state()
        TRACER.spans_started = 0
        TRACER.lines_written = 0
        report = analyze_source(MIX_PROGRAM)
        mixy = Mixy(parse_program(C_PROGRAM))
        mixy.run()
        assert report.ok
        assert TRACER.spans_started == 0
        assert TRACER.lines_written == 0

    def test_disabled_span_contextmanager_yields_none(self):
        with TRACER.span("run", "nothing") as span:
            assert span is None
        assert TRACER.spans_started == 0


# ---------------------------------------------------------------------------
# Tracer mechanics + schema
# ---------------------------------------------------------------------------


class TestTracerMechanics:
    def test_spans_nest_and_validate(self, tmp_path):
        path = tmp_path / "t.jsonl"
        TRACER.enable(path)
        with TRACER.span("run", "outer"):
            with TRACER.span("mix.block", "inner", extra=7):
                TRACER.event("path.fork", pc_size=2)
            TRACER.counter("solver.queries", 3)
        TRACER.close()
        events = read_trace(path)  # validates every line
        spans = {e["name"]: e for e in events if e["ev"] == "span"}
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        assert spans["outer"]["parent"] is None
        assert spans["inner"]["extra"] == 7
        point = next(e for e in events if e["ev"] == "event")
        assert point["span"] == spans["inner"]["id"]
        assert point["pc_size"] == 2
        counter = next(e for e in events if e["ev"] == "counter")
        assert counter["span"] == spans["outer"]["id"]
        assert counter["value"] == 3

    def test_exception_inside_span_is_recorded_and_propagates(self, tmp_path):
        path = tmp_path / "t.jsonl"
        TRACER.enable(path)
        with pytest.raises(ValueError):
            with TRACER.span("run", "boom"):
                raise ValueError("x")
        TRACER.close()
        (span,) = [e for e in read_trace(path) if e["ev"] == "span"]
        assert span["error"] == "ValueError"

    @pytest.mark.parametrize(
        "bad",
        [
            {"ev": "span", "id": "1", "kind": "nope", "name": "x", "t": 0, "dur": 0},
            {"ev": "span", "id": "1", "kind": "run", "name": "x", "t": 0},
            {"ev": "span", "id": "1", "kind": "run", "name": "x", "t": 0, "dur": -1},
            {"ev": "event", "kind": "not.a.kind", "t": 0},
            {"ev": "counter", "value": 1},
            {"ev": "counter", "name": "n", "value": "high"},
            {"ev": "meta", "schema": 99},
            {"ev": "mystery"},
            ["not", "an", "object"],
        ],
    )
    def test_schema_rejects_malformed_events(self, bad):
        with pytest.raises(TraceSchemaError):
            validate_line(bad)

    def test_read_trace_reports_the_offending_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ev":"meta","schema":1,"pid":1,"t":0}\nnot json\n')
        with pytest.raises(TraceSchemaError, match="2"):
            read_trace(path)

    def test_merge_worker_files_appends_sorted_and_tolerates_torn_tail(
        self, tmp_path
    ):
        path = tmp_path / "t.jsonl"
        TRACER.enable(path)
        (tmp_path / "t.jsonl.worker-222").write_text(
            '{"ev":"meta","schema":1,"pid":222,"t":0.1}\n{"ev":"span","id":"w222:1",'
            '"parent":null,"kind":"worker.task","name":"b","t":0.1,"dur":0.0}\n'
            '{"ev":"span","id":"w222:2","parent"'  # torn final line: dropped
        )
        (tmp_path / "t.jsonl.worker-111").write_text(
            '{"ev":"meta","schema":1,"pid":111,"t":0.1}\n'
        )
        assert TRACER.merge_worker_files() == 2
        TRACER.close()
        events = read_trace(path)
        pids = [e["pid"] for e in events if e["ev"] == "meta"]
        assert pids[1:] == [111, 222]  # sorted filename order after the main meta
        assert not list(tmp_path.glob("t.jsonl.worker-*"))  # sidecars consumed


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


class TestAggregate:
    def test_attribution_and_block_tables(self, tmp_path):
        path = tmp_path / "t.jsonl"
        TRACER.enable(path)
        with TRACER.span("run", "mix:typed"):
            with TRACER.span("mix.block", "b1"):
                with TRACER.span("solver.query", "check_sat", tier="exact",
                                 verdict="SAT", budget=4000):
                    pass
                TRACER.event("path.fork", pc_size=1)
        TRACER.close()
        digest = digest_file(path)
        assert digest["attributed_fraction"] > 0
        (block,) = digest["blocks"]
        assert block["name"] == "b1"
        assert block["queries"] == 1
        assert digest["query_tiers"]["exact"]["count"] == 1
        assert digest["point_events"] == {"path.fork": 1}
        report = format_report(digest)
        assert "b1" in report and "exact" in report

    def test_worker_spans_live_in_the_speculative_section(self):
        events = [
            {"ev": "span", "id": "1", "parent": None, "kind": "run", "name": "r",
             "t": 0.0, "dur": 1.0},
            {"ev": "span", "id": "w9:1", "parent": "1", "kind": "worker.task",
             "name": "b", "t": 0.1, "dur": 0.5},
            {"ev": "span", "id": "w9:2", "parent": "w9:1", "kind": "solver.query",
             "name": "check_sat", "t": 0.2, "dur": 0.1, "tier": "full_solve"},
            {"ev": "event", "kind": "path.fork", "span": "w9:1", "t": 0.3},
        ]
        digest = aggregate(events)
        assert digest["speculative"]["tasks"] == 1
        assert digest["speculative"]["query_tiers"]["full_solve"]["count"] == 1
        assert digest["speculative"]["point_events"] == {"path.fork": 1}
        # ...and never pollute the authoritative tables.
        assert digest["query_tiers"] == {}
        assert digest["point_events"] == {}


# ---------------------------------------------------------------------------
# End-to-end through the CLI, and jobs=1 vs jobs=4 determinism
# ---------------------------------------------------------------------------


def _traced_run(tmp_path, jobs: int) -> dict:
    _fresh_process_state()
    program = tmp_path / f"prog-j{jobs}.c"
    program.write_text(C_PROGRAM)
    trace = tmp_path / f"trace-j{jobs}.jsonl"
    code = main(
        ["mixy", str(program), "--jobs", str(jobs), "--validate-witnesses",
         "--trace", str(trace)]
    )
    assert code == 1  # block_b's genuine nonnull warning
    return digest_file(trace)


def _deterministic_view(digest: dict) -> dict:
    """The parts of a digest that must not depend on the job count:
    authoritative span counts per kind, the per-block work table, point
    events, and witness verdicts.  (Query *tiers* legitimately shift —
    speculation turns full solves into exact hits — and parallel.* /
    worker spans exist only under --jobs N.)"""
    return {
        "span_counts": {
            kind: agg["count"]
            for kind, agg in digest["span_kinds"].items()
            if not kind.startswith("parallel.")
        },
        "blocks": [
            {"name": b["name"], "count": b["count"], "queries": b["queries"]}
            for b in sorted(digest["blocks"], key=lambda b: b["name"])
        ],
        "queries_total": sum(
            agg["count"] for agg in digest["query_tiers"].values()
        ),
        "point_events": digest["point_events"],
        "witness_verdicts": digest["witness_verdicts"],
    }


class TestTraceDeterminism:
    def test_jobs1_and_jobs4_produce_identical_aggregates(self, tmp_path):
        serial = _traced_run(tmp_path, jobs=1)
        parallel = _traced_run(tmp_path, jobs=4)
        assert _deterministic_view(serial) == _deterministic_view(parallel)
        # The parallel run actually speculated, and its raw stream is a
        # strict superset: worker spans ride along without perturbing the
        # deterministic view above.
        assert parallel["speculative"]["tasks"] > 0
        assert serial["speculative"]["tasks"] == 0

    def test_traced_cli_run_validates_and_attributes(self, tmp_path):
        digest = _traced_run(tmp_path, jobs=1)  # digest_file validated lines
        assert digest["wall_seconds"] > 0
        assert digest["attributed_fraction"] >= 0.95
        assert digest["counters"]["solver.queries"] > 0

    def test_trace_report_command(self, tmp_path, capsys):
        _traced_run(tmp_path, jobs=1)
        assert main(["trace-report", str(tmp_path / "trace-j1.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "hottest blocks" in out
        assert "block_a" in out
        assert (
            main(["trace-report", str(tmp_path / "trace-j1.jsonl"), "--json"]) == 0
        )
        digest = json.loads(capsys.readouterr().out)
        assert digest["schema"] == 1

    def test_trace_report_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("wat\n")
        assert main(["trace-report", str(bad)]) == 2
        assert "invalid trace" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# --solver-stats rendering (format_table / as_dict single code path)
# ---------------------------------------------------------------------------


class TestSolverStatsTable:
    def test_table_values_come_verbatim_from_as_dict(self):
        stats = SolverStats(queries=7, exact_hits=3, solve_seconds=1.23456789)
        stats.merge_perf(SolverStats(queries=2, solve_seconds=0.5))
        table = stats.format_table()
        rendered = dict(
            line.rsplit(None, 1) for line in table.splitlines()[2:]
        )
        flat: dict[str, object] = {}
        for key, value in stats.as_dict().items():
            if isinstance(value, dict):
                flat.update({f"{key}.{k}": v for k, v in value.items()})
            else:
                flat[key] = value
        assert rendered == {k: str(v) for k, v in flat.items()}

    def test_separator_spans_the_widest_row(self):
        # The old "-" * (width + 12) rule underflowed for long values;
        # the separator must cover key column + gap + value column.
        stats = SolverStats(solve_seconds=123456.654321, queries=10**15)
        lines = stats.format_table().splitlines()
        assert len(lines[1]) == max(len(line) for line in lines[2:])
        assert set(lines[1]) == {"-"}

    def test_snapshot_of_the_default_table_header(self):
        lines = SolverStats().format_table().splitlines()
        assert lines[0] == "solver service stats"
        assert lines[2].startswith("queries")
        # hit_rate renders exactly the rounded as_dict value.
        hit_rate_line = next(l for l in lines if l.startswith("hit_rate"))
        assert hit_rate_line.split()[-1] == "0.0"


# ---------------------------------------------------------------------------
# Trace file modes (satellite: the enable() truncate-on-start fix)
# ---------------------------------------------------------------------------


class TestTraceModes:
    """``Tracer.enable`` historically truncated an existing trace file
    unconditionally — a daemon restarted onto its own trace path wiped
    the evidence of its previous life.  The fix: an explicit mode.
    ``truncate`` keeps the old behavior, ``append`` accumulates
    sessions (each with its own ``meta`` line), ``rotate`` moves the
    previous file to ``FILE.1`` first."""

    def _session(self, path, mode, marker):
        TRACER.enable(path, mode=mode)
        TRACER.counter(marker, 1)
        TRACER.close()

    @staticmethod
    def _counters(events):
        return [e["name"] for e in events if e["ev"] == "counter"]

    def test_truncate_drops_the_previous_session(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        self._session(path, "truncate", "first")
        self._session(path, "truncate", "second")
        events = read_trace(path)
        assert self._counters(events) == ["second"]
        assert sum(e["ev"] == "meta" for e in events) == 1

    def test_append_accumulates_sessions(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        self._session(path, "append", "first")
        self._session(path, "append", "second")
        events = read_trace(path)  # readers tolerate multiple metas
        assert self._counters(events) == ["first", "second"]
        assert sum(e["ev"] == "meta" for e in events) == 2

    def test_rotate_keeps_the_previous_life(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        self._session(path, "rotate", "first")   # no file yet: plain start
        self._session(path, "rotate", "second")  # first life -> t.jsonl.1
        assert self._counters(read_trace(path)) == ["second"]
        assert self._counters(read_trace(path + ".1")) == ["first"]

    def test_append_to_a_fresh_path_just_starts_one(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        self._session(path, "append", "only")
        assert self._counters(read_trace(path)) == ["only"]

    def test_unknown_mode_is_rejected_before_touching_the_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("precious")
        with pytest.raises(ValueError, match="unknown trace mode"):
            TRACER.enable(str(path), mode="overwrite")
        assert path.read_text() == "precious"
        assert not TRACER.enabled

    def test_appended_sessions_aggregate_as_one_stream(self, tmp_path):
        """The daemon-restart shape: two appended sessions still feed
        the trace-report aggregator without schema errors."""
        path = str(tmp_path / "t.jsonl")
        for marker in ("life1", "life2"):
            TRACER.enable(path, mode="append")
            with TRACER.span("run", marker):
                pass
            TRACER.close()
        digest = aggregate(read_trace(path))
        assert digest["schema"] == 1
