"""Tests for the analysis driver surface: reports, diagnostics, stats."""

import pytest

from repro.core import Diagnostic, MixConfig, analyze, analyze_source
from repro.lang import parse
from repro.lang.ast import Pos
from repro.symexec import ErrKind
from repro.typecheck import TypeEnv
from repro.typecheck.types import BOOL, INT


class TestReports:
    def test_accepted_report_str(self):
        report = analyze_source("{s 1 s}")
        assert str(report) == "accepted: int"

    def test_rejected_report_str(self):
        report = analyze_source("{s 1 + true s}")
        text = str(report)
        assert text.startswith("rejected:") and "symbolic" in text

    def test_diagnostic_str_with_position(self):
        d = Diagnostic("bad thing", Pos(3, 7), "typed")
        assert str(d) == "[typed] at 3:7: bad thing"

    def test_diagnostic_str_without_position(self):
        d = Diagnostic("bad thing", None, "mix")
        assert str(d) == "[mix]: bad thing"

    def test_invalid_entry_rejected(self):
        with pytest.raises(ValueError):
            analyze(parse("1"), entry="diagonal")

    def test_stats_include_executor_counters(self):
        report = analyze_source(
            "{s if p then 1 else 2 s}", env=TypeEnv({"p": BOOL})
        )
        assert report.stats["sym_forks"] == 1
        assert report.stats["symbolic_blocks"] == 1

    def test_plain_program_without_blocks(self):
        """No blocks at all: entry='typed' is just the type checker."""
        report = analyze_source("1 + 2 * 3")
        assert report.ok and str(report.type) == "int"
        assert report.stats["symbolic_blocks"] == 0

    def test_symbolic_entry_wraps_whole_program(self):
        report = analyze_source("if 1 < 2 then 1 else 2", entry="symbolic")
        assert report.ok
        assert report.stats["symbolic_blocks"] == 1


class TestDiagnosticsCarryOrigins:
    def test_typed_origin(self):
        report = analyze_source("1 + true")
        assert report.diagnostics[0].origin == "typed"

    def test_symbolic_origin_with_kind(self):
        report = analyze_source("{s z * z s}", env=TypeEnv({"z": INT}))
        d = report.diagnostics[0]
        assert d.origin == "symbolic" and d.kind is ErrKind.UNSUPPORTED

    def test_mix_origin_for_boundary_failures(self):
        # A closure escaping a symbolic block is a mix-rule failure.
        report = analyze_source("{s fun x : int -> x s}")
        assert report.diagnostics[0].origin == "mix"

    def test_positions_survive_to_report(self):
        report = analyze_source("{s\n  1 + true\ns}")
        assert report.diagnostics[0].pos is not None
        assert report.diagnostics[0].pos.line == 2


class TestConfigPlumb:
    def test_config_reaches_executor(self):
        from repro.symexec import IfStrategy, SymConfig

        config = MixConfig(sym=SymConfig(if_strategy=IfStrategy.DEFER))
        report = analyze_source(
            "{s if p then 1 else 2 s}", env=TypeEnv({"p": BOOL}), config=config
        )
        assert report.stats["sym_merges"] == 1
