"""Tests for the symbolic executor (paper Figures 2 and 3)."""

import pytest

from repro import smt
from repro.lang import parse
from repro.symexec import (
    ErrKind,
    IfStrategy,
    SymConfig,
    SymEnv,
    SymExecutor,
)
from repro.symexec.values import fresh_of_type, int_value
from repro.typecheck.types import BOOL, INT, RefType, STR, UNIT


def execute(source, env=None, config=None, executor=None):
    executor = executor or SymExecutor(config=config)
    return executor.execute_all(parse(source), env)


def ok_outcomes(outs):
    return [o for o in outs if o.ok]


def err_outcomes(outs):
    return [o for o in outs if not o.ok]


def single_value(outs):
    oks = ok_outcomes(outs)
    assert len(oks) == 1, f"expected one ok path, got {outs}"
    return oks[0].value


class TestPureRules:
    def test_literal(self):
        value = single_value(execute("42"))
        assert value.typ == INT and value.term is smt.int_const(42)

    def test_concrete_folding(self):
        value = single_value(execute("1 + 2 * 3"))
        assert value.term is smt.int_const(7)

    def test_folding_disabled_keeps_structure(self):
        config = SymConfig(concrete_folding=False)
        value = single_value(execute("1 + 2", config=config))
        assert not value.term.is_const

    def test_symbolic_variable_arithmetic(self):
        executor = SymExecutor()
        alpha, _ = fresh_of_type(INT, executor.names)
        env = SymEnv({"x": alpha})
        value = single_value(execute("x + 3", env=env, executor=executor))
        assert value.typ == INT
        assert not value.term.is_const

    def test_sevar_unbound_fails(self):
        (out,) = execute("x")
        assert not out.ok and out.kind is ErrKind.TYPE_ERROR

    def test_seplus_requires_ints(self):
        (out,) = execute("1 + true")
        assert not out.ok and out.kind is ErrKind.TYPE_ERROR

    def test_string_plus_is_type_error(self):
        (out,) = execute('"foo" + 3')
        assert not out.ok and out.kind is ErrKind.TYPE_ERROR

    def test_string_equality(self):
        assert single_value(execute('"a" = "a"')).term.is_true
        assert single_value(execute('"a" = "b"')).term.is_false

    def test_eq_mixed_types_fails(self):
        (out,) = execute("1 = true")
        assert not out.ok and out.kind is ErrKind.TYPE_ERROR

    def test_let_binds(self):
        value = single_value(execute("let x = 5 in x + x"))
        assert value.term is smt.int_const(10)

    def test_let_annotation_checked(self):
        (out,) = execute("let x : bool = 1 in x")
        assert not out.ok and out.kind is ErrKind.TYPE_ERROR


class TestForking:
    def test_concrete_condition_takes_one_branch(self):
        outs = execute("if true then 1 else 2")
        assert single_value(outs).term is smt.int_const(1)

    def test_error_in_unreachable_branch_ignored(self):
        # Section 2's first idiom: 'if true then 5 else "foo" + 3'.
        outs = execute('if true then 5 else "foo" + 3')
        assert single_value(outs).term is smt.int_const(5)

    def test_symbolic_condition_forks(self):
        executor = SymExecutor()
        alpha, _ = fresh_of_type(BOOL, executor.names)
        outs = execute("if p then 1 else 2", env=SymEnv({"p": alpha}), executor=executor)
        assert len(ok_outcomes(outs)) == 2
        values = {o.value.term.payload for o in outs}
        assert values == {1, 2}

    def test_path_conditions_recorded(self):
        executor = SymExecutor()
        alpha, _ = fresh_of_type(INT, executor.names)
        outs = execute(
            "if x < 0 then 0 - x else x", env=SymEnv({"x": alpha}), executor=executor
        )
        for out in outs:
            # On each path, the result is non-negative given the guard.
            assert smt.is_valid(
                smt.ge(out.value.term, smt.int_const(0)), assuming=[out.state.guard]
            )

    def test_infeasible_paths_pruned(self):
        executor = SymExecutor()
        alpha, _ = fresh_of_type(INT, executor.names)
        env = SymEnv({"x": alpha})
        outs = execute(
            "if x < 0 then (if 0 < x then 111 else 1) else 2",
            env=env,
            executor=executor,
        )
        values = {o.value.term.payload for o in ok_outcomes(outs)}
        assert 111 not in values
        assert executor.stats["paths_pruned"] >= 1

    def test_no_pruning_keeps_infeasible_path(self):
        config = SymConfig(prune_infeasible=False)
        executor = SymExecutor(config=config)
        alpha, _ = fresh_of_type(INT, executor.names)
        outs = execute(
            "if x < 0 then (if 0 < x then 111 else 1) else 2",
            env=SymEnv({"x": alpha}),
            executor=executor,
        )
        values = {o.value.term.payload for o in ok_outcomes(outs)}
        # The contradictory path is produced; its guard is unsatisfiable.
        assert 111 in values
        bad = next(o for o in outs if o.value.term.payload == 111)
        assert not smt.is_satisfiable(bad.state.condition())

    def test_three_way_sign_split_guards_exhaustive(self):
        # The sign-refinement idiom: guards of all paths cover all ints.
        executor = SymExecutor()
        alpha, _ = fresh_of_type(INT, executor.names)
        outs = execute(
            "if 0 < x then 1 else if x = 0 then 0 else 0 - 1",
            env=SymEnv({"x": alpha}),
            executor=executor,
        )
        guards = [o.state.guard for o in outs]
        assert len(guards) == 3
        assert smt.is_valid(smt.or_(*guards))


class TestDeferStrategy:
    def test_defer_produces_single_outcome(self):
        config = SymConfig(if_strategy=IfStrategy.DEFER)
        executor = SymExecutor(config=config)
        alpha, _ = fresh_of_type(BOOL, executor.names)
        outs = execute("if p then 1 else 2", env=SymEnv({"p": alpha}), executor=executor)
        assert len(outs) == 1 and outs[0].ok
        assert executor.stats["merges"] == 1

    def test_defer_value_is_ite(self):
        config = SymConfig(if_strategy=IfStrategy.DEFER)
        executor = SymExecutor(config=config)
        alpha, _ = fresh_of_type(BOOL, executor.names)
        (out,) = execute("if p then 1 else 2", env=SymEnv({"p": alpha}), executor=executor)
        # Result is 1 or 2 in every model.
        v = out.value.term
        assert smt.is_valid(
            smt.or_(smt.eq(v, smt.int_const(1)), smt.eq(v, smt.int_const(2)))
        )

    def test_defer_requires_equal_types(self):
        # The paper: "this rule is more conservative ... it requires both
        # branches to have the same type".
        config = SymConfig(if_strategy=IfStrategy.DEFER)
        executor = SymExecutor(config=config)
        alpha, _ = fresh_of_type(BOOL, executor.names)
        (out,) = execute(
            "if p then 1 else true", env=SymEnv({"p": alpha}), executor=executor
        )
        assert not out.ok and out.kind is ErrKind.TYPE_ERROR

    def test_fork_accepts_branch_type_disagreement(self):
        executor = SymExecutor()
        alpha, _ = fresh_of_type(BOOL, executor.names)
        outs = execute(
            "if p then 1 else true", env=SymEnv({"p": alpha}), executor=executor
        )
        assert all(o.ok for o in outs) and len(outs) == 2

    def test_defer_merges_memory(self):
        config = SymConfig(if_strategy=IfStrategy.DEFER)
        executor = SymExecutor(config=config)
        alpha, _ = fresh_of_type(BOOL, executor.names)
        src = "let r = ref 0 in (if p then r := 1 else r := 2); !r"
        (out,) = execute(src, env=SymEnv({"p": alpha}), executor=executor)
        assert out.ok
        v = out.value.term
        assert smt.is_valid(
            smt.or_(smt.eq(v, smt.int_const(1)), smt.eq(v, smt.int_const(2)))
        )


class TestReferences:
    def test_ref_deref_roundtrip(self):
        value = single_value(execute("!(ref 5)"))
        assert value.typ == INT and value.term is smt.int_const(5)

    def test_assign_then_read(self):
        value = single_value(execute("let x = ref 0 in x := 41; !x + 1"))
        assert value.term is smt.int_const(42)

    def test_aliasing_within_block(self):
        value = single_value(execute("let x = ref 1 in let y = x in y := 9; !x"))
        assert value.term is smt.int_const(9)

    def test_flow_sensitive_type_change(self):
        # Section 2's flow-sensitivity idiom: overwrite int with bool, read
        # back as bool.  The read's annotation follows the *pointer* type,
        # so re-reading through the same int-ref is the interesting case:
        src = "let x = ref 1 in x := 2; !x"
        assert single_value(execute(src)).term is smt.int_const(2)

    def test_ill_typed_write_blocks_deref(self):
        # A persisting ill-typed write makes ⊢ m ok fail at the next read.
        outs = execute("let x = ref 1 in let b = ref true in x := 1 = 1; !b")
        (out,) = outs
        assert not out.ok and out.kind is ErrKind.TYPE_ERROR
        assert "m ok" in out.error

    def test_ill_typed_write_overwritten_is_fine(self):
        # Overwrite-OK: the ill-typed write is erased by a well-typed one
        # to the syntactically identical location.
        src = "let x = ref 1 in x := 1 = 1; x := 7; !x"
        assert single_value(execute(src)).term is smt.int_const(7)

    def test_deref_non_ref_fails(self):
        (out,) = execute("!5")
        assert not out.ok and out.kind is ErrKind.TYPE_ERROR

    def test_reading_unknown_memory(self):
        executor = SymExecutor()
        ref_val, constraints = fresh_of_type(RefType(INT), executor.names)
        env = SymEnv({"r": ref_val})
        value = single_value(execute("!r + 1", env=env, executor=executor))
        assert value.typ == INT


class TestWhile:
    def test_concrete_loop_unrolls(self):
        src = """
        let i = ref 0 in
        let acc = ref 0 in
        while !i < 5 do acc := !acc + !i; i := !i + 1 done;
        !acc
        """
        assert single_value(execute(src)).term is smt.int_const(10)

    def test_unbounded_loop_reports_loop_bound(self):
        config = SymConfig(max_loop_unroll=8)
        executor = SymExecutor(config=config)
        alpha, _ = fresh_of_type(INT, executor.names)
        outs = execute(
            "let i = ref 0 in while !i < n do i := !i + 1 done",
            env=SymEnv({"n": alpha}),
            executor=executor,
        )
        assert any(o.kind is ErrKind.LOOP_BOUND for o in outs)
        # The bounded prefixes still yield exit paths.
        assert len(ok_outcomes(outs)) >= 1


class TestFunctions:
    def test_application_inlines(self):
        assert single_value(execute("(fun x : int -> x + 1) 41")).term is smt.int_const(42)

    def test_context_sensitivity_two_call_sites(self):
        # The identity function applied at two types (the paper's 'id' idiom).
        src = 'let id = fun x : int -> x in id 3 + id 4'
        assert single_value(execute(src)).term is smt.int_const(7)

    def test_div_example(self):
        # The paper's div example returns str on y = 0 and int otherwise;
        # with concrete arguments only the int path runs.
        src = """
        let div = fun x : int -> fun y : int ->
          if y = 0 then "err" else x / y in
        div 7 4
        """
        value = single_value(execute(src))
        assert value.typ == INT and value.term is smt.int_const(1)

    def test_unknown_function_unsupported(self):
        from repro.typecheck.types import FunType

        executor = SymExecutor()
        fn, _ = fresh_of_type(FunType(INT, INT), executor.names)
        (out,) = execute("f 1", env=SymEnv({"f": fn}), executor=executor)
        assert not out.ok and out.kind is ErrKind.UNSUPPORTED

    def test_apply_non_function(self):
        (out,) = execute("1 2")
        assert not out.ok and out.kind is ErrKind.TYPE_ERROR


class TestUnsupportedOperations:
    def test_nonlinear_multiplication(self):
        executor = SymExecutor()
        x, _ = fresh_of_type(INT, executor.names)
        y, _ = fresh_of_type(INT, executor.names)
        (out,) = execute("x * y", env=SymEnv({"x": x, "y": y}), executor=executor)
        assert not out.ok and out.kind is ErrKind.UNSUPPORTED

    def test_constant_multiplication_ok(self):
        executor = SymExecutor()
        x, _ = fresh_of_type(INT, executor.names)
        (out,) = execute("x * 3", env=SymEnv({"x": x}), executor=executor)
        assert out.ok

    def test_symbolic_division_unsupported(self):
        executor = SymExecutor()
        x, _ = fresh_of_type(INT, executor.names)
        (out,) = execute("7 / x", env=SymEnv({"x": x}), executor=executor)
        assert not out.ok and out.kind is ErrKind.UNSUPPORTED

    def test_division_by_constant_encoded(self):
        executor = SymExecutor()
        x, _ = fresh_of_type(INT, executor.names)
        (out,) = execute("x / 2", env=SymEnv({"x": x}), executor=executor)
        assert out.ok
        # Definitional constraints pin the quotient: under them,
        # x = 7 implies the result is 3.
        assert smt.is_valid(
            smt.implies(
                smt.eq(x.term, smt.int_const(7)),
                smt.eq(out.value.term, smt.int_const(3)),
            ),
            assuming=list(out.state.defs),
        )

    def test_truncating_division_negative(self):
        executor = SymExecutor()
        x, _ = fresh_of_type(INT, executor.names)
        (out,) = execute("x / 2", env=SymEnv({"x": x}), executor=executor)
        assert smt.is_valid(
            smt.implies(
                smt.eq(x.term, smt.int_const(-7)),
                smt.eq(out.value.term, smt.int_const(-3)),
            ),
            assuming=list(out.state.defs),
        )

    def test_division_by_zero_is_zero(self):
        assert single_value(execute("5 / 0")).term is smt.int_const(0)

    def test_typed_block_without_hook(self):
        (out,) = execute("{t 1 t}")
        assert not out.ok and out.kind is ErrKind.UNSUPPORTED

    def test_sym_in_sym_passthrough(self):
        assert single_value(execute("{s {s 3 s} s}")).term is smt.int_const(3)
