"""Correctness tests for the solver service's query cache.

The cache must be invisible: every answer it serves — from the syntactic
tier, the exact-key tier, the subset/superset shortcut tiers, or the
model-evaluation tier — must equal what a cold :class:`Solver` says for
the same conjunction.  Verdicts are also sharded by ``int_budget``: a
result obtained under one budget is never served under another.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import smt
from repro.smt import (
    BOOL,
    INT,
    SatResult,
    Solver,
    SolverService,
    and_,
    eq,
    false,
    gt,
    int_const,
    le,
    lt,
    not_,
    or_,
    true,
    var,
)

x = var("x", INT)
y = var("y", INT)
z = var("z", INT)
p = var("p", BOOL)
q = var("q", BOOL)


def cold_verdict(*formulas) -> SatResult:
    solver = Solver()
    solver.add(*formulas)
    return solver.check()


ATOMS = [
    p,
    q,
    le(x, int_const(2)),
    lt(int_const(0), x),
    eq(x, y),
    le(smt.add(x, y), int_const(5)),
    lt(y, z),
    eq(z, int_const(3)),
    gt(x, int_const(-2)),
    eq(y, smt.add(x, int_const(1))),
]


def formulas(depth: int):
    if depth == 0:
        return st.sampled_from(ATOMS)
    inner = formulas(depth - 1)
    return st.one_of(
        st.sampled_from(ATOMS),
        inner.map(not_),
        st.tuples(inner, inner).map(lambda t: and_(*t)),
        st.tuples(inner, inner).map(lambda t: or_(*t)),
    )


# ---------------------------------------------------------------------------
# Tier behavior (directed)
# ---------------------------------------------------------------------------


class TestSyntacticTier:
    def test_literal_true_and_empty(self):
        svc = SolverService()
        assert svc.check_sat(()) is SatResult.SAT
        assert svc.check_sat((true(),)) is SatResult.SAT
        assert svc.stats.syntactic_hits == 2
        assert svc.stats.full_solves == 0

    def test_literal_false(self):
        svc = SolverService()
        assert svc.check_sat((false(),)) is SatResult.UNSAT
        assert svc.check_sat((p, false(), q)) is SatResult.UNSAT
        assert svc.stats.full_solves == 0

    def test_contradiction_by_negation(self):
        svc = SolverService()
        g = gt(x, int_const(0))
        assert svc.check_sat((g, not_(g))) is SatResult.UNSAT
        assert svc.check_sat((p, and_(not_(p), q))) is SatResult.UNSAT
        assert svc.stats.syntactic_hits == 2
        assert svc.stats.full_solves == 0

    def test_guard_already_asserted_dedupes(self):
        """Asserting a guard twice yields the same normalized key."""
        svc = SolverService()
        g = gt(x, int_const(0))
        assert svc.check_sat((g,)) is SatResult.SAT
        assert svc.check_sat((g, g)) is SatResult.SAT
        assert svc.check_sat((and_(g, g),)) is SatResult.SAT
        assert svc.stats.full_solves == 1


class TestCacheTiers:
    def test_exact_hit(self):
        svc = SolverService()
        query = (gt(x, int_const(0)), lt(x, int_const(5)))
        assert svc.check_sat(query) is SatResult.SAT
        assert svc.check_sat(query) is SatResult.SAT
        assert svc.stats.exact_hits == 1
        assert svc.stats.full_solves == 1

    def test_subset_of_sat_set_answers_sat(self):
        svc = SolverService()
        a, b, c = gt(x, int_const(0)), lt(x, int_const(5)), lt(y, x)
        assert svc.check_sat((a, b, c)) is SatResult.SAT
        assert svc.check_sat((a, c)) is SatResult.SAT
        assert svc.stats.full_solves == 1
        assert svc.stats.subset_hits + svc.stats.model_eval_hits >= 1

    def test_superset_of_unsat_core_answers_unsat(self):
        svc = SolverService()
        a, b = gt(x, int_const(3)), lt(x, int_const(4))
        assert svc.check_sat((a, b)) is SatResult.UNSAT
        assert svc.check_sat((a, b, lt(y, z))) is SatResult.UNSAT
        assert svc.stats.superset_hits == 1
        assert svc.stats.full_solves == 1

    def test_model_eval_tier_extends_prefix(self):
        """KLEE-style: a cached model that happens to satisfy a *new*
        conjunct answers SAT without solving."""
        svc = SolverService()
        assert svc.check_sat((gt(x, int_const(10)),)) is SatResult.SAT
        # x > 10 in any model also has x > 0: not a subset (different key,
        # new conjunct), but the cached model evaluates it true.
        assert svc.check_sat((gt(x, int_const(10)), gt(x, int_const(0)))) is (
            SatResult.SAT
        )
        assert svc.stats.full_solves == 1
        assert svc.stats.model_eval_hits == 1

    def test_cache_disabled_always_solves(self):
        svc = SolverService(cache_enabled=False)
        query = (gt(x, int_const(0)),)
        assert svc.check_sat(query) is SatResult.SAT
        assert svc.check_sat(query) is SatResult.SAT
        assert svc.stats.full_solves == 2
        assert svc.stats.cache_hits == 0


class TestBudgetSharding:
    def test_no_reuse_across_budgets(self):
        svc = SolverService()
        query = (gt(x, int_const(0)), lt(x, int_const(7)))
        assert svc.check_sat(query, int_budget=4000) is SatResult.SAT
        assert svc.check_sat(query, int_budget=8000) is SatResult.SAT
        assert svc.stats.full_solves == 2  # second budget: fresh shard
        assert svc.check_sat(query, int_budget=4000) is SatResult.SAT
        assert svc.check_sat(query, int_budget=8000) is SatResult.SAT
        assert svc.stats.full_solves == 2  # now both shards are warm

    def test_unknown_never_cached(self, monkeypatch):
        svc = SolverService()
        calls = []

        def fake_solve(conjuncts, int_budget, corrupt=False):
            calls.append(conjuncts)
            svc.stats.full_solves += 1
            return SatResult.UNKNOWN, None

        monkeypatch.setattr(svc, "_solve", fake_solve)
        query = (gt(x, int_const(0)),)
        assert svc.check_sat(query) is SatResult.UNKNOWN
        assert svc.check_sat(query) is SatResult.UNKNOWN
        assert len(calls) == 2  # no caching of UNKNOWN
        assert all(not shard.exact for shard in svc._shards.values())


class TestGlobalService:
    def test_one_shot_helpers_route_through_service(self):
        svc = smt.reset_service()
        assert smt.is_satisfiable(gt(x, int_const(0)))
        assert smt.is_valid(or_(p, not_(p)))
        assert svc.stats.queries == 2
        assert smt.get_service() is svc
        smt.reset_service()

    def test_set_service(self):
        mine = SolverService(cache_enabled=False)
        try:
            assert smt.set_service(mine) is mine
            assert smt.get_service() is mine
        finally:
            smt.reset_service()


# ---------------------------------------------------------------------------
# Property: cached answers equal a cold solver (all tiers)
# ---------------------------------------------------------------------------


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.lists(formulas(2), min_size=1, max_size=4), st.data())
def test_cached_answers_match_cold_solver(conjuncts, data):
    svc = SolverService()
    cold = cold_verdict(*conjuncts)
    assert svc.check_sat(conjuncts) is cold
    # Repeat: exact tier must agree.
    assert svc.check_sat(conjuncts) is cold
    # A random subset: subset/model tiers must agree with a cold solver.
    subset = data.draw(st.lists(st.sampled_from(conjuncts), max_size=len(conjuncts)))
    assert svc.check_sat(subset) is cold_verdict(*subset)
    # A random superset: superset/model tiers must agree with a cold solver.
    extra = data.draw(formulas(1))
    superset = conjuncts + [extra]
    assert svc.check_sat(superset) is cold_verdict(*superset)


@settings(max_examples=40, deadline=None)
@given(st.lists(formulas(2), min_size=1, max_size=3))
def test_warm_service_matches_cold_across_queries(conjuncts):
    """One long-lived service across many random queries (the production
    shape) must still answer exactly like cold solvers."""
    svc = _WARM_SERVICE
    assert svc.check_sat(conjuncts) is cold_verdict(*conjuncts)


_WARM_SERVICE = SolverService()


# Atoms over variables that never occur in ATOMS: a warm model has no
# assignment for them, so the model-eval tier must fall back to its
# total-interpretation defaults (0 / False) — and stay sound doing so.
f1 = var("fresh_i1", INT)
f2 = var("fresh_i2", INT)
fp = var("fresh_b", BOOL)

FRESH_ATOMS = [
    fp,
    not_(fp),
    le(f1, int_const(0)),
    lt(int_const(0), f1),
    eq(f1, f2),
    eq(f2, smt.add(x, int_const(1))),
    lt(f1, y),
    eq(f1, int_const(-3)),
]


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    st.lists(formulas(2), min_size=1, max_size=3),
    st.lists(st.sampled_from(FRESH_ATOMS), min_size=1, max_size=3),
)
def test_model_eval_tier_sound_for_fresh_variables(warm_conjuncts, fresh_conjuncts):
    """Pin the model-eval tier against a cold solver on queries containing
    variables the cached models have never seen.

    Cached models are *total* interpretations (unassigned variables read
    as 0/False), so a model-eval hit on a query with fresh variables is
    still a genuine witness — this property keeps that argument honest.
    """
    svc = SolverService()
    # Warm the cache so later queries can hit the model-eval tier.
    svc.check_sat(warm_conjuncts)
    mixed = warm_conjuncts + fresh_conjuncts
    assert svc.check_sat(mixed) is cold_verdict(*mixed)
    # The fresh conjuncts alone must also agree.
    assert svc.check_sat(fresh_conjuncts) is cold_verdict(*fresh_conjuncts)


def test_model_eval_hit_with_fresh_variable_is_correct():
    """Directed: a fresh variable satisfied by the default value 0 may hit
    the model-eval tier, and the verdict must match a cold solver."""
    svc = SolverService()
    warm = [gt(x, int_const(0))]
    assert svc.check_sat(warm) is SatResult.SAT
    fresh = var("model_eval_fresh", INT)
    query = warm + [le(fresh, int_const(0))]  # 0 satisfies the default
    assert svc.check_sat(query) is cold_verdict(*query) is SatResult.SAT
    # And one the default value falsifies: no hit, full solve, still right.
    query2 = warm + [lt(int_const(0), fresh)]
    assert svc.check_sat(query2) is cold_verdict(*query2) is SatResult.SAT


def test_model_eval_never_crosses_budget_shards():
    """A model cached under one int_budget is never consulted for a query
    under another: shards keep budget-dependent UNKNOWNs honest."""
    svc = SolverService()
    formula = gt(x, int_const(0))
    assert svc.check_sat([formula], int_budget=2000) is SatResult.SAT
    hits_before = svc.stats.model_eval_hits
    assert svc.check_sat([formula, le(y, x)], int_budget=4000) is SatResult.SAT
    assert svc.stats.model_eval_hits == hits_before


@pytest.mark.parametrize("budget", [2000, 4000])
def test_model_method_matches_condition(budget):
    svc = SolverService()
    condition = and_(gt(x, int_const(100)), lt(x, int_const(200)))
    model = svc.model(condition, int_budget=budget)
    assert 100 < model.eval(x) < 200
    # Second call may reuse the cached model but must stay correct.
    model2 = svc.model(condition, int_budget=budget)
    assert 100 < model2.eval(x) < 200
