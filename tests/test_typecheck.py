"""Tests for the standalone type checker (paper Section 3.1)."""

import pytest

from repro.lang import parse
from repro.typecheck import (
    BOOL,
    INT,
    STR,
    UNIT,
    FunType,
    RefType,
    TypeEnv,
    TypeError_,
    check_expr,
)
from repro.typecheck.checker import TypeChecker


def type_of(source, env=None):
    return check_expr(parse(source), env)


class TestWellTyped:
    def test_literals(self):
        assert type_of("1") == INT
        assert type_of("true") == BOOL
        assert type_of('"s"') == STR
        assert type_of("()") == UNIT

    def test_arithmetic_and_comparison(self):
        assert type_of("1 + 2 * 3") == INT
        assert type_of("1 < 2") == BOOL
        assert type_of("1 = 2") == BOOL
        assert type_of('"a" = "b"') == BOOL

    def test_if(self):
        assert type_of("if true then 1 else 2") == INT

    def test_let(self):
        assert type_of("let x = 1 in x + 1") == INT
        assert type_of("let x : int = 1 in x") == INT

    def test_references(self):
        assert type_of("ref 1") == RefType(INT)
        assert type_of("!(ref true)") == BOOL
        assert type_of("let x = ref 0 in x := 1") == INT

    def test_ref_equality(self):
        assert type_of("let x = ref 0 in let y = ref 0 in x = y") == BOOL

    def test_functions(self):
        assert type_of("fun x : int -> x + 1") == FunType(INT, INT)
        assert type_of("(fun x : int -> x < 0) 3") == BOOL

    def test_higher_order(self):
        src = "fun f : (int -> int) -> f 0"
        assert type_of(src) == FunType(FunType(INT, INT), INT)

    def test_while(self):
        assert type_of("while true do () done") == UNIT

    def test_seq(self):
        assert type_of("(); 1") == INT

    def test_typed_block_passthrough(self):
        assert type_of("{t 1 + 1 t}") == INT

    def test_environment(self):
        env = TypeEnv({"x": INT, "p": BOOL})
        assert type_of("if p then x else 0", env) == INT


class TestIllTyped:
    @pytest.mark.parametrize(
        "source",
        [
            "1 + true",
            '"foo" + 3',
            "if 1 then 2 else 3",
            "if true then 1 else false",
            "not 3",
            "!5",
            "5 := 1",
            "let x = ref 0 in x := true",  # writes must preserve types
            "x",
            "1 = true",
            "(fun x : int -> x) = (fun x : int -> x)",  # no function equality
            "(1) 2",
            "(fun x : int -> x) true",
            "while 1 do () done",
            "let x : bool = 1 in x",
            "1 < true",
            "true && 1",
        ],
    )
    def test_rejected(self, source):
        with pytest.raises(TypeError_):
            type_of(source)

    def test_unreachable_false_branch_still_checked(self):
        """Pure type checking is path-insensitive: Section 2's motivating
        false positive."""
        with pytest.raises(TypeError_):
            type_of('if true then 5 else "foo" + 3')

    def test_symbolic_block_requires_hook(self):
        with pytest.raises(TypeError_) as excinfo:
            type_of("{s 1 s}")
        assert "symbolic" in str(excinfo.value)


class TestHook:
    def test_hook_receives_env_and_block(self):
        calls = []

        def hook(env, block):
            calls.append((env, block))
            return INT

        checker = TypeChecker(symbolic_block_hook=hook)
        typ = checker.check(parse("let x = true in {s 1 s}"))
        assert typ == INT
        (env, block) = calls[0]
        assert env.lookup("x") == BOOL

    def test_error_positions_reported(self):
        with pytest.raises(TypeError_) as excinfo:
            type_of("let y = 1 in\n  y + true")
        assert "2:" in str(excinfo.value)
