"""The parallel engine's building blocks: budget sharding, cache
deltas, and worker-crash containment (see docs/ARCHITECTURE.md §1.4).

Full jobs=1 / jobs=N output equivalence lives in
``test_parallel_equivalence.py``; these tests exercise the pieces the
equivalence rests on.
"""

import json
import pathlib

import pytest

from repro import smt
from repro.budget import Budget
from repro.cli import main
from repro.smt.service import SolverService, SolverStats


class TestShardPathCaps:
    def test_unbounded_budget_shards_to_none(self):
        assert Budget().shard_path_caps(3) == [None, None, None]

    def test_even_split(self):
        assert Budget(max_paths=12).shard_path_caps(4) == [3, 3, 3, 3]

    def test_remainder_goes_to_first_shards_one_each(self):
        assert Budget(max_paths=11).shard_path_caps(4) == [3, 3, 3, 2]
        assert Budget(max_paths=5).shard_path_caps(4) == [2, 1, 1, 1]

    def test_caps_cover_exactly_the_remaining_budget(self):
        budget = Budget(max_paths=100)
        for _ in range(37):
            budget.charge_path()
        caps = budget.shard_path_caps(8)
        assert sum(caps) == 100 - 37

    def test_exhausted_budget_shards_to_no_workers(self):
        # No 0-path caps: a worker with cap 0 would breach instantly and
        # speculate nothing.  An exhausted budget fans out to nobody.
        budget = Budget(max_paths=2)
        for _ in range(5):
            budget.charge_path()
        assert budget.shard_path_caps(2) == []

    def test_more_jobs_than_paths_clamps_shards_to_one_path_each(self):
        budget = Budget(max_paths=3)
        assert budget.shard_path_caps(8) == [1, 1, 1]

    @pytest.mark.parametrize("max_paths", [1, 2, 3, 5, 17, 64])
    @pytest.mark.parametrize("used", [0, 1, 4, 20])
    @pytest.mark.parametrize("jobs", [1, 2, 3, 7, 16])
    def test_cap_conservation_property(self, max_paths, used, jobs):
        """Total cap conservation: every shard gets >= 1 path, and the
        shards together cover exactly the remaining budget."""
        budget = Budget(max_paths=max_paths)
        for _ in range(used):
            budget.charge_path()
        caps = budget.shard_path_caps(jobs)
        remaining = max(0, max_paths - used)
        assert sum(caps) == remaining
        assert len(caps) == min(jobs, remaining)
        assert all(cap >= 1 for cap in caps)

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            Budget().shard_path_caps(0)


class TestRescopeForWorker:
    def test_worker_restarts_path_count_with_its_cap(self):
        budget = Budget(deadline=60.0, query_timeout=1.0, max_paths=100)
        for _ in range(40):
            budget.charge_path()
        cap = budget.shard_path_caps(4)[0]
        budget.rescope_for_worker(cap)  # in real use: the forked copy
        assert budget.paths_used == 0
        assert budget.max_paths == 15
        # The wall-clock limits ride along unchanged (the deadline is an
        # absolute monotonic instant shared by parent and workers).
        assert budget.deadline == 60.0
        assert budget.query_timeout == 1.0

    def test_none_cap_means_unbounded_worker(self):
        budget = Budget(max_paths=7)
        budget.rescope_for_worker(None)
        assert budget.max_paths is None
        assert not budget.paths_exhausted()


def _some_queries():
    x, y = smt.var("x", smt.INT), smt.var("y", smt.INT)
    k = smt.int_const
    return [
        (smt.lt(x, k(3)), smt.lt(k(5), x)),  # UNSAT
        (smt.le(k(0), x), smt.lt(x, y), smt.lt(y, k(10))),  # SAT
        (smt.eq(smt.add(x, y), k(7)), smt.lt(x, k(0))),  # SAT
    ]


class TestCacheDelta:
    def test_empty_delta_when_nothing_was_solved(self):
        service = SolverService()
        baseline = service.cache_baseline()
        from dataclasses import replace

        delta = service.collect_delta(baseline, replace(service.stats))
        assert len(delta) == 0

    def test_delta_transfers_verdicts_to_a_fresh_service(self):
        worker = SolverService()
        baseline = worker.cache_baseline()
        from dataclasses import replace

        stats0 = replace(worker.stats)
        expected = [worker.check_sat(q) for q in _some_queries()]
        delta = worker.collect_delta(baseline, stats0)
        assert len(delta) == len(_some_queries())

        parent = SolverService()
        imported = parent.merge_delta(delta)
        assert imported == len(delta)
        solves_before = parent.stats.full_solves
        got = [parent.check_sat(q) for q in _some_queries()]
        assert got == expected
        # Every query was answered from the imported entries.
        assert parent.stats.full_solves == solves_before

    def test_merge_is_idempotent(self):
        worker = SolverService()
        baseline = worker.cache_baseline()
        from dataclasses import replace

        stats0 = replace(worker.stats)
        for q in _some_queries():
            worker.check_sat(q)
        delta = worker.collect_delta(baseline, stats0)

        parent = SolverService()
        assert parent.merge_delta(delta) == len(delta)
        assert parent.merge_delta(delta) == 0  # all entries already known

    def test_delta_excludes_entries_known_at_the_baseline(self):
        worker = SolverService()
        worker.check_sat(_some_queries()[0])  # cached pre-fork
        baseline = worker.cache_baseline()
        from dataclasses import replace

        stats0 = replace(worker.stats)
        for q in _some_queries():
            worker.check_sat(q)  # first one is a cache hit, not a new entry
        delta = worker.collect_delta(baseline, stats0)
        assert len(delta) == len(_some_queries()) - 1

    def test_delta_ships_perf_counters_only(self):
        worker = SolverService()
        baseline = worker.cache_baseline()
        from dataclasses import replace

        stats0 = replace(worker.stats)
        worker.stats.witnesses_confirmed += 3  # trust verdicts: not perf
        for q in _some_queries():
            worker.check_sat(q)
        delta = worker.collect_delta(baseline, stats0)
        assert delta.stats.full_solves > 0
        assert delta.stats.witnesses_confirmed == 0

        parent = SolverService()
        parent.merge_delta(delta)
        # Worker counters land in the speculative sub-table, never in the
        # authoritative fields: the parent re-runs the blocks itself, so
        # folding worker solve time in would double-count wall time.
        assert parent.stats.full_solves == 0
        assert parent.stats.solve_seconds == 0.0
        assert parent.stats.speculative is not None
        assert parent.stats.speculative.full_solves == delta.stats.full_solves
        assert parent.stats.witnesses_confirmed == 0
        assert parent.stats.cache_entries_imported == len(delta)

    def test_mark_delta_matches_the_full_baseline_delta(self):
        """``cache_mark``/``collect_delta_since`` — the O(delta) journal
        read the pooled daemon workers use — ships exactly what the
        O(cache) ``cache_baseline``/``collect_delta`` pair would."""
        from dataclasses import replace

        worker = SolverService()
        worker.check_sat(_some_queries()[0])  # pre-fork state: not shipped
        baseline = worker.cache_baseline()
        mark = worker.cache_mark()
        stats0 = replace(worker.stats)
        expected = [worker.check_sat(q) for q in _some_queries()]
        cheap = worker.collect_delta_since(mark, stats0)
        full = worker.collect_delta(baseline, stats0)
        assert len(cheap) == len(full) == len(_some_queries()) - 1

        parent = SolverService()
        assert parent.merge_delta(cheap) == len(cheap)
        solves_before = parent.stats.full_solves
        assert [parent.check_sat(q) for q in _some_queries()[1:]] == (
            expected[1:]
        )
        assert parent.stats.full_solves == solves_before

    def test_stale_mark_ships_the_whole_journal(self):
        """A shard evicted since the mark invalidates the journal
        position; the conservative fallback ships every surviving entry
        — over-shipping is idempotent, under-shipping loses verdicts."""
        from dataclasses import replace

        worker = SolverService()
        worker.check_sat(_some_queries()[0])
        mark = worker.cache_mark()
        stats0 = replace(worker.stats)
        for q in _some_queries()[1:]:
            worker.check_sat(q)
        for shard in worker._shards.values():
            shard.resets += 1  # as if eviction restarted the journal
        delta = worker.collect_delta_since(mark, stats0)
        assert len(delta) == len(_some_queries())  # pre-mark entry included

    def test_merged_perf_shows_up_as_a_speculative_table(self):
        stats = SolverService().stats
        assert "speculative" not in stats.as_dict()  # serial runs: absent
        delta = SolverStats(queries=4, full_solves=2, solve_seconds=0.5)
        stats.merge_perf(delta)
        stats.merge_perf(delta)
        spec = stats.as_dict()["speculative"]
        assert spec["queries"] == 8
        assert spec["full_solves"] == 4
        assert spec["solve_seconds"] == 1.0
        assert stats.queries == 0 and stats.solve_seconds == 0.0


TWO_CLEAN_BLOCKS = """
int block_a(int a, int b) MIX(symbolic) {
  if (a < 0) { return 0; }
  if (3 * a + 2 * b < 7) {
    return 1;
  }
  return 2;
}

int block_b(int c) MIX(symbolic) {
  if (c > 10) {
    return c - 1;
  }
  return c;
}

int main(void) {
  int r;
  r = block_a(1, 2);
  r = r + block_b(3);
  return r;
}
"""

BLOCKS_WITH_WARNING = """
void sysutil_free(void *nonnull p_ptr) MIX(typed);
int *g_ptr;

int block_a(int a, int b) MIX(symbolic) {
  if (a < 0) { return 0; }
  if (3 * a + 2 * b < 7) {
    return 1;
  }
  return 2;
}

int block_b(int c) MIX(symbolic) {
  if (c > 10) {
    sysutil_free(g_ptr);
    g_ptr = NULL;
  }
  return c;
}

int main(void) {
  int r;
  r = block_a(1, 2);
  r = r + block_b(3);
  return r;
}
"""


class TestWorkerCrashContainment:
    def _run(self, tmp_path, source, argv, capsys):
        path = tmp_path / "program.c"
        path.write_text(source)
        code = main(["mixy", str(path), *argv])
        return code, capsys.readouterr().out

    def test_injected_crash_under_jobs_degrades_block_and_exits_zero(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        smt.reset_service()
        # Query 3 lands inside a symbolic block's exploration.  The
        # injected crash fires in the worker (delta discarded) and then
        # deterministically re-fires in the authoritative pass, where
        # trust ring 3 contains it: repro written, block degraded to
        # qualifier inference, run continues, exit code 0.
        code, out = self._run(
            tmp_path,
            TWO_CLEAN_BLOCKS,
            ["--jobs", "2", "--inject-fault", "3:crash", "--crash-dir", "crashes"],
            capsys,
        )
        assert code == 0
        assert "analysis crash contained" in out
        repros = list(pathlib.Path("crashes").glob("crash-*.json"))
        assert repros, "expected a crash repro to be recorded"
        phases = {json.loads(p.read_text())["phase"] for p in repros}
        assert any(p.startswith("mixy:") for p in phases)

    def test_other_blocks_warnings_survive_a_crashed_block(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        smt.reset_service()
        code, out = self._run(
            tmp_path,
            BLOCKS_WITH_WARNING,
            ["--jobs", "2", "--inject-fault", "3:crash", "--crash-dir", "crashes"],
            capsys,
        )
        # block_a's crash is contained; block_b's genuine nonnull
        # violation is still reported and still drives the exit code.
        assert code == 1
        assert "analysis crash contained in block_a" in out
        assert "nonnull parameter p_ptr of sysutil_free" in out

    def test_uninjected_parallel_run_is_clean(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        smt.reset_service()
        code, out = self._run(tmp_path, TWO_CLEAN_BLOCKS, ["--jobs", "2"], capsys)
        assert code == 0
        assert "crash" not in out
