"""Trust ring 1: witness replay of reported error paths.

Covers the classification matrix of ``repro/witness.py`` for both
analyzers, including the edge cases the issue calls out: models with
don't-care variables filled by defaults, paths through a MemMerge-heavy
memory log (SEIf-Defer), and a deliberately broken executor
(monkeypatched to drop path guards) that must classify REPLAY_DIVERGED,
never CONFIRMED.
"""

import json

import pytest

from repro import smt
from repro.core import MixConfig, analyze_source
from repro.lang.parser import parse_type
from repro.mixy import Mixy, MixyConfig
from repro.mixy.corpus_vsftpd import ANNOTATION_SITES, annotation_subsets, mini_vsftpd
from repro.smt.service import FaultInjector, SolverService
from repro.symexec import IfStrategy, SymConfig
from repro.typecheck.types import TypeEnv
from repro.witness import Witness, WitnessVerdict


@pytest.fixture(autouse=True)
def fresh_service():
    saved = smt.get_service()
    smt.set_service(SolverService())
    yield
    smt.set_service(saved)


def _env(spec: str) -> TypeEnv:
    bindings = {}
    for item in filter(None, spec.split(",")):
        name, _, text = item.partition(":")
        bindings[name.strip()] = parse_type(text.strip())
    return TypeEnv(bindings)


def _mix_config(**kwargs) -> MixConfig:
    return MixConfig(validate_witnesses=True, contain_crashes=False, **kwargs)


def _mixy_config(**kwargs) -> MixyConfig:
    return MixyConfig(validate_witnesses=True, contain_crashes=False, **kwargs)


class TestMixWitness:
    def test_confirmed_with_concrete_inputs(self):
        report = analyze_source(
            "{s if x < 3 then 1 + true else 2 s}",
            env=_env("x:int"),
            config=_mix_config(),
        )
        assert not report.ok
        (diag,) = report.diagnostics
        assert diag.witness is not None
        assert diag.witness.verdict is WitnessVerdict.CONFIRMED
        assert diag.witness.inputs["x"] < 3
        assert smt.get_service().stats.witnesses_confirmed == 1

    def test_dont_care_inputs_filled_by_defaults(self):
        # y never appears in the path condition: the model leaves it
        # unconstrained and concretization falls back to the default.
        report = analyze_source(
            "{s if x < 3 then 1 + true else y s}",
            env=_env("x:int,y:int"),
            config=_mix_config(),
        )
        (diag,) = report.diagnostics
        assert diag.witness.verdict is WitnessVerdict.CONFIRMED
        assert diag.witness.inputs["y"] == 0  # default for a don't-care int

    def test_memmerge_heavy_path_still_replays(self):
        # SEIf-Defer merges the two branch memories into a MemMerge node;
        # the replay must still concretize and reproduce the error.
        report = analyze_source(
            "{s (if x < 0 then r := 1 else r := 2); !r + true s}",
            env=_env("x:int,r:int ref"),
            config=_mix_config(sym=SymConfig(if_strategy=IfStrategy.DEFER)),
        )
        assert not report.ok
        assert any(
            d.witness is not None
            and d.witness.verdict is WitnessVerdict.CONFIRMED
            for d in report.diagnostics
        )

    def test_static_limit_diagnostics_are_unconfirmed(self):
        # A loop-bound diagnostic reports an analysis limit; the concrete
        # semantics has nothing to reproduce.
        report = analyze_source(
            "{s let i = ref 0 in while !i < 100 do i := !i + 1 done s}",
            config=_mix_config(sym=SymConfig(max_loop_unroll=3)),
        )
        for diag in report.diagnostics:
            if diag.witness is not None:
                assert diag.witness.verdict is not WitnessVerdict.CONFIRMED

    def test_guard_dropping_executor_diverges(self, monkeypatch):
        # A broken executor that forgets to extend the path condition at
        # forks reports an error on a path the concrete run never takes:
        # the replay must indict the executor, not confirm the report.
        from repro.symexec.executor import State

        monkeypatch.setattr(State, "and_guard", lambda self, conjunct: self)
        report = analyze_source(
            "{s if x < 3 then 2 else 1 + true s}",
            env=_env("x:int"),
            config=_mix_config(),
        )
        assert not report.ok
        verdicts = [d.witness.verdict for d in report.diagnostics if d.witness]
        assert WitnessVerdict.REPLAY_DIVERGED in verdicts
        assert smt.get_service().stats.witnesses_diverged >= 1

    def test_witness_repr_and_dict_are_json_clean(self):
        report = analyze_source(
            "{s if x < 3 then 1 + true else 2 s}",
            env=_env("x:int"),
            config=_mix_config(),
        )
        (diag,) = report.diagnostics
        payload = json.dumps(diag.witness.as_dict())
        assert "CONFIRMED" in payload
        assert "CONFIRMED" in str(diag)


class TestMixyWitness:
    NULL_ARG = """
    void deref(int *p) MIX(symbolic) { *p = 1; }
    void main() { deref(NULL); }
    """

    GUARDED = """
    void deref(int *p) MIX(symbolic) { if (p != NULL) { *p = 1; } }
    void main() { deref(NULL); }
    """

    def test_confirmed_null_argument(self):
        warnings = Mixy(self.NULL_ARG, _mixy_config()).run()
        (warning,) = warnings
        assert warning.witness is not None
        assert warning.witness.verdict is WitnessVerdict.CONFIRMED
        assert warning.witness.inputs == {"p": 0}

    def test_guarded_deref_produces_no_warning(self):
        assert Mixy(self.GUARDED, _mixy_config()).run() == []

    def test_guard_dropping_executor_diverges(self, monkeypatch):
        # Break the C executor the same way: branch guards dropped, so
        # the guarded dereference is (wrongly) reported reachable with
        # NULL.  The concrete replay takes the guard and must diverge.
        from repro.mixy.symexec import CState

        monkeypatch.setattr(CState, "and_guard", lambda self, conjunct: self)
        warnings = Mixy(self.GUARDED, _mixy_config()).run()
        assert warnings, "the broken executor should warn"
        verdicts = [w.witness.verdict for w in warnings if w.witness]
        assert WitnessVerdict.REPLAY_DIVERGED in verdicts
        assert smt.get_service().stats.witnesses_diverged >= 1

    def test_struct_flow_confirmed(self):
        # The witness path crosses a struct field and a helper call.
        source = """
        struct box { int *slot; };
        void use(struct box *b) MIX(symbolic) { *(b->slot) = 1; }
        void main() {
          struct box b;
          b.slot = NULL;
          use(&b);
        }
        """
        warnings = Mixy(source, _mixy_config()).run()
        assert warnings
        assert any(
            w.witness is not None
            and w.witness.verdict is not WitnessVerdict.REPLAY_DIVERGED
            for w in warnings
        )

    def test_paranoid_bad_model_still_confirms(self):
        # Ring 2 catches the corrupted model and re-solves, so ring 1
        # still sees a correct model and confirms the witness.
        service = SolverService(paranoid=True)
        service.fault_injector = FaultInjector(faults={1: FaultInjector.BAD_MODEL})
        smt.set_service(service)
        warnings = Mixy(self.NULL_ARG, _mixy_config()).run()
        verdicts = [w.witness.verdict for w in warnings if w.witness]
        assert WitnessVerdict.REPLAY_DIVERGED not in verdicts
        assert service.stats.self_check_failures >= 1


class TestCorpusZeroDivergence:
    """Acceptance: on the seed corpus every replayed report classifies,
    and none as REPLAY_DIVERGED."""

    @pytest.mark.parametrize("subset", list(annotation_subsets()))
    def test_vsftpd_no_divergence(self, subset):
        warnings = Mixy(mini_vsftpd(subset), _mixy_config()).run()
        stats = smt.get_service().stats
        assert stats.witnesses_diverged == 0
        for warning in warnings:
            if warning.witness is not None:
                assert (
                    warning.witness.verdict is not WitnessVerdict.REPLAY_DIVERGED
                )

    def test_fully_annotated_vsftpd_paranoid(self):
        smt.set_service(SolverService(paranoid=True))
        warnings = Mixy(
            mini_vsftpd(frozenset(ANNOTATION_SITES)), _mixy_config()
        ).run()
        assert warnings == []
        stats = smt.get_service().stats
        assert stats.witnesses_diverged == 0
        assert stats.self_check_failures == 0


class TestStatsSerialization:
    def test_trust_counters_serialize_to_json(self):
        analyze_source(
            "{s if x < 3 then 1 + true else 2 s}",
            env=_env("x:int"),
            config=_mix_config(),
        )
        stats = smt.get_service().stats.as_dict()
        payload = json.loads(json.dumps(stats))
        for key in (
            "self_check_failures",
            "witnesses_confirmed",
            "witnesses_unconfirmed",
            "witnesses_diverged",
            "blocks_contained",
        ):
            assert key in payload
        assert payload["witnesses_confirmed"] == 1

    def test_witness_dataclass_is_frozen(self):
        w = Witness(WitnessVerdict.CONFIRMED, inputs={"x": 1})
        with pytest.raises(Exception):
            w.verdict = WitnessVerdict.UNCONFIRMED
