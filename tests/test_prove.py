"""Language-level property proving: ``symbolic()`` / ``assume`` /
``check`` in both frontends, and the ``repro prove`` classifier.

The contract under test (see ``repro.prove``):

- verdicts follow the lattice PROVED / COUNTEREXAMPLE / UNCONFIRMED /
  BUDGET / ERROR, and a COUNTEREXAMPLE is *demonstrated*: its model,
  replayed through the concrete interpreter, concretely fails the
  property (counterexample fidelity);
- verdict lines are byte-identical across ``--jobs 1`` / ``--jobs 4``,
  across daemon and one-shot runs, and across ``PYTHONHASHSEED``
  values;
- suite exit codes: 0 all proved, 1 any counterexample, 2 any error
  (no counterexample), 3 incomplete (budget/unconfirmed only).
"""

import glob
import os
import pathlib
import subprocess
import sys

import pytest

import repro
from repro.lang.interp import CheckFailure, Interpreter
from repro.lang.parser import parse
from repro.lang.pretty import pretty
from repro.mixy.c.interp import CCheckFailure, CInterpreter
from repro.mixy.c.parser import parse_program
from repro.mixy.c.pretty import pretty_program
from repro.prove import (
    BUDGET,
    COUNTEREXAMPLE,
    ERROR,
    EXIT_COUNTEREXAMPLE,
    EXIT_ERROR,
    EXIT_INCOMPLETE,
    EXIT_PROVED,
    PROVED,
    PropertyResult,
    exit_code,
    language_for,
    prove_files,
    prove_source,
)

SRC_DIR = str(pathlib.Path(repro.__file__).resolve().parents[1])
EXAMPLES = sorted(
    glob.glob(
        str(pathlib.Path(__file__).resolve().parents[1] / "examples/properties/*")
    )
)

ML_FALSIFIABLE = "let x = symbolic() in check(x < 10)"
ML_VALID = "let x = symbolic() in let _ = assume(x < 5) in check(x < 10)"
ML_BACKSOLVE = (
    "let x = symbolic() in let y = symbolic() in check(not (x + y = 100))"
)
ML_VACUOUS = "let x = symbolic() in let _ = assume(x < x) in check(1 = 2)"

C_FALSIFIABLE = """
int main() {
  int x;
  x = symbolic();
  check(x < 10);
  return 0;
}
"""
C_VALID = """
int main() {
  int x;
  x = symbolic();
  assume(x < 5);
  check(x < 10);
  return 0;
}
"""


def _subprocess_env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env.update(extra)
    return env


def _model_feed(result: PropertyResult) -> list[int]:
    """The counterexample model as a ``symbolic()`` feed, in program
    order (inputs are named ``symbolic!N`` with N ascending in draw
    order)."""
    sym = [
        (int(name.rsplit("!", 1)[1]), int(value))
        for name, value in result.inputs
        if name.startswith("symbolic!")
    ]
    return [value for _, value in sorted(sym)]


# ---------------------------------------------------------------------------
# The constructs themselves
# ---------------------------------------------------------------------------


class TestConstructs:
    def test_ml_parse_pretty_round_trip(self):
        source = "let x = symbolic() in let _ = assume(x < 5) in check(x < 10)"
        assert pretty(parse(pretty(parse(source)))) == pretty(parse(source))

    def test_ml_interp_draws_the_feed_in_order(self):
        program = parse("let x = symbolic() in let y = symbolic() in x - y")
        interp = Interpreter(symbolic_inputs=[7, 2])
        assert interp.eval(program, {}) == 5

    def test_ml_interp_check_failure(self):
        program = parse("let x = symbolic() in check(x < 10)")
        with pytest.raises(CheckFailure):
            Interpreter(symbolic_inputs=[10]).eval(program, {})

    def test_c_parse_pretty_round_trip(self):
        once = pretty_program(parse_program(C_VALID))
        assert pretty_program(parse_program(once)) == once

    def test_c_interp_check_failure(self):
        program = parse_program(C_FALSIFIABLE)
        with pytest.raises(CCheckFailure):
            CInterpreter(program, symbolic_inputs=[10]).call("main")

    def test_c_interp_passing_run(self):
        program = parse_program(C_VALID)
        assert CInterpreter(program, symbolic_inputs=[3]).call("main") == 0


# ---------------------------------------------------------------------------
# Verdict classification
# ---------------------------------------------------------------------------


class TestClassification:
    def test_ml_valid_is_proved(self):
        assert prove_source("mix", ML_VALID, {}).verdict == PROVED

    def test_ml_falsifiable_is_a_confirmed_counterexample(self):
        result = prove_source("mix", ML_FALSIFIABLE, {})
        assert result.verdict == COUNTEREXAMPLE
        assert result.inputs  # the model is printed

    def test_ml_vacuous_is_proved_with_a_vacuity_note(self):
        result = prove_source("mix", ML_VACUOUS, {})
        assert result.verdict == PROVED
        assert "vacuous" in result.detail

    def test_ml_backwards_solving_finds_the_sum(self):
        result = prove_source("mix", ML_BACKSOLVE, {})
        assert result.verdict == COUNTEREXAMPLE
        assert sum(_model_feed(result)) == 100

    def test_ml_path_budget_is_budget_not_proved(self):
        source = (
            "let x = symbolic() in "
            "let y = if x < 0 then 0 - x else x in check(not (y < 0))"
        )
        assert prove_source("mix", source, {"max_paths": 1}).verdict == BUDGET

    def test_ml_parse_error_is_error(self):
        assert prove_source("mix", "let let", {}).verdict == ERROR

    def test_c_valid_is_proved(self):
        assert prove_source("mixy", C_VALID, {}).verdict == PROVED

    def test_c_falsifiable_is_a_confirmed_counterexample(self):
        result = prove_source("mixy", C_FALSIFIABLE, {})
        assert result.verdict == COUNTEREXAMPLE
        assert result.inputs

    def test_c_loop_bound_is_budget(self):
        source = """
        int main() {
          int n; int i;
          n = symbolic();
          assume(n > 0);
          i = 0;
          while (i < n) { i = i + 1; }
          check(i == n);
          return 0;
        }
        """
        assert prove_source("mixy", source, {}).verdict == BUDGET

    def test_c_parse_error_is_error(self):
        assert prove_source("mixy", "int main( {", {}).verdict == ERROR

    def test_c_missing_entry_is_error(self):
        assert prove_source("mixy", "int f() { return 0; }", {}).verdict == ERROR

    def test_language_by_extension(self):
        assert language_for("p.c") == "mixy"
        assert language_for("p.mix") == "mix"
        assert language_for("p.ml") == "mix"


# ---------------------------------------------------------------------------
# Counterexample fidelity: a reported model concretely fails the check
# ---------------------------------------------------------------------------


class TestCounterexampleFidelity:
    def test_ml_models_concretely_fail_their_property(self):
        for source in (ML_FALSIFIABLE, ML_BACKSOLVE):
            result = prove_source("mix", source, {})
            assert result.verdict == COUNTEREXAMPLE
            with pytest.raises(CheckFailure):
                Interpreter(symbolic_inputs=_model_feed(result)).eval(
                    parse(source), {}
                )

    def test_c_model_concretely_fails_its_property(self):
        result = prove_source("mixy", C_FALSIFIABLE, {})
        assert result.verdict == COUNTEREXAMPLE
        with pytest.raises(CCheckFailure):
            CInterpreter(
                parse_program(C_FALSIFIABLE),
                symbolic_inputs=_model_feed(result),
            ).call("main")

    def test_every_example_counterexample_replays_to_a_failure(self):
        for path in EXAMPLES:
            with open(path) as handle:
                source = handle.read()
            result = prove_source(language_for(path), source, {}, name=path)
            if result.verdict != COUNTEREXAMPLE:
                continue
            feed = _model_feed(result)
            if path.endswith(".c"):
                with pytest.raises(CCheckFailure):
                    CInterpreter(
                        parse_program(source), symbolic_inputs=feed
                    ).call("main")
            else:
                with pytest.raises(CheckFailure):
                    Interpreter(symbolic_inputs=feed).eval(parse(source), {})


# ---------------------------------------------------------------------------
# Suite driver: exit codes, ordering, jobs identity
# ---------------------------------------------------------------------------


class TestSuiteDriver:
    def test_exit_code_lattice(self):
        mk = lambda v: PropertyResult("p", v)
        assert exit_code([mk(PROVED)]) == EXIT_PROVED
        assert exit_code([mk(PROVED), mk(COUNTEREXAMPLE)]) == EXIT_COUNTEREXAMPLE
        assert exit_code([mk(COUNTEREXAMPLE), mk(ERROR)]) == EXIT_COUNTEREXAMPLE
        assert exit_code([mk(PROVED), mk(ERROR)]) == EXIT_ERROR
        assert exit_code([mk(PROVED), mk(BUDGET)]) == EXIT_INCOMPLETE

    def test_examples_suite_lines_and_exit(self):
        lines: list[str] = []
        code = prove_files(EXAMPLES, {}, jobs=1, emit=lines.append)
        assert code == EXIT_COUNTEREXAMPLE  # the suite includes refutations
        assert len(lines) == len(EXAMPLES) + 1  # one per file + summary
        # Emitted in sorted-file order regardless of input order.
        assert [line.split(": ", 1)[1].split(" ")[0] for line in lines[:-1]] == EXAMPLES
        reversed_lines: list[str] = []
        prove_files(list(reversed(EXAMPLES)), {}, jobs=1, emit=reversed_lines.append)
        assert reversed_lines == lines

    def test_jobs4_output_is_identical_to_jobs1(self):
        serial: list[str] = []
        parallel: list[str] = []
        prove_files(EXAMPLES, {}, jobs=1, emit=serial.append)
        prove_files(EXAMPLES, {}, jobs=4, emit=parallel.append)
        assert parallel == serial

    def test_unreadable_file_is_an_error(self):
        lines: list[str] = []
        code = prove_files(["/nonexistent/property.mix"], {}, emit=lines.append)
        assert code == EXIT_ERROR
        assert lines[0].startswith("ERROR: ")


# ---------------------------------------------------------------------------
# Cross-process identity: CLI, seeds, daemon
# ---------------------------------------------------------------------------


def _run_cli(args, tmp_path, **env_extra):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        env=_subprocess_env(**env_extra),
        cwd=tmp_path,
        timeout=300,
    )


class TestCrossProcessIdentity:
    def test_prove_cli_exit_codes(self, tmp_path):
        good = tmp_path / "good.mix"
        good.write_text(ML_VALID)
        bad = tmp_path / "bad.mix"
        bad.write_text(ML_FALSIFIABLE)
        assert _run_cli(["prove", str(good)], tmp_path).returncode == EXIT_PROVED
        assert (
            _run_cli(["prove", str(good), str(bad)], tmp_path).returncode
            == EXIT_COUNTEREXAMPLE
        )
        budget = tmp_path / "budget.c"
        budget.write_text(
            "int main() { int n; n = symbolic(); assume(n > 0);\n"
            "  int i; i = 0; while (i < n) { i = i + 1; }\n"
            "  check(i == n); return 0; }\n"
        )
        assert (
            _run_cli(["prove", str(budget)], tmp_path).returncode
            == EXIT_INCOMPLETE
        )

    def test_verdicts_identical_across_hash_seeds(self, tmp_path):
        for name, text in (
            ("bad.mix", ML_BACKSOLVE),
            ("prop.c", C_FALSIFIABLE),
            ("good.mix", ML_VALID),
        ):
            (tmp_path / name).write_text(text)
        args = ["prove", "bad.mix", "prop.c", "good.mix"]
        first = _run_cli(args, tmp_path, PYTHONHASHSEED="1")
        second = _run_cli(args, tmp_path, PYTHONHASHSEED="7")
        assert first.stdout == second.stdout
        assert first.returncode == second.returncode == EXIT_COUNTEREXAMPLE

    def test_analysis_output_identical_across_hash_seeds(self, tmp_path):
        """The satellite regression for seed-independent rendering: a
        full MIXY analysis (qualifier ids and all) is byte-identical
        under different PYTHONHASHSEED values."""
        from repro.mixy.corpus import CASES

        path = tmp_path / "case1.c"
        path.write_text(CASES["case1"].source(False))
        args = ["mixy", str(path), "--jobs", "1"]
        first = _run_cli(args, tmp_path, PYTHONHASHSEED="3")
        second = _run_cli(args, tmp_path, PYTHONHASHSEED="91")
        assert first.stdout == second.stdout
        assert first.returncode == second.returncode


class TestDaemonProve:
    def test_daemon_prove_matches_one_shot(self, tmp_path):
        from repro.serve import request

        bad = tmp_path / "bad.mix"
        bad.write_text(ML_FALSIFIABLE)
        one_shot = _run_cli(["prove", str(bad)], tmp_path)
        assert one_shot.returncode == EXIT_COUNTEREXAMPLE

        daemon = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--listen", "127.0.0.1:0", "--no-store",
                "--max-requests", "2",
            ],
            cwd=tmp_path, env=_subprocess_env(), text=True,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        try:
            announce = daemon.stdout.readline()
            assert "listening on tcp:" in announce, announce
            address = announce.rsplit(" ", 1)[-1].strip()
            replies = [
                request(
                    address,
                    {
                        "cmd": "prove",
                        "lang": "mix",
                        "source": ML_FALSIFIABLE,
                        "options": {"name": str(bad)},
                    },
                    timeout=300.0,
                )
                for _ in range(2)
            ]
        finally:
            try:
                daemon.communicate(timeout=30)
            except subprocess.TimeoutExpired:
                daemon.kill()
                daemon.communicate()
        for reply in replies:
            assert reply["ok"], reply
            result = reply["result"]
            assert result["verdict"] == COUNTEREXAMPLE
            assert result["exit"] == EXIT_COUNTEREXAMPLE
            # Byte-identical to the one-shot CLI's verdict line.
            assert result["lines"][0] == one_shot.stdout.splitlines()[0]

    def test_client_prove_c_matches_one_shot(self, tmp_path):
        """`repro client mixy FILE --prove` goes through the client's own
        option construction — it must default to the prover's symbolic
        entry, not the analyzer's typed entry (which would skip every
        check in a symbolic()-calling main and report PROVED)."""
        bad = tmp_path / "bad.c"
        bad.write_text(C_FALSIFIABLE)
        one_shot = _run_cli(["prove", str(bad)], tmp_path)
        assert one_shot.returncode == EXIT_COUNTEREXAMPLE

        daemon = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--listen", "127.0.0.1:0", "--no-store",
                "--max-requests", "1",
            ],
            cwd=tmp_path, env=_subprocess_env(), text=True,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        try:
            announce = daemon.stdout.readline()
            assert "listening on tcp:" in announce, announce
            address = announce.rsplit(" ", 1)[-1].strip()
            client = _run_cli(
                ["client", "mixy", str(bad), "--prove", "--connect", address],
                tmp_path,
            )
        finally:
            try:
                daemon.communicate(timeout=30)
            except subprocess.TimeoutExpired:
                daemon.kill()
                daemon.communicate()
        assert client.returncode == EXIT_COUNTEREXAMPLE, client.stderr
        assert client.stdout.splitlines() == one_shot.stdout.splitlines()[:1]
