"""Deep validation of the soundness relations (paper §3.3).

Beyond the end-to-end differential suite, these tests check the
*internal* statements of Theorem 1 part 2 and Corollary 1.1 on the
reference-free fragment: for a concrete input valuation V,

- at least one explored path's guard holds under V (exhaustiveness);
- on every such path, ``[[s]]^V`` equals the concrete result.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import smt
from repro.lang import parse, run
from repro.lang.ast import BinOp, BinOpKind, BoolLit, If, IntLit, Let, Not, Var
from repro.symexec import SymEnv, SymExecutor
from repro.symexec.valuation import (
    Valuation,
    ValuationError,
    check_outcome_abstracts,
    matching_outcomes,
)
from repro.symexec.values import fresh_of_type
from repro.typecheck.types import BOOL, INT


def make_env(executor, concrete):
    bindings = {}
    for name, value in concrete.items():
        typ = BOOL if isinstance(value, bool) else INT
        sym, _ = fresh_of_type(typ, executor.names)
        bindings[name] = sym
    return SymEnv(bindings)


def deep_check(source: str, concrete: dict):
    program = parse(source)
    executor = SymExecutor()
    sym_env = make_env(executor, concrete)
    outcomes = executor.execute_all(program, sym_env)
    assert all(o.ok for o in outcomes), outcomes
    valuation = Valuation.from_inputs(sym_env, concrete)
    matching = matching_outcomes(outcomes, valuation)
    # Corollary 1.1: the concrete run follows at least one explored path.
    assert matching, f"no path matches {concrete} for {source}"
    concrete_result = run(program, concrete).value
    for outcome in matching:
        # Theorem 1 part 2: [[s]]^V is the concrete result.
        assert check_outcome_abstracts(outcome, valuation, concrete_result)


class TestHandwritten:
    def test_straightline(self):
        deep_check("x + 2 * y", {"x": 3, "y": 4})

    def test_branching(self):
        for x in (-5, 0, 5):
            deep_check("if 0 < x then x + 1 else 0 - x", {"x": x})

    def test_three_way(self):
        for x in (-1, 0, 1):
            deep_check(
                "if 0 < x then 1 else if x = 0 then 0 else -1", {"x": x}
            )

    def test_boolean_structure(self):
        for p in (True, False):
            for q in (True, False):
                deep_check("if p && q || not p then 1 else 2", {"p": p, "q": q})

    def test_let_and_shadowing(self):
        deep_check("let y = x + 1 in let x = y * 2 in x - y", {"x": 7})

    def test_strings(self):
        deep_check('if x = 0 then "zero" else "other"', {"x": 0})

    def test_division_guard_uses_solver_extension(self):
        """The guard mentions the division's fresh quotient; `satisfies`
        must fall back to the V' ⊇ V solver check."""
        for x in (6, 7, -6):
            deep_check("if x / 2 = 3 then 1 else 0", {"x": x})

    def test_functions_inline(self):
        deep_check("(fun y : int -> y + x) 10", {"x": 5})


INT_NAMES = ("x", "y")
BOOL_NAMES = ("p",)


@st.composite
def pure_int_expr(draw, depth):
    if depth == 0:
        return draw(
            st.one_of(
                st.integers(-5, 5).map(IntLit),
                st.sampled_from([Var(n) for n in INT_NAMES]),
            )
        )
    kind = draw(st.sampled_from(["add", "sub", "mulc", "if", "let", "leaf"]))
    if kind == "leaf":
        return draw(pure_int_expr(0))
    if kind == "add":
        return BinOp(
            BinOpKind.ADD, draw(pure_int_expr(depth - 1)), draw(pure_int_expr(depth - 1))
        )
    if kind == "sub":
        return BinOp(
            BinOpKind.SUB, draw(pure_int_expr(depth - 1)), draw(pure_int_expr(depth - 1))
        )
    if kind == "mulc":
        return BinOp(BinOpKind.MUL, draw(pure_int_expr(depth - 1)), IntLit(draw(st.integers(-3, 3))))
    if kind == "if":
        return If(
            draw(pure_bool_expr(depth - 1)),
            draw(pure_int_expr(depth - 1)),
            draw(pure_int_expr(depth - 1)),
        )
    return Let("v", draw(pure_int_expr(depth - 1)), draw(pure_int_expr(depth - 1)))


@st.composite
def pure_bool_expr(draw, depth):
    if depth == 0:
        return draw(
            st.one_of(
                st.booleans().map(BoolLit),
                st.sampled_from([Var(n) for n in BOOL_NAMES]),
            )
        )
    kind = draw(st.sampled_from(["cmp", "not", "and", "leaf"]))
    if kind == "leaf":
        return draw(pure_bool_expr(0))
    if kind == "cmp":
        op = draw(st.sampled_from([BinOpKind.LT, BinOpKind.LE, BinOpKind.EQ]))
        return BinOp(op, draw(pure_int_expr(depth - 1)), draw(pure_int_expr(depth - 1)))
    if kind == "not":
        return Not(draw(pure_bool_expr(depth - 1)))
    return BinOp(
        BinOpKind.AND, draw(pure_bool_expr(depth - 1)), draw(pure_bool_expr(depth - 1))
    )


@settings(max_examples=100, deadline=None)
@given(pure_int_expr(3), st.integers(-6, 6), st.integers(-6, 6), st.booleans())
def test_property_symbolic_abstracts_concrete(expr, x, y, p):
    concrete = {"x": x, "y": y, "p": p}
    executor = SymExecutor()
    sym_env = make_env(executor, concrete)
    # 'v' may be free if the generator placed a Var under a Let bound; the
    # generator never emits Var("v"), so the program is closed over x,y,p.
    outcomes = executor.execute_all(expr, sym_env)
    assert all(o.ok for o in outcomes)
    valuation = Valuation.from_inputs(sym_env, concrete)
    matching = matching_outcomes(outcomes, valuation)
    assert matching
    concrete_result = run(expr, concrete).value
    for outcome in matching:
        assert check_outcome_abstracts(outcome, valuation, concrete_result)


@settings(max_examples=60, deadline=None)
@given(pure_int_expr(3), st.integers(-6, 6), st.integers(-6, 6), st.booleans())
def test_property_guards_partition_inputs(expr, x, y, p):
    """With pruning off, guards of ok paths cover the input and at most
    overlapping paths agree on the value (the executor is deterministic
    modulo infeasible paths)."""
    from repro.symexec import SymConfig

    concrete = {"x": x, "y": y, "p": p}
    executor = SymExecutor(SymConfig(prune_infeasible=False))
    sym_env = make_env(executor, concrete)
    outcomes = executor.execute_all(expr, sym_env)
    valuation = Valuation.from_inputs(sym_env, concrete)
    matching = matching_outcomes(outcomes, valuation)
    assert matching
    values = set()
    for outcome in matching:
        values.add(valuation.eval(outcome.value.term))
    assert len(values) == 1  # all matching paths denote the same value
