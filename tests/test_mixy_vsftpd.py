"""Integration tests on the miniature vsftpd corpus."""

import pytest

from repro.mixy import Mixy
from repro.mixy.c import parse_program
from repro.mixy.corpus_vsftpd import ANNOTATION_SITES, annotation_subsets, mini_vsftpd


class TestProgramShape:
    def test_parses(self):
        program = parse_program(mini_vsftpd())
        assert "main" in program.functions
        assert len(program.functions) >= 25
        assert {"mystr", "sockaddr", "hostent", "vsf_session"} <= set(program.structs)

    def test_annotations_toggle(self):
        plain = parse_program(mini_vsftpd())
        assert plain.functions["sockaddr_clear"].mix is None
        annotated = parse_program(mini_vsftpd({"sockaddr_clear"}))
        assert annotated.functions["sockaddr_clear"].mix == "symbolic"

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            mini_vsftpd({"not_a_site"})

    def test_always_typed_annotations_present(self):
        program = parse_program(mini_vsftpd())
        assert program.functions["sysutil_free"].mix == "typed"
        assert program.functions["str_alloc_text"].mix == "typed"


class TestAnalysisProgression:
    def test_unannotated_has_false_positives(self):
        warnings = Mixy(mini_vsftpd()).run()
        assert len(warnings) == 4
        text = " ".join(str(w) for w in warnings)
        # One flow per null source the paper's cases identify.
        for source in ("main_BLOCK", "session_init", "sockaddr_clear", "sysutil_next_dirent"):
            assert source in text

    def test_full_annotation_is_clean(self):
        warnings = Mixy(mini_vsftpd(frozenset(ANNOTATION_SITES))).run()
        assert warnings == []

    def test_warnings_monotonically_nonincreasing(self):
        counts = [len(Mixy(mini_vsftpd(s)).run()) for s in annotation_subsets()]
        assert counts[0] == 4 and counts[-1] == 0
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_cost_monotonically_increasing(self):
        costs = []
        for subset in annotation_subsets():
            mixy = Mixy(mini_vsftpd(subset))
            mixy.run()
            costs.append(
                mixy.executor.stats["solver_calls"]
                + mixy.stats["symbolic_blocks_run"]
            )
        assert all(a < b for a, b in zip(costs, costs[1:])), costs

    def test_case4_needs_the_typed_extraction(self):
        """A symbolic login_check without the typed exit hook hits the
        symbolic function pointer."""
        source = mini_vsftpd({"sysutil_exit_BLOCK"}).replace(
            "void sysutil_exit_BLOCK(void) MIX(typed)", "void sysutil_exit_BLOCK(void)"
        )
        warnings = Mixy(source).run()
        assert any("function pointer" in str(w) for w in warnings)

    def test_symbolic_entry_runs(self):
        mixy = Mixy(mini_vsftpd(frozenset(ANNOTATION_SITES)))
        warnings = mixy.run(entry="symbolic")
        # Whole-program symbolic execution from main terminates; globals
        # are zero-initialized so the tunables are NULL (fine: the
        # gethostbyname model tolerates NULL names).
        assert isinstance(warnings, list)
