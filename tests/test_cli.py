"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def mix_file(tmp_path):
    def write(source):
        path = tmp_path / "program.mix"
        path.write_text(source)
        return str(path)

    return write


@pytest.fixture
def c_file(tmp_path):
    def write(source):
        path = tmp_path / "program.c"
        path.write_text(source)
        return str(path)

    return write


class TestMixCommand:
    def test_accepting_program(self, mix_file, capsys):
        assert main(["mix", mix_file("{s 1 + 1 s}")]) == 0
        assert "accepted: int" in capsys.readouterr().out

    def test_rejecting_program(self, mix_file, capsys):
        assert main(["mix", mix_file('{s 1 + true s}')]) == 1
        assert "rejected" in capsys.readouterr().out

    def test_env_option(self, mix_file, capsys):
        code = main(["mix", mix_file("{s x + 1 s}"), "--env", "x:int"])
        assert code == 0

    def test_env_with_ref_type(self, mix_file):
        assert main(["mix", mix_file("{s !r + 1 s}"), "--env", "r:int ref"]) == 0

    def test_bad_env_spec(self, mix_file, capsys):
        assert main(["mix", mix_file("1"), "--env", "nonsense"]) == 2
        assert "error" in capsys.readouterr().err

    def test_parse_error(self, mix_file, capsys):
        assert main(["mix", mix_file("let = ")]) == 2

    def test_missing_file(self, capsys):
        assert main(["mix", "/definitely/not/here.mix"]) == 2

    def test_symbolic_entry(self, mix_file):
        assert main(["mix", mix_file("{t 1 t}"), "--entry", "symbolic"]) == 0

    def test_defer_flag(self, mix_file):
        code = main(
            ["mix", mix_file("{s if p then 1 else 2 s}"), "--env", "p:bool", "--defer"]
        )
        assert code == 0

    def test_good_enough_flag(self, mix_file):
        loop = "{s let i = ref 0 in while !i < n do i := !i + 1 done; !i s}"
        strict = main(["mix", mix_file(loop), "--env", "n:int", "--max-unroll", "4"])
        relaxed = main(
            [
                "mix",
                mix_file(loop),
                "--env",
                "n:int",
                "--max-unroll",
                "4",
                "--good-enough",
            ]
        )
        assert strict == 1 and relaxed == 0

    def test_auto_refine(self, mix_file, capsys):
        code = main(["mix", mix_file('if true then 5 else "foo" + 3'), "--auto-refine"])
        out = capsys.readouterr().out
        assert code == 0
        assert "refinement step 1" in out and "annotated program" in out


class TestMixyCommand:
    BUGGY = """
    void free(int *nonnull x);
    int main(void) { int *x = NULL; free(x); return 0; }
    """
    CLEAN = """
    void free(int *nonnull x);
    int main(void) { free((int *) malloc(sizeof(int))); return 0; }
    """

    def test_warning_exit_code(self, c_file, capsys):
        assert main(["mixy", c_file(self.BUGGY)]) == 1
        out = capsys.readouterr().out
        assert "NULL" in out and "warning(s)" in out

    def test_clean_exit_code(self, c_file, capsys):
        assert main(["mixy", c_file(self.CLEAN)]) == 0
        assert "0 warning(s)" in capsys.readouterr().out

    def test_symbolic_entry(self, c_file):
        assert main(["mixy", c_file(self.BUGGY), "--entry", "symbolic"]) == 1

    def test_strict_deref(self, c_file):
        source = "int main(void) { int *p = NULL; return *p; }"
        assert main(["mixy", c_file(source)]) == 0  # no annotation: silent
        assert main(["mixy", c_file(source), "--strict-deref"]) == 1

    def test_parse_error(self, c_file, capsys):
        assert main(["mixy", c_file("int main( {")]) == 2

    def test_missing_entry_function(self, c_file):
        assert main(["mixy", c_file("int helper(void) { return 0; }")]) == 2
