"""Tests for automatic block placement (the paper's future-work
refinement loop, §4.6/§5)."""

import pytest

from repro.core import MixConfig, analyze
from repro.core.refine import auto_place_blocks
from repro.lang import parse
from repro.lang.ast import SymBlock, TypedBlock, block_count
from repro.symexec import SymConfig
from repro.typecheck import TypeEnv
from repro.typecheck.types import BOOL, FunType, INT


def refine(source, env=None, entry="typed", **kwargs):
    return auto_place_blocks(parse(source), env, entry, **kwargs)


class TestTypedToSymbolicRefinement:
    def test_unreachable_branch(self):
        """The paper's canonical example: pure typing rejects; refinement
        discovers the symbolic block placement."""
        result = refine('if true then 5 else "foo" + 3')
        assert result.ok
        assert result.steps and result.steps[0].block_kind == "symbolic"
        _typed, symbolic = block_count(result.program)
        assert symbolic >= 1

    def test_already_accepted_needs_no_steps(self):
        result = refine("1 + 2")
        assert result.ok and result.steps == []

    def test_annotated_source_roundtrips(self):
        result = refine('if true then 5 else "foo" + 3')
        reparsed = parse(result.annotated_source)
        assert analyze(reparsed).ok

    def test_flow_sensitive_reuse_refined(self):
        # if p then !r + 1 else (r := 2; !r): well-typed already; instead
        # use the unreachable-guard pattern with a computed condition.
        result = refine('if 1 < 2 then 1 else "x" + 1')
        assert result.ok

    def test_genuine_error_is_not_maskable(self):
        """A real, reachable type error cannot be refined away."""
        result = refine('"foo" + 3')
        assert not result.ok

    def test_genuine_error_in_reachable_branch(self):
        result = refine(
            'if p then "foo" + 3 else 1', env=TypeEnv({"p": BOOL})
        )
        assert not result.ok

    def test_multiple_errors_need_multiple_steps(self):
        source = """
        let a = (if true then 1 else "x" + 1) in
        let b = (if false then "y" + 2 else 2) in
        a + b
        """
        result = refine(source)
        assert result.ok
        assert len(result.steps) == 2


class TestSymbolicToTypedRefinement:
    def test_unknown_function_wrapped_typed(self):
        """§2 'Helping Symbolic Execution': the refinement inserts a
        typed block around the call symbolic execution cannot make."""
        env = TypeEnv({"f": FunType(INT, INT)})
        result = refine("f 1 + 1", env=env, entry="symbolic")
        assert result.ok
        assert any(step.block_kind == "typed" for step in result.steps)

    def test_nonlinear_wrapped_typed(self):
        env = TypeEnv({"z": INT})
        result = refine("z * z + 1", env=env, entry="symbolic")
        assert result.ok
        assert any(step.block_kind == "typed" for step in result.steps)

    def test_unbounded_loop_wrapped_typed(self):
        env = TypeEnv({"n": INT})
        config = MixConfig(sym=SymConfig(max_loop_unroll=4))
        source = "let i = ref 0 in while !i < n do i := !i + 1 done; !i"
        result = refine(source, env=env, entry="symbolic", config=config)
        assert result.ok
        assert any(step.block_kind == "typed" for step in result.steps)

    def test_step_trace_is_reportable(self):
        env = TypeEnv({"z": INT})
        result = refine("z * z", env=env, entry="symbolic")
        assert result.ok
        assert "typed" in str(result.steps[0])


class TestBudget:
    def test_budget_respected(self):
        source = """
        let a = (if true then 1 else "x" + 1) in
        let b = (if false then "y" + 2 else 2) in
        a + b
        """
        result = refine(source, max_steps=1)
        assert not result.ok
        assert len(result.steps) == 1
