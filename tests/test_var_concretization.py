"""Tests for the nondeterministic SEVar variant (paper §3.1):
"SEVar may instead return an arbitrary value v and add Σ(x) = v to the
path condition, a style that resembles hybrid concolic testing"."""

import pytest

from repro import smt
from repro.core import MixConfig, SoundnessMode, analyze_source
from repro.lang import parse
from repro.symexec import SymConfig, SymEnv, SymExecutor
from repro.symexec.values import fresh_of_type
from repro.typecheck import TypeEnv
from repro.typecheck.types import INT


def make_executor():
    return SymExecutor(SymConfig(concretize_variables=True))


class TestConcretization:
    def test_variable_read_pins_a_value(self):
        executor = make_executor()
        x, _ = fresh_of_type(INT, executor.names)
        (out,) = executor.execute_all(parse("x + 1"), SymEnv({"x": x}))
        assert out.ok and out.value.term.is_const
        # The pin Σ(x) = v is in the path condition.
        assert smt.is_valid(
            smt.eq(x.term, smt.int_const(out.value.term.payload - 1)),
            assuming=[out.state.guard],
        )

    def test_single_path_through_branches(self):
        """Concretized reads make conditions concrete: one path only."""
        executor = make_executor()
        x, _ = fresh_of_type(INT, executor.names)
        outs = executor.execute_all(
            parse("if x < 0 then 1 else 2"), SymEnv({"x": x})
        )
        assert len(outs) == 1

    def test_consistent_across_reads(self):
        """Two reads of the same variable see the same pinned value."""
        executor = make_executor()
        x, _ = fresh_of_type(INT, executor.names)
        (out,) = executor.execute_all(parse("x - x"), SymEnv({"x": x}))
        assert out.value.term is smt.int_const(0)

    def test_respects_prior_constraints(self):
        """The arbitrary value satisfies the current path condition."""
        from repro.symexec.executor import State
        from repro.symexec.memory import fresh_memory

        executor = make_executor()
        x, _ = fresh_of_type(INT, executor.names)
        state = State(
            smt.gt(x.term, smt.int_const(100)), fresh_memory(executor.names)
        )
        (out,) = executor.execute_all(parse("x"), SymEnv({"x": x}), state)
        assert out.value.term.payload > 100

    def test_off_by_default(self):
        executor = SymExecutor()
        x, _ = fresh_of_type(INT, executor.names)
        (out,) = executor.execute_all(parse("x"), SymEnv({"x": x}))
        assert not out.value.term.is_const


class TestUnderMix:
    SOURCE = "{s if x < 0 then 1 else 2 s}"
    ENV = TypeEnv({"x": INT})

    def test_sound_mode_rejects_single_pinned_path(self):
        """Concretization under-approximates: the exhaustive(...) check
        fails, so SOUND mode refuses."""
        config = MixConfig(sym=SymConfig(concretize_variables=True))
        report = analyze_source(self.SOURCE, env=self.ENV, config=config)
        assert not report.ok
        assert "exhaustive" in report.diagnostics[0].message

    def test_good_enough_mode_accepts(self):
        config = MixConfig(
            sym=SymConfig(concretize_variables=True),
            soundness=SoundnessMode.GOOD_ENOUGH,
        )
        report = analyze_source(self.SOURCE, env=self.ENV, config=config)
        assert report.ok and str(report.type) == "int"
