"""Tests for the DART-style concolic driver."""

import pytest

from repro.lang import parse, run
from repro.lang.interp import RuntimeTypeError
from repro.symexec.concolic import ConcolicDriver
from repro.typecheck.types import BOOL, INT, STR, RefType


def explore(source, inputs, **kwargs):
    driver = ConcolicDriver(parse(source), inputs, **kwargs)
    return driver.explore()


class TestPathEnumeration:
    def test_straightline_is_one_run(self):
        report = explore("x + 1", {"x": INT})
        assert len(report.runs) == 1 and report.paths_covered == 1
        assert report.exhausted

    def test_two_branches_two_paths(self):
        report = explore("if x < 0 then 1 else 2", {"x": INT})
        assert report.paths_covered == 2
        assert report.exhausted

    def test_nested_branches_enumerate(self):
        source = """
        if x < 0 then (if p then 1 else 2)
        else (if x = 0 then 3 else 4)
        """
        report = explore(source, {"x": INT, "p": BOOL})
        assert report.paths_covered == 4

    def test_deep_guard_found(self):
        """The classic DART pitch: random testing almost never hits
        x = 42; concolic derives it from the branch condition."""
        source = "if x = 42 then (if p then 1 else 2) else 0"
        report = explore(source, {"x": INT, "p": BOOL})
        assert report.paths_covered == 3  # else-branch has no nested split
        assert any(r.inputs["x"] == 42 for r in report.runs)

    def test_loop_paths(self):
        source = "let r = ref 0 in while !r < x do r := !r + 1 done; !r"
        report = explore(source, {"x": INT}, max_runs=6)
        # Different x values drive different iteration counts.
        iteration_counts = {len(r.decisions) for r in report.runs}
        assert len(iteration_counts) >= 2

    def test_run_budget_respected(self):
        source = "if x = 1 then 1 else if x = 2 then 2 else if x = 3 then 3 else 0"
        report = explore(source, {"x": INT}, max_runs=2)
        assert len(report.runs) == 2


class TestErrorFinding:
    def test_finds_guarded_type_error(self):
        source = 'if x = 7 then 1 + true else 0'
        report = explore(source, {"x": INT})
        assert report.failures
        inputs, message = report.failures[0]
        assert inputs["x"] == 7
        # The found inputs really do crash the concrete program.
        with pytest.raises(RuntimeTypeError):
            run(parse(source.replace("1 + true", "1 + true")), inputs)

    def test_clean_program_has_no_failures(self):
        report = explore("if x < 0 then 0 - x else x", {"x": INT})
        assert not report.failures

    def test_failure_behind_two_guards(self):
        source = "if 10 < x then (if x < 12 then 1 + true else 1) else 2"
        report = explore(source, {"x": INT})
        assert report.failures
        (inputs, _message) = report.failures[0]
        assert inputs["x"] == 11

    def test_division_guard(self):
        """Division introduces definition-bound helpers; branch decisions
        over them still resolve via the solver."""
        source = "if x / 2 = 3 then 1 + true else 0"
        report = explore(source, {"x": INT})
        assert report.failures
        inputs = report.failures[0][0]
        assert inputs["x"] // 2 == 3


class TestRunsAgreeWithInterpreter:
    def test_directed_value_matches_concrete(self):
        source = "if p then x + 1 else x - 1"
        driver = ConcolicDriver(parse(source), {"x": INT, "p": BOOL})
        report = driver.explore()
        for r in report.runs:
            concrete = run(parse(source), r.inputs).value
            from repro.symexec.valuation import Valuation, check_outcome_abstracts

            valuation = Valuation.from_inputs(driver._sym_env, r.inputs)
            assert check_outcome_abstracts(r.outcome, valuation, concrete)


class TestValidation:
    def test_ref_inputs_rejected(self):
        with pytest.raises(ValueError):
            ConcolicDriver(parse("!r"), {"r": RefType(INT)})

    def test_string_inputs_allowed(self):
        report = explore('if s = "" then 1 else 2', {"s": STR})
        assert report.paths_covered >= 1
