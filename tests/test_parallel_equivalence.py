"""``--jobs 1`` / ``--jobs N`` output equivalence.

The parallel engine's contract (docs/ARCHITECTURE.md §1.4) is that
speculation only warms the query cache — the authoritative serial pass
computes the same warnings, diagnostics, and witness classifications as
a cold run.  These tests run both modes on the same inputs and compare.

Warning texts embed qualifier-variable ids (``#N``) drawn from a
process-global counter, so two *serial* runs in one process already
differ in them; each run here resets that counter and the solver service
so the comparison can be exact.
"""

import itertools
import re

import pytest

from repro import smt
from repro.core import MixConfig, analyze_source
from repro.mixy import Mixy, MixyConfig
from repro.mixy.c import parse_program
from repro.mixy.corpus_vsftpd import (
    ANNOTATION_SITES,
    mini_vsftpd,
    parallel_vsftpd,
)
from repro.mixy.qual import QVar
from repro.typecheck import TypeEnv
from repro.typecheck.types import INT

JOBS = 4


def _fresh_process_state():
    """Make a run independent of what earlier tests did in this process."""
    smt.reset_service()
    QVar._ids = itertools.count(1)


def _normalize(text: str) -> str:
    return re.sub(r"#\d+", "#N", text)


def _run_mixy(source: str, jobs: int, **config_kwargs):
    _fresh_process_state()
    program = parse_program(source)
    mixy = Mixy(program, config=MixyConfig(jobs=jobs, **config_kwargs))
    warnings = mixy.run()
    stats = smt.get_service().stats
    witness_counts = (
        stats.witnesses_confirmed,
        stats.witnesses_unconfirmed,
        stats.witnesses_diverged,
    )
    return [str(w) for w in warnings], witness_counts


SUBSETS = [frozenset()] + [frozenset({s}) for s in ANNOTATION_SITES] + [
    frozenset(ANNOTATION_SITES)
]


class TestMixyEquivalence:
    @pytest.mark.parametrize(
        "subset", SUBSETS, ids=["+".join(sorted(s)) or "plain" for s in SUBSETS]
    )
    def test_vsftpd_corpus_with_witness_validation(self, subset):
        source = mini_vsftpd(subset)
        serial, serial_witnesses = _run_mixy(
            source, jobs=1, validate_witnesses=True
        )
        parallel, parallel_witnesses = _run_mixy(
            source, jobs=JOBS, validate_witnesses=True
        )
        assert serial == parallel  # exact, including qualifier ids
        assert serial_witnesses == parallel_witnesses

    def test_parallel_corpus_single_deterministic_warning(self):
        source = parallel_vsftpd(depth=1)
        serial, _ = _run_mixy(source, jobs=1)
        parallel, _ = _run_mixy(source, jobs=JOBS)
        assert serial == parallel
        assert len(serial) == 1
        assert "nonnull parameter p_ptr of sysutil_free" in serial[0]

    def test_normalized_comparison_is_not_weaker_here(self):
        # The exact comparison above subsumes the normalized one; this
        # guards the normalizer itself for use on uncontrolled runs.
        assert _normalize("qual #12 flows to #3") == "qual #N flows to #N"


MIX_PROGRAMS = [
    # Symbolic block whose feasible failing paths give the MIX engine
    # multiple independent outcome queries to fan out.
    "{t if x < 3 then (if x < 1 then 1 + 1 else 4 + true) else 7 t}",
    # Nested blocks: typed inside symbolic inside typed.
    "{s ({t if x < 0 then {s 1 s} + 1 else 2 t}) + 3 s}",
    # Error-free: the fan-out must not invent diagnostics.
    "{t if x < 5 then x + 1 else x - 1 t}",
]


class TestMixEquivalence:
    @pytest.mark.parametrize("source", MIX_PROGRAMS)
    def test_reports_identical(self, source):
        env = TypeEnv({"x": INT})

        def run(jobs):
            _fresh_process_state()
            report = analyze_source(
                source, env=env, entry="typed", config=MixConfig(jobs=jobs)
            )
            return (
                report.ok,
                str(report),
                [str(d) for d in report.diagnostics],
                [str(w) for w in report.warnings],
            )

        assert run(1) == run(JOBS)
