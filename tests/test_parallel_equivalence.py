"""``--jobs 1`` / ``--jobs N`` output equivalence.

The parallel engine's contract (docs/ARCHITECTURE.md §1.4) is that
speculation only warms the query cache — the authoritative serial pass
computes the same warnings, diagnostics, and witness classifications as
a cold run.  These tests run both modes on the same inputs and compare.

Warning texts embed qualifier-variable ids (``#N``) drawn from a
process-global counter, so two *serial* runs in one process already
differ in them; each run here resets that counter and the solver service
so the comparison can be exact.
"""

import itertools
import re

import pytest

from repro import smt
from repro.core import MixConfig, analyze_source
from repro.mixy import Mixy, MixyConfig
from repro.mixy.c import parse_program
from repro.mixy.corpus_vsftpd import (
    ANNOTATION_SITES,
    mini_vsftpd,
    parallel_vsftpd,
)
from repro.mixy.qual import QVar
from repro.typecheck import TypeEnv
from repro.typecheck.types import INT

JOBS = 4


def _fresh_process_state():
    """Make a run independent of what earlier tests did in this process."""
    smt.reset_service()
    QVar._ids = itertools.count(1)


def _normalize(text: str) -> str:
    return re.sub(r"#\d+", "#N", text)


def _run_mixy(source: str, jobs: int, **config_kwargs):
    _fresh_process_state()
    program = parse_program(source)
    mixy = Mixy(program, config=MixyConfig(jobs=jobs, **config_kwargs))
    warnings = mixy.run()
    stats = smt.get_service().stats
    witness_counts = (
        stats.witnesses_confirmed,
        stats.witnesses_unconfirmed,
        stats.witnesses_diverged,
    )
    return [str(w) for w in warnings], witness_counts


SUBSETS = [frozenset()] + [frozenset({s}) for s in ANNOTATION_SITES] + [
    frozenset(ANNOTATION_SITES)
]


class TestMixyEquivalence:
    @pytest.mark.parametrize(
        "subset", SUBSETS, ids=["+".join(sorted(s)) or "plain" for s in SUBSETS]
    )
    def test_vsftpd_corpus_with_witness_validation(self, subset):
        source = mini_vsftpd(subset)
        serial, serial_witnesses = _run_mixy(
            source, jobs=1, validate_witnesses=True
        )
        parallel, parallel_witnesses = _run_mixy(
            source, jobs=JOBS, validate_witnesses=True
        )
        assert serial == parallel  # exact, including qualifier ids
        assert serial_witnesses == parallel_witnesses

    def test_parallel_corpus_single_deterministic_warning(self):
        source = parallel_vsftpd(depth=1)
        serial, _ = _run_mixy(source, jobs=1)
        parallel, _ = _run_mixy(source, jobs=JOBS)
        assert serial == parallel
        assert len(serial) == 1
        assert "nonnull parameter p_ptr of sysutil_free" in serial[0]

    def test_normalized_comparison_is_not_weaker_here(self):
        # The exact comparison above subsumes the normalized one; this
        # guards the normalizer itself for use on uncontrolled runs.
        assert _normalize("qual #12 flows to #3") == "qual #N flows to #N"


class TestScheduleEquivalence:
    """``--schedule waves|portfolio`` must stay bitwise-identical to
    fifo and to ``--jobs 1`` — the scheduler only redistributes
    *speculative* work (docs/ARCHITECTURE.md §1.6)."""

    @pytest.mark.parametrize("schedule", ["waves", "portfolio"])
    def test_scheduled_modes_match_serial(self, schedule):
        source = parallel_vsftpd(depth=2)
        serial, _ = _run_mixy(source, jobs=1)
        scheduled, _ = _run_mixy(source, jobs=JOBS, schedule=schedule)
        assert serial == scheduled
        assert len(serial) == 1

    def test_hinted_portfolio_matches_serial(self, tmp_path):
        # Hints steer dispatch (strategies, tier order, cold_only) but
        # must never steer verdicts; exercise every hint field plus a
        # stale entry that matches no current block.
        from repro.mixy.c import parse_program as _parse
        from repro.schedule import (
            BlockHint,
            ScheduleHints,
            block_content_hash,
        )

        source = parallel_vsftpd(depth=2)
        program = _parse(source)
        names = sorted(n for n in program.functions if n.startswith("crunch_"))
        hints = ScheduleHints()
        for rank, name in enumerate(names):
            chash = block_content_hash(program, name)
            hints.blocks[chash] = BlockHint(
                name=name,
                rank=rank,
                solver_seconds=1.0,
                queries=10,
                tier_order=("superset", "subset") if rank % 2 else None,
                strategy=("intfirst", "simplify", "flip", None)[rank % 4],
                cold_only=rank % 2 == 0,
            )
        hints.blocks["feedfacecafebeef"] = BlockHint(name="gone", rank=99)
        hints.hot = tuple(hints.blocks)
        path = tmp_path / "hints.json"
        hints.save(str(path))

        serial, _ = _run_mixy(source, jobs=1)
        hinted, _ = _run_mixy(
            source, jobs=JOBS, schedule="portfolio", sched_hints=str(path)
        )
        assert serial == hinted

    def test_corrupt_hints_degrade_to_unhinted(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        source = parallel_vsftpd(depth=1)
        serial, _ = _run_mixy(source, jobs=1)
        hinted, _ = _run_mixy(
            source, jobs=JOBS, schedule="waves", sched_hints=str(path)
        )
        assert serial == hinted


MIX_PROGRAMS = [
    # Symbolic block whose feasible failing paths give the MIX engine
    # multiple independent outcome queries to fan out.
    "{t if x < 3 then (if x < 1 then 1 + 1 else 4 + true) else 7 t}",
    # Nested blocks: typed inside symbolic inside typed.
    "{s ({t if x < 0 then {s 1 s} + 1 else 2 t}) + 3 s}",
    # Error-free: the fan-out must not invent diagnostics.
    "{t if x < 5 then x + 1 else x - 1 t}",
]


class TestMixEquivalence:
    @pytest.mark.parametrize("source", MIX_PROGRAMS)
    @pytest.mark.parametrize("schedule", ["fifo", "waves"])
    def test_reports_identical(self, source, schedule):
        env = TypeEnv({"x": INT})

        def run(jobs):
            _fresh_process_state()
            report = analyze_source(
                source,
                env=env,
                entry="typed",
                config=MixConfig(jobs=jobs, schedule=schedule),
            )
            return (
                report.ok,
                str(report),
                [str(d) for d in report.diagnostics],
                [str(w) for w in report.warnings],
            )

        assert run(1) == run(JOBS)
