"""Tests for the MIXY driver: the four paper cases and the §4.1-4.4
machinery (translation, fixpoint, caching, recursion, aliasing)."""

import pytest

from repro.mixy import Mixy, MixyConfig
from repro.mixy.corpus import CASES, combined_program
from repro.mixy.qual import QualConfig
from repro.mixy.symexec import CSymConfig


def run_case(name, annotated, config=None):
    case = CASES[name]
    mixy = Mixy(case.source(annotated), config)
    warnings = mixy.run(entry="typed", entry_function="main")
    return mixy, warnings


class TestPaperCases:
    """Each case: pure inference warns (false positive); the paper's MIX
    annotations eliminate the warning — the headline result of §4.5."""

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_unannotated_warns(self, name):
        _, warnings = run_case(name, annotated=False)
        assert warnings, f"{name}: expected a false positive without annotations"
        marker = CASES[name].warning_marker
        assert any(marker in str(w) for w in warnings)

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_annotated_is_clean(self, name):
        _, warnings = run_case(name, annotated=True)
        assert warnings == [], f"{name}: {[str(w) for w in warnings]}"

    def test_case1_warning_is_flow_insensitivity(self):
        _, warnings = run_case("case1", annotated=False)
        text = " ".join(str(w) for w in warnings)
        assert "p_sock" in text and "sysutil_free" in text

    def test_case4_warning_is_function_pointer(self):
        """Without the typed extraction, the executor hits the symbolic
        function pointer (its 'limited support' per the paper)."""
        _, warnings = run_case("case4", annotated=False)
        assert any("function pointer" in str(w) for w in warnings)


class TestCombinedProgram:
    def test_no_annotations_warns(self):
        mixy = Mixy(combined_program(0))
        warnings = mixy.run()
        assert len(warnings) >= 1

    def test_two_blocks_clean(self):
        mixy = Mixy(combined_program(2))
        warnings = mixy.run()
        assert warnings == []

    def test_one_block_partial(self):
        """Annotating only sockaddr_clear leaves main_BLOCK's null source."""
        mixy = Mixy(combined_program(1))
        warnings = mixy.run()
        assert len(warnings) >= 1

    def test_distractors_are_clean(self):
        """The clean modules contribute no warnings of their own."""
        mixy = Mixy(combined_program(2))
        warnings = mixy.run()
        assert not any("buf" in str(w) or "vsf_" in str(w) for w in warnings)

    def test_more_blocks_cost_more(self):
        """The §4.6 observation: each added symbolic block increases the
        solver work (absolute times are environment-specific; the shape
        must hold)."""
        calls = []
        for n in (0, 1, 2):
            mixy = Mixy(combined_program(n))
            mixy.run()
            calls.append(
                mixy.executor.stats["solver_calls"] + mixy.stats["symbolic_blocks_run"]
            )
        assert calls[0] < calls[1] < calls[2]


class TestFixpoint:
    def test_fixpoint_reanalyzes_blocks(self):
        """§4.1: a symbolic block analyzed before a null constraint is
        discovered must be re-analyzed once the constraint appears."""
        source = """
        void sysutil_free(void *nonnull p_ptr) MIX(typed);
        int *shared;
        void block_a(void) MIX(symbolic) {
          shared = NULL;
        }
        void block_b(void) MIX(symbolic) {
          sysutil_free(shared);
        }
        int main(void) {
          block_b();
          block_a();
          return 0;
        }
        """
        mixy = Mixy(source)
        warnings = mixy.run()
        # block_b initially sees the optimistic nonnull for `shared`;
        # after block_a constrains it null, re-analysis finds the error.
        assert mixy.stats["fixpoint_iterations"] >= 2
        assert any("sysutil_free" in str(w) for w in warnings)

    def test_fixpoint_terminates_when_stable(self):
        mixy = Mixy(CASES["case1"].source(True))
        mixy.run()
        assert mixy.stats["fixpoint_iterations"] <= mixy.config.max_fixpoint_iters


class TestCaching:
    TWO_CALLERS = """
    void sysutil_free(void *nonnull p_ptr) MIX(typed);
    void helper(int *p) MIX(symbolic) {
      if (p != NULL) { sysutil_free(p); }
    }
    void caller_a(void) { helper((int *) malloc(sizeof(int))); }
    void caller_b(void) { helper((int *) malloc(sizeof(int))); }
    int main(void) { caller_a(); caller_b(); return 0; }
    """

    def test_cache_hits_on_compatible_contexts(self):
        mixy = Mixy(self.TWO_CALLERS)
        mixy.run()
        assert mixy.stats["cache_hits"] >= 1

    def test_cache_disabled_reruns(self):
        config = MixyConfig(enable_cache=False)
        mixy = Mixy(self.TWO_CALLERS, config)
        mixy.run()
        assert mixy.stats["cache_hits"] == 0
        assert mixy.stats["symbolic_blocks_run"] >= 2

    def test_cache_does_not_change_verdict(self):
        w_on = Mixy(self.TWO_CALLERS).run()
        w_off = Mixy(self.TWO_CALLERS, MixyConfig(enable_cache=False)).run()
        assert [str(w) for w in w_on] == [str(w) for w in w_off]


class TestRecursion:
    MUTUAL = """
    void sysutil_free(void *nonnull p_ptr) MIX(typed);
    void ping(int *p, int n) MIX(symbolic);
    void pong(int *p, int n) MIX(typed) {
      ping(p, n - 1);
    }
    void ping(int *p, int n) MIX(symbolic) {
      if (n > 0) { pong(p, n); }
      if (p != NULL) { sysutil_free(p); }
    }
    int main(void) {
      ping((int *) malloc(sizeof(int)), 2);
      return 0;
    }
    """

    def test_recursive_blocks_terminate(self):
        """§4.4: typed and symbolic blocks calling each other must not
        switch indefinitely."""
        mixy = Mixy(self.MUTUAL)
        warnings = mixy.run()
        assert mixy.stats["recursion_detected"] >= 1
        assert warnings == []  # the guard makes the free safe


class TestSymbolicEntry:
    def test_whole_program_symbolic(self):
        source = """
        void sysutil_free(void *nonnull p_ptr) MIX(typed);
        int main(void) {
          int *p = NULL;
          sysutil_free(p);
          return 0;
        }
        """
        mixy = Mixy(source)
        warnings = mixy.run(entry="symbolic")
        assert any("sysutil_free" in str(w) for w in warnings)

    def test_globals_zero_initialized(self):
        """C semantics at a symbolic entry: an uninitialized global
        pointer is NULL."""
        source = """
        int *g;
        int main(void) { return *g; }
        """
        mixy = Mixy(source)
        warnings = mixy.run(entry="symbolic")
        assert any("NULL" in str(w) for w in warnings)

    def test_global_initializer_respected(self):
        source = """
        int cell;
        int *g = &cell;
        int main(void) { return *g; }
        """
        # &cell is not a supported static initializer shape; use fn address
        source = """
        void h(void) { }
        void (*g)(void) = h;
        int main(void) { g(); return 0; }
        """
        mixy = Mixy(source)
        warnings = mixy.run(entry="symbolic")
        assert warnings == []

    def test_invalid_entry_mode(self):
        with pytest.raises(ValueError):
            Mixy("int main(void) { return 0; }").run(entry="sideways")


class TestTranslationDetails:
    def test_maybe_null_param_tries_both(self):
        """A param solved `null` enters the block as ite(α, loc, 0): the
        executor explores the null path and warns at the deref."""
        source = """
        void seed(int **pp) { *pp = NULL; }
        int reader(int *p) MIX(symbolic) {
          return *p;
        }
        int main(void) {
          int *q = (int *) malloc(sizeof(int));
          seed(&q);
          return reader(q);
        }
        """
        mixy = Mixy(source)
        warnings = mixy.run()
        assert any("NULL" in str(w) for w in warnings)

    def test_nonnull_param_is_clean(self):
        source = """
        int reader(int *p) MIX(symbolic) {
          return *p;
        }
        int main(void) {
          int *q = (int *) malloc(sizeof(int));
          return reader(q);
        }
        """
        mixy = Mixy(source)
        assert mixy.run() == []

    def test_symbolic_block_null_result_flows_to_types(self):
        """§4.1 symbolic -> types: a block that nulls a watched cell
        constrains the corresponding slot."""
        source = """
        void sysutil_free(void *nonnull p_ptr) MIX(typed);
        void blank(int **pp) MIX(symbolic) { *pp = NULL; }
        int main(void) {
          int *p = (int *) malloc(sizeof(int));
          blank(&p);
          sysutil_free(p);
          return 0;
        }
        """
        mixy = Mixy(source)
        warnings = mixy.run()
        assert any("sysutil_free" in str(w) for w in warnings)

    def test_typed_call_return_qualifier(self):
        """A typed callee whose return may be NULL hands the symbolic
        block a maybe-null value (Case 2's mechanism)."""
        source = """
        char *lookup(int key) MIX(typed) {
          if (key == 0) { return NULL; }
          return "value";
        }
        int probe(int key) MIX(symbolic) {
          char *v = lookup(key);
          return *v;
        }
        int main(void) { return probe(1); }
        """
        mixy = Mixy(source)
        warnings = mixy.run()
        assert any("NULL" in str(w) for w in warnings)

    def test_typed_call_guarded_use_is_clean(self):
        source = """
        char *lookup(int key) MIX(typed) {
          if (key == 0) { return NULL; }
          return "value";
        }
        int probe(int key) MIX(symbolic) {
          char *v = lookup(key);
          if (v != NULL) { return *v; }
          return 0;
        }
        int main(void) { return probe(1); }
        """
        mixy = Mixy(source)
        assert mixy.run() == []
