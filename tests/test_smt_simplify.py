"""Unit tests for the term simplifier."""

from repro.smt import (
    BOOL,
    INT,
    add,
    and_,
    array_sort,
    bool_const,
    distinct,
    eq,
    false,
    iff,
    implies,
    int_const,
    ite,
    le,
    lt,
    mul,
    neg,
    not_,
    or_,
    select,
    store,
    true,
    var,
)
from repro.smt.simplify import simplify
from repro.smt.terms import Kind

x = var("x", INT)
y = var("y", INT)
p = var("p", BOOL)
q = var("q", BOOL)
mem = var("m", array_sort(INT, INT))


class TestConstantFolding:
    def test_arithmetic(self):
        assert simplify(add(int_const(2), int_const(3))) is int_const(5)
        assert simplify(mul(int_const(4), int_const(5))) is int_const(20)
        assert simplify(neg(int_const(7))) is int_const(-7)

    def test_comparisons(self):
        assert simplify(le(int_const(1), int_const(2))).is_true
        assert simplify(lt(int_const(2), int_const(2))).is_false
        assert simplify(eq(int_const(3), int_const(3))).is_true

    def test_nested_folding(self):
        term = add(add(x, int_const(1)), add(int_const(2), int_const(3)))
        result = simplify(term)
        # Constants collected: x + 6.
        assert result.kind is Kind.ADD
        consts = [a for a in result.args if a.is_const]
        assert len(consts) == 1 and consts[0].payload == 6


class TestBooleanIdentities:
    def test_double_negation(self):
        assert simplify(not_(not_(p))) is p

    def test_and_absorbs_true(self):
        assert simplify(and_(p, true())) is p

    def test_and_short_circuits_false(self):
        assert simplify(and_(p, false(), q)).is_false

    def test_or_short_circuits_true(self):
        assert simplify(or_(p, true())).is_true

    def test_complementary_literals(self):
        assert simplify(and_(p, not_(p))).is_false
        assert simplify(or_(p, not_(p))).is_true

    def test_flattening_and_dedup(self):
        assert simplify(and_(and_(p, q), p)) is simplify(and_(p, q))

    def test_implies(self):
        assert simplify(implies(false(), p)).is_true
        assert simplify(implies(true(), p)) is p
        assert simplify(implies(p, false())) is not_(p)

    def test_iff(self):
        assert simplify(iff(p, p)).is_true
        assert simplify(iff(p, true())) is p
        assert simplify(iff(p, false())) is not_(p)

    def test_ite(self):
        assert simplify(ite(true(), x, y)) is x
        assert simplify(ite(false(), x, y)) is y
        assert simplify(ite(p, x, x)) is x
        assert simplify(ite(p, true(), false())) is p
        assert simplify(ite(p, false(), true())) is not_(p)

    def test_eq_reflexive(self):
        assert simplify(eq(x, x)).is_true

    def test_distinct_repeated_var(self):
        assert simplify(distinct(x, x)).is_false

    def test_distinct_constants(self):
        assert simplify(distinct(int_const(1), int_const(2))).is_true
        assert simplify(distinct(int_const(1), int_const(1))).is_false


class TestReadOverWrite:
    def test_same_index_hit(self):
        term = select(store(mem, x, int_const(5)), x)
        assert simplify(term) is int_const(5)

    def test_distinct_constant_indices_skip(self):
        term = select(store(mem, int_const(0), int_const(5)), int_const(1))
        assert simplify(term) is select(mem, int_const(1))

    def test_symbolic_indices_become_ite(self):
        term = select(store(mem, x, int_const(5)), y)
        result = simplify(term)
        assert result.kind is Kind.ITE

    def test_chain_of_writes(self):
        chain = store(store(mem, int_const(0), int_const(1)), int_const(1), int_const(2))
        assert simplify(select(chain, int_const(0))) is int_const(1)
        assert simplify(select(chain, int_const(1))) is int_const(2)


class TestIdempotence:
    def test_simplify_twice_is_stable(self):
        terms = [
            and_(p, or_(q, not_(p))),
            select(store(mem, x, y), add(x, int_const(0))),
            ite(eq(x, y), add(x, int_const(1)), y),
        ]
        for term in terms:
            once = simplify(term)
            assert simplify(once) is once
