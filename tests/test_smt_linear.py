"""Unit tests for linear atom extraction, simplex, and integer search."""

from fractions import Fraction

import pytest

from repro.smt import INT, add, int_const, mul, neg, sub, var
from repro.smt.intsolve import IntBudgetExceeded, check_integer
from repro.smt.linear import (
    LinAtom,
    NonlinearError,
    atom_from_comparison,
    linearize,
    make_atom,
)
from repro.smt.simplex import check_rational
from repro.smt.terms import Kind

x = var("x", INT)
y = var("y", INT)
z = var("z", INT)


class TestLinearize:
    def test_constant(self):
        coeffs, k = linearize(int_const(7))
        assert coeffs == {} and k == 7

    def test_variable(self):
        coeffs, k = linearize(x)
        assert coeffs == {x: 1} and k == 0

    def test_sum_and_negation(self):
        coeffs, k = linearize(sub(add(x, y, int_const(3)), x))
        assert coeffs == {x: 0, y: 1} and k == 3

    def test_scaling(self):
        coeffs, k = linearize(mul(int_const(3), add(x, int_const(2))))
        assert coeffs == {x: 3} and k == 6

    def test_nonlinear_rejected(self):
        with pytest.raises(NonlinearError):
            linearize(mul(x, y))

    def test_neg_neg(self):
        coeffs, k = linearize(neg(neg(x)))
        assert coeffs == {x: 1}


class TestCanonicalAtoms:
    def test_gcd_tightening(self):
        # 3x <= 4  tightens to  x <= 1.
        atom = make_atom({x: 3}, 4)
        assert atom.coeffs == ((x, 1),) and atom.constant == 1

    def test_gcd_tightening_negative(self):
        # -3x <= -1  tightens to  -x <= -1, i.e. x >= 1.
        atom = make_atom({x: -3}, -1)
        assert atom.coeffs == ((x, -1),) and atom.constant == -1

    def test_negation_roundtrip(self):
        atom = make_atom({x: 1, y: -1}, 3)
        neg_atom = atom.negate()
        assert neg_atom.constant == -4
        assert dict(neg_atom.coeffs) == {x: -1, y: 1}

    def test_trivial_atoms(self):
        assert make_atom({}, 0).is_trivially_true
        assert make_atom({}, -1).is_trivially_false

    def test_atom_from_lt_adjusts_constant(self):
        atom = atom_from_comparison(Kind.LT, x, int_const(5))
        assert atom.constant == 4

    def test_zero_coefficients_dropped(self):
        atom = make_atom({x: 0, y: 1}, 2)
        assert dict(atom.coeffs) == {y: 1}


class TestSimplex:
    def test_feasible_box(self):
        atoms = [make_atom({x: 1}, 5), make_atom({x: -1}, -3)]  # 3 <= x <= 5
        result = check_rational(atoms)
        assert result.feasible
        assert Fraction(3) <= result.assignment[x] <= Fraction(5)

    def test_infeasible_bounds(self):
        atoms = [make_atom({x: 1}, 2), make_atom({x: -1}, -3)]  # x<=2 and x>=3
        assert not check_rational(atoms).feasible

    def test_row_interaction(self):
        # x + y <= 1, x >= 1, y >= 1 is infeasible.
        atoms = [
            make_atom({x: 1, y: 1}, 1),
            make_atom({x: -1}, -1),
            make_atom({y: -1}, -1),
        ]
        assert not check_rational(atoms).feasible

    def test_three_variable_chain(self):
        # x <= y <= z <= x forces equality; feasible.
        atoms = [
            make_atom({x: 1, y: -1}, 0),
            make_atom({y: 1, z: -1}, 0),
            make_atom({z: 1, x: -1}, 0),
        ]
        result = check_rational(atoms)
        assert result.feasible
        assert result.assignment[x] == result.assignment[y] == result.assignment[z]

    def test_strict_cycle_infeasible(self):
        # x < y < x  encoded over integers as x <= y-1, y <= x-1.
        atoms = [make_atom({x: 1, y: -1}, -1), make_atom({y: 1, x: -1}, -1)]
        assert not check_rational(atoms).feasible

    def test_unbounded_direction(self):
        atoms = [make_atom({x: -1, y: 1}, 0)]  # y <= x
        assert check_rational(atoms).feasible


class TestIntegerSearch:
    def test_integral_model_returned(self):
        atoms = [make_atom({x: 2}, 7), make_atom({x: -2}, -7)]  # 7/2 <= ... tight
        # After tightening: x <= 3 and x >= 4: infeasible.
        result = check_integer(atoms)
        assert not result.feasible

    def test_branch_and_bound_finds_lattice_point(self):
        # 2x + 2y = 4 with x, y >= 0: rational center may be fractional.
        atoms = [
            make_atom({x: 2, y: 2}, 4),
            make_atom({x: -2, y: -2}, -4),
            make_atom({x: -1}, 0),
            make_atom({y: -1}, 0),
        ]
        result = check_integer(atoms)
        assert result.feasible
        assert result.model[x] + result.model[y] == 2

    def test_model_satisfies_all_atoms(self):
        atoms = [
            make_atom({x: 3, y: 5}, 22),
            make_atom({x: -1}, -1),
            make_atom({y: -1}, -2),
        ]
        result = check_integer(atoms)
        assert result.feasible
        m = result.model
        assert 3 * m[x] + 5 * m[y] <= 22 and m[x] >= 1 and m[y] >= 2

    def test_budget_raises(self):
        atoms = [make_atom({x: 1, y: -1}, 0)]
        with pytest.raises(IntBudgetExceeded):
            check_integer(atoms, budget=0)

    def test_empty_conjunction_feasible(self):
        assert check_integer([]).feasible

    def test_trivially_false_atom(self):
        assert not check_integer([LinAtom((), -1)]).feasible
