#!/usr/bin/env python3
"""Standalone launcher for the chaos harness (``repro.chaos``).

Equivalent to ``PYTHONPATH=src python -m repro.cli chaos -- ...`` but
runnable straight from a checkout::

    python tools/chaos.py --faults 200 --seed 0

See ``repro.chaos`` for the fault menu and the invariants it enforces.
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.chaos import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
