#!/usr/bin/env python3
"""Guard ``bench_tables.txt`` against going stale.

``bench_tables.txt`` is the rendered, human-readable form of the
``BENCH_<id>.json`` headline numbers (see README).  Because it is
produced by a separate pytest invocation, it silently drifts whenever a
benchmark is re-run or a new experiment lands without the tables being
regenerated.  This tool pins the two together:

* ``--stamp`` appends a fingerprint footer — a SHA-256 over the sorted
  (name, content-hash) pairs of every ``BENCH_*.json`` — to
  ``bench_tables.txt``.  Run it right after regenerating the tables::

      pytest benchmarks/ --benchmark-disable -q -p no:randomly > bench_tables.txt
      python tools/check_bench_tables.py --stamp

* With no arguments it *checks*: the footer must exist and match the
  current ``BENCH_*.json`` set, and every experiment with a JSON file
  must render at least one table.  Exit 1 with a diagnosis otherwise
  (CI runs this; see .github/workflows/ci.yml).
"""

from __future__ import annotations

import argparse
import hashlib
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
TABLES = REPO_ROOT / "bench_tables.txt"
FOOTER_PREFIX = "# bench-fingerprint: "

#: Experiment id as rendered in a table title, per BENCH file name.
#: (E2prime's table renders as "E2'".)
TITLE_ALIASES = {"E2prime": "E2'"}


def bench_files() -> list[pathlib.Path]:
    return sorted(REPO_ROOT.glob("BENCH_*.json"))


def fingerprint(files: list[pathlib.Path]) -> str:
    digest = hashlib.sha256()
    for path in files:
        digest.update(path.name.encode("utf-8"))
        digest.update(b"\0")
        digest.update(hashlib.sha256(path.read_bytes()).digest())
    return digest.hexdigest()


def split_footer(text: str) -> tuple[str, str | None]:
    """(body, fingerprint-or-None) of the tables file."""
    lines = text.splitlines(keepends=True)
    if lines and lines[-1].startswith(FOOTER_PREFIX):
        return "".join(lines[:-1]), lines[-1][len(FOOTER_PREFIX):].strip()
    return text, None


def stamp() -> int:
    if not TABLES.exists():
        print(f"error: {TABLES.name} not found; regenerate it first "
              f"(see README)", file=sys.stderr)
        return 1
    body, _ = split_footer(TABLES.read_text(encoding="utf-8"))
    if body and not body.endswith("\n"):
        body += "\n"
    fp = fingerprint(bench_files())
    TABLES.write_text(body + FOOTER_PREFIX + fp + "\n", encoding="utf-8")
    print(f"stamped {TABLES.name} over {len(bench_files())} BENCH files: {fp[:16]}…")
    return 0


def check() -> int:
    problems: list[str] = []
    files = bench_files()
    if not TABLES.exists():
        problems.append(f"{TABLES.name} is missing")
        body, found = "", None
    else:
        body, found = split_footer(TABLES.read_text(encoding="utf-8"))
        expected = fingerprint(files)
        if found is None:
            problems.append(
                f"{TABLES.name} has no fingerprint footer — regenerate the "
                f"tables and run tools/check_bench_tables.py --stamp"
            )
        elif found != expected:
            problems.append(
                f"{TABLES.name} is stale: footer {found[:16]}… does not match "
                f"the current BENCH_*.json set ({expected[:16]}…) — regenerate "
                f"the tables and re-stamp"
            )
    rendered = set(re.findall(r"^=== (E[0-9]+'?|E2')", body, re.MULTILINE))
    for path in files:
        exp = path.stem[len("BENCH_"):]
        title = TITLE_ALIASES.get(exp, exp)
        if title not in rendered:
            problems.append(
                f"{path.name} exists but no '=== {title}' table is rendered "
                f"in {TABLES.name}"
            )
    if problems:
        for p in problems:
            print(f"bench-tables check: {p}", file=sys.stderr)
        return 1
    print(f"bench_tables.txt is fresh ({len(files)} BENCH files, "
          f"{len(rendered)} tables)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--stamp", action="store_true",
        help="append/replace the fingerprint footer instead of checking",
    )
    args = parser.parse_args(argv)
    return stamp() if args.stamp else check()


if __name__ == "__main__":
    raise SystemExit(main())
