"""E15 — replay-validation overhead of the trust rings.

Rings 1 and 2 (witness replay + paranoid model self-check,
`docs/ARCHITECTURE.md` §1.3) sit on the hot path of every analysis: the
self-check evaluates each SAT model against its query before the cache
may serve it, and each reported error path costs one extra model query
plus a concrete replay.  This experiment re-runs the E13/E14 workloads
(the E4 exponential fork program, the E2' mini-vsftpd corpus) and a
warning-heavy MIXY program with both rings on, and measures the
wall-clock overhead against the untrusted baseline.

Acceptance bar: <15% wall-clock overhead with paranoid mode on, at
identical verdicts, with every reported error path replay-classified.
"""

from __future__ import annotations

import time

import pytest

from repro import smt
from repro.core import MixConfig, analyze_source
from repro.mixy import Mixy, MixyConfig
from repro.mixy.corpus_vsftpd import annotation_subsets, mini_vsftpd
from repro.smt import SolverService
from repro.symexec import IfStrategy, SymConfig
from repro.typecheck import TypeEnv
from repro.typecheck.types import BOOL, INT

from conftest import bench_json, print_table

#: timing repetitions; the reported figure is the best of N to damp
#: scheduler noise (the same discipline E14 uses for its contract)
REPEATS = 5
OVERHEAD_BAR = 0.15


def run_trusted(workload):
    """Run ``workload`` with rings 1+2 on; return (result, stats)."""
    service = SolverService(paranoid=True)
    previous = smt.set_service(service)
    try:
        return workload(validate=True), service.stats
    finally:
        smt.set_service(previous)


def run_baseline(workload):
    service = SolverService()
    previous = smt.set_service(service)
    try:
        return workload(validate=False), service.stats
    finally:
        smt.set_service(previous)


def best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


# ---------------------------------------------------------------------------
# Workloads (E13/E14's, parameterized on the trust rings)
# ---------------------------------------------------------------------------


def fork_workload(k: int = 6, validate: bool = False):
    """E4's exponential fork program: 2^k paths, no errors."""
    parts = [f"(if p{i} then 1 else 0)" for i in range(k)]
    source = "{s " + " + ".join(parts) + " s}"
    env = TypeEnv({f"p{i}": BOOL for i in range(k)})
    config = MixConfig(
        sym=SymConfig(if_strategy=IfStrategy.FORK), validate_witnesses=validate
    )
    return analyze_source(source, env=env, config=config).ok


def mix_error_workload(validate: bool = False):
    """A rejected MIX program: the diagnostic's path gets replayed."""
    source = "{s if x < 3 then (if y < 2 then 1 + true else 1) else 2 s}"
    env = TypeEnv({"x": INT, "y": INT})
    config = MixConfig(validate_witnesses=validate)
    report = analyze_source(source, env=env, config=config)
    return [d.message for d in report.diagnostics]


def vsftpd_workload(validate: bool = False):
    """E2's mini-vsftpd at the fully annotated end of the schedule."""
    config = MixyConfig(validate_witnesses=validate)
    warnings = Mixy(mini_vsftpd(annotation_subsets()[-1]), config).run()
    return sorted(w.message for w in warnings)


WARNING_HEAVY = "\n".join(
    f"void deref{i}(int *p) MIX(symbolic) {{ *p = {i}; }}" for i in range(6)
) + (
    "\nvoid main() { "
    + " ".join(f"deref{i}(NULL);" for i in range(6))
    + " }"
)


def warning_heavy_workload(validate: bool = False):
    """Six NULL-flow warnings, each replayed when validation is on."""
    config = MixyConfig(validate_witnesses=validate)
    warnings = Mixy(WARNING_HEAVY, config).run()
    return sorted(w.message for w in warnings)


WORKLOADS = [
    ("fork k=6", fork_workload),
    ("mix error", mix_error_workload),
    ("mini-vsftpd", vsftpd_workload),
    ("6x null-flow", warning_heavy_workload),
]


# ---------------------------------------------------------------------------
# Shape assertions
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name,workload", WORKLOADS, ids=[n for n, _ in WORKLOADS])
def test_trust_rings_do_not_change_verdicts(name, workload):
    base_result, _ = run_baseline(workload)
    trusted_result, stats = run_trusted(workload)
    assert trusted_result == base_result
    # Ground truth never contradicts the analyzer on the seed corpus.
    assert stats.witnesses_diverged == 0
    assert stats.self_check_failures == 0


def test_every_reported_path_is_classified():
    _, stats = run_trusted(warning_heavy_workload)
    assert stats.witnesses_confirmed == 6
    _, stats = run_trusted(mix_error_workload)
    assert stats.witnesses_confirmed + stats.witnesses_unconfirmed >= 1


def test_replay_overhead_within_bar():
    """The <15% wall-clock acceptance bar, on the combined workload."""

    def combined(validate: bool):
        for _name, workload in WORKLOADS:
            if validate:
                run_trusted(workload)
            else:
                run_baseline(workload)

    baseline = best_of(lambda: combined(False))
    trusted = best_of(lambda: combined(True))
    overhead = trusted / baseline - 1
    assert overhead < OVERHEAD_BAR, (
        f"trust rings cost {overhead:.1%} wall-clock "
        f"({baseline * 1000:.1f} ms -> {trusted * 1000:.1f} ms); "
        f"bar is {OVERHEAD_BAR:.0%}"
    )


@pytest.mark.parametrize("name,workload", WORKLOADS, ids=[n for n, _ in WORKLOADS])
def test_bench_trusted_workload(benchmark, name, workload):
    benchmark(lambda: run_trusted(workload))


# ---------------------------------------------------------------------------
# Report
# ---------------------------------------------------------------------------


def test_report_witness_overhead_table(capsys):
    rows = []
    for name, workload in WORKLOADS:
        base = best_of(lambda: run_baseline(workload))
        trusted = best_of(lambda: run_trusted(workload))
        _, stats = run_trusted(workload)
        rows.append(
            [
                name,
                f"{base * 1000:.1f}",
                f"{trusted * 1000:.1f}",
                f"{trusted / base - 1:+.0%}",
                stats.witnesses_confirmed,
                stats.witnesses_unconfirmed,
                stats.witnesses_diverged,
            ]
        )
    title = "E15: trust-ring overhead (paranoid solver + witness replay)"
    headers = [
        "workload",
        "base ms",
        "trusted ms",
        "overhead",
        "confirmed",
        "unconfirmed",
        "diverged",
    ]
    with capsys.disabled():
        print_table(title, headers, rows)
    bench_json("E15", {"title": title, "headers": headers, "rows": rows})
    for row in rows:
        assert row[6] == 0  # zero REPLAY_DIVERGED on the seed corpus
