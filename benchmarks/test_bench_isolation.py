"""E20 — the price of request isolation in ``repro serve``.

The hardened daemon forks every analyze request into a disposable
worker: a crashing or deadline-blown analysis kills the worker, never
the daemon, and the parent merges the worker's cache delta only after a
clean exit.  That safety has a cost — fork, pickle the delta over a
pipe, merge — and this experiment prices it against ``--no-isolate``
(the pre-hardening in-process mode) on the staircase vsftpd corpus.

Both daemons run as real subprocesses over loopback TCP with fresh
stores and serve the same request series: one cold analyze (pays the
full analysis) and four warm ones (memo replays — the regime where a
fixed per-request overhead would hurt most, and the steady state of a
CI bot re-analyzing an unchanged tree).

Acceptance bars:

* every reply — cold, warm, either mode — is bitwise-identical to a
  fresh one-shot ``repro mixy --jobs 1`` run (isolation must not leak
  into answers);
* total isolated wall clock is within **25%** of in-process.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import time

import pytest

import repro
from repro.mixy.corpus_vsftpd import parallel_vsftpd
from repro.serve import request

from conftest import bench_json, print_table

DEPTH = 2
WARM_REQUESTS = 4
OVERHEAD_BAR = 0.25

SRC_DIR = str(pathlib.Path(repro.__file__).resolve().parents[1])


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _start_daemon(tmp, store, *extra):
    argv = [
        sys.executable, "-m", "repro.cli", "serve",
        "--listen", "127.0.0.1:0", "--store", str(tmp / store), *extra,
    ]
    proc = subprocess.Popen(
        argv, cwd=tmp, env=_env(), text=True,
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
    )
    announce = proc.stdout.readline()
    assert "listening on tcp:" in announce, announce
    return proc, announce.rsplit(" ", 1)[-1].strip()


def _serve_series(tmp, source, mode, *extra):
    """One daemon life: a cold analyze then WARM_REQUESTS warm ones."""
    proc, address = _start_daemon(tmp, f"store-{mode}", *extra)
    payload = {"cmd": "analyze", "lang": "mixy", "source": source,
               "options": {}}
    try:
        timings = []
        replies = []
        for _ in range(1 + WARM_REQUESTS):
            start = time.monotonic()
            reply = request(address, payload, timeout=300)
            timings.append(time.monotonic() - start)
            assert reply["ok"], reply
            replies.append(reply)
        stats = request(address, {"cmd": "stats"})["stats"]
        request(address, {"cmd": "shutdown"})
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert bool(stats["isolated_workers"]) == ("--no-isolate" not in extra)
    warm = timings[1:]
    return {
        "cold_secs": timings[0],
        "warm_secs_each": warm,
        "warm_secs_mean": sum(warm) / len(warm),
        "total_secs": sum(timings),
        "results": [r["result"] for r in replies],
        "warm_memo_hits": replies[-1]["served"]["store"].get("mixy_hits", 0),
    }


def _one_shot(tmp, source):
    path = tmp / "baseline.c"
    path.write_text(source)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "mixy", str(path), "--jobs", "1"],
        capture_output=True, text=True, env=_env(), cwd=tmp, timeout=300,
    )
    warnings = proc.stdout.splitlines()[:-1]  # drop the perf summary
    return {
        "exit": proc.returncode,
        "lines": warnings + [f"{len(warnings)} warning(s)"],
    }


@pytest.fixture(scope="module")
def measurements(tmp_path_factory):
    if not hasattr(os, "fork"):
        pytest.skip("isolation needs fork")
    tmp = tmp_path_factory.mktemp("e20-isolation")
    source = parallel_vsftpd(depth=DEPTH)
    return {
        "baseline": _one_shot(tmp, source),
        "isolated": _serve_series(tmp, source, "isolated"),
        "inproc": _serve_series(tmp, source, "inproc", "--no-isolate"),
    }


def test_isolation_never_leaks_into_answers(measurements):
    baseline = measurements["baseline"]
    for mode in ("isolated", "inproc"):
        for result in measurements[mode]["results"]:
            assert result == baseline, mode


def test_both_modes_actually_went_warm(measurements):
    for mode in ("isolated", "inproc"):
        m = measurements[mode]
        assert m["warm_memo_hits"] > 0, mode
        assert m["warm_secs_mean"] < m["cold_secs"], mode


def test_isolation_overhead_is_under_the_bar(measurements):
    iso = measurements["isolated"]["total_secs"]
    inproc = measurements["inproc"]["total_secs"]
    overhead = iso / inproc - 1.0
    assert overhead <= OVERHEAD_BAR, (
        f"forked workers cost {overhead:.1%} over in-process "
        f"(bar {OVERHEAD_BAR:.0%})"
    )


def test_report(measurements, capsys):
    iso = measurements["isolated"]
    inproc = measurements["inproc"]
    overhead = iso["total_secs"] / inproc["total_secs"] - 1.0
    rows = [
        [
            mode,
            f"{m['cold_secs']:.3f}",
            f"{m['warm_secs_mean']:.3f}",
            f"{m['total_secs']:.3f}",
            m["warm_memo_hits"],
        ]
        for mode, m in (("isolated", iso), ("inproc", inproc))
    ]
    title = (
        f"E20: request-isolation overhead (depth {DEPTH}, "
        f"1 cold + {WARM_REQUESTS} warm, overhead {overhead:+.1%})"
    )
    with capsys.disabled():
        print_table(
            title,
            ["mode", "cold s", "warm s (mean)", "total s", "memo hits"],
            rows,
        )
    payload = {
        "experiment": "E20",
        "depth": DEPTH,
        "warm_requests": WARM_REQUESTS,
        "overhead": round(overhead, 4),
        "overhead_bar": OVERHEAD_BAR,
        "modes": {
            mode: {
                "cold_secs": round(m["cold_secs"], 4),
                "warm_secs_mean": round(m["warm_secs_mean"], 4),
                "warm_secs_each": [round(s, 4) for s in m["warm_secs_each"]],
                "total_secs": round(m["total_secs"], 4),
                "warm_memo_hits": m["warm_memo_hits"],
            }
            for mode, m in (("isolated", iso), ("inproc", inproc))
        },
        "result_identity": all(
            result == measurements["baseline"]
            for mode in ("isolated", "inproc")
            for result in measurements[mode]["results"]
        ),
    }
    bench_json("E20", payload)
