"""E10 (extension) — the §2 sign-qualifier system under MIX.

The paper sketches a sign qualifier lattice (pos/neg/zero/unknown) and
shows symbolic execution refining signs across block boundaries.  This
bench instantiates that system with a division-by-zero-freedom client
and measures the precision gap: for programs with k guarded divisions,
the pure qualified checker rejects every one (path-insensitive); the
mixed analysis accepts all of them.
"""

import pytest

from repro.lang import parse
from repro.quals import QualTypeError, Sign, SignChecker, SignEnv, analyze_signs
from repro.quals.checker import int_q

from conftest import bench_json, print_table


def guarded_divisions(k: int, mixed: bool) -> str:
    """k guarded divisions over distinct unknown ints.

    Each guard is the paper's three-way sign split — the flat lattice has
    no 'nonzero' element, so ``x != 0`` alone would not refine; the
    pos/zero/neg test is exactly what the §2 example uses.
    """
    terms = []
    for i in range(k):
        if mixed:
            terms.append(
                f"{{s if 0 < x{i} then {{t 10 / x{i} t}} "
                f"else if x{i} = 0 then {{t 1 t}} "
                f"else {{t 10 / x{i} t}} s}}"
            )
        else:
            terms.append(
                f"(if 0 < x{i} then 10 / x{i} else if x{i} = 0 then 1 else 10 / x{i})"
            )
    return " + ".join(terms)


def env(k: int) -> SignEnv:
    return SignEnv({f"x{i}": int_q(Sign.UNKNOWN) for i in range(k)})


def run_mixed(k: int):
    return analyze_signs(guarded_divisions(k, mixed=True), env(k))


@pytest.mark.parametrize("k", [1, 2, 4])
def test_bench_sign_refinement(benchmark, k):
    report = benchmark(run_mixed, k)
    assert report.ok


@pytest.mark.parametrize("k", [1, 2, 4])
def test_pure_rejects_mixed_accepts(k):
    with pytest.raises(QualTypeError):
        SignChecker().check(parse(guarded_divisions(k, mixed=False)), env(k))
    assert run_mixed(k).ok


def test_report_sign_table(capsys):
    rows = []
    for k in (1, 2, 4, 8):
        pure = "rejects"
        try:
            SignChecker().check(parse(guarded_divisions(k, mixed=False)), env(k))
            pure = "accepts"
        except QualTypeError:
            pass
        mixed = run_mixed(k)
        rows.append([k, pure, "accepts" if mixed.ok else "rejects"])
    title = "E10 (extension): sign qualifiers — guarded divisions"
    headers = ["k divisions", "pure sign checking", "MIX (sign x symex)"]
    with capsys.disabled():
        print_table(title, headers, rows)
    bench_json("E10", {"title": title, "headers": headers, "rows": rows})
    assert all(r[1] == "rejects" and r[2] == "accepts" for r in rows)
