"""E13 — the solver-service query cache on analysis workloads.

The analyses issue highly redundant queries: a forking executor
re-checks a growing path condition whose prefix it has already decided,
and the MIXY fixpoint re-runs blocks (and hence their feasibility
queries) until qualifiers stabilize.  The service's normalized-key cache
(exact / subset / superset / model-eval tiers, `repro.smt.service`)
answers the repeats without touching the DPLL(T) core.

Rows reproduced: full solves (cache misses reaching the SAT core) with
the cache on vs off, on the E4 fork workload and the E2' mini-vsftpd
workload, at identical verdicts.  The acceptance bar is a >=30% drop.
"""

from __future__ import annotations

import pytest

from repro import smt
from repro.core import MixConfig, analyze_source
from repro.mixy import Mixy
from repro.mixy.corpus_vsftpd import annotation_subsets, mini_vsftpd
from repro.smt import SolverService, and_, gt, int_const, lt, var
from repro.smt.terms import INT
from repro.symexec import IfStrategy, SymConfig
from repro.typecheck import TypeEnv
from repro.typecheck.types import BOOL

from conftest import bench_json, print_table


def with_service(cache_enabled, workload):
    """Run ``workload`` against a fresh service; return (result, stats)."""
    service = SolverService(cache_enabled=cache_enabled)
    previous = smt.set_service(service)
    try:
        return workload(), service.stats
    finally:
        smt.set_service(previous)


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------


def fork_workload(k: int = 6):
    """E4's exponential fork program: 2^k paths over shared branch atoms."""
    parts = [f"(if p{i} then 1 else 0)" for i in range(k)]
    source = "{s " + " + ".join(parts) + " s}"
    env = TypeEnv({f"p{i}": BOOL for i in range(k)})
    config = MixConfig(sym=SymConfig(if_strategy=IfStrategy.FORK))
    report = analyze_source(source, env=env, config=config)
    return report.ok


def vsftpd_workload():
    """E2's mini-vsftpd at the fully annotated end of the schedule."""
    mixy = Mixy(mini_vsftpd(annotation_subsets()[-1]))
    warnings = mixy.run()
    return sorted(str(w) for w in warnings)


def prefix_workload(depth: int = 12):
    """The executor's signature query stream: a path condition that grows
    one conjunct at a time, re-checked at every step."""
    xs = [var(f"x{i}", INT) for i in range(depth)]
    service = smt.get_service()
    prefix = []
    verdicts = []
    for i, x in enumerate(xs):
        prefix.append(and_(gt(x, int_const(i)), lt(x, int_const(i + 10))))
        verdicts.append(service.check_sat(tuple(prefix)))
        verdicts.append(service.check_sat(tuple(prefix)))  # branch re-check
    return [v.name for v in verdicts]


WORKLOADS = [
    ("fork k=6", fork_workload),
    ("mini-vsftpd", vsftpd_workload),
    ("prefix d=12", prefix_workload),
]


# ---------------------------------------------------------------------------
# Shape assertions
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name,workload", WORKLOADS, ids=[n for n, _ in WORKLOADS])
def test_cache_cuts_full_solves_at_identical_verdicts(name, workload):
    cold_result, cold = with_service(False, workload)
    warm_result, warm = with_service(True, workload)
    assert warm_result == cold_result  # the cache must be invisible
    assert warm.queries == cold.queries  # same query stream issued
    # Disabling the cache leaves only the syntactic fast path active.
    assert cold.cache_hits == cold.syntactic_hits
    # Acceptance bar: >=30% fewer full DPLL(T) runs.
    assert warm.full_solves <= 0.7 * cold.full_solves, (
        f"{name}: {warm.full_solves} full solves with cache, "
        f"{cold.full_solves} without"
    )


def test_repeated_analysis_is_almost_free():
    """A second identical run hits the exact tier for every query."""
    service = SolverService()
    previous = smt.set_service(service)
    try:
        fork_workload(4)
        first = service.stats.full_solves
        fork_workload(4)
        assert service.stats.full_solves == first
    finally:
        smt.set_service(previous)


@pytest.mark.parametrize("name,workload", WORKLOADS, ids=[n for n, _ in WORKLOADS])
def test_bench_workload_with_cache(benchmark, name, workload):
    benchmark(lambda: with_service(True, workload))


# ---------------------------------------------------------------------------
# Report
# ---------------------------------------------------------------------------


def test_report_query_cache_table(capsys):
    rows = []
    for name, workload in WORKLOADS:
        _, cold = with_service(False, workload)
        _, warm = with_service(True, workload)
        drop = 1 - warm.full_solves / cold.full_solves if cold.full_solves else 0.0
        rows.append(
            [
                name,
                warm.queries,
                warm.cache_hits,
                f"{warm.hit_rate:.0%}",
                cold.full_solves,
                warm.full_solves,
                f"{drop:.0%}",
            ]
        )
    title = "E13: query cache on analysis workloads (full solves = DPLL(T) runs)"
    headers = [
        "workload",
        "queries",
        "cache hits",
        "hit rate",
        "solves (cold)",
        "solves (cached)",
        "reduction",
    ]
    with capsys.disabled():
        print_table(title, headers, rows)
    bench_json("E13", {"title": title, "headers": headers, "rows": rows})
    for row in rows:
        assert row[4] > row[5]  # every workload benefits
