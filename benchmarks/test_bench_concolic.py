"""E12 (extension) — concolic execution vs. random testing.

The paper's §3.1 frames DART/CUTE-style concolic execution as an
exploration strategy over the same symbolic-execution rules.  This bench
reproduces the classic DART motivation table: the probability that
random input sampling reaches a deep equality-guarded branch collapses
as the guard narrows, while concolic exploration reaches every branch in
a handful of runs.
"""

import random

import pytest

from repro.lang import parse, run
from repro.lang.interp import RuntimeTypeError
from repro.symexec import ConcolicDriver
from repro.typecheck.types import INT

from conftest import bench_json, print_table


def guarded_program(magic: int) -> str:
    return f"if x = {magic} then 1 + true else 0"


def concolic_finds(magic: int) -> int:
    """Runs needed by the concolic driver to hit the bug."""
    driver = ConcolicDriver(parse(guarded_program(magic)), {"x": INT})
    report = driver.explore()
    assert report.failures and report.failures[0][0]["x"] == magic
    return len(report.runs)


def random_finds(magic: int, budget: int, seed: int = 7) -> int:
    """Random-testing attempts within a budget (0 = never found)."""
    rng = random.Random(seed)
    program = parse(guarded_program(magic))
    for attempt in range(1, budget + 1):
        x = rng.randint(-(10**6), 10**6)
        try:
            run(program, {"x": x})
        except RuntimeTypeError:
            return attempt
    return 0


@pytest.mark.parametrize("magic", [42, 123_456])
def test_bench_concolic(benchmark, magic):
    assert benchmark(concolic_finds, magic) <= 3


def test_concolic_beats_random():
    magic = 987_654
    assert concolic_finds(magic) <= 3
    assert random_finds(magic, budget=2_000) == 0  # random never hits it


def test_report_concolic_table(capsys):
    rows = []
    for magic in (7, 4242, 987_654):
        rows.append(
            [
                magic,
                concolic_finds(magic),
                random_finds(magic, budget=2_000) or "not in 2000",
            ]
        )
    title = "E12 (extension): concolic vs random testing (runs to find the bug)"
    headers = ["guard constant", "concolic runs", "random attempts"]
    with capsys.disabled():
        print_table(title, headers, rows)
    bench_json("E12", {"title": title, "headers": headers, "rows": rows})
