"""E6 — sound (exhaustive) versus good-enough symbolic execution
(paper Section 3.2).

Paper claim: rule TSymBlock's ``exhaustive(g1, ..., gn)`` makes MIX's use
of symbolic execution sound by requiring all paths to be explored; the
check "can be weakened to a 'good enough check'" to model the unsound,
bounded exploration of practical symbolic executors.

Reproduced rows: verdicts and paths for loop-carrying programs under
both modes — SOUND rejects what it cannot exhaust, GOOD_ENOUGH accepts
after bounded exploration.
"""

import pytest

from repro.core import MixConfig, SoundnessMode, analyze_source
from repro.symexec import SymConfig
from repro.typecheck import TypeEnv
from repro.typecheck.types import INT

from conftest import bench_json, print_table

ENV = TypeEnv({"n": INT})

BOUNDED_LOOP = "{s let i = ref 0 in while !i < 3 do i := !i + 1 done; !i s}"
UNBOUNDED_LOOP = "{s let i = ref 0 in while !i < n do i := !i + 1 done; !i s}"


def run(source: str, mode: SoundnessMode, unroll: int = 8):
    config = MixConfig(sym=SymConfig(max_loop_unroll=unroll), soundness=mode)
    return analyze_source(source, env=ENV, config=config)


@pytest.mark.parametrize("mode", list(SoundnessMode), ids=lambda m: m.value)
def test_bench_soundness_mode(benchmark, mode):
    benchmark(run, UNBOUNDED_LOOP, mode)


def test_sound_mode_is_strict():
    assert run(BOUNDED_LOOP, SoundnessMode.SOUND).ok
    assert not run(UNBOUNDED_LOOP, SoundnessMode.SOUND).ok
    assert run(UNBOUNDED_LOOP, SoundnessMode.GOOD_ENOUGH).ok


def test_good_enough_never_rejects_what_sound_accepts():
    for source in (BOUNDED_LOOP, UNBOUNDED_LOOP):
        if run(source, SoundnessMode.SOUND).ok:
            assert run(source, SoundnessMode.GOOD_ENOUGH).ok


def test_report_soundness_table(capsys):
    rows = []
    for label, source in (("bounded loop", BOUNDED_LOOP), ("input-bounded loop", UNBOUNDED_LOOP)):
        for mode in SoundnessMode:
            report = run(source, mode)
            rows.append(
                [
                    label,
                    mode.value,
                    "accepts" if report.ok else "rejects",
                    report.stats.get("paths_explored", 0),
                ]
            )
    title = "E6: exhaustive vs good-enough (paper §3.2)"
    headers = ["program", "mode", "verdict", "paths"]
    with capsys.disabled():
        print_table(title, headers, rows)
    bench_json("E6", {"title": title, "headers": headers, "rows": rows})
