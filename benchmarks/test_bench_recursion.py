"""E8 — recursion between typed and symbolic blocks (paper Section 4.4).

Paper claim: "a typed block and a symbolic block may recursively call
each other, and we found block recursion to be surprisingly common ...
Without special handling for recursion, MIXY will keep switching between
them indefinitely"; the block stack detects re-entry with a compatible
calling context and the analysis iterates assumptions to a fixpoint.

Reproduced rows: recursion detections and fixpoint iterations for
mutually recursive typed/symbolic block chains of growing depth, with
termination (the headline property) asserted.
"""

import pytest

from repro.mixy import Mixy

from conftest import bench_json, print_table


def mutual_recursion(chain: int) -> str:
    """A cycle of `chain` alternating typed/symbolic functions."""
    decls = []
    for i in range(chain):
        mix = "MIX(symbolic)" if i % 2 == 0 else "MIX(typed)"
        decls.append(f"void step_{i}(int *p, int n) {mix};")
    bodies = []
    for i in range(chain):
        mix = "MIX(symbolic)" if i % 2 == 0 else "MIX(typed)"
        next_fn = f"step_{(i + 1) % chain}"
        bodies.append(
            f"""
            void step_{i}(int *p, int n) {mix} {{
              if (n > 0) {{ {next_fn}(p, n - 1); }}
              if (p != NULL) {{ sysutil_free(p); }}
            }}
            """
        )
    return (
        "void sysutil_free(void *nonnull p_ptr) MIX(typed);\n"
        + "\n".join(decls)
        + "\n".join(bodies)
        + """
        int main(void) {
          step_0((int *) malloc(sizeof(int)), 3);
          return 0;
        }
        """
    )


def run(chain: int):
    mixy = Mixy(mutual_recursion(chain))
    warnings = mixy.run()
    return mixy, warnings


@pytest.mark.parametrize("chain", [2, 4])
def test_bench_recursion(benchmark, chain):
    benchmark(run, chain)


@pytest.mark.parametrize("chain", [2, 4, 6])
def test_recursive_blocks_terminate_cleanly(chain):
    mixy, warnings = run(chain)
    assert warnings == []  # the null guard keeps every free safe
    assert mixy.stats["fixpoint_iterations"] <= mixy.config.max_fixpoint_iters


def test_report_recursion_table(capsys):
    rows = []
    for chain in (2, 4, 6):
        mixy, warnings = run(chain)
        rows.append(
            [
                chain,
                mixy.stats["recursion_detected"],
                mixy.stats["fixpoint_iterations"],
                mixy.stats["symbolic_blocks_run"],
                len(warnings),
            ]
        )
    title = "E8: typed/symbolic block recursion (paper §4.4)"
    headers = ["chain length", "recursion hits", "fixpoint iters", "block runs", "warnings"]
    with capsys.disabled():
        print_table(title, headers, rows)
    bench_json("E8", {"title": title, "headers": headers, "rows": rows})
