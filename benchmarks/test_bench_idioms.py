"""E3 — the Section 2 motivating idioms.

Paper result: each idiom is a false positive (or a failure) for one
analysis alone, and is handled by MIX with the paper's block placement.
Rows: per idiom, the pure-type-checking verdict, the pure-symbolic
verdict where applicable, and the MIX verdict.
"""

import pytest

from repro.core import analyze_source
from repro.lang import parse
from repro.typecheck import TypeEnv, TypeError_, check_expr
from repro.typecheck.types import BOOL, INT, FunType

from conftest import bench_json, print_table

ENV = TypeEnv(
    {
        "x": INT,
        "p": BOOL,
        "f": FunType(INT, INT),
        "z": INT,
        "n": INT,
        "multithreaded": BOOL,
        "fork": INT,
        "lock": INT,
        "unlock": INT,
        "work1": INT,
        "work2": INT,
    }
)

# (name, plain source that pure typing rejects / symex fails on,
#  mixed source with the paper's block placement)
IDIOMS = [
    (
        "unreachable code",
        'if true then 5 else "foo" + 3',
        '{s if true then {t 5 t} else {t "foo" + 3 t} s}',
    ),
    (
        "flow-sensitive reuse",
        None,  # expressible only with the blocks
        "{s let v = ref 1 in {t !v + 1 t}; v := 2; !v s}",
    ),
    (
        "null-then-malloc analog",
        None,
        "{s let v = ref 1 in v := 1 = 1; v := 7; {t !v + 1 t} s}",
    ),
    (
        "sign refinement",
        None,
        "{s if 0 < x then {t x + 1 t} else if x = 0 then {t 0 t} else {t 0 - x t} s}",
    ),
    (
        "helping symex: unknown function",
        "{s f 1 + 1 s}",
        "{s {t f 1 t} + 1 s}",
    ),
    (
        "helping symex: nonlinear operation",
        "{s z * z s}",
        "{s {t z * z t} s}",
    ),
    (
        "helping symex: long-running loop",
        "{s let i = ref 0 in while !i < n do i := !i + 1 done; !i s}",
        "{s {t let i = ref 0 in while !i < n do i := !i + 1 done; !i t} s}",
    ),
    (
        "intro: multithreaded fork/lock",
        None,
        """
        {s
          (if multithreaded then {t fork t} else {t 0 t});
          {t work1 t};
          (if multithreaded then {t lock t} else {t 0 t});
          {t work2 t};
          (if multithreaded then {t unlock t} else {t 0 t})
        s}
        """,
    ),
]


def pure_verdict(source):
    if source is None:
        return "n/a"
    try:
        check_expr(parse(source.replace("{s", "(").replace("s}", ")")
                          .replace("{t", "(").replace("t}", ")")), ENV)
        return "accepts"
    except TypeError_:
        return "rejects"


@pytest.mark.parametrize("name,plain,mixed", IDIOMS, ids=[i[0] for i in IDIOMS])
def test_mixed_accepts(name, plain, mixed):
    report = analyze_source(mixed, env=ENV)
    assert report.ok, f"{name}: {report}"
    if plain is not None:
        bare = analyze_source(plain, env=ENV)
        assert not bare.ok, f"{name}: expected the un-mixed version to fail"


@pytest.mark.parametrize("name,plain,mixed", IDIOMS, ids=[i[0] for i in IDIOMS])
def test_bench_idiom(benchmark, name, plain, mixed):
    report = benchmark(analyze_source, mixed, env=ENV)
    assert report.ok


def test_report_idiom_table(capsys):
    rows = []
    for name, plain, mixed in IDIOMS:
        mixed_report = analyze_source(mixed, env=ENV)
        plain_verdict = (
            ("accepts" if analyze_source(plain, env=ENV).ok else "rejects")
            if plain is not None
            else pure_verdict(mixed)
        )
        rows.append(
            [
                name,
                plain_verdict,
                "accepts" if mixed_report.ok else "rejects",
                mixed_report.stats.get("paths_explored", 0),
            ]
        )
    title = "E3: Section 2 idioms (single analysis vs MIX)"
    headers = ["idiom", "single analysis", "MIX", "paths"]
    with capsys.disabled():
        print_table(title, headers, rows)
    bench_json("E3", {"title": title, "headers": headers, "rows": rows})
    assert all(row[2] == "accepts" for row in rows)
