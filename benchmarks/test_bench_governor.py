"""E14 — the resource governor's degradation ladder under load.

The governed analyses must obey a wall-clock contract: with
``--deadline D`` a run terminates within ``2 * D`` (modulo the fixed
per-process overhead of parsing and report assembly) and returns a
*conservative* verdict — a ``BUDGET`` rejection in SOUND mode, a
truncation warning in GOOD_ENOUGH — never a hang and never a silently
wrong acceptance.

Rows reproduced: the E13 workloads (the E4 exponential fork program and
the E2' mini-vsftpd corpus) re-run under an aggressive 50 ms deadline.
The fork workload is governed end to end, so its bar is the strict
``2 * D``.  MIXY's qualifier inference is *by design* outside the
governor (it is the fallback the driver degrades to), so mini-vsftpd
gets a looser absolute bound plus the requirement that the degradation
counters actually fired.
"""

from __future__ import annotations

import time

import pytest

from repro import smt
from repro.budget import Budget
from repro.core import MixConfig, SoundnessMode, analyze_source
from repro.mixy import Mixy, MixyConfig
from repro.mixy.corpus_vsftpd import annotation_subsets, mini_vsftpd
from repro.smt import SolverService
from repro.symexec import IfStrategy, SymConfig
from repro.symexec.executor import ErrKind
from repro.typecheck import TypeEnv
from repro.typecheck.types import BOOL

from conftest import bench_json, print_table

DEADLINE = 0.05


def governed_service():
    return SolverService()


def fork_source(k: int):
    parts = [f"(if p{i} then 1 else 0)" for i in range(k)]
    return "{s " + " + ".join(parts) + " s}", TypeEnv({f"p{i}": BOOL for i in range(k)})


def run_fork(k: int, soundness: SoundnessMode, budget):
    source, env = fork_source(k)
    config = MixConfig(
        sym=SymConfig(if_strategy=IfStrategy.FORK),
        soundness=soundness,
        budget=budget,
    )
    return analyze_source(source, env=env, config=config)


def timed(workload):
    """Run ``workload`` on a fresh service; return (result, stats, secs)."""
    service = SolverService()
    previous = smt.set_service(service)
    started = time.perf_counter()
    try:
        result = workload()
    finally:
        elapsed = time.perf_counter() - started
        smt.set_service(previous)
    return result, service.stats, elapsed


# ---------------------------------------------------------------------------
# The wall-clock contract
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("k", [8, 10])
@pytest.mark.parametrize(
    "soundness", [SoundnessMode.SOUND, SoundnessMode.GOOD_ENOUGH]
)
def test_fork_terminates_within_twice_deadline(k, soundness):
    """2^k paths would take seconds; the deadline ends the run in ~D."""
    ungoverned_ok, _, _ = timed(lambda: run_fork(k, soundness, None))
    assert ungoverned_ok.ok  # the program itself is fine

    report, stats, elapsed = timed(
        lambda: run_fork(k, soundness, Budget(deadline=DEADLINE))
    )
    assert elapsed <= 2 * DEADLINE, (
        f"fork k={k} took {elapsed:.3f}s under a {DEADLINE}s deadline"
    )
    # Conservative verdict, per the ladder: SOUND rejects with a BUDGET
    # diagnostic; GOOD_ENOUGH may accept the truncated exploration but
    # must say so in a warning.
    if soundness is SoundnessMode.SOUND:
        assert not report.ok
        assert any(d.kind is ErrKind.BUDGET for d in report.diagnostics)
    else:
        assert report.warnings or any(
            d.kind is ErrKind.BUDGET for d in report.diagnostics
        )
    assert stats.deadline_breaches >= 1


def test_fork_with_query_timeout_still_converges():
    report, stats, elapsed = timed(
        lambda: run_fork(
            8,
            SoundnessMode.SOUND,
            Budget(deadline=DEADLINE, query_timeout=0.01),
        )
    )
    assert elapsed <= 2 * DEADLINE
    assert not report.ok


def test_vsftpd_degrades_with_fallbacks():
    """mini-vsftpd under a deadline far below its ungoverned runtime: the
    driver must fall back to pure qualifier inference per breached block
    and still terminate promptly.  The qualifier pass is deliberately
    ungoverned (it *is* the degradation target), so the bound here is a
    loose absolute one, not 2×deadline."""
    tight = 0.002

    def workload():
        mixy = Mixy(
            mini_vsftpd(annotation_subsets()[-1]),
            MixyConfig(budget=Budget(deadline=tight)),
        )
        warnings = mixy.run()
        return mixy, warnings

    (mixy, warnings), stats, elapsed = timed(workload)
    assert elapsed <= 2.0  # promptly, if not 2×(2 ms)
    assert mixy.stats["budget_fallbacks"] >= 1
    assert stats.deadline_breaches >= 1
    # The breach surfaces to the caller rather than vanishing.
    assert any("resource budget exceeded" in str(w) for w in warnings)


def test_vsftpd_generous_deadline_is_invisible():
    def governed():
        mixy = Mixy(
            mini_vsftpd(annotation_subsets()[-1]),
            MixyConfig(budget=Budget(deadline=3600.0)),
        )
        return sorted(str(w) for w in mixy.run())

    def baseline():
        mixy = Mixy(mini_vsftpd(annotation_subsets()[-1]))
        return sorted(str(w) for w in mixy.run())

    governed_result, governed_stats, _ = timed(governed)
    baseline_result, _, _ = timed(baseline)
    assert governed_result == baseline_result
    assert governed_stats.deadline_breaches == 0


# ---------------------------------------------------------------------------
# Report
# ---------------------------------------------------------------------------


def test_report_governor_table(capsys):
    rows = []
    for k in (8, 10):
        _, _, free = timed(lambda: run_fork(k, SoundnessMode.SOUND, None))
        report, stats, gov = timed(
            lambda: run_fork(k, SoundnessMode.SOUND, Budget(deadline=DEADLINE))
        )
        rows.append(
            [
                f"fork k={k}",
                f"{free:.3f}s",
                f"{gov:.3f}s",
                "BUDGET reject" if not report.ok else "accept",
                stats.deadline_breaches,
                stats.query_timeouts,
            ]
        )

    def vsftpd():
        mixy = Mixy(
            mini_vsftpd(annotation_subsets()[-1]),
            MixyConfig(budget=Budget(deadline=0.002)),
        )
        mixy.run()
        return mixy

    _, _, free = timed(
        lambda: Mixy(mini_vsftpd(annotation_subsets()[-1])).run()
    )
    mixy, stats, gov = timed(vsftpd)
    rows.append(
        [
            "mini-vsftpd",
            f"{free:.3f}s",
            f"{gov:.3f}s",
            f"{mixy.stats['budget_fallbacks']} qual fallback(s)",
            stats.deadline_breaches,
            stats.query_timeouts,
        ]
    )
    title = (f"E14: degradation under a {DEADLINE * 1000:.0f} ms deadline "
    "(fork) / 2 ms (vsftpd)")
    headers = [
        "workload",
        "ungoverned",
        "governed",
        "degradation",
        "deadline breaches",
        "query timeouts",
    ]
    with capsys.disabled():
        print_table(title, headers, rows)
    bench_json("E14", {"title": title, "headers": headers, "rows": rows})
