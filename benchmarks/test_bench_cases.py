"""E1 — the four vsftpd case studies (paper Section 4.5).

Paper result: pure type qualifier inference reports a false warning on
each pattern; adding the paper's MIX(symbolic)/MIX(typed) annotations
eliminates it.  Reproduced rows: warnings without vs. with annotations
per case, plus the per-case analysis cost.
"""

import pytest

from repro.mixy import Mixy
from repro.mixy.corpus import CASES

from conftest import bench_json, print_table


def analyze(name: str, annotated: bool):
    mixy = Mixy(CASES[name].source(annotated))
    warnings = mixy.run(entry="typed", entry_function="main")
    return mixy, warnings


@pytest.mark.parametrize("name", sorted(CASES))
def test_case_shape(name):
    """Shape assertion: unannotated warns, annotated is clean."""
    _, plain = analyze(name, annotated=False)
    _, mixed = analyze(name, annotated=True)
    assert len(plain) >= 1
    assert mixed == []


@pytest.mark.parametrize("name", sorted(CASES))
@pytest.mark.parametrize("annotated", [False, True], ids=["plain", "mixed"])
def test_bench_case(benchmark, name, annotated):
    mixy, warnings = benchmark(analyze, name, annotated)
    expected_clean = annotated
    assert (warnings == []) == expected_clean


def test_report_case_table(capsys):
    rows = []
    for name in sorted(CASES):
        _, plain = analyze(name, annotated=False)
        mixy, mixed = analyze(name, annotated=True)
        rows.append(
            [
                name,
                CASES[name].title[:44],
                len(plain),
                len(mixed),
                mixy.stats["symbolic_blocks_run"],
            ]
        )
    title = "E1: vsftpd case studies (paper §4.5)"
    headers = ["case", "pattern", "warnings (pure)", "warnings (MIX)", "blocks run"]
    with capsys.disabled():
        print_table(title, headers, rows)
    bench_json("E1", {"title": title, "headers": headers, "rows": rows})
    for row in rows:
        assert row[2] >= 1 and row[3] == 0
