"""E2' — the §4.6 cost/precision sweep at a more vsftpd-like scale.

Same claim as E2, run over the miniature multi-module vsftpd
(`repro.mixy.corpus_vsftpd`, ~30 functions across tunables / sysutil /
sysstr / syssock / session / netio / postlogin / main), with the
annotation schedule following the paper's four case studies one by one.
"""

import pytest

from repro.mixy import Mixy
from repro.mixy.corpus_vsftpd import annotation_subsets, mini_vsftpd

from conftest import bench_json, print_table

SCHEDULE = annotation_subsets()


def analyze(n_sites: int):
    mixy = Mixy(mini_vsftpd(SCHEDULE[n_sites]))
    warnings = mixy.run()
    return mixy, warnings


@pytest.mark.parametrize("n_sites", [0, 2, 4])
def test_bench_vsftpd_scale(benchmark, n_sites):
    benchmark(analyze, n_sites)


def test_precision_and_cost_shape():
    counts = []
    costs = []
    for n in range(len(SCHEDULE)):
        mixy, warnings = analyze(n)
        counts.append(len(warnings))
        costs.append(
            mixy.executor.stats["solver_calls"] + mixy.stats["symbolic_blocks_run"]
        )
    assert counts[0] == 4 and counts[-1] == 0
    assert all(a >= b for a, b in zip(counts, counts[1:]))
    assert all(a < b for a, b in zip(costs, costs[1:]))


def test_report_vsftpd_table(capsys):
    rows = []
    for n, subset in enumerate(SCHEDULE):
        mixy, warnings = analyze(n)
        rows.append(
            [
                n,
                ", ".join(sorted(subset)) or "(none)",
                len(warnings),
                f"{mixy.stats['analysis_seconds']:.3f}",
                mixy.executor.stats["solver_calls"],
                mixy.stats["symbolic_blocks_run"],
            ]
        )
    title = "E2': mini-vsftpd annotation schedule (paper §4.5/§4.6)"
    headers = ["#", "annotated sites", "warnings", "seconds", "solver calls", "block runs"]
    with capsys.disabled():
        print_table(title, headers, rows)
    bench_json("E2prime", {"title": title, "headers": headers, "rows": rows})
