"""E2 — analysis cost versus number of symbolic blocks (paper Section 4.6).

Paper result (on vsftpd-2.0.7): "our small examples take less than a
second to run without symbolic blocks, but from 5 to 25 seconds to run
with one symbolic block, and about 60 seconds with two symbolic blocks".

Reproduced shape: wall time, solver queries, and symbolic-block runs all
grow monotonically with the number of annotated blocks, while one false
positive is eliminated per block.  (Our substrate is not the authors'
testbed, so absolute times differ; the monotone, superlinear shape is
the claim under test.)
"""

import pytest

from repro.mixy import Mixy
from repro.mixy.corpus import combined_program

from conftest import bench_json, print_table


def analyze(n_blocks: int):
    mixy = Mixy(combined_program(n_blocks))
    warnings = mixy.run(entry="typed", entry_function="main")
    return mixy, warnings


@pytest.mark.parametrize("n_blocks", [0, 1, 2])
def test_bench_blocks(benchmark, n_blocks):
    benchmark(analyze, n_blocks)


def test_cost_monotone_and_precision_improves():
    costs = []
    warnings_count = []
    for n in (0, 1, 2):
        mixy, warnings = analyze(n)
        costs.append(
            mixy.executor.stats["solver_calls"]
            + 10 * mixy.stats["symbolic_blocks_run"]
        )
        warnings_count.append(len(warnings))
    assert costs[0] < costs[1] < costs[2], costs
    assert warnings_count == [2, 1, 0], warnings_count


def test_report_timing_table(capsys):
    rows = []
    for n in (0, 1, 2):
        mixy, warnings = analyze(n)
        rows.append(
            [
                n,
                len(warnings),
                f"{mixy.stats['analysis_seconds']:.4f}",
                mixy.executor.stats["solver_calls"],
                mixy.stats["symbolic_blocks_run"],
                mixy.stats["fixpoint_iterations"],
            ]
        )
    title = "E2: cost vs. symbolic blocks (paper §4.6: <1s / 5-25s / ~60s)"
    headers = [
        "#sym blocks",
        "warnings",
        "seconds",
        "solver calls",
        "block runs",
        "fixpoint iters",
    ]
    with capsys.disabled():
        print_table(title, headers, rows)
    bench_json("E2", {"title": title, "headers": headers, "rows": rows})
