"""E18 — trace-driven query scheduling on the staircase vsftpd corpus.

E16 showed that speculative cache warming pays for itself even on a
single core; this experiment shows what *scheduling* the speculation
adds on top.  All runs use the same corpus (``parallel_vsftpd`` at the
E16 depth) and the same ``--jobs 4`` fan-out — only the dispatch policy
changes:

* ``fifo``      — PR 4's policy: every frontier block, every round, one
                  block per worker task (the E16 baseline).
* ``waves``     — blocks clustered into feature-similarity waves, one
                  wave per worker task; each block speculated in its
                  cold round only (re-speculation on a host that cannot
                  overlap is pure duplicated execution).
* ``portfolio`` — waves plus strategy racing, run twice: a *learning*
                  run (hinted by the fifo run's trace) races each hot
                  block under three solver strategies and records the
                  winners, then the *measured* run replays its hints —
                  no races left, just learned waves, learned tier
                  orders, and learned skips.

The hint files flow exactly as the CLI recipe does it (``--trace`` →
``trace-report --emit-hints`` → ``--sched-hints``), only in-process:
each run's slice of the session event trace is aggregated and distilled
with the same :func:`repro.schedule.build_hints`.

Rows reproduced: wall-clock seconds, full DPLL(T) solves, waves
dispatched, races/cancellations, and blocks skipped — at bitwise-
identical warning output across every mode.  Acceptance bar: >=2.0x
wall-clock speedup of hinted portfolio over cold fifo at the same
``--jobs``.  The bar test asserts only on hosts with >=2 cores: wall
speedup comes from *overlapping* speculation with the authoritative
pass, and on a single core every speculative solve serializes into the
same wall clock, so fifo and hinted converge to parity by construction
(the scheduler itself recognizes this — see ``Scheduler._should_skip``).
What a single core still shows, and the table below records, is the
efficiency side: the hinted run answers the same queries with a small
fraction of the parent's full solves (the learned cheap-strategy
speculation pre-seeds essentially all of them) and far fewer worker
tasks.
"""

from __future__ import annotations

import itertools
import os
import time

import pytest

from repro import smt
from repro.mixy import Mixy
from repro.mixy.c import parse_program
from repro.mixy.corpus_vsftpd import parallel_vsftpd
from repro.mixy.driver import MixyConfig
from repro.mixy.qual import QVar
from repro.schedule import build_hints

from conftest import bench_json, print_table, trace_digest_since, trace_offset

DEPTH = 4
JOBS = 4
SPEEDUP_BAR = 2.0


def _run(schedule: str, hints_path=None):
    """One full analysis at ``--jobs 4`` under one dispatch policy, in a
    reproducible process state (see E16), returning headline numbers
    plus this run's trace digest for hint distillation."""
    smt.reset_service()
    QVar._ids = itertools.count(1)
    program = parse_program(parallel_vsftpd(depth=DEPTH))
    config = MixyConfig(
        jobs=JOBS,
        schedule=schedule,
        sched_hints=str(hints_path) if hints_path else None,
    )
    offset = trace_offset()
    mixy = Mixy(program, config=config)
    start = time.monotonic()
    warnings = mixy.run()
    elapsed = time.monotonic() - start
    stats = smt.get_service().stats
    spec = stats.speculative
    return {
        "schedule": schedule,
        "hinted": hints_path is not None,
        "seconds": elapsed,
        "warnings": [str(w) for w in warnings],
        "queries": stats.queries,
        "hit_rate": stats.hit_rate,
        "full_solves": stats.full_solves,
        "speculative_blocks": stats.speculative_blocks,
        "imported": stats.cache_entries_imported,
        "waves": stats.waves_dispatched,
        "skipped": stats.blocks_skipped,
        "raced": spec.raced if spec is not None else 0,
        "cancelled": spec.cancelled if spec is not None else 0,
        "timeouts": stats.query_timeouts,
        "digest": trace_digest_since(offset),
    }


def _emit(digest, path):
    hints = build_hints(digest)
    hints.save(str(path))
    return hints


@pytest.fixture(scope="module")
def measurements(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("e18-hints")
    runs = {}
    runs["fifo"] = _run("fifo")
    runs["waves"] = _run("waves")
    hints_a = tmp / "hints-a.json"
    _emit(runs["fifo"]["digest"], hints_a)
    runs["learn"] = _run("portfolio", hints_a)  # races run here
    hints_b = tmp / "hints-b.json"
    runs["hints_b"] = _emit(runs["learn"]["digest"], hints_b)
    runs["portfolio"] = _run("portfolio", hints_b)  # measured row
    return runs


def test_warning_output_is_bitwise_identical(measurements):
    texts = {
        mode: measurements[mode]["warnings"]
        for mode in ("fifo", "waves", "learn", "portfolio")
    }
    assert len({tuple(t) for t in texts.values()}) == 1, texts
    assert len(texts["fifo"]) == 1  # the staircase's single finding


def test_runs_are_deterministic_solver_work(measurements):
    # UNKNOWNs are never cached, so a timeout would poison the
    # comparison; the corpus is tuned to produce none in any mode.
    for mode in ("fifo", "waves", "learn", "portfolio"):
        assert measurements[mode]["timeouts"] == 0, mode


def test_scheduler_actually_scheduled(measurements):
    # Scheduled modes dispatch waves; fifo never does.
    assert measurements["fifo"]["waves"] == 0
    assert measurements["waves"]["waves"] > 0
    assert measurements["portfolio"]["waves"] > 0
    # Cold-round-only speculation: wave mode skips re-speculation.
    assert measurements["waves"]["skipped"] > 0
    # The hinted run re-speculates only where the learned strategy is
    # cheap enough to pay without overlap (strategy arbitrage).  On this
    # corpus every hot block learns one, so it may legitimately skip
    # nothing — but then the re-speculation must actually be paying, in
    # strictly fewer authoritative solves than skip-everything waves.
    assert (
        measurements["portfolio"]["skipped"] > 0
        or measurements["portfolio"]["full_solves"]
        < measurements["waves"]["full_solves"]
    )
    # Races happen in the learning run and are settled by the hint file:
    # the measured run dispatches the winners directly.  (Trial
    # cancellation is a cost backstop, fired only when a contender
    # overshoots the fastest by RACE_TRIAL_SLACK; near-parity strategy
    # wall times legitimately never trip it, so it is pinned by the
    # race unit tests, not here.)
    assert measurements["learn"]["raced"] > 0
    assert measurements["portfolio"]["raced"] == 0


def test_hints_were_learned(measurements):
    hints = measurements["hints_b"]
    assert len(hints) > 0
    assert hints.hot  # the corpus has solver-hot blocks
    strategies = {h.strategy for h in hints.blocks.values()} - {None}
    assert strategies, "the learning run's races recorded no winners"


def test_e18_speedup_bar(measurements):
    fifo, hinted = measurements["fifo"], measurements["portfolio"]
    speedup = fifo["seconds"] / hinted["seconds"]
    cores = os.cpu_count() or 1
    if cores < 2:
        pytest.skip(
            f"wall-clock bar needs speculation/serial overlap (>=2 cores; "
            f"host has {cores}); measured {speedup:.2f}x at parity-by-"
            f"construction, parent solves {fifo['full_solves']} -> "
            f"{hinted['full_solves']}"
        )
    assert speedup >= SPEEDUP_BAR, (
        f"hinted portfolio gave {speedup:.2f}x over fifo at --jobs {JOBS} "
        f"({fifo['seconds']:.1f}s -> {hinted['seconds']:.1f}s); "
        f"bar is {SPEEDUP_BAR}x"
    )


def test_e18_efficiency_floor(measurements):
    """The hardware-independent half of the bar: the hinted run must
    answer the same query stream with a fraction of the authoritative
    solver work (>=2x fewer full solves) and of the worker fan-out —
    that is the work the overlap converts into wall time on multi-core
    hosts."""
    fifo, hinted = measurements["fifo"], measurements["portfolio"]
    assert hinted["queries"] == fifo["queries"]
    assert hinted["full_solves"] * 2 <= fifo["full_solves"]
    assert hinted["speculative_blocks"] * 2 <= fifo["speculative_blocks"]


def test_report_scheduler_table(measurements, capsys):
    rows = []
    labels = {
        "fifo": "fifo (cold)",
        "waves": "waves (cold)",
        "learn": "portfolio (learning)",
        "portfolio": "portfolio (hinted)",
    }
    for mode, label in labels.items():
        m = measurements[mode]
        rows.append(
            [
                label,
                f"{m['seconds']:.2f}",
                m["queries"],
                f"{m['hit_rate']:.0%}",
                m["full_solves"],
                m["waves"],
                m["raced"],
                m["cancelled"],
                m["skipped"],
                len(m["warnings"]),
            ]
        )
    fifo, hinted = measurements["fifo"], measurements["portfolio"]
    speedup = fifo["seconds"] / hinted["seconds"]
    title = (
        f"E18: trace-driven scheduling on the staircase corpus "
        f"(depth {DEPTH}, --jobs {JOBS}, {speedup:.2f}x fifo->hinted)"
    )
    with capsys.disabled():
        print_table(
            title,
            ["mode", "secs", "queries", "hits", "solves", "waves",
             "raced", "cancelled", "skipped", "warnings"],
            rows,
        )
    payload = {
        "experiment": "E18",
        "depth": DEPTH,
        "jobs": JOBS,
        "cores": os.cpu_count() or 1,
        "speedup_fifo_to_hinted": round(speedup, 2),
        "speedup_bar": SPEEDUP_BAR,
        "solves_fifo_to_hinted": round(
            fifo["full_solves"] / max(1, hinted["full_solves"]), 2
        ),
        "modes": {
            mode: {
                k: (round(v, 4) if isinstance(v, float) else v)
                for k, v in m.items()
                if k not in ("digest", "warnings")
            }
            for mode, m in measurements.items()
            if mode in labels
        },
        "warnings": fifo["warnings"],
    }
    bench_json("E18", payload)
