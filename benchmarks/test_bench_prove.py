"""E22 — property proving (`repro prove`) on the staircase corpus.

``property_staircase`` embeds one ``check`` obligation per staircase
worker block: six solver-heavy MIX(symbolic) blocks, re-analyzed every
fixpoint round as the session globals fall, each path additionally
discharging the feasibility query of its check's falsifying branch.
``repro prove --entry typed --jobs 4`` rides the same speculative
warming as E16 — workers re-derive each round's queries under
block-deterministic naming, so from round two on the authoritative
pass finds them pre-answered — at bitwise-identical verdict output.

Rows reproduced: suite wall-clock seconds, full DPLL(T) solves, and
cache hit rates at ``--jobs 1`` vs ``--jobs 4``.  Acceptance bar:
>=1.8x suite wall-clock speedup (observed ~3x on a single-core
container — the win is cross-round cache compounding, not multicore),
plus verdict identity on the shipped ``examples/properties/`` suite.
"""

from __future__ import annotations

import glob
import itertools
import time

import pytest

from repro import smt
from repro.mixy.corpus_vsftpd import PARALLEL_BLOCKS, property_staircase
from repro.mixy.qual import QVar
from repro.prove import PROVED, prove_files, prove_source

from conftest import REPO_ROOT, bench_json, print_table

DEPTH = 4
JOBS = 4
SPEEDUP_BAR = 1.8

EXAMPLES = sorted(glob.glob(str(REPO_ROOT / "examples/properties/*")))


def _run(jobs: int):
    """Prove the staircase property file once, cold: the solver service
    and the process-global qualifier-variable counter are reset so both
    modes start from identical initial conditions (prove_source itself
    resets the per-request equivalence state)."""
    smt.reset_service()
    QVar._ids = itertools.count(1)
    source = property_staircase(depth=DEPTH)
    start = time.monotonic()
    result = prove_source(
        "mixy",
        source,
        {"entry": "typed", "jobs": jobs},
        name="property_staircase",
    )
    elapsed = time.monotonic() - start
    stats = smt.get_service().stats
    return {
        "jobs": jobs,
        "seconds": elapsed,
        "line": result.line(),
        "verdict": result.verdict,
        "queries": stats.queries,
        "cache_hits": stats.cache_hits,
        "hit_rate": stats.hit_rate,
        "full_solves": stats.full_solves,
        "speculative_blocks": stats.speculative_blocks,
        "imported": stats.cache_entries_imported,
        "timeouts": stats.query_timeouts,
    }


@pytest.fixture(scope="module")
def measurements():
    return {jobs: _run(jobs) for jobs in (1, JOBS)}


def test_staircase_suite_is_proved(measurements):
    # Every block's check holds on every path; nothing else warns.
    assert measurements[1]["verdict"] == PROVED
    assert measurements[JOBS]["verdict"] == PROVED


def test_verdict_lines_are_bitwise_identical(measurements):
    assert measurements[1]["line"] == measurements[JOBS]["line"]


def test_runs_are_deterministic_solver_work(measurements):
    # UNKNOWNs are never cached, so any timeout would poison the
    # comparison; the corpus is tuned to produce none in either mode.
    assert measurements[1]["timeouts"] == 0
    assert measurements[JOBS]["timeouts"] == 0


def test_parallel_mode_actually_speculated(measurements):
    parallel = measurements[JOBS]
    assert parallel["speculative_blocks"] > 0
    assert parallel["imported"] > 0
    assert parallel["full_solves"] < 0.7 * measurements[1]["full_solves"]


def test_example_suite_verdicts_identical_across_jobs():
    """The shipped examples — valid, falsifiable (confirmed models),
    vacuous, backwards-solving — produce identical verdict lines under
    file-level fan-out."""
    assert len(EXAMPLES) >= 8
    serial: list[str] = []
    parallel: list[str] = []
    assert prove_files(EXAMPLES, {}, jobs=1, emit=serial.append) == 1
    assert prove_files(EXAMPLES, {}, jobs=JOBS, emit=parallel.append) == 1
    assert serial == parallel
    assert any(line.startswith("COUNTEREXAMPLE") for line in serial)
    assert any(line.startswith("PROVED") for line in serial)


def test_e22_speedup_bar(measurements):
    serial, parallel = measurements[1], measurements[JOBS]
    speedup = serial["seconds"] / parallel["seconds"]
    assert speedup >= SPEEDUP_BAR, (
        f"prove --jobs {JOBS} gave {speedup:.2f}x over --jobs 1 "
        f"({serial['seconds']:.1f}s -> {parallel['seconds']:.1f}s); "
        f"bar is {SPEEDUP_BAR}x"
    )


def test_report_prove_table(measurements, capsys):
    serial, parallel = measurements[1], measurements[JOBS]
    speedup = serial["seconds"] / parallel["seconds"]
    rows = []
    for m in (serial, parallel):
        rows.append(
            [
                f"--jobs {m['jobs']}",
                f"{m['seconds']:.2f}",
                m["queries"],
                f"{m['hit_rate']:.0%}",
                m["full_solves"],
                m["speculative_blocks"],
                m["imported"],
                m["verdict"],
            ]
        )
    title = (
        f"E22: property proving on the staircase corpus (depth {DEPTH}, "
        f"{len(PARALLEL_BLOCKS)} checked blocks; speedup {speedup:.2f}x)"
    )
    headers = [
        "mode",
        "seconds",
        "queries",
        "hit rate",
        "full solves",
        "speculated",
        "imported",
        "verdict",
    ]
    with capsys.disabled():
        print_table(title, headers, rows)
    bench_json(
        "E22",
        {
            "title": title,
            "headers": headers,
            "rows": rows,
            "speedup": round(speedup, 2),
            "identical_verdicts": serial["line"] == parallel["line"],
            "examples": len(EXAMPLES),
        },
    )
    assert speedup >= SPEEDUP_BAR
