"""E21 — concurrent daemon throughput with the prefork worker pool.

E20 priced fork-per-request isolation against ``--no-isolate`` on a
serial request series.  This experiment measures what PR 9 actually
bought: *concurrent* analyze dispatch over persistent prefork workers.
Two curves on the staircase vsftpd corpus, all daemons as real
subprocesses over loopback TCP:

* **throughput** — eight concurrent clients fire a warm request burst
  (via the ``repro client --bench`` load generator's engine) at a
  four-worker pool and at the legacy ``--pool 0`` fork-per-request
  daemon, which serializes analyses behind one lock;
* **isolation overhead** — E20's exact shape (one cold analyze, then
  four warm ones, serial) against ``--no-isolate``: a pooled worker is
  forked once and reused, so the per-request price drops from
  fork+snapshot+full-delta to pickle+journal-suffix.

Acceptance bars:

* every reply — pooled, serial, in-process, cold or warm — is bitwise
  identical to a fresh one-shot ``repro mixy --jobs 1`` run;
* with >=4 CPU cores, pooled throughput is **>=3x** the serialized
  daemon's; on any machine it never drops below 0.8x (the pool must
  not cost throughput even where it cannot buy parallelism);
* pooled isolation overhead on the E20 series is **<=5%** over
  in-process (E20's fork-per-request bar was 25%).
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import time

import pytest

import repro
from repro.mixy.corpus_vsftpd import parallel_vsftpd
from repro.serve import bench, request

from conftest import bench_json, print_table

DEPTH = 2
POOL = 4
BENCH_REQUESTS = 16
BENCH_CONCURRENCY = 8
WARM_REQUESTS = 4
OVERHEAD_REPS = 5  # min-of-K: single cold runs jitter ~10-30% on busy boxes
SPEEDUP_BAR = 3.0  # enforced when the machine can actually parallelize
SPEEDUP_FLOOR = 0.8
OVERHEAD_BAR = 0.05

SRC_DIR = str(pathlib.Path(repro.__file__).resolve().parents[1])


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _start_daemon(tmp, store, *extra):
    argv = [
        sys.executable, "-m", "repro.cli", "serve",
        "--listen", "127.0.0.1:0", "--store", str(tmp / store),
        # Keep persistence noise out of the timing: shed nothing, save
        # once at shutdown.
        "--queue-depth", "32", "--save-every", "1000",
        "--checkpoint-secs", "0", *extra,
    ]
    proc = subprocess.Popen(
        argv, cwd=tmp, env=_env(), text=True,
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
    )
    announce = proc.stdout.readline()
    assert "listening on tcp:" in announce, announce
    return proc, announce.rsplit(" ", 1)[-1].strip()


def _payload(source):
    return {"cmd": "analyze", "lang": "mixy", "source": source,
            "options": {}}


def _throughput_series(tmp, source, mode, *extra):
    """One daemon life: a cold warm-up analyze (not timed), then a
    BENCH_REQUESTS x BENCH_CONCURRENCY warm burst through ``bench``."""
    proc, address = _start_daemon(tmp, f"store-{mode}", *extra)
    payload = _payload(source)
    try:
        cold = request(address, payload, timeout=300)
        assert cold["ok"], cold
        report = bench(
            address, payload,
            requests=BENCH_REQUESTS, concurrency=BENCH_CONCURRENCY,
            timeout=300,
        )
        stats = request(address, {"cmd": "stats"})["stats"]
        request(address, {"cmd": "shutdown"})
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert report["completed"] == BENCH_REQUESTS, report["errors"]
    assert report["ok"] == BENCH_REQUESTS, report["statuses"]
    return {
        "cold_result": cold["result"],
        "results": report["results"],
        "throughput_rps": report["throughput_rps"],
        "wall_secs": report["wall_secs"],
        "p50_ms": report["p50_ms"],
        "p95_ms": report["p95_ms"],
        "p99_ms": report["p99_ms"],
        "pool": stats.get("pool") or {},
        "epoch": stats.get("epoch", 0),
    }


def _overhead_pairs(tmp, source):
    """E20's shape — one cold analyze then WARM_REQUESTS warm ones,
    serial, fresh daemon + store per life — run as OVERHEAD_REPS
    *adjacent* (pooled, in-process) pairs.  The cold analysis dominates
    the series and jitters far more than the 5% bar on a loaded
    machine (one 1s scheduler stall inside a ~3.5s CPU-bound rep is
    ~30%), and the noise drifts over minutes — so reps of the two modes
    are interleaved (both modes sample every load phase) and the
    representative overhead compares each mode's *quietest* rep.  A
    pairwise ratio would need both reps of one pair to dodge the noise
    at once; min-vs-min only needs each mode to get one clean rep
    somewhere in the series."""
    pairs = []
    for i in range(OVERHEAD_REPS):
        pooled = _overhead_once(
            tmp, source, f"iso-pooled-{i}", "--pool", str(POOL)
        )
        inproc = _overhead_once(tmp, source, f"iso-inproc-{i}", "--no-isolate")
        pairs.append((pooled, inproc))
    ratios = [p["total_secs"] / i["total_secs"] for p, i in pairs]
    pooled_reps = [p for p, _ in pairs]
    inproc_reps = [i for _, i in pairs]
    best_pooled = min(pooled_reps, key=lambda r: r["total_secs"])
    best_inproc = min(inproc_reps, key=lambda r: r["total_secs"])
    for rep, reps in ((best_pooled, pooled_reps), (best_inproc, inproc_reps)):
        rep["total_secs_each_rep"] = [round(r["total_secs"], 4) for r in reps]
        rep["all_results"] = [res for r in reps for res in r["results"]]
    best_pooled["overhead"] = (
        best_pooled["total_secs"] / best_inproc["total_secs"] - 1.0
    )
    best_pooled["overhead_each_rep"] = [round(r - 1.0, 4) for r in ratios]
    return best_pooled, best_inproc


def _overhead_once(tmp, source, life, *extra):
    proc, address = _start_daemon(tmp, f"store-{life}", *extra)
    payload = _payload(source)
    try:
        timings = []
        replies = []
        for _ in range(1 + WARM_REQUESTS):
            start = time.monotonic()
            reply = request(address, payload, timeout=300)
            timings.append(time.monotonic() - start)
            assert reply["ok"], reply
            replies.append(reply)
        stats = request(address, {"cmd": "stats"})["stats"]
        request(address, {"cmd": "shutdown"})
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert bool(stats["isolated_workers"]) == ("--no-isolate" not in extra)
    warm = timings[1:]
    return {
        "cold_secs": timings[0],
        "warm_secs_each": warm,
        "warm_secs_mean": sum(warm) / len(warm),
        "total_secs": sum(timings),
        "results": [r["result"] for r in replies],
        "warm_memo_hits": replies[-1]["served"]["store"].get("mixy_hits", 0),
    }


def _one_shot(tmp, source):
    path = tmp / "baseline.c"
    path.write_text(source)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "mixy", str(path), "--jobs", "1"],
        capture_output=True, text=True, env=_env(), cwd=tmp, timeout=300,
    )
    warnings = proc.stdout.splitlines()[:-1]  # drop the perf summary
    return {
        "exit": proc.returncode,
        "lines": warnings + [f"{len(warnings)} warning(s)"],
    }


@pytest.fixture(scope="module")
def measurements(tmp_path_factory):
    if not hasattr(os, "fork"):
        pytest.skip("the worker pool needs fork")
    tmp = tmp_path_factory.mktemp("e21-throughput")
    source = parallel_vsftpd(depth=DEPTH)
    iso_pooled, iso_inproc = _overhead_pairs(tmp, source)
    return {
        "baseline": _one_shot(tmp, source),
        "pooled": _throughput_series(
            tmp, source, "pooled", "--pool", str(POOL)
        ),
        "serial": _throughput_series(tmp, source, "serial", "--pool", "0"),
        "iso_pooled": iso_pooled,
        "iso_inproc": iso_inproc,
    }


def test_concurrency_never_leaks_into_answers(measurements):
    baseline = measurements["baseline"]
    for mode in ("pooled", "serial"):
        assert measurements[mode]["cold_result"] == baseline, mode
        for result in measurements[mode]["results"]:
            assert result == baseline, mode
    for mode in ("iso_pooled", "iso_inproc"):
        for result in measurements[mode]["all_results"]:
            assert result == baseline, mode


def test_pool_actually_ran_and_merged(measurements):
    pooled = measurements["pooled"]
    assert pooled["pool"].get("forks", 0) >= 1
    assert pooled["epoch"] >= 1  # the cold request's memos were merged
    assert not measurements["serial"]["pool"]  # legacy mode has no pool


def test_pooled_throughput_beats_the_serialized_daemon(measurements):
    pooled = measurements["pooled"]["throughput_rps"]
    serial = measurements["serial"]["throughput_rps"]
    speedup = pooled / serial
    assert speedup >= SPEEDUP_FLOOR, (
        f"pool made throughput worse: {speedup:.2f}x "
        f"(floor {SPEEDUP_FLOOR:.1f}x)"
    )
    if (os.cpu_count() or 1) >= POOL:
        assert speedup >= SPEEDUP_BAR, (
            f"pooled throughput only {speedup:.2f}x the serialized "
            f"daemon's on a {os.cpu_count()}-core machine "
            f"(bar {SPEEDUP_BAR:.1f}x)"
        )


def test_pooled_isolation_overhead_is_under_the_bar(measurements):
    overhead = measurements["iso_pooled"]["overhead"]
    assert overhead <= OVERHEAD_BAR, (
        f"pooled workers cost {overhead:.1%} over in-process "
        f"(bar {OVERHEAD_BAR:.0%}; per-pair "
        f"{measurements['iso_pooled']['overhead_each_rep']})"
    )


def test_both_overhead_series_went_warm(measurements):
    for mode in ("iso_pooled", "iso_inproc"):
        m = measurements[mode]
        assert m["warm_memo_hits"] > 0, mode
        assert m["warm_secs_mean"] < m["cold_secs"], mode


def test_report(measurements, capsys):
    pooled = measurements["pooled"]
    serial = measurements["serial"]
    speedup = pooled["throughput_rps"] / serial["throughput_rps"]
    overhead = measurements["iso_pooled"]["overhead"]
    rows = [
        [
            mode,
            f"{m['throughput_rps']:.2f}",
            f"{m['wall_secs']:.3f}",
            f"{m['p50_ms']:.0f}",
            f"{m['p95_ms']:.0f}",
            f"{m['p99_ms']:.0f}",
            m["pool"].get("forks", 0),
            m["pool"].get("recycles", 0),
        ]
        for mode, m in (("pooled", pooled), ("serial", serial))
    ]
    rows.extend(
        [
            mode,
            f"{1.0 / m['warm_secs_mean']:.2f}",
            f"{m['total_secs']:.3f}",
            f"{m['warm_secs_mean'] * 1000:.0f}",
            "-", "-", "-", "-",
        ]
        for mode, m in (
            ("iso_pooled", measurements["iso_pooled"]),
            ("iso_inproc", measurements["iso_inproc"]),
        )
    )
    title = (
        f"E21: pooled daemon throughput (depth {DEPTH}, "
        f"{BENCH_REQUESTS} reqs x{BENCH_CONCURRENCY} clients, "
        f"{os.cpu_count()} cores: {speedup:.2f}x, "
        f"isolation overhead {overhead:+.1%})"
    )
    with capsys.disabled():
        print_table(
            title,
            ["mode", "req/s", "wall s", "p50 ms", "p95 ms", "p99 ms",
             "forks", "recycles"],
            rows,
        )
    payload = {
        "experiment": "E21",
        "depth": DEPTH,
        "pool": POOL,
        "cpu_count": os.cpu_count(),
        "bench_requests": BENCH_REQUESTS,
        "bench_concurrency": BENCH_CONCURRENCY,
        "speedup": round(speedup, 4),
        "speedup_bar": SPEEDUP_BAR,
        "speedup_bar_enforced": (os.cpu_count() or 1) >= POOL,
        "speedup_floor": SPEEDUP_FLOOR,
        "overhead": round(overhead, 4),
        "overhead_each_rep": measurements["iso_pooled"]["overhead_each_rep"],
        "overhead_bar": OVERHEAD_BAR,
        "throughput": {
            mode: {
                "throughput_rps": round(m["throughput_rps"], 4),
                "wall_secs": round(m["wall_secs"], 4),
                "p50_ms": round(m["p50_ms"], 2),
                "p95_ms": round(m["p95_ms"], 2),
                "p99_ms": round(m["p99_ms"], 2),
                "pool": m["pool"],
                "epoch": m["epoch"],
            }
            for mode, m in (("pooled", pooled), ("serial", serial))
        },
        "isolation": {
            mode: {
                "cold_secs": round(m["cold_secs"], 4),
                "warm_secs_mean": round(m["warm_secs_mean"], 4),
                "warm_secs_each": [round(s, 4) for s in m["warm_secs_each"]],
                "total_secs": round(m["total_secs"], 4),
                "total_secs_each_rep": m["total_secs_each_rep"],
                "warm_memo_hits": m["warm_memo_hits"],
            }
            for mode, m in (
                ("pooled", measurements["iso_pooled"]),
                ("inproc", measurements["iso_inproc"]),
            )
        },
        "result_identity": all(
            result == measurements["baseline"]
            for mode in ("pooled", "serial", "iso_pooled", "iso_inproc")
            for result in measurements[mode]["results"]
        ),
    }
    bench_json("E21", payload)
