"""Shared helpers for the benchmark harness.

Each module regenerates one experiment from EXPERIMENTS.md; run with::

    pytest benchmarks/ --benchmark-only

Benches both *measure* (via pytest-benchmark) and *assert the shape* of
the paper's result (who wins, monotonicity, elimination of warnings) —
absolute numbers are environment-specific and not checked.
"""

from __future__ import annotations


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Render the rows an experiment reports, paper-style."""
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-+-".join("-" * w for w in widths))
    for row in rows:
        print(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))
