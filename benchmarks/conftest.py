"""Shared helpers for the benchmark harness.

Each module regenerates one experiment from EXPERIMENTS.md; run with::

    pytest benchmarks/ --benchmark-only

Benches both *measure* (via pytest-benchmark) and *assert the shape* of
the paper's result (who wins, monotonicity, elimination of warnings) —
absolute numbers are environment-specific and not checked.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.trace import TRACER, aggregate, read_trace

#: Repo root — BENCH_<id>.json files are written here so that
#: bench_tables.txt regeneration (see README) can find them.
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: The whole benchmark session runs under the event tracer; bench_json
#: slices the stream per experiment via this running line offset.
_TRACE_PATH = REPO_ROOT / ".bench-trace.jsonl"
_trace_state = {"offset": 0}


@pytest.fixture(scope="session", autouse=True)
def _bench_tracer():
    """Trace every benchmark run; each BENCH_<id>.json gets the digest
    of its own slice of the stream (see bench_json)."""
    TRACER.enable(_TRACE_PATH)
    yield
    TRACER.close()
    try:
        _TRACE_PATH.unlink()
    except OSError:
        pass


def _trace_digest_since_last_call() -> dict | None:
    """Aggregate the trace lines emitted since the previous bench_json
    call — the same aggregator that powers ``repro trace-report``."""
    if not TRACER.enabled:
        return None
    TRACER.flush()
    events = read_trace(_TRACE_PATH)
    start = _trace_state["offset"]
    _trace_state["offset"] = len(events)
    return aggregate(events[start:])


def trace_offset() -> int:
    """Current length of the session trace stream (events so far).
    Benchmarks that need *per-run* digests — e.g. E18's hint-learning
    pipeline — bracket each run with ``trace_offset`` /
    ``trace_digest_since`` without disturbing bench_json's own slicing."""
    if not TRACER.enabled:
        return 0
    TRACER.flush()
    return len(read_trace(_TRACE_PATH))


def trace_digest_since(offset: int) -> dict | None:
    """Aggregate the trace events emitted after ``offset``."""
    if not TRACER.enabled:
        return None
    TRACER.flush()
    return aggregate(read_trace(_TRACE_PATH)[offset:])


def bench_json(experiment: str, payload: dict) -> pathlib.Path:
    """Write an experiment's headline numbers to ``BENCH_<id>.json`` at
    the repo root, merging with any keys a previous test in the same
    module already wrote (each module may report several tables).  Every
    file gains a ``trace_digest`` section aggregated from the event
    trace of the measurements since the previous bench_json call."""
    path = REPO_ROOT / f"BENCH_{experiment}.json"
    merged: dict = {}
    if path.exists():
        try:
            merged = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            merged = {}
    merged.update(payload)
    digest = _trace_digest_since_last_call()
    if digest is not None:
        merged["trace_digest"] = digest
    path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Render the rows an experiment reports, paper-style."""
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-+-".join("-" * w for w in widths))
    for row in rows:
        print(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))
