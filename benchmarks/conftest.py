"""Shared helpers for the benchmark harness.

Each module regenerates one experiment from EXPERIMENTS.md; run with::

    pytest benchmarks/ --benchmark-only

Benches both *measure* (via pytest-benchmark) and *assert the shape* of
the paper's result (who wins, monotonicity, elimination of warnings) —
absolute numbers are environment-specific and not checked.
"""

from __future__ import annotations

import json
import pathlib

#: Repo root — BENCH_<id>.json files are written here so that
#: bench_tables.txt regeneration (see README) can find them.
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def bench_json(experiment: str, payload: dict) -> pathlib.Path:
    """Write an experiment's headline numbers to ``BENCH_<id>.json`` at
    the repo root, merging with any keys a previous test in the same
    module already wrote (each module may report several tables)."""
    path = REPO_ROOT / f"BENCH_{experiment}.json"
    merged: dict = {}
    if path.exists():
        try:
            merged = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            merged = {}
    merged.update(payload)
    path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Render the rows an experiment reports, paper-style."""
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-+-".join("-" * w for w in widths))
    for row in rows:
        print(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))
