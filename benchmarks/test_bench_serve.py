"""E19 — the cross-run analysis store on the staircase vsftpd corpus.

E16/E18 made *within-run* reuse cheap; this experiment measures reuse
*across* runs — the ``repro serve`` / ``--store DIR`` scenario of a
CI bot re-analyzing a mostly-unchanged tree.  Four serial runs over
``parallel_vsftpd(depth=3)``:

* ``nostore`` — the plain baseline (no store attached);
* ``cold``    — first run against an empty store: it records block
  memos and, on save, the solver service's exact-tier cache;
* ``warm``    — a fresh "process" (reset ordinal state, cold solver
  service) re-analyzing the identical source from the persisted store:
  pure blocks replay from their memos, everything else from the
  imported query cache;
* ``edited``  — the same but after a one-function edit (semantically
  neutral, so the warning set is unchanged): only that function's
  dependency cone misses its memos and re-executes.

Acceptance bars: the warm run's wall clock is **<10%** of cold
(measured ~1-3%), its warning output is bitwise-identical to both
baselines (the store accelerates, never answers), and the edited run
pins cone-precise invalidation — block-memo hit counters show most
blocks replayed and strictly fewer symbolic blocks executed than cold.
"""

from __future__ import annotations

import itertools
import time

import pytest

from repro import smt
from repro.mixy import Mixy, MixyConfig
from repro.mixy.corpus_vsftpd import parallel_vsftpd
from repro.mixy.qual import QVar
from repro.store import AnalysisStore
from repro.symexec import values

from conftest import bench_json, print_table

DEPTH = 3
WARM_RATIO_BAR = 0.10


def _run(store, source):
    """One serial run in a reproducible fresh-process state (solver
    service, qualifier ids, string interning all reset), warmed only by
    ``store``."""
    smt.reset_service()
    QVar._ids = itertools.count(1)
    values._STRING_CODES.clear()
    if store is not None:
        store.load_into_service(smt.get_service())
    config = MixyConfig()
    config.jobs = 1
    config.store = store
    mixy = Mixy(source, config)
    start = time.monotonic()
    warnings = mixy.run()
    elapsed = time.monotonic() - start
    stats = smt.get_service().stats
    return {
        "seconds": elapsed,
        "warnings": [str(w) for w in warnings],
        "blocks_run": mixy.stats["symbolic_blocks_run"],
        "full_solves": stats.full_solves,
        "store": dict(store.stats) if store is not None else {},
    }


@pytest.fixture(scope="module")
def measurements(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("e19-store")
    source = parallel_vsftpd(depth=DEPTH)
    runs = {}
    runs["nostore"] = _run(None, source)

    store = AnalysisStore.open(str(tmp / "store"))
    runs["cold"] = _run(store, source)
    store.save(smt.get_service())

    runs["warm"] = _run(AnalysisStore.open(str(tmp / "store")), source)

    # One-function edit: `r = r + 1;` -> `r = r + 0 + 1;` in the first
    # function that contains it (crunch_access).  Semantically neutral,
    # so the warning set must not move; content-hash keying must retire
    # exactly that function's dependency cone.
    edited_source = source.replace("r = r + 1;", "r = r + 0 + 1;", 1)
    assert edited_source != source
    runs["edited"] = _run(AnalysisStore.open(str(tmp / "store")), edited_source)
    return runs


def test_store_is_an_accelerator_never_an_answer(measurements):
    texts = {
        mode: tuple(measurements[mode]["warnings"])
        for mode in ("nostore", "cold", "warm")
    }
    assert len(set(texts.values())) == 1, texts
    assert len(texts["nostore"]) == 1  # the staircase's single finding


def test_cold_run_records_and_warm_run_replays(measurements):
    cold, warm = measurements["cold"], measurements["warm"]
    assert cold["store"]["mixy_records"] > 0
    assert warm["store"]["solver_entries_loaded"] > 0
    assert warm["store"]["mixy_hits"] >= cold["store"]["mixy_records"]
    # Only the impure (typed-calling) blocks re-execute when warm.
    assert warm["blocks_run"] < cold["blocks_run"]


def test_warm_reanalysis_is_under_the_bar(measurements):
    cold, warm = measurements["cold"], measurements["warm"]
    ratio = warm["seconds"] / cold["seconds"]
    assert ratio < WARM_RATIO_BAR, (
        f"warm re-analysis took {ratio:.1%} of cold "
        f"(bar {WARM_RATIO_BAR:.0%})"
    )


def test_one_edit_reanalyzes_only_its_cone(measurements):
    cold, edited = measurements["cold"], measurements["edited"]
    # The edit is semantically neutral: identical warnings...
    assert edited["warnings"] == cold["warnings"]
    # ...most blocks still replay from their memos (cone precision,
    # pinned by the hit counters)...
    assert edited["store"]["mixy_hits"] > edited["store"]["mixy_misses"]
    # ...and strictly fewer symbolic blocks execute than a cold run.
    assert 0 < edited["blocks_run"] < cold["blocks_run"]


def test_report(measurements, capsys):
    rows = []
    for mode in ("nostore", "cold", "warm", "edited"):
        m = measurements[mode]
        rows.append(
            [
                mode,
                f"{m['seconds']:.3f}",
                m["blocks_run"],
                m["full_solves"],
                m["store"].get("mixy_hits", 0),
                m["store"].get("mixy_records", 0),
                m["store"].get("solver_entries_loaded", 0),
                len(m["warnings"]),
            ]
        )
    ratio = measurements["warm"]["seconds"] / measurements["cold"]["seconds"]
    title = (
        f"E19: cross-run store on the staircase corpus "
        f"(depth {DEPTH}, warm/cold {ratio:.1%})"
    )
    with capsys.disabled():
        print_table(
            title,
            ["mode", "secs", "blocks", "solves", "memo hits",
             "memo records", "cache loaded", "warnings"],
            rows,
        )
    payload = {
        "experiment": "E19",
        "depth": DEPTH,
        "warm_over_cold": round(ratio, 4),
        "warm_ratio_bar": WARM_RATIO_BAR,
        "modes": {
            mode: {
                k: (round(v, 4) if isinstance(v, float) else v)
                for k, v in m.items()
                if k != "warnings"
            }
            for mode, m in measurements.items()
        },
        "warnings": measurements["nostore"]["warnings"],
    }
    bench_json("E19", payload)
