"""E17 — the trace subsystem's overhead guard.

The tracer's contract (docs/ARCHITECTURE.md §1.5) is that a *disabled*
tracer costs one attribute check per instrumentation site — cheap enough
to leave compiled into every hot loop.  This module pins that contract
with numbers:

1. Run the staircase corpus serially with the tracer flag off and time
   it; microbenchmark the ``if TRACER.enabled:`` guard itself; bound the
   guard's total contribution (per-check cost x a generous estimate of
   site hits) below 2% of the run's wall clock.
2. Run the same corpus with tracing on, writing real spans and events,
   and check the enabled run stays within 1.5x of the disabled one —
   tracing is cheap enough to keep on for any investigative run.

Both runs reset the solver service and qualifier-variable counter so
they see identical initial conditions (same discipline as E16).
"""

from __future__ import annotations

import itertools
import time
import timeit

import pytest

from repro import smt
from repro.mixy import Mixy
from repro.mixy.c import parse_program
from repro.mixy.corpus_vsftpd import parallel_vsftpd
from repro.mixy.driver import MixyConfig
from repro.mixy.qual import QVar
from repro.trace import TRACER

from conftest import bench_json, print_table

DEPTH = 3
DISABLED_OVERHEAD_BAR = 0.02  # guard cost must stay under 2% of wall
ENABLED_SLOWDOWN_BAR = 1.5  # full tracing within 1.5x of disabled
GUARD_CHECKS = 200_000  # microbench loop size


def _run_corpus() -> float:
    """One serial analysis of the staircase corpus, timed."""
    smt.reset_service()
    QVar._ids = itertools.count(1)
    program = parse_program(parallel_vsftpd(depth=DEPTH))
    mixy = Mixy(program, config=MixyConfig(jobs=1))
    start = time.monotonic()
    mixy.run()
    return time.monotonic() - start


def _guard_cost_seconds() -> float:
    """Per-check cost of the disabled tracer's ``if TRACER.enabled:``
    guard — the only code a hot site executes when tracing is off."""
    tracer = TRACER
    timer = timeit.Timer("tracer.enabled", globals={"tracer": tracer})
    # Best of five: scheduler noise only ever inflates a timing.
    return min(timer.repeat(repeat=5, number=GUARD_CHECKS)) / GUARD_CHECKS


@pytest.fixture(scope="module")
def measurements():
    # The benchmark session's tracer (conftest) is enabled; the disabled
    # measurement flips the same flag the hot-path guards read.  enable()
    # would raise here — the flag toggle *is* the disabled state.
    assert TRACER.enabled
    TRACER.flush()
    spans0, lines0 = TRACER.spans_started, TRACER.lines_written
    TRACER.enabled = False
    try:
        disabled_wall = _run_corpus()
        assert TRACER.spans_started == spans0  # truly off: no bookkeeping
        guard_cost = _guard_cost_seconds()
    finally:
        TRACER.enabled = True

    enabled_wall = _run_corpus()
    TRACER.flush()
    spans = TRACER.spans_started - spans0
    lines = TRACER.lines_written - lines0

    # Site-hit estimate for the disabled run: every line the enabled run
    # wrote is one guard hit; triple it to cover guards that fire without
    # writing (disabled spans, suppressed events) and stay conservative.
    estimated_checks = 3 * lines
    return {
        "disabled_wall": disabled_wall,
        "enabled_wall": enabled_wall,
        "guard_cost": guard_cost,
        "estimated_checks": estimated_checks,
        "estimated_overhead": guard_cost * estimated_checks,
        "spans": spans,
        "lines": lines,
    }


def test_enabled_run_actually_traced(measurements):
    assert measurements["spans"] > 0
    assert measurements["lines"] > measurements["spans"]


def test_disabled_tracer_overhead_under_two_percent(measurements):
    overhead = measurements["estimated_overhead"]
    wall = measurements["disabled_wall"]
    assert overhead < DISABLED_OVERHEAD_BAR * wall, (
        f"{measurements['estimated_checks']} guard checks at "
        f"{measurements['guard_cost'] * 1e9:.1f}ns each = {overhead * 1e3:.2f}ms, "
        f"over {DISABLED_OVERHEAD_BAR:.0%} of the {wall:.2f}s run"
    )


def test_enabled_tracing_stays_cheap(measurements):
    slowdown = measurements["enabled_wall"] / measurements["disabled_wall"]
    assert slowdown < ENABLED_SLOWDOWN_BAR, (
        f"tracing slowed the run {slowdown:.2f}x "
        f"({measurements['disabled_wall']:.2f}s -> "
        f"{measurements['enabled_wall']:.2f}s); bar is {ENABLED_SLOWDOWN_BAR}x"
    )


def test_report_trace_overhead_table(measurements, capsys):
    m = measurements
    slowdown = m["enabled_wall"] / m["disabled_wall"]
    overhead_pct = m["estimated_overhead"] / m["disabled_wall"]
    title = f"E17: trace subsystem overhead (staircase corpus, depth {DEPTH})"
    headers = ["mode", "seconds", "spans", "lines", "guard overhead"]
    rows = [
        [
            "tracer off",
            f"{m['disabled_wall']:.2f}",
            0,
            0,
            f"{overhead_pct:.3%} (est.)",
        ],
        [
            "tracer on",
            f"{m['enabled_wall']:.2f}",
            m["spans"],
            m["lines"],
            f"{slowdown:.2f}x wall",
        ],
    ]
    with capsys.disabled():
        print_table(title, headers, rows)
    bench_json(
        "E17",
        {
            "title": title,
            "headers": headers,
            "rows": rows,
            "disabled_wall_seconds": round(m["disabled_wall"], 3),
            "enabled_wall_seconds": round(m["enabled_wall"], 3),
            "guard_cost_ns": round(m["guard_cost"] * 1e9, 2),
            "estimated_guard_checks": m["estimated_checks"],
            "estimated_disabled_overhead_pct": round(100 * overhead_pct, 4),
            "enabled_slowdown": round(slowdown, 2),
        },
    )
    assert overhead_pct < DISABLED_OVERHEAD_BAR
    assert slowdown < ENABLED_SLOWDOWN_BAR
