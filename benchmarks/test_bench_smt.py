"""E7 — the SMT substrate on MIX's formula population.

The paper ran STP under Otter; this repository substitutes
:mod:`repro.smt`.  This bench characterizes the substitute on the three
query families the mix rules issue: path-condition feasibility
(is_satisfiable), exhaustiveness tautologies (is_valid of a disjunction
of guards), and memory/array reads through store chains.
"""

import pytest

from repro import smt

from conftest import bench_json, print_table

x = smt.var("x", smt.INT)
y = smt.var("y", smt.INT)
mem = smt.var("m", smt.array_sort(smt.INT, smt.INT))


def feasibility_queries(k: int) -> int:
    sat = 0
    for i in range(k):
        formula = smt.and_(
            smt.gt(x, smt.int_const(i)),
            smt.lt(x, smt.int_const(i + 2)),
            smt.eq(smt.add(x, y), smt.int_const(10)),
        )
        if smt.is_satisfiable(formula):
            sat += 1
    return sat


def exhaustiveness_query(k: int) -> bool:
    # k-way integer split: x < 0, x = 0, ..., x = k-2, x >= k-1.
    guards = [smt.lt(x, smt.int_const(0))]
    guards += [smt.eq(x, smt.int_const(i)) for i in range(k - 1)]
    guards.append(smt.ge(x, smt.int_const(k - 1)))
    return smt.is_valid(smt.or_(*guards))


def store_chain_query(depth: int) -> bool:
    array = mem
    for i in range(depth):
        array = smt.store(array, smt.int_const(i), smt.int_const(i * i))
    read = smt.select(array, smt.int_const(depth - 1))
    return smt.is_valid(smt.eq(read, smt.int_const((depth - 1) ** 2)))


def symbolic_store_chain(depth: int) -> bool:
    """Stores at symbolic indices force read-over-write case splits."""
    indices = [smt.var(f"i{j}", smt.INT) for j in range(depth)]
    array = mem
    for idx in indices:
        array = smt.store(array, idx, smt.int_const(7))
    read = smt.select(array, indices[0])
    # Reading the first-written index after later writes: value is 7 iff
    # every later write either missed i0 or also wrote 7 — always 7 here.
    return smt.is_valid(smt.eq(read, smt.int_const(7)))


def test_bench_feasibility(benchmark):
    assert benchmark(feasibility_queries, 20) == 20


@pytest.mark.parametrize("k", [4, 16])
def test_bench_exhaustiveness(benchmark, k):
    assert benchmark(exhaustiveness_query, k)


@pytest.mark.parametrize("depth", [4, 16])
def test_bench_store_chain(benchmark, depth):
    assert benchmark(store_chain_query, depth)


@pytest.mark.parametrize("depth", [2, 4])
def test_bench_symbolic_stores(benchmark, depth):
    assert benchmark(symbolic_store_chain, depth)


def test_report_smt_table(capsys):
    import time

    rows = []
    for label, fn, arg in (
        ("feasibility x20", feasibility_queries, 20),
        ("exhaustive k=16", exhaustiveness_query, 16),
        ("store chain d=16", store_chain_query, 16),
        ("symbolic stores d=4", symbolic_store_chain, 4),
    ):
        start = time.perf_counter()
        fn(arg)
        rows.append([label, f"{(time.perf_counter() - start) * 1000:.1f} ms"])
    title = "E7: SMT substrate query families"
    headers = ["query", "time"]
    with capsys.disabled():
        print_table(title, headers, rows)
    bench_json("E7", {"title": title, "headers": headers, "rows": rows})
