"""E11 (extension) — effect-aware havoc at typed-block boundaries.

The paper's §3.2 sketches the refinement ("if we were to use a type and
effect system ... we could find the effect of e and limit applying this
'havoc' operation") and §4.6 lists the unconditional havoc as a
practical limitation.  This bench measures the precision gained by the
simple write-effect analysis of :mod:`repro.lang.effects`: programs with
k read-only typed blocks interleaved with value-dependent branches are
all rejected under unconditional havoc and all accepted with the effect
refinement.
"""

import pytest

from repro.core import MixConfig, analyze_source

from conftest import bench_json, print_table


def program(k: int) -> str:
    """k read-only typed excursions between checks that memory survived."""
    parts = ["let x = ref 5 in"]
    for i in range(k):
        parts.append(f"{{t !x * {i + 2} t}};")
        parts.append(f'(if !x = 5 then {i} else "boom" + {i});')
    parts.append("!x")
    return "{s " + "\n".join(parts) + " s}"


def run(k: int, effect_aware: bool):
    config = MixConfig(effect_aware_havoc=effect_aware)
    return analyze_source(program(k), config=config)


@pytest.mark.parametrize("k", [1, 3])
@pytest.mark.parametrize("effect_aware", [False, True], ids=["havoc", "effects"])
def test_bench_effect_havoc(benchmark, k, effect_aware):
    benchmark(run, k, effect_aware)


@pytest.mark.parametrize("k", [1, 2, 3])
def test_precision_gap(k):
    assert not run(k, effect_aware=False).ok
    assert run(k, effect_aware=True).ok


def test_report_effect_table(capsys):
    rows = []
    for k in (1, 2, 3, 4):
        havoc = run(k, effect_aware=False)
        effects = run(k, effect_aware=True)
        rows.append(
            [
                k,
                "accepts" if havoc.ok else "rejects",
                "accepts" if effects.ok else "rejects",
            ]
        )
    title = "E11 (extension): unconditional vs effect-aware havoc (§3.2)"
    headers = ["read-only typed blocks", "fresh μ' always", "effect-aware"]
    with capsys.disabled():
        print_table(title, headers, rows)
    bench_json("E11", {"title": title, "headers": headers, "rows": rows})
    assert all(r[1] == "rejects" and r[2] == "accepts" for r in rows)
