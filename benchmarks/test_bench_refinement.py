"""E9 (extension) — automatic block placement by refinement.

The paper's future work (§4.6/§5): begin with typed blocks only and
incrementally add symbolic blocks, "essentially using MIX as an
intermediate language for combining analyses", in the spirit of
abstraction refinement.

Rows: for programs with k independent typed false positives, the number
of refinement steps the loop needs and whether it converges — compared
against the manual (oracle) placement.
"""

import pytest

from repro.core import analyze, auto_place_blocks
from repro.lang import parse
from repro.typecheck import TypeEnv
from repro.typecheck.types import INT

from conftest import bench_json, print_table


def program_with_dead_errors(k: int) -> str:
    """k dead ill-typed branches; pure typing reports each, MIX needs k
    symbolic blocks."""
    lets = []
    for i in range(k):
        lets.append(f'let a{i} = (if true then 1 else "x" + {i}) in')
    body = " + ".join(f"a{i}" for i in range(k)) if k else "0"
    return "\n".join(lets) + "\n" + body


def manual_placement(k: int) -> str:
    lets = []
    for i in range(k):
        lets.append(f'let a{i} = {{s if true then {{t 1 t}} else {{t "x" + {i} t}} s}} in')
    body = " + ".join(f"a{i}" for i in range(k)) if k else "0"
    return "\n".join(lets) + "\n" + body


def run_auto(k: int):
    return auto_place_blocks(parse(program_with_dead_errors(k)), max_steps=k + 2)


@pytest.mark.parametrize("k", [1, 2, 4])
def test_bench_refinement(benchmark, k):
    result = benchmark(run_auto, k)
    assert result.ok


@pytest.mark.parametrize("k", [1, 2, 3, 4])
def test_refinement_matches_manual_oracle(k):
    auto = run_auto(k)
    manual = analyze(parse(manual_placement(k)))
    assert auto.ok and manual.ok
    assert auto.report.type == manual.type
    assert len(auto.steps) == k  # one symbolic block per false positive


def test_report_refinement_table(capsys):
    rows = []
    for k in (1, 2, 3, 4):
        result = run_auto(k)
        rows.append(
            [
                k,
                len(result.steps),
                "converged" if result.ok else "stuck",
            ]
        )
    title = "E9 (extension): automatic block placement"
    headers = ["false positives", "refinement steps", "outcome"]
    with capsys.disabled():
        print_table(title, headers, rows)
    bench_json("E9", {"title": title, "headers": headers, "rows": rows})
