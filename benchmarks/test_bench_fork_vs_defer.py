"""E4 — deferral versus execution at conditionals (paper Section 3.1,
"Deferral Versus Execution").

Paper claim: forking (SEIf-True/False) explores one path per feasible
branch combination — exponential in the number of independent branches —
while SEIf-Defer produces a single execution whose value carries the
disjunctions, "which then may be hard to solve efficiently"; the choice
"trades off the amount of work done between the symbolic executor and
the underlying SMT solver".

Reproduced rows: paths explored and solver calls under both strategies
as the number of independent conditionals k grows.
"""

import pytest

from repro.core import MixConfig, analyze_source
from repro.symexec import IfStrategy, SymConfig
from repro.typecheck import TypeEnv
from repro.typecheck.types import BOOL

from conftest import bench_json, print_table


def program(k: int) -> str:
    """k independent branches summed: 2^k paths when forking."""
    parts = [f"(if p{i} then 1 else 0)" for i in range(k)]
    return "{s " + " + ".join(parts) + " s}"


def env(k: int) -> TypeEnv:
    return TypeEnv({f"p{i}": BOOL for i in range(k)})


def run(k: int, strategy: IfStrategy):
    config = MixConfig(sym=SymConfig(if_strategy=strategy, prune_infeasible=False))
    report = analyze_source(program(k), env=env(k), config=config)
    assert report.ok
    return report


@pytest.mark.parametrize("k", [2, 4, 6])
@pytest.mark.parametrize("strategy", [IfStrategy.FORK, IfStrategy.DEFER], ids=["fork", "defer"])
def test_bench_strategy(benchmark, k, strategy):
    benchmark(run, k, strategy)


def test_fork_paths_exponential_defer_constant():
    for k in (2, 4, 6):
        fork = run(k, IfStrategy.FORK)
        defer = run(k, IfStrategy.DEFER)
        assert fork.stats["paths_explored"] == 2**k
        assert defer.stats["paths_explored"] == 1
        assert defer.stats["sym_merges"] == k


def test_report_strategy_table(capsys):
    rows = []
    for k in (1, 2, 3, 4, 5, 6, 7, 8):
        fork = run(k, IfStrategy.FORK)
        defer = run(k, IfStrategy.DEFER)
        rows.append(
            [
                k,
                fork.stats["paths_explored"],
                defer.stats["paths_explored"],
                fork.stats["sym_forks"],
                defer.stats["sym_merges"],
            ]
        )
    title = "E4: fork (SEIf-True/False) vs defer (SEIf-Defer)"
    headers = ["k branches", "fork paths", "defer paths", "forks", "merges"]
    with capsys.disabled():
        print_table(title, headers, rows)
    bench_json("E4", {"title": title, "headers": headers, "rows": rows})
    # Crossover claim: fork's path count explodes, defer's stays flat.
    assert rows[-1][1] == 256 and rows[-1][2] == 1
