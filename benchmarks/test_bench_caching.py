"""E5 — block-result caching (paper Section 4.3).

Paper claim: "it can be quite costly to analyze that block repeatedly,
so we cache the calling context and the results of the analysis for that
block, and we reuse the results when the block is called again with a
compatible calling context."

Reproduced rows: symbolic-block executions and cache hits, with caching
on vs. off, as the number of call sites of one symbolic function grows.
"""

import pytest

from repro.mixy import Mixy, MixyConfig

from conftest import bench_json, print_table


def program(n_sites: int) -> str:
    callers = "\n".join(
        f"void caller_{i}(void) {{ helper((int *) malloc(sizeof(int))); }}"
        for i in range(n_sites)
    )
    calls = "\n".join(f"  caller_{i}();" for i in range(n_sites))
    return f"""
    void sysutil_free(void *nonnull p_ptr) MIX(typed);
    void helper(int *p) MIX(symbolic) {{
      if (p != NULL) {{ sysutil_free(p); }}
    }}
    {callers}
    int main(void) {{
    {calls}
      return 0;
    }}
    """


def run(n_sites: int, cache: bool):
    mixy = Mixy(program(n_sites), MixyConfig(enable_cache=cache))
    warnings = mixy.run()
    assert warnings == []
    return mixy


@pytest.mark.parametrize("n_sites", [2, 6])
@pytest.mark.parametrize("cache", [True, False], ids=["cached", "uncached"])
def test_bench_caching(benchmark, n_sites, cache):
    benchmark(run, n_sites, cache)


def test_cache_reduces_block_runs():
    cached = run(6, cache=True)
    uncached = run(6, cache=False)
    assert cached.stats["cache_hits"] >= 1
    assert cached.stats["symbolic_blocks_run"] < uncached.stats["symbolic_blocks_run"]


def test_report_cache_table(capsys):
    rows = []
    for n in (1, 2, 4, 8):
        cached = run(n, cache=True)
        uncached = run(n, cache=False)
        rows.append(
            [
                n,
                cached.stats["symbolic_blocks_run"],
                cached.stats["cache_hits"],
                uncached.stats["symbolic_blocks_run"],
            ]
        )
    title = "E5: block caching (paper §4.3)"
    headers = ["call sites", "block runs (cached)", "cache hits", "block runs (uncached)"]
    with capsys.disabled():
        print_table(title, headers, rows)
    bench_json("E5", {"title": title, "headers": headers, "rows": rows})
