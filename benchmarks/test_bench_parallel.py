"""E16 — the parallel engine on the staircase vsftpd corpus.

``parallel_vsftpd`` couples six solver-heavy symbolic blocks against the
MIXY fixpoint's sorted frontier order: one session global falls per
round, the calling context of every block changes every round, and the
whole frontier is re-analyzed round after round.  A serial run re-solves
every arithmetic query each round (its fresh-symbol counter never
repeats a name); ``--jobs N`` workers speculate each round's blocks
under block-deterministic naming and ship query-cache deltas home, so
from round two on the authoritative pass finds its queries pre-answered
— and the warm cache compounds across rounds.

Rows reproduced: wall-clock seconds, full DPLL(T) solves, and cache hit
rates at ``--jobs 1`` vs ``--jobs 4``, at bitwise-identical warning
output.  Acceptance bar: >=1.8x wall-clock speedup (observed ~3x on a
single-core container — the win is cross-round cache compounding, not
multicore).
"""

from __future__ import annotations

import itertools
import time

import pytest

from repro import smt
from repro.mixy import Mixy
from repro.mixy.c import parse_program
from repro.mixy.corpus_vsftpd import PARALLEL_BLOCKS, parallel_vsftpd
from repro.mixy.driver import MixyConfig
from repro.mixy.qual import QVar

from conftest import bench_json, print_table

DEPTH = 4
JOBS = 4
SPEEDUP_BAR = 1.8


def _run(jobs: int):
    """One full analysis run in a reproducible process state: the solver
    service and the process-global qualifier-variable counter are reset
    so both modes see identical initial conditions (warning texts embed
    ``#N`` qualifier ids)."""
    smt.reset_service()
    QVar._ids = itertools.count(1)
    program = parse_program(parallel_vsftpd(depth=DEPTH))
    mixy = Mixy(program, config=MixyConfig(jobs=jobs))
    start = time.monotonic()
    warnings = mixy.run()
    elapsed = time.monotonic() - start
    stats = smt.get_service().stats
    return {
        "jobs": jobs,
        "seconds": elapsed,
        "warnings": [str(w) for w in warnings],
        "iterations": mixy.stats["fixpoint_iterations"],
        "blocks_run": mixy.stats["symbolic_blocks_run"],
        "frontier": len(PARALLEL_BLOCKS),
        "queries": stats.queries,
        "cache_hits": stats.cache_hits,
        "hit_rate": stats.hit_rate,
        "full_solves": stats.full_solves,
        "speculative_blocks": stats.speculative_blocks,
        "speculation_failures": stats.speculation_failures,
        "imported": stats.cache_entries_imported,
        "timeouts": stats.query_timeouts,
    }


@pytest.fixture(scope="module")
def measurements():
    return {jobs: _run(jobs) for jobs in (1, JOBS)}


def test_corpus_has_enough_symbolic_blocks(measurements):
    serial = measurements[1]
    assert serial["frontier"] >= 4
    # Every frontier block is re-analyzed across the staircase's rounds.
    assert serial["iterations"] >= 4
    assert serial["blocks_run"] > serial["frontier"]


def test_warning_output_is_bitwise_identical(measurements):
    serial, parallel = measurements[1], measurements[JOBS]
    assert serial["warnings"] == parallel["warnings"]
    assert len(serial["warnings"]) == 1  # the staircase's single finding
    assert "nonnull parameter p_ptr of sysutil_free" in serial["warnings"][0]
    assert serial["iterations"] == parallel["iterations"]


def test_runs_are_deterministic_solver_work(measurements):
    # UNKNOWNs are never cached, so any timeout would poison the
    # comparison; the corpus is tuned to produce none in either mode.
    assert measurements[1]["timeouts"] == 0
    assert measurements[JOBS]["timeouts"] == 0
    assert measurements[JOBS]["speculation_failures"] == 0


def test_parallel_mode_actually_speculated(measurements):
    parallel = measurements[JOBS]
    assert parallel["speculative_blocks"] > 0
    assert parallel["imported"] > 0
    # The authoritative pass rides the warmed cache: far fewer full
    # DPLL(T) runs than the serial mode's round-after-round re-solving.
    assert parallel["full_solves"] < 0.7 * measurements[1]["full_solves"]


def test_e16_speedup_bar(measurements):
    serial, parallel = measurements[1], measurements[JOBS]
    speedup = serial["seconds"] / parallel["seconds"]
    assert speedup >= SPEEDUP_BAR, (
        f"--jobs {JOBS} gave {speedup:.2f}x over --jobs 1 "
        f"({serial['seconds']:.1f}s -> {parallel['seconds']:.1f}s); "
        f"bar is {SPEEDUP_BAR}x"
    )


def test_report_parallel_table(measurements, capsys):
    serial, parallel = measurements[1], measurements[JOBS]
    speedup = serial["seconds"] / parallel["seconds"]
    rows = []
    for m in (serial, parallel):
        rows.append(
            [
                f"--jobs {m['jobs']}",
                f"{m['seconds']:.2f}",
                m["iterations"],
                m["blocks_run"],
                m["queries"],
                f"{m['hit_rate']:.0%}",
                m["full_solves"],
                m["speculative_blocks"],
                m["imported"],
                len(m["warnings"]),
            ]
        )
    title = (
        f"E16: parallel engine on the staircase corpus (depth {DEPTH}, "
        f"{len(PARALLEL_BLOCKS)} symbolic blocks; speedup {speedup:.2f}x)"
    )
    headers = [
        "mode",
        "seconds",
        "rounds",
        "blocks run",
        "queries",
        "hit rate",
        "full solves",
        "speculated",
        "imported",
        "warnings",
    ]
    with capsys.disabled():
        print_table(title, headers, rows)
    bench_json(
        "E16",
        {
            "title": title,
            "headers": headers,
            "rows": rows,
            "speedup": round(speedup, 2),
            "identical_warnings": serial["warnings"] == parallel["warnings"],
        },
    )
    assert speedup >= SPEEDUP_BAR
