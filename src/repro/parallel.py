"""The parallel analysis engine: multi-process block fan-out with
cross-process query-cache warming.

Both analyzers spend their time in solver queries, and both already
funnel every query through the process-wide
:class:`repro.smt.service.SolverService` cache.  That makes a simple,
*exactness-preserving* parallel architecture possible:

1. **Speculative fan-out.**  At a point where independent work is known
   (the MIXY fixpoint's per-round symbolic frontier; the MIX checker's
   per-block outcome verification queries), the parent forks a
   ``ProcessPoolExecutor`` of ``--jobs N`` workers.  Forking means each
   worker inherits a read-only snapshot of the parent's entire state —
   program, qualifier graph, block cache, and crucially the warm query
   cache — for free.
2. **Workers learn, they do not decide.**  Each worker runs its share of
   the work against the snapshot and returns only a
   :class:`~repro.smt.service.CacheDelta`: the solver verdicts it
   computed, wire-encoded (terms hash by identity and cannot be pickled;
   see ``terms.to_wire``), plus its perf-counter
   :class:`~repro.smt.service.SolverStats` delta.  Every conclusion a
   worker draws about the *program* is discarded.
3. **Authoritative serial pass.**  The parent then runs the completely
   unchanged serial algorithm.  Verdicts are a function of the formula
   alone, so the merged cache is semantically transparent: the serial
   pass computes byte-for-byte the same warnings, diagnostics, qualifier
   graph, and caches as it would have cold — it merely finds almost
   every query pre-answered.  Equivalence with ``--jobs 1`` is therefore
   by construction, not by protocol.

Worker crashes cannot corrupt anything under this scheme: a dead or
crashed worker just means a lost delta (counted in
``speculation_failures``; a repro is recorded for process deaths) and
the serial pass re-solving that block's queries itself.  A
*deterministic* crash (e.g. ``--inject-fault N:crash``) re-fires during
the serial pass and is contained there by trust ring 3 exactly as in a
serial run: repro written, block degraded, run continues.

So that a block's speculative terms match the serial pass's terms (the
cache is keyed on hash-consed conjunct sets), parallel mode names
symbols and addresses *block-deterministically*: the MIXY executor's
fresh-symbol and address counters restart at each top-level block entry
(``CSymExecutor.reset_block_counters``).  A welcome side effect is that
re-analyzing a block in a later fixpoint round regenerates identical
terms, so cache warming compounds across rounds — serial mode's
ever-advancing counters can never reuse a cross-round verdict.
``--jobs 1`` takes the pre-existing code path byte-for-byte: no forks,
no counter resets, no deltas.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional, Sequence

from repro import smt
from repro.smt.service import CacheDelta
from repro.smt.terms import Wire, from_wire_many, to_wire_many
from repro.trace import TRACER

if TYPE_CHECKING:
    from repro.mixy.driver import Mixy

#: The driver a forked MIXY worker operates on.  Set in the parent right
#: before the pool is created so workers inherit it through fork; tasks
#: themselves ship only block names (everything else is unpicklable).
_WORKER_DRIVER: Optional["Mixy"] = None

#: True in worker processes; a belt-and-braces guard against a worker
#: ever trying to fan out again.
_IN_WORKER = False


def _mark_worker() -> None:
    """Pool initializer (runs in each freshly forked worker)."""
    global _IN_WORKER
    _IN_WORKER = True
    # Redirect the inherited tracer to a per-worker sidecar file with
    # w<pid>-prefixed span ids; the parent merges sidecars after the
    # pool drains (see Tracer.merge_worker_files).
    TRACER.rescope_for_worker()
    driver = _WORKER_DRIVER
    if driver is not None:
        # Speculation needs verdicts, not trust-ring ceremony: witness
        # replay happens authoritatively in the parent, and a worker
        # crash is handled by the wrapper in _speculate_block (shrinking
        # a repro twice — here and again in the parent — would double
        # the containment cost for no information).
        driver.executor.witness_checker = None
        driver.config.contain_crashes = False


@dataclass
class SpeculationResult:
    """What one worker task sends home."""

    label: str
    delta: Optional[CacheDelta]
    error: Optional[str] = None


def _speculate_block(name: str, path_cap: Optional[int]) -> SpeculationResult:
    """Worker: analyze one MIXY frontier block against the forked
    snapshot and return the query-cache delta it produced."""
    driver = _WORKER_DRIVER
    assert driver is not None, "worker forked without a driver installed"
    service = smt.get_service()
    baseline = service.cache_baseline()
    stats0 = replace(service.stats)
    budget = driver.config.budget
    if budget is not None:
        budget.rescope_for_worker(path_cap)  # forked copy: parent unaffected
    error: Optional[str] = None
    with TRACER.span("worker.task", name, cap=path_cap):
        try:
            driver._analyze_symbolic_function(name)
        except BaseException as exc:  # injected crashes included — contain all
            error = f"{type(exc).__name__}: {exc}"
    if TRACER.enabled:
        TRACER.flush()
    try:
        delta = service.collect_delta(baseline, stats0)
    except Exception as exc:
        return SpeculationResult(name, None, f"{type(exc).__name__}: {exc}")
    return SpeculationResult(name, delta, error)


def _speculate_queries(
    wire: Wire, groups: Sequence[tuple[int, ...]], int_budget: int
) -> SpeculationResult:
    """Worker: decode and check a batch of conjunction queries (the MIX
    checker's per-outcome verification), returning the cache delta."""
    service = smt.get_service()
    baseline = service.cache_baseline()
    stats0 = replace(service.stats)
    roots = from_wire_many(wire)
    error: Optional[str] = None
    with TRACER.span("worker.task", "queries", groups=len(groups)):
        for positions in groups:
            try:
                service.check_sat(
                    tuple(roots[i] for i in positions), int_budget=int_budget
                )
            except BaseException as exc:
                error = f"{type(exc).__name__}: {exc}"
    if TRACER.enabled:
        TRACER.flush()
    try:
        delta = service.collect_delta(baseline, stats0)
    except Exception as exc:
        return SpeculationResult("queries", None, f"{type(exc).__name__}: {exc}")
    return SpeculationResult("queries", delta, error)


class ParallelEngine:
    """Schedules speculative workers and merges their cache deltas."""

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    @staticmethod
    def available() -> bool:
        """Fork-based fan-out requires the fork start method (POSIX) and
        must never re-enter from inside a worker."""
        return (
            not _IN_WORKER
            and os.name == "posix"
            and "fork" in multiprocessing.get_all_start_methods()
        )

    # -- MIXY: per-round frontier fan-out ----------------------------------

    def warm_mixy_round(self, driver: "Mixy", names: Sequence[str]) -> None:
        """Fan out one fixpoint round's symbolic frontier.  ``names``
        must already be in the serial (sorted) order; deltas are merged
        back in exactly that order so the cache state is deterministic.
        The pool is created per round: each round's workers fork off the
        parent *after* the previous round's deltas were merged, so cache
        warming compounds across rounds."""
        global _WORKER_DRIVER
        if not self.available() or len(names) < 2:
            return
        budget = driver.config.budget
        caps: list[Optional[int]] = (
            budget.shard_path_caps(self.jobs) if budget is not None else [None] * self.jobs
        )
        if not caps:
            return  # path budget exhausted: nothing useful to speculate
        results: dict[str, Optional[SpeculationResult]] = {}
        _WORKER_DRIVER = driver
        # Flush before forking so workers inherit an empty write buffer
        # (anything buffered would otherwise be duplicated into every
        # worker's sidecar stream at its process exit).
        if TRACER.enabled:
            TRACER.flush()
        fanout = TRACER.begin_span(
            "parallel.fanout", "mixy-round", jobs=len(caps), blocks=len(names)
        ) if TRACER.enabled else None
        try:
            with ProcessPoolExecutor(
                max_workers=min(len(caps), len(names)),
                mp_context=multiprocessing.get_context("fork"),
                initializer=_mark_worker,
            ) as pool:
                futures = {
                    name: pool.submit(_speculate_block, name, caps[i % len(caps)])
                    for i, name in enumerate(names)
                }
                for name, future in futures.items():
                    try:
                        results[name] = future.result()
                    except (BrokenProcessPool, Exception) as exc:
                        # A worker process died (segfault, OOM kill, ...).
                        # Contained per block: record a repro, count it,
                        # and let the authoritative pass redo the block.
                        results[name] = None
                        self._record_worker_death(driver, name, exc)
        finally:
            _WORKER_DRIVER = None
            if fanout is not None:
                TRACER.end_span(fanout)
        with TRACER.span("parallel.merge", "mixy-round"):
            if TRACER.enabled:
                TRACER.merge_worker_files()
            self._merge(names, results)

    @staticmethod
    def _record_worker_death(driver: "Mixy", name: str, exc: Exception) -> None:
        from repro.crash import record_crash
        from repro.mixy.c.pretty import pretty_program

        source = pretty_program(driver.program)
        record_crash(
            exc,
            phase=f"mixy:parallel-worker:{name}",
            source=source,
            # No shrinking: the crash killed a whole process, so probing
            # candidates in-process could not reproduce it faithfully.
            shrunk_source=source,
            crash_dir=driver.config.crash_dir,
            injector=smt.get_service().fault_injector,
        )

    # -- MIX: per-block outcome-verification fan-out -----------------------

    def warm_mix_queries(
        self, groups: Sequence[tuple["smt.Term", ...]], int_budget: int = 4000
    ) -> None:
        """Fan out a batch of independent conjunction queries (the MIX
        checker's failing-path feasibility and exhaustiveness checks).
        Queries are wire-encoded to the workers and deltas merged back in
        chunk order."""
        if not self.available() or len(groups) < 2:
            return
        flat: list["smt.Term"] = []
        positions: list[tuple[int, ...]] = []
        for group in groups:
            positions.append(tuple(range(len(flat), len(flat) + len(group))))
            flat.extend(group)
        wire = to_wire_many(flat)
        jobs = min(self.jobs, len(groups))
        chunks: list[list[tuple[int, ...]]] = [
            positions[i::jobs] for i in range(jobs)
        ]
        results: list[Optional[SpeculationResult]] = []
        if TRACER.enabled:
            TRACER.flush()  # workers must not inherit buffered lines
        fanout = TRACER.begin_span(
            "parallel.fanout", "mix-queries", jobs=jobs, queries=len(groups)
        ) if TRACER.enabled else None
        try:
            with ProcessPoolExecutor(
                max_workers=jobs,
                mp_context=multiprocessing.get_context("fork"),
                initializer=_mark_worker,
            ) as pool:
                futures = [
                    pool.submit(_speculate_queries, wire, chunk, int_budget)
                    for chunk in chunks
                ]
                for future in futures:
                    try:
                        results.append(future.result())
                    except (BrokenProcessPool, Exception):
                        results.append(None)
        finally:
            if fanout is not None:
                TRACER.end_span(fanout)
        with TRACER.span("parallel.merge", "mix-queries"):
            if TRACER.enabled:
                TRACER.merge_worker_files()
            self._merge([f"chunk{i}" for i in range(len(results))], dict(
                (f"chunk{i}", r) for i, r in enumerate(results)
            ))

    # -- shared -------------------------------------------------------------

    @staticmethod
    def _merge(
        order: Sequence[str], results: dict[str, Optional[SpeculationResult]]
    ) -> None:
        """Merge worker deltas in the given deterministic order."""
        service = smt.get_service()
        for name in order:
            result = results.get(name)
            if result is None or result.delta is None:
                service.stats.speculation_failures += 1
                continue
            service.stats.speculative_blocks += 1
            if result.error is not None:
                service.stats.speculation_failures += 1
            service.merge_delta(result.delta)
