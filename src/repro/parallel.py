"""The parallel analysis engine: multi-process block fan-out with
cross-process query-cache warming.

Both analyzers spend their time in solver queries, and both already
funnel every query through the process-wide
:class:`repro.smt.service.SolverService` cache.  That makes a simple,
*exactness-preserving* parallel architecture possible:

1. **Speculative fan-out.**  At a point where independent work is known
   (the MIXY fixpoint's per-round symbolic frontier; the MIX checker's
   per-block outcome verification queries), the parent forks a
   ``ProcessPoolExecutor`` of ``--jobs N`` workers.  Forking means each
   worker inherits a read-only snapshot of the parent's entire state —
   program, qualifier graph, block cache, and crucially the warm query
   cache — for free.
2. **Workers learn, they do not decide.**  Each worker runs its share of
   the work against the snapshot and returns only a
   :class:`~repro.smt.service.CacheDelta`: the solver verdicts it
   computed, wire-encoded (terms hash by identity and cannot be pickled;
   see ``terms.to_wire``), plus its perf-counter
   :class:`~repro.smt.service.SolverStats` delta.  Every conclusion a
   worker draws about the *program* is discarded.
3. **Authoritative serial pass.**  The parent then runs the completely
   unchanged serial algorithm.  Verdicts are a function of the formula
   alone, so the merged cache is semantically transparent: the serial
   pass computes byte-for-byte the same warnings, diagnostics, qualifier
   graph, and caches as it would have cold — it merely finds almost
   every query pre-answered.  Equivalence with ``--jobs 1`` is therefore
   by construction, not by protocol.

Worker crashes cannot corrupt anything under this scheme: a dead or
crashed worker just means a lost delta (counted in
``speculation_failures``; a repro is recorded for process deaths) and
the serial pass re-solving that block's queries itself.  A
*deterministic* crash (e.g. ``--inject-fault N:crash``) re-fires during
the serial pass and is contained there by trust ring 3 exactly as in a
serial run: repro written, block degraded, run continues.

So that a block's speculative terms match the serial pass's terms (the
cache is keyed on hash-consed conjunct sets), parallel mode names
symbols and addresses *block-deterministically*: the MIXY executor's
fresh-symbol and address counters restart at each top-level block entry
(``CSymExecutor.reset_block_counters``).  A welcome side effect is that
re-analyzing a block in a later fixpoint round regenerates identical
terms, so cache warming compounds across rounds — serial mode's
ever-advancing counters can never reuse a cross-round verdict.
``--jobs 1`` takes the pre-existing code path byte-for-byte: no forks,
no counter resets, no deltas.

With ``--schedule waves|portfolio`` a :class:`repro.schedule.Scheduler`
plans each round instead of the one-task-per-item fifo fan-out: related
blocks are batched into *waves* (one worker task each, amortizing the
forked cache snapshot), converged blocks are skipped (no pool is even
created when a whole round is skippable), and — in portfolio mode —
hot blocks are *raced* under several solver strategies with cooperative
cancellation of the losers (:class:`~repro.smt.sat.SatCancelled`).  All
of it stays on the speculative side of the fence: the authoritative
pass is untouched, so every schedule mode produces byte-identical
output.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional, Sequence

from repro import smt
from repro.profiling import worker_task_profile
from repro.smt.sat import SatCancelled
from repro.smt.service import CacheDelta
from repro.smt.terms import Wire, from_wire_many, to_wire_many
from repro.trace import TRACER

if TYPE_CHECKING:
    from repro.mixy.driver import Mixy
    from repro.schedule import Scheduler

#: The driver a forked MIXY worker operates on.  Set in the parent right
#: before the pool is created so workers inherit it through fork; tasks
#: themselves ship only block names (everything else is unpicklable).
_WORKER_DRIVER: Optional["Mixy"] = None

#: Cooperative race-cancellation flags, one per portfolio race.  Created
#: (fork context) in the parent *before* the pool so every worker
#: inherits the same Event objects; a race loser polls its slot's flag
#: from inside the solver loops and aborts with ``SatCancelled``.
_RACE_EVENTS: list = []

#: True in worker processes; a belt-and-braces guard against a worker
#: ever trying to fan out again.
_IN_WORKER = False

#: Single-core portfolio time trial: how far past the fastest contender's
#: wall time a later contender may run before it is poisoned.  Winners
#: are picked by solve *count*, never wall time (see
#: ``_race_time_trial``); the clock only bounds the trial's total cost,
#: and a bound of exactly 1.0x lets fork/load jitter — the very noise
#: the trial exists to factor out — cancel the structurally cheaper
#: strategy before its count is measured.
RACE_TRIAL_SLACK = 2.0

#: Additive part of the same poisoning budget.  Load spikes on a busy
#: host are absolute (a scheduler stall costs the same second whether
#: the task needed 0.3s or 30s), so a purely multiplicative slack still
#: poisons sub-second contenders on noise; the grace term absorbs that
#: while staying irrelevant for contenders slow enough to be worth
#: cancelling.
RACE_TRIAL_GRACE_SECS = 2.0


def mark_forked_child(rescope_trace: bool = True) -> None:
    """Mark this freshly forked process as a worker: it must never fan
    out again (``ParallelEngine.available()`` turns False), and its
    inherited tracer is rescoped to a per-worker sidecar file.  Called
    by the pool initializer below and by ``repro serve``'s per-request
    isolation workers — a SIGKILLed request worker that had forked its
    own grandchildren would orphan them, so request workers run serial.
    """
    global _IN_WORKER
    _IN_WORKER = True
    if rescope_trace:
        TRACER.rescope_for_worker()


def reset_worker_state() -> None:
    """Between requests in a long-lived pooled ``repro serve`` worker:
    drop the per-request attachments on the shared solver service so the
    next request starts from exactly the state a freshly forked worker
    would see.  The cache itself is deliberately kept — it is the warm
    snapshot the worker exists to reuse; per-request determinism state
    (qualifier ids, string interns) is reset by ``analyze_source`` at
    request entry, same as every other execution mode."""
    service = smt.get_service()
    service.fault_injector = None
    service.cancel_check = None
    service.strategy = "default"
    service.budget = None
    if TRACER.enabled:
        TRACER.flush()  # sidecar lines land before the next request's


def _mark_worker() -> None:
    """Pool initializer (runs in each freshly forked worker)."""
    # Redirect the inherited tracer to a per-worker sidecar file with
    # w<pid>-prefixed span ids; the parent merges sidecars after the
    # pool drains (see Tracer.merge_worker_files).
    mark_forked_child()
    driver = _WORKER_DRIVER
    if driver is not None:
        # Speculation needs verdicts, not trust-ring ceremony: witness
        # replay happens authoritatively in the parent, and a worker
        # crash is handled by the wrapper in _speculate_block (shrinking
        # a repro twice — here and again in the parent — would double
        # the containment cost for no information).
        driver.executor.witness_checker = None
        driver.config.contain_crashes = False


@dataclass
class SpeculationResult:
    """What one worker task sends home."""

    label: str
    delta: Optional[CacheDelta]
    error: Optional[str] = None
    #: The task was a race loser, poisoned mid-solve; its partial delta
    #: is discarded (the winner's is complete) and it is not a failure.
    cancelled: bool = False


def _speculate_block(name: str, path_cap: Optional[int]) -> SpeculationResult:
    """Worker: analyze one MIXY frontier block against the forked
    snapshot and return the query-cache delta it produced."""
    driver = _WORKER_DRIVER
    assert driver is not None, "worker forked without a driver installed"
    service = smt.get_service()
    baseline = service.cache_baseline()
    stats0 = replace(service.stats)
    budget = driver.config.budget
    if budget is not None:
        budget.rescope_for_worker(path_cap)  # forked copy: parent unaffected
    error: Optional[str] = None
    with TRACER.span("worker.task", name, cap=path_cap):
        with worker_task_profile():
            try:
                driver._analyze_symbolic_function(name)
            except BaseException as exc:  # injected crashes included — contain all
                error = f"{type(exc).__name__}: {exc}"
    if TRACER.enabled:
        TRACER.flush()
    try:
        delta = service.collect_delta(baseline, stats0)
    except Exception as exc:
        return SpeculationResult(name, None, f"{type(exc).__name__}: {exc}")
    return SpeculationResult(name, delta, error)


def _speculate_wave(
    names: tuple[str, ...],
    path_cap: Optional[int],
    strategy: str = "default",
    race_slot: Optional[int] = None,
) -> SpeculationResult:
    """Worker: analyze a whole *wave* of frontier blocks in one task
    (scheduled modes).  ``strategy`` selects the solver variant for the
    task; ``race_slot`` indexes the fork-inherited cancellation flag
    when this task is a portfolio race contender."""
    driver = _WORKER_DRIVER
    assert driver is not None, "worker forked without a driver installed"
    label = names[0] if len(names) == 1 else f"{names[0]}+{len(names) - 1}"
    service = smt.get_service()
    # Pool workers are reused across tasks within a round: set the
    # strategy and poison hook explicitly at every task start rather
    # than trusting fork-time state.
    service.strategy = strategy
    service.cancel_check = (
        _RACE_EVENTS[race_slot].is_set if race_slot is not None else None
    )
    baseline = service.cache_baseline()
    stats0 = replace(service.stats)
    budget = driver.config.budget
    if budget is not None:
        budget.rescope_for_worker(path_cap)  # forked copy: parent unaffected
    error: Optional[str] = None
    cancelled = False
    with TRACER.span(
        "worker.task", label, cap=path_cap, wave=len(names), strategy=strategy
    ):
        with worker_task_profile():
            for name in names:
                try:
                    driver._analyze_symbolic_function(name)
                except SatCancelled:
                    cancelled = True  # poisoned race loser: stop the task
                    break
                except BaseException as exc:
                    error = f"{type(exc).__name__}: {exc}"
    if TRACER.enabled:
        TRACER.flush()
    if cancelled:
        # A partial delta would still be *correct* (verdicts are a
        # function of the formula), but the winner ships a complete one;
        # dropping the loser's keeps merge sizes deterministic-ish and
        # the accounting honest.
        return SpeculationResult(label, None, error, cancelled=True)
    try:
        delta = service.collect_delta(baseline, stats0)
    except Exception as exc:
        return SpeculationResult(label, None, f"{type(exc).__name__}: {exc}")
    return SpeculationResult(label, delta, error)


def _speculate_queries(
    wire: Wire, groups: Sequence[tuple[int, ...]], int_budget: int
) -> SpeculationResult:
    """Worker: decode and check a batch of conjunction queries (the MIX
    checker's per-outcome verification), returning the cache delta."""
    service = smt.get_service()
    baseline = service.cache_baseline()
    stats0 = replace(service.stats)
    roots = from_wire_many(wire)
    error: Optional[str] = None
    with TRACER.span("worker.task", "queries", groups=len(groups)):
        with worker_task_profile():
            for positions in groups:
                try:
                    service.check_sat(
                        tuple(roots[i] for i in positions), int_budget=int_budget
                    )
                except BaseException as exc:
                    error = f"{type(exc).__name__}: {exc}"
    if TRACER.enabled:
        TRACER.flush()
    try:
        delta = service.collect_delta(baseline, stats0)
    except Exception as exc:
        return SpeculationResult("queries", None, f"{type(exc).__name__}: {exc}")
    return SpeculationResult("queries", delta, error)


class ParallelEngine:
    """Schedules speculative workers and merges their cache deltas."""

    def __init__(self, jobs: int, scheduler: Optional["Scheduler"] = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        #: Non-fifo dispatch planner (``--schedule waves|portfolio``);
        #: None keeps the original one-task-per-item fan-out.
        self.scheduler = scheduler

    @staticmethod
    def available() -> bool:
        """Fork-based fan-out requires the fork start method (POSIX) and
        must never re-enter from inside a worker."""
        return (
            not _IN_WORKER
            and os.name == "posix"
            and "fork" in multiprocessing.get_all_start_methods()
        )

    # -- MIXY: per-round frontier fan-out ----------------------------------

    def warm_mixy_round(self, driver: "Mixy", names: Sequence[str]) -> None:
        """Fan out one fixpoint round's symbolic frontier.  ``names``
        must already be in the serial (sorted) order; deltas are merged
        back in exactly that order so the cache state is deterministic.
        The pool is created per round: each round's workers fork off the
        parent *after* the previous round's deltas were merged, so cache
        warming compounds across rounds."""
        global _WORKER_DRIVER
        if not self.available():
            return
        if self.scheduler is not None and names:
            self._warm_mixy_scheduled(driver, names)
            return
        if len(names) < 2:
            return
        budget = driver.config.budget
        caps: list[Optional[int]] = (
            budget.shard_path_caps(self.jobs) if budget is not None else [None] * self.jobs
        )
        if not caps:
            return  # path budget exhausted: nothing useful to speculate
        results: dict[str, Optional[SpeculationResult]] = {}
        _WORKER_DRIVER = driver
        # Flush before forking so workers inherit an empty write buffer
        # (anything buffered would otherwise be duplicated into every
        # worker's sidecar stream at its process exit).
        if TRACER.enabled:
            TRACER.flush()
        fanout = TRACER.begin_span(
            "parallel.fanout", "mixy-round", jobs=len(caps), blocks=len(names),
            mode="fifo",
        ) if TRACER.enabled else None
        try:
            with ProcessPoolExecutor(
                max_workers=min(len(caps), len(names)),
                mp_context=multiprocessing.get_context("fork"),
                initializer=_mark_worker,
            ) as pool:
                futures = {
                    name: pool.submit(_speculate_block, name, caps[i % len(caps)])
                    for i, name in enumerate(names)
                }
                for name, future in futures.items():
                    try:
                        results[name] = future.result()
                    except (BrokenProcessPool, Exception) as exc:
                        # A worker process died (segfault, OOM kill, ...).
                        # Contained per block: record a repro, count it,
                        # and let the authoritative pass redo the block.
                        results[name] = None
                        self._record_worker_death(driver, name, exc)
        finally:
            _WORKER_DRIVER = None
            if fanout is not None:
                TRACER.end_span(fanout)
        with TRACER.span("parallel.merge", "mixy-round"):
            if TRACER.enabled:
                TRACER.merge_worker_files()
            self._merge(names, results)

    def _warm_mixy_scheduled(self, driver: "Mixy", names: Sequence[str]) -> None:
        """Scheduled fan-out of one frontier round: the scheduler plans
        waves / races / skips, this method executes the plan.  A fully
        skipped round returns before any pool is created — that is the
        main later-round win, because forking a pool for deltas that
        import nothing costs more than it saves."""
        global _WORKER_DRIVER, _RACE_EVENTS
        sched = self.scheduler
        assert sched is not None
        service = smt.get_service()
        features = {n: driver.sched_features(n) for n in names}
        hashes = {n: driver.block_content_hash(n) for n in names}
        plan = sched.plan_mixy_round(list(names), features, hashes)
        service.stats.blocks_skipped += len(plan.skipped)
        if plan.empty:
            return  # converged round: skip the fork entirely
        budget = driver.config.budget
        caps: list[Optional[int]] = (
            budget.shard_path_caps(self.jobs) if budget is not None else [None] * self.jobs
        )
        if not caps:
            return  # path budget exhausted: nothing useful to speculate
        service.stats.waves_dispatched += len(plan.waves)
        ctx = multiprocessing.get_context("fork")
        # Events must exist before any fork so workers share them.
        _RACE_EVENTS = [ctx.Event() for _ in plan.races]
        _WORKER_DRIVER = driver
        if TRACER.enabled:
            TRACER.flush()  # workers must not inherit buffered lines
        fanout = TRACER.begin_span(
            "parallel.fanout", "mixy-round",
            jobs=len(caps), blocks=len(names), mode=sched.mode,
            waves=len(plan.waves), races=len(plan.races),
            skipped=len(plan.skipped),
        ) if TRACER.enabled else None
        winners: dict[str, str] = {}
        cancelled_n = 0
        try:
            # Races run first, each in its own freshly forked pool(s) —
            # never in the shared wave pool.  Three kinds of rigging are
            # excluded by construction: a contender queued behind other
            # tasks "wins" on seniority, not speed; a contender on a
            # reused worker that just ran the same block exact-hits
            # every query; and a contender racing after an earlier
            # race's delta merged measures a warm cache, where the
            # residual solver work is noise, not strategy (observed as
            # a different "winner" per run).  So every contender forks
            # from the same pre-race snapshot, and the winning deltas
            # merge together only after the last race settles.
            race_results: dict[str, Optional[SpeculationResult]] = {}
            for slot, race in enumerate(plan.races):
                if sched.cores >= len(race.strategies):
                    picked, won, cancelled = self._race_concurrent(
                        driver, race, slot, ctx, caps
                    )
                else:
                    picked, won, cancelled = self._race_time_trial(
                        driver, race, slot, ctx, caps
                    )
                cancelled_n += cancelled
                race_results[race.name] = picked
                if won is not None:
                    winners[race.name] = won
                    sched.note_winner(race.name, won)
            if plan.races:
                with TRACER.span("parallel.merge", "races"):
                    if TRACER.enabled:
                        TRACER.merge_worker_files()
                    imported = self._merge(
                        [r.name for r in plan.races], race_results
                    )
                    for race in plan.races:
                        if race.name in imported:
                            sched.note_result(
                                (race.name,), imported[race.name]
                            )
            if plan.waves:
                # Size the wave pool to the hardware, not to --jobs: on a
                # host with fewer cores than jobs, surplus workers only
                # add fork and context-switch cost — and sequential wave
                # tasks in one reused worker *share* cache (each task
                # baselines at task start, so wave 2 rides wave 1's
                # verdicts instead of re-deriving them).
                workers = min(
                    len(caps), len(plan.waves),
                    max(1, min(self.jobs, sched.cores)),
                )
                wave_labels: list[str] = []
                results: dict[str, Optional[SpeculationResult]] = {}
                if TRACER.enabled:
                    TRACER.flush()
                with ProcessPoolExecutor(
                    max_workers=workers,
                    mp_context=ctx,
                    initializer=_mark_worker,
                ) as pool:
                    wave_futs = []
                    for i, wave in enumerate(plan.waves):
                        label = (
                            wave[0] if len(wave) == 1
                            else f"{wave[0]}+{len(wave) - 1}"
                        )
                        wave_labels.append(label)
                        wave_futs.append((label, pool.submit(
                            _speculate_wave, wave, caps[i % len(caps)],
                            plan.wave_strategies[i], None,
                        )))
                    for label, future in wave_futs:
                        try:
                            results[label] = future.result()
                        except (BrokenProcessPool, Exception) as exc:
                            results[label] = None
                            self._record_worker_death(driver, label, exc)
                with TRACER.span("parallel.merge", "mixy-round"):
                    if TRACER.enabled:
                        TRACER.merge_worker_files()
                    imported = self._merge(wave_labels, results)
                    # Convergence feedback: only deltas that actually
                    # merged count — a failed speculation must not look
                    # converged.
                    for label, wave in zip(wave_labels, plan.waves):
                        if label in imported:
                            sched.note_result(wave, imported[label])
        finally:
            _WORKER_DRIVER = None
            _RACE_EVENTS = []
            service.stats.spec().cancelled += cancelled_n
            if fanout is not None:
                TRACER.end_span(
                    fanout, winners=dict(winners), cancelled=cancelled_n
                )

    def _race_concurrent(
        self, driver: "Mixy", race, slot: int, ctx, caps: list
    ) -> tuple[Optional[SpeculationResult], Optional[str], int]:
        """One portfolio race with genuinely parallel contenders: a
        dedicated pool, all contenders submitted together, first
        finisher wins, losers poisoned via the race event.  Returns
        (winning result, winning strategy, contenders cancelled)."""
        service = smt.get_service()
        if TRACER.enabled:
            TRACER.flush()
        cancelled = 0
        with ProcessPoolExecutor(
            max_workers=len(race.strategies),
            mp_context=ctx,
            initializer=_mark_worker,
        ) as pool:
            contenders = [
                (strat, pool.submit(
                    _speculate_wave, (race.name,),
                    caps[i % len(caps)], strat, slot,
                ))
                for i, strat in enumerate(race.strategies)
            ]
            service.stats.spec().raced += len(contenders)
            done, not_done = wait(
                [f for _, f in contenders], return_when=FIRST_COMPLETED
            )
            _RACE_EVENTS[slot].set()
            for f in not_done:
                f.cancel()  # never started: free the slot outright
            finished = []
            for strat, f in contenders:
                if f.cancelled():
                    cancelled += 1
                    continue
                try:
                    r = f.result()
                except (BrokenProcessPool, Exception) as exc:
                    self._record_worker_death(driver, race.name, exc)
                    continue
                if r.cancelled:
                    cancelled += 1
                    continue
                finished.append((strat, r, f in done))
        pick = next(
            (fr for fr in finished if fr[1].delta is not None and fr[2]), None
        ) or next(
            (fr for fr in finished if fr[1].delta is not None), None
        )
        if pick is None:
            return None, None, cancelled
        return pick[1], pick[0], cancelled

    def _race_time_trial(
        self, driver: "Mixy", race, slot: int, ctx, caps: list
    ) -> tuple[Optional[SpeculationResult], Optional[str], int]:
        """One portfolio race on hardware that cannot run contenders
        side by side (cores < contenders): a concurrent race there is
        decided by the OS scheduler's time-slicing, not strategy merit —
        observed as a different "winner" every run.  Instead the
        contenders run back to back, each in its own freshly forked
        single-worker pool (identical starting snapshot: a reused worker
        would let contender 2 exact-hit contender 1's verdicts), against
        the clock: a contender is poisoned once it exceeds
        ``fastest * RACE_TRIAL_SLACK + RACE_TRIAL_GRACE_SECS``, so the
        trial costs at most ``(best * slack + grace) * n``.  The slack
        (and its additive grace) matters: the whole
        point of the trial is that wall noise outweighs the strategy
        difference, so poisoning at exactly ``fastest`` would let that
        same noise cancel a structurally cheaper contender (e.g. a warm
        page cache for whoever forked first) before its solve count —
        the actual verdict — was ever read.  Among the finishers, the
        winner is the fewest *full
        solves* (from the delta's stats), not the least task wall
        clock: wall folds in fork, execution, and load noise that
        outweighs the actual strategy difference (observed: a
        different "winner" per trial), while the solve count against
        the shared cold snapshot is a deterministic function of the
        strategy — it drops exactly when a variant structurally
        avoids solver work (e.g. ``intfirst``'s direct integer
        decide + conjunct cores), which is the only advantage worth
        re-dispatching on the next run.  Count ties break to earlier
        strategy order, i.e. against the cheap-looking variant."""
        service = smt.get_service()
        fastest: Optional[float] = None
        best_work: Optional[tuple[int, int]] = None
        won: Optional[str] = None
        picked: Optional[SpeculationResult] = None
        cancelled = 0
        for i, strat in enumerate(race.strategies):
            _RACE_EVENTS[slot].clear()
            if TRACER.enabled:
                TRACER.flush()
            service.stats.spec().raced += 1
            with ProcessPoolExecutor(
                max_workers=1, mp_context=ctx, initializer=_mark_worker
            ) as pool:
                start = time.monotonic()
                fut = pool.submit(
                    _speculate_wave, (race.name,),
                    caps[i % len(caps)], strat, slot,
                )
                budget = (
                    None
                    if fastest is None
                    else fastest * RACE_TRIAL_SLACK + RACE_TRIAL_GRACE_SECS
                )
                done, _ = wait([fut], timeout=budget)
                if not done:
                    _RACE_EVENTS[slot].set()  # too slow: cannot win
                try:
                    r = fut.result()
                except (BrokenProcessPool, Exception) as exc:
                    self._record_worker_death(driver, race.name, exc)
                    continue
                elapsed = time.monotonic() - start
            if r.cancelled:
                cancelled += 1
                continue
            if r.delta is None:
                continue
            if fastest is None or elapsed < fastest:
                fastest = elapsed
            work = (r.delta.stats.full_solves, i)
            if best_work is None or work < best_work:
                best_work, won, picked = work, strat, r
        return picked, won, cancelled

    @staticmethod
    def _record_worker_death(driver: "Mixy", name: str, exc: Exception) -> None:
        from repro.crash import record_crash
        from repro.mixy.c.pretty import pretty_program

        source = pretty_program(driver.program)
        record_crash(
            exc,
            phase=f"mixy:parallel-worker:{name}",
            source=source,
            # No shrinking: the crash killed a whole process, so probing
            # candidates in-process could not reproduce it faithfully.
            shrunk_source=source,
            crash_dir=driver.config.crash_dir,
            injector=smt.get_service().fault_injector,
        )

    # -- MIX: per-block outcome-verification fan-out -----------------------

    def warm_mix_queries(
        self, groups: Sequence[tuple["smt.Term", ...]], int_budget: int = 4000
    ) -> None:
        """Fan out a batch of independent conjunction queries (the MIX
        checker's failing-path feasibility and exhaustiveness checks).
        Queries are wire-encoded to the workers and deltas merged back in
        chunk order.  With a scheduler, chunks are similarity waves over
        shared wire-encoded conjuncts instead of round-robin stripes."""
        if not self.available() or len(groups) < 2:
            return
        flat: list["smt.Term"] = []
        positions: list[tuple[int, ...]] = []
        for group in groups:
            positions.append(tuple(range(len(flat), len(flat) + len(group))))
            flat.extend(group)
        wire = to_wire_many(flat)
        if self.scheduler is not None:
            _nodes, roots = wire
            waves = self.scheduler.plan_query_waves(positions, roots)
            chunks = [[positions[g] for g in wave] for wave in waves]
            smt.get_service().stats.waves_dispatched += len(chunks)
        else:
            jobs = min(self.jobs, len(groups))
            chunks = [positions[i::jobs] for i in range(jobs)]
        results: list[Optional[SpeculationResult]] = []
        if TRACER.enabled:
            TRACER.flush()  # workers must not inherit buffered lines
        fanout = TRACER.begin_span(
            "parallel.fanout", "mix-queries", jobs=min(self.jobs, len(chunks)),
            queries=len(groups),
            mode=self.scheduler.mode if self.scheduler is not None else "fifo",
            waves=len(chunks) if self.scheduler is not None else 0,
        ) if TRACER.enabled else None
        workers = min(self.jobs, len(chunks))
        if self.scheduler is not None:
            # Same hardware-aware sizing as the MIXY wave path.
            workers = min(workers, max(1, self.scheduler.cores))
        try:
            with ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context("fork"),
                initializer=_mark_worker,
            ) as pool:
                futures = [
                    pool.submit(_speculate_queries, wire, chunk, int_budget)
                    for chunk in chunks
                ]
                for future in futures:
                    try:
                        results.append(future.result())
                    except (BrokenProcessPool, Exception):
                        results.append(None)
        finally:
            if fanout is not None:
                TRACER.end_span(fanout)
        with TRACER.span("parallel.merge", "mix-queries"):
            if TRACER.enabled:
                TRACER.merge_worker_files()
            self._merge([f"chunk{i}" for i in range(len(results))], dict(
                (f"chunk{i}", r) for i, r in enumerate(results)
            ))

    # -- shared -------------------------------------------------------------

    @staticmethod
    def _merge(
        order: Sequence[str], results: dict[str, Optional[SpeculationResult]]
    ) -> dict[str, int]:
        """Merge worker deltas in the given deterministic order; returns
        the per-label count of cache entries actually imported (only for
        labels whose delta arrived — the scheduler's convergence feedback
        must not mistake a lost worker for a converged block)."""
        service = smt.get_service()
        imported: dict[str, int] = {}
        for name in order:
            result = results.get(name)
            if result is None or result.delta is None:
                service.stats.speculation_failures += 1
                continue
            service.stats.speculative_blocks += 1
            if result.error is not None:
                service.stats.speculation_failures += 1
            imported[name] = service.merge_delta(result.delta)
        return imported
