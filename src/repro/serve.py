"""``repro serve``: a persistent analysis daemon with a warm cache.

The CI-bot / editor-integration scenario: many short analyze requests
against mostly-unchanged sources.  A fresh process pays the full cost
every time; this daemon keeps the :class:`~repro.smt.service.
SolverService` query cache and the cross-run block store
(:mod:`repro.store`) warm across requests, and persists both to
``.repro-store/`` so even a daemon restart starts warm.

**Protocol** — line-delimited JSON over a Unix or TCP socket; one JSON
object per line, one response line per request, requests served
strictly in arrival order (the daemon is single-threaded on purpose:
serialization is what makes two concurrent clients deterministic)::

    -> {"cmd": "analyze", "lang": "mixy", "source": "...", "options": {...}}
    <- {"ok": true, "result": {"exit": 0, "lines": [...]}, "served": {...}}
    -> {"cmd": "ping"}           <- {"ok": true, "pong": true}
    -> {"cmd": "stats"}          <- {"ok": true, "stats": {...}}
    -> {"cmd": "shutdown"}       <- {"ok": true, "bye": true}

``result`` is the request's *deterministic analysis payload*: the exit
status and the exact diagnostic lines a fresh ``repro mix|mixy
--jobs 1`` run would print (warnings, report, the ``N warning(s)``
count).  Wall-clock timing and cache-hit counters are deliberately
outside it — they live in ``served`` — so ``result`` is bitwise
identical between a cold run, a warm run, and a fresh process: the
store accelerates, it never answers.

Per-request equivalence with a fresh process is engineered, not hoped
for: each analyze request resets the process-global qualifier-variable
ids and string-intern table (exactly what the parallel-equivalence
tests do between runs), builds a fresh analyzer on the *shared* solver
service, and defaults to the serial path (``jobs: 1``) regardless of
environment overrides.  Options may carry a per-request ``Budget``
(deadline / query timeout / path cap) — budgeted requests simply skip
the block memo, which is only transparent for unbudgeted runs.
"""

from __future__ import annotations

import itertools
import json
import os
import socket
import sys
from typing import Optional

PROTOCOL_VERSION = 1


# ---------------------------------------------------------------------------
# One-request analysis (shared by the daemon and `--store` CLI runs)
# ---------------------------------------------------------------------------


def fresh_equivalence_state() -> None:
    """Reset the process-global counters that leak ordinal state between
    runs in one process: qualifier-variable ids and the string-intern
    table.  After this, an analysis run produces byte-identical
    diagnostics to the same run in a fresh process.  (The solver
    service is *not* reset — its cache is keyed on formulas, which are
    ordinal-free across runs of the same source precisely because of
    this reset.)"""
    from repro.mixy.qual import QVar
    from repro.symexec import values

    QVar._ids = itertools.count(1)
    values._STRING_CODES.clear()


def analyze_source(lang: str, source: str, options: dict, store=None) -> dict:
    """Run one analysis; returns ``{"exit": int, "lines": [str, ...]}``
    — exactly the deterministic output contract described in the module
    docstring.  Never raises on program errors (they are exit-2 lines,
    like the CLI); analyzer crashes propagate to the caller."""
    from repro.budget import Budget

    budget = None
    if any(
        options.get(k) is not None
        for k in ("deadline", "query_timeout_ms", "max_paths")
    ):
        timeout_ms = options.get("query_timeout_ms")
        budget = Budget(
            deadline=options.get("deadline"),
            query_timeout=timeout_ms / 1000.0 if timeout_ms is not None else None,
            max_paths=options.get("max_paths"),
        )
    fresh_equivalence_state()
    if lang == "mixy":
        return _analyze_mixy(source, options, budget, store)
    if lang == "mix":
        return _analyze_mix(source, options, budget, store)
    raise ValueError(f"unknown lang {lang!r}; expected 'mix' or 'mixy'")


def _analyze_mixy(source: str, options: dict, budget, store) -> dict:
    from repro.mixy import Mixy, MixyConfig
    from repro.mixy.c.parser import CParseError
    from repro.mixy.qual import QualConfig
    from repro.mixy.symexec import CErrKind

    config = MixyConfig(
        qual=QualConfig(
            deref_requires_nonnull=bool(options.get("strict_deref", False))
        ),
        enable_cache=not options.get("no_cache", False),
        budget=budget,
        # Explicit defaults, not environment defaults: a daemon request
        # answers for itself, not for whatever REPRO_JOBS the daemon
        # happened to inherit.
        validate_witnesses=bool(options.get("validate_witnesses", False)),
    )
    config.jobs = int(options.get("jobs", 1))
    config.schedule = options.get("schedule", "fifo")
    config.sched_hints = options.get("sched_hints")
    config.store = store
    try:
        mixy = Mixy(source, config)
        warnings = mixy.run(
            entry=options.get("entry", "typed"),
            entry_function=options.get("entry_function", "main"),
        )
    except CParseError as error:
        return {"exit": 2, "lines": [f"error: {error}"]}
    except KeyError as error:
        return {"exit": 2, "lines": [f"error: no such function {error}"]}
    lines = [str(w) for w in warnings]
    lines.append(f"{len(warnings)} warning(s)")
    contained = sum(
        1 for w in mixy.executor.warnings if w.kind is CErrKind.CRASH
    )
    return {"exit": 0 if len(warnings) <= contained else 1, "lines": lines}


def _analyze_mix(source: str, options: dict, budget, store) -> dict:
    from repro.core import MixConfig, SoundnessMode, analyze
    from repro.lang.lexer import LexError
    from repro.lang.parser import ParseError, parse, parse_type
    from repro.symexec import IfStrategy, SymConfig
    from repro.typecheck.types import TypeEnv

    try:
        program = parse(source)
        bindings = {}
        for item in filter(
            None, (part.strip() for part in options.get("env", "").split(","))
        ):
            name, _, type_text = item.partition(":")
            if not type_text:
                raise ValueError(f"bad env entry {item!r}; expected name:type")
            bindings[name.strip()] = parse_type(type_text.strip())
        env = TypeEnv(bindings)
    except (ParseError, LexError, ValueError) as error:
        return {"exit": 2, "lines": [f"error: {error}"]}
    config = MixConfig(
        sym=SymConfig(
            if_strategy=IfStrategy.DEFER
            if options.get("defer", False)
            else IfStrategy.FORK,
            max_loop_unroll=int(options.get("max_unroll", 64)),
        ),
        soundness=SoundnessMode.GOOD_ENOUGH
        if options.get("good_enough", False)
        else SoundnessMode.SOUND,
        budget=budget,
        validate_witnesses=bool(options.get("validate_witnesses", False)),
    )
    config.jobs = int(options.get("jobs", 1))
    config.store = store
    report = analyze(program, env, options.get("entry", "typed"), config)
    lines = [str(report)]
    lines.extend(f"warning: {w}" for w in report.warnings)
    return {"exit": 0 if report.ok else 1, "lines": lines}


# ---------------------------------------------------------------------------
# The daemon
# ---------------------------------------------------------------------------


class ReproDaemon:
    """One serving loop over one listening socket and one open store."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        listen: Optional[str] = None,
        store_dir: Optional[str] = ".repro-store",
        save_every: int = 1,
        max_requests: Optional[int] = None,
    ) -> None:
        if (socket_path is None) == (listen is None):
            raise ValueError("exactly one of socket_path / listen required")
        self.socket_path = socket_path
        self.listen = listen
        self.store_dir = store_dir
        self.save_every = max(1, save_every)
        self.max_requests = max_requests
        self.requests_served = 0
        self._unsaved = 0
        self._stop = False
        self.store = None
        self._sock: Optional[socket.socket] = None

    # -- lifecycle -----------------------------------------------------------

    def bind(self) -> str:
        """Open the store, bind the socket, and return the announce
        string (``unix:PATH`` or ``tcp:HOST:PORT`` with the real port)."""
        from repro import smt
        from repro.store import AnalysisStore

        if self.store_dir is not None:
            self.store = AnalysisStore.open(self.store_dir)
            loaded = self.store.load_into_service(smt.get_service())
            if loaded:
                print(
                    f"repro-serve: warmed {loaded} solver-cache entr"
                    f"{'y' if loaded == 1 else 'ies'} from {self.store_dir}",
                    file=sys.stderr,
                )
        if self.socket_path is not None:
            # A previous life's socket file would make bind() fail; it is
            # dead by definition (one daemon per socket path).
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.bind(self.socket_path)
            announce = f"unix:{self.socket_path}"
        else:
            host, _, port_text = self.listen.rpartition(":")
            self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._sock.bind((host or "127.0.0.1", int(port_text or 0)))
            bound_host, bound_port = self._sock.getsockname()
            announce = f"tcp:{bound_host}:{bound_port}"
        self._sock.listen(8)
        return announce

    def serve_forever(self) -> int:
        """Accept and serve connections until shutdown / max_requests.
        Returns 0; daemon-fatal errors propagate."""
        assert self._sock is not None, "bind() first"
        try:
            while not self._stop:
                conn, _ = self._sock.accept()
                with conn:
                    self._serve_connection(conn)
        finally:
            self._persist()
            self._sock.close()
            if self.socket_path is not None:
                try:
                    os.unlink(self.socket_path)
                except OSError:
                    pass
        return 0

    def _serve_connection(self, conn: socket.socket) -> None:
        reader = conn.makefile("r", encoding="utf-8")
        writer = conn.makefile("w", encoding="utf-8")
        try:
            for line in reader:
                if not line.strip():
                    continue
                response = self.handle_line(line)
                writer.write(json.dumps(response, sort_keys=True) + "\n")
                writer.flush()
                if self._stop:
                    break
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-conversation; nothing to do
        finally:
            try:
                writer.close()
                reader.close()
            except OSError:
                pass

    # -- request handling ----------------------------------------------------

    def handle_line(self, line: str) -> dict:
        """One request line -> one response object.  Never raises: any
        analyzer or protocol failure becomes an ``{"ok": false}``
        response — a bad request must not take the daemon (and every
        other client's warm cache) down with it."""
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except (json.JSONDecodeError, ValueError) as error:
            return {"ok": False, "error": f"bad request: {error}"}
        try:
            return self._dispatch(request)
        except Exception as error:  # daemon survives anything per-request
            return {
                "ok": False,
                "error": f"{type(error).__name__}: {error}",
            }

    def _dispatch(self, request: dict) -> dict:
        from repro import smt

        cmd = request.get("cmd")
        self.requests_served += 1
        if self.max_requests is not None and (
            self.requests_served >= self.max_requests
        ):
            self._stop = True
        if cmd == "ping":
            return {"ok": True, "pong": True, "protocol": PROTOCOL_VERSION}
        if cmd == "shutdown":
            self._stop = True
            return {"ok": True, "bye": True}
        if cmd == "stats":
            stats = {
                "requests_served": self.requests_served,
                "solver": smt.get_service().stats.as_dict(),
            }
            if self.store is not None:
                stats["store"] = dict(self.store.stats)
            return {"ok": True, "stats": stats}
        if cmd == "analyze":
            return self._handle_analyze(request)
        return {"ok": False, "error": f"unknown cmd {cmd!r}"}

    def _handle_analyze(self, request: dict) -> dict:
        from repro import smt

        lang = request.get("lang", "mixy")
        source = request.get("source")
        if not isinstance(source, str):
            return {"ok": False, "error": "analyze needs a string 'source'"}
        options = request.get("options") or {}
        if not isinstance(options, dict):
            return {"ok": False, "error": "'options' must be an object"}
        store_stats_before = (
            dict(self.store.stats) if self.store is not None else {}
        )
        tracer = self._request_tracer(options)
        try:
            result = analyze_source(lang, source, options, store=self.store)
        finally:
            if tracer:
                from repro.trace import TRACER

                TRACER.close()
        served = {"requests_served": self.requests_served}
        if self.store is not None:
            served["store"] = {
                key: self.store.stats[key] - store_stats_before.get(key, 0)
                for key in self.store.stats
                if self.store.stats[key] != store_stats_before.get(key, 0)
            }
            self._unsaved += 1
            if self._unsaved >= self.save_every:
                self.store.save(smt.get_service())
                self._unsaved = 0
        return {"ok": True, "result": result, "served": served}

    def _request_tracer(self, options: dict) -> bool:
        """Per-request tracing: honor ``options["trace"]`` when the
        daemon itself is not already tracing.  Appends, so a client
        re-using one trace path accumulates sessions instead of
        truncating them (the bug this PR fixes)."""
        path = options.get("trace")
        if not path:
            return False
        from repro.trace import TRACER

        if TRACER.enabled:
            return False
        TRACER.enable(path, mode="append")
        return True

    def _persist(self) -> None:
        if self.store is not None:
            from repro import smt

            self.store.save(smt.get_service())


# ---------------------------------------------------------------------------
# The client
# ---------------------------------------------------------------------------


def connect(address: str, timeout: float = 60.0) -> socket.socket:
    """Open a client socket to ``unix:PATH`` / ``tcp:HOST:PORT`` (or a
    bare filesystem path, treated as a Unix socket)."""
    if address.startswith("tcp:"):
        host, _, port_text = address[len("tcp:"):].rpartition(":")
        sock = socket.create_connection(
            (host or "127.0.0.1", int(port_text)), timeout=timeout
        )
        return sock
    path = address[len("unix:"):] if address.startswith("unix:") else address
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    sock.connect(path)
    return sock


def request(address: str, payload: dict, timeout: float = 60.0) -> dict:
    """One request, one response, over a fresh connection."""
    with connect(address, timeout=timeout) as sock:
        sock.sendall((json.dumps(payload) + "\n").encode("utf-8"))
        reader = sock.makefile("r", encoding="utf-8")
        line = reader.readline()
    if not line:
        raise ConnectionError(f"no response from {address}")
    response = json.loads(line)
    if not isinstance(response, dict):
        raise ConnectionError(f"malformed response from {address}")
    return response
