"""``repro serve``: a supervised, overload-tolerant analysis daemon.

The CI-bot / editor-integration scenario: many short analyze requests
against mostly-unchanged sources.  A fresh process pays the full cost
every time; this daemon keeps the :class:`~repro.smt.service.
SolverService` query cache and the cross-run block store
(:mod:`repro.store`) warm across requests, and persists both to
``.repro-store/`` so even a daemon restart starts warm.

**Protocol (version 2)** — line-delimited JSON over a Unix or TCP
socket; one JSON object per line, one response line per request.
Every response carries a terminal ``status`` (plus the legacy ``ok``
boolean, true iff ``status == "ok"``)::

    -> {"cmd": "analyze", "lang": "mixy", "source": "...", "options": {...}}
    <- {"ok": true, "status": "ok", "result": {...}, "served": {...}}
    -> {"cmd": "ping"}     <- {"ok": true, "status": "ok", "pong": true}
    -> {"cmd": "stats"}    <- {"ok": true, "status": "ok", "stats": {...}}
    -> {"cmd": "shutdown"} <- {"ok": true, "status": "ok", "bye": true}

The terminal statuses (:data:`TERMINAL_STATUSES`):

- ``ok`` — the request completed; ``result`` is authoritative.
- ``error`` — the analyzer raised; ``error`` carries the one-line why.
- ``degraded`` — an isolated request worker died (crash, OOM-kill,
  injected ``die`` fault) or blew through the request deadline; the
  daemon survived, shipped a content-addressed crash repro
  (``crash_repro``), and no warm state from the doomed worker was kept.
- ``busy`` — load shed: the bounded queue was full.  The reply carries
  ``retry_after_ms``, an EWMA-based estimate of when a slot frees up.
- ``protocol_error`` — the *request* was unusable: not JSON, not an
  object, unknown ``cmd``, missing/ill-typed fields, over the size cap,
  or stalled mid-line past the read deadline.  The daemon replies
  instead of dropping the connection, so a client always learns why.

``result`` is the request's *deterministic analysis payload*: the exit
status and the exact diagnostic lines a fresh ``repro mix|mixy
--jobs 1`` run would print.  Wall-clock timing and cache-hit counters
live in ``served`` — so ``result`` is bitwise identical between a cold
run, a warm run, and a fresh process: the store accelerates, it never
answers.

**Request isolation.**  By default (POSIX) analyze requests run in a
persistent prefork **worker pool** (``--pool N``): N long-lived workers
forked from the warm daemon, each serving many requests over a job pipe
before being recycled.  Every worker inherits the warm caches at fork
time and ships back its result plus wire-encoded cache deltas
(:meth:`~repro.smt.service.SolverService.collect_delta_since`, read
from a per-request insertion-journal mark, so the frame is sized by
what the request *learned*) and new block memos.  The parent merges
warm state **only from clean, un-faulted completions**; a worker that
dies — segfault, OOM kill, injected fault, deadline breach (SIGKILL
after ``--request-deadline`` plus a grace period) — produces a
``degraded`` reply and a crash repro, is replaced by a fresh fork, and
the daemon itself never goes down.  Workers are marked via
:func:`repro.parallel.mark_forked_child` so they can never fan out
grandchildren (which a SIGKILL would orphan).  ``--pool 0`` selects the
legacy fork-per-request model (one disposable worker per request,
serialized); ``--no-isolate`` opts into the in-process mode (a
crashing analysis is then fate-shared with the daemon).

**Concurrency and determinism.**  Pooled requests *execute*
concurrently — only admission sequencing and warm-state merges
serialize.  Determinism survives because answers are cache-independent
(the store accelerates, it never answers) and merges are
admission-ordered by a sequencer, so the shared cache evolves as a
deterministic function of the admission sequence.  Each worker's
snapshot is labeled with a warm-state **epoch**; a merge that changes
what a fresh fork would inherit bumps the epoch, and stale idle workers
are lazily recycled — killed and reforked from the now-warmer parent —
at acquire time.  Workers are also recycled after ``--worker-requests``
served requests, past an ``--worker-max-rss-mb`` high-water mark, and
on any fault.

**Overload and hostile input.**  Connections are handled by one thread
each.  Admission is a bounded semaphore of ``--queue-depth`` analyze
slots: when full, the daemon *sheds* with a ``busy`` reply instead of
queueing unboundedly; the ``retry_after_ms`` hint accounts for the
pool's parallel width.  Each connection has a read deadline (anti
slow-loris) and a max-request-size cap (anti memory bomb); both produce
``protocol_error`` replies, not a wedged accept loop.

**Durability.**  The store uses per-section CRC32 checksums and a
two-generation write scheme (see :mod:`repro.store`), and a checkpoint
thread persists dirty warm state every ``--checkpoint-secs`` — so
``kill -9`` at any instruction loses at most one checkpoint interval of
warm state and can never corrupt the store.

Per-request equivalence with a fresh process is engineered, not hoped
for: each analyze request resets the process-global qualifier-variable
ids and string-intern table, builds a fresh analyzer on the *shared*
solver service, and defaults to the serial path (``jobs: 1``).
Options may carry a per-request ``Budget`` (deadline / query timeout /
path cap) and a fault-injection schedule (``inject_fault``, same
``N:KIND`` specs as ``--inject-fault``) — both budgeted and
fault-injected requests skip the block memo, which is only transparent
for unbudgeted, un-faulted runs.
"""

from __future__ import annotations

import itertools
import json
import os
import pickle
import random
import select
import signal
import socket
import struct
import sys
import threading
import time
from typing import Optional

from repro.trace import TRACER

PROTOCOL_VERSION = 2

#: Every reply's ``status`` is one of these; a client can always switch
#: on it (chaos invariant: no reply without a terminal status).
TERMINAL_STATUSES = ("ok", "error", "degraded", "busy", "protocol_error")

#: Seconds past the effective request deadline before a worker that has
#: not replied is SIGKILLed (covers budget-aware wind-down + pickling).
WORKER_KILL_GRACE = 2.0

#: Socket poll interval: how often blocked reads re-check stop flags.
_POLL_SECS = 0.25


def _reply(status: str, **fields) -> dict:
    assert status in TERMINAL_STATUSES, status
    response = {"ok": status == "ok", "status": status}
    response.update(fields)
    return response


class WorkerCrash(RuntimeError):
    """A request worker died without a clean reply (recorded in the
    crash repro's traceback)."""


# ---------------------------------------------------------------------------
# One-request analysis (shared by the daemon and `--store` CLI runs)
# ---------------------------------------------------------------------------


def fresh_equivalence_state() -> None:
    """Reset the process-global counters that leak ordinal state between
    runs in one process: the string-intern table (qualifier-variable ids
    are per-:class:`~repro.mixy.qual.QualInference` ordinals, so they
    never leak across runs to begin with).  After this, an analysis run
    produces byte-identical diagnostics to the same run in a fresh
    process.  (The solver service is *not* reset — its cache is keyed on
    formulas, which are ordinal-free across runs of the same source
    precisely because of this reset.)"""
    from repro.symexec import values

    values._STRING_CODES.clear()


def analyze_source(
    lang: str,
    source: str,
    options: dict,
    store=None,
    request_deadline: Optional[float] = None,
) -> dict:
    """Run one analysis; returns ``{"exit": int, "lines": [str, ...]}``
    — exactly the deterministic output contract described in the module
    docstring.  Never raises on program errors (they are exit-2 lines,
    like the CLI); analyzer crashes propagate to the caller.
    ``request_deadline`` is the daemon's server-side wall-clock cap,
    folded into the request budget (the tighter limit wins)."""
    from repro.budget import Budget

    if options.get("prove"):
        # `repro client --prove` / {"cmd": "prove"}: classify the source
        # as one property file (prove_source resets equivalence state and
        # builds its own per-request budget, mirroring this function).
        from repro.prove import exit_code, prove_source

        result = prove_source(
            lang,
            source,
            options,
            name=str(options.get("name", "<property>")),
            store=store,
            request_deadline=request_deadline,
        )
        return {
            "exit": exit_code([result]),
            "lines": [result.line()],
            "verdict": result.verdict,
        }
    budget = Budget.from_request(options, request_deadline)
    fresh_equivalence_state()
    if lang == "mixy":
        return _analyze_mixy(source, options, budget, store)
    if lang == "mix":
        return _analyze_mix(source, options, budget, store)
    raise ValueError(f"unknown lang {lang!r}; expected 'mix' or 'mixy'")


def _analyze_mixy(source: str, options: dict, budget, store) -> dict:
    from repro.mixy import Mixy, MixyConfig
    from repro.mixy.c.parser import CParseError
    from repro.mixy.qual import QualConfig
    from repro.mixy.symexec import CErrKind

    config = MixyConfig(
        qual=QualConfig(
            deref_requires_nonnull=bool(options.get("strict_deref", False))
        ),
        enable_cache=not options.get("no_cache", False),
        budget=budget,
        # Explicit defaults, not environment defaults: a daemon request
        # answers for itself, not for whatever REPRO_JOBS the daemon
        # happened to inherit.
        validate_witnesses=bool(options.get("validate_witnesses", False)),
    )
    config.jobs = int(options.get("jobs", 1))
    config.schedule = options.get("schedule", "fifo")
    config.sched_hints = options.get("sched_hints")
    config.store = store
    try:
        mixy = Mixy(source, config)
        warnings = mixy.run(
            entry=options.get("entry", "typed"),
            entry_function=options.get("entry_function", "main"),
        )
    except CParseError as error:
        return {"exit": 2, "lines": [f"error: {error}"]}
    except KeyError as error:
        return {"exit": 2, "lines": [f"error: no such function {error}"]}
    lines = [str(w) for w in warnings]
    lines.append(f"{len(warnings)} warning(s)")
    contained = sum(
        1 for w in mixy.executor.warnings if w.kind is CErrKind.CRASH
    )
    return {"exit": 0 if len(warnings) <= contained else 1, "lines": lines}


def _analyze_mix(source: str, options: dict, budget, store) -> dict:
    from repro.core import MixConfig, SoundnessMode, analyze
    from repro.lang.lexer import LexError
    from repro.lang.parser import ParseError, parse, parse_type
    from repro.symexec import IfStrategy, SymConfig
    from repro.typecheck.types import TypeEnv

    try:
        program = parse(source)
        bindings = {}
        for item in filter(
            None, (part.strip() for part in options.get("env", "").split(","))
        ):
            name, _, type_text = item.partition(":")
            if not type_text:
                raise ValueError(f"bad env entry {item!r}; expected name:type")
            bindings[name.strip()] = parse_type(type_text.strip())
        env = TypeEnv(bindings)
    except (ParseError, LexError, ValueError) as error:
        return {"exit": 2, "lines": [f"error: {error}"]}
    config = MixConfig(
        sym=SymConfig(
            if_strategy=IfStrategy.DEFER
            if options.get("defer", False)
            else IfStrategy.FORK,
            max_loop_unroll=int(options.get("max_unroll", 64)),
        ),
        soundness=SoundnessMode.GOOD_ENOUGH
        if options.get("good_enough", False)
        else SoundnessMode.SOUND,
        budget=budget,
        validate_witnesses=bool(options.get("validate_witnesses", False)),
    )
    config.jobs = int(options.get("jobs", 1))
    config.store = store
    report = analyze(program, env, options.get("entry", "typed"), config)
    lines = [str(report)]
    lines.extend(f"warning: {w}" for w in report.warnings)
    return {"exit": 0 if report.ok else 1, "lines": lines}


def _injector_from_options(options: dict):
    """Build the per-request :class:`~repro.smt.service.FaultInjector`
    from ``options["inject_fault"]``: either ``"N:KIND"`` specs (string
    or list — the ``--inject-fault`` CLI syntax) or an object
    ``{"faults": {"N": KIND}, "seed": S, "rate": R, "kind": K}``.
    Raises :class:`ValueError` on malformed specs (a protocol error,
    not an analysis error)."""
    spec = options.get("inject_fault")
    if not spec:
        return None
    from repro.smt.service import FaultInjector

    if isinstance(spec, str):
        spec = [spec]
    if isinstance(spec, list):
        faults: dict[int, str] = {}
        for item in spec:
            n_text, _, kind = (
                item.partition(":") if isinstance(item, str) else ("", "", "")
            )
            try:
                n = int(n_text)
            except ValueError:
                raise ValueError(
                    f"bad inject_fault entry {item!r}; expected 'N:KIND'"
                ) from None
            faults[n] = kind or FaultInjector.TIMEOUT
        return FaultInjector(faults=faults)
    if isinstance(spec, dict):
        faults_spec = spec.get("faults") or {}
        if not isinstance(faults_spec, dict):
            raise ValueError("inject_fault.faults must be an object")
        try:
            return FaultInjector(
                faults={int(n): str(k) for n, k in faults_spec.items()},
                seed=spec.get("seed"),
                rate=float(spec.get("rate", 0.0)),
                kind=str(spec.get("kind", FaultInjector.TIMEOUT)),
            )
        except (TypeError, ValueError) as error:
            raise ValueError(f"bad inject_fault spec: {error}") from None
    raise ValueError("inject_fault must be a string, list, or object")


# ---------------------------------------------------------------------------
# Worker-side request execution (runs in the forked child)
# ---------------------------------------------------------------------------


def _write_frame(fd: int, blob: bytes) -> None:
    """Write one length-prefixed frame to a pipe fd."""
    view = memoryview(struct.pack("<Q", len(blob)) + blob)
    while view:
        view = view[os.write(fd, view):]


def _read_frame(
    fd: int, pid: int, kill_after: Optional[float]
) -> tuple[Optional[bytes], bool]:
    """Parent: read one length-prefixed frame from a worker pipe.
    Returns ``(frame, timed_out)``: frame is ``None`` when the worker
    died before completing its reply (EOF mid-frame), and ``timed_out``
    is True when the kill deadline fired first (the worker was
    SIGKILLed and the frame abandoned)."""
    deadline = None if kill_after is None else time.monotonic() + kill_after
    data = bytearray()
    want: Optional[int] = None
    while True:
        if want is None and len(data) >= 8:
            want = struct.unpack("<Q", bytes(data[:8]))[0]
        if want is not None and len(data) >= 8 + want:
            return bytes(data[8 : 8 + want]), False
        timeout = None
        if deadline is not None:
            timeout = deadline - time.monotonic()
            if timeout <= 0:
                try:
                    os.kill(pid, signal.SIGKILL)
                except OSError:
                    pass
                return None, True
        try:
            ready, _, _ = select.select([fd], [], [], timeout)
        except OSError:
            return None, False
        if not ready:
            continue  # re-check the deadline
        try:
            chunk = os.read(fd, 1 << 16)
        except OSError:
            return None, False
        if not chunk:
            return None, False  # EOF before a complete frame: dead worker
        data += chunk


def _worker_payload(
    lang: str,
    source: str,
    options: dict,
    injector,
    store,
    request_deadline: Optional[float],
) -> dict:
    """Child: run one isolated request and build the pickle frame the
    parent merges.  Fault-injected requests are marked ``faulted`` and
    ship no solver delta — chaos must never poison the shared cache
    (their block memos are already suppressed by the drivers).

    All before/after accounting is O(what the request gained), not
    O(cache size): the solver delta reads the insertion journal from a
    :meth:`~repro.smt.service.SolverService.cache_mark`, and new block
    memos are the tail of the insertion-ordered memo dicts.  A warm
    all-hits request therefore ships a near-empty frame — the property
    the pooled workers' isolation budget rests on."""
    from dataclasses import replace

    from repro import smt

    service = smt.get_service()
    if injector is not None:
        service.fault_injector = injector
    mark = service.cache_mark()
    stats0 = replace(service.stats)
    mixy_before = len(store.mixy_blocks) if store is not None else 0
    mix_before = len(store.mix_blocks) if store is not None else 0
    stats_before = dict(store.stats) if store is not None else {}
    opened_trace = False
    trace_path = options.get("trace")
    if trace_path and not TRACER.enabled:
        TRACER.enable(trace_path, mode="append")
        opened_trace = True
    try:
        result = analyze_source(
            lang, source, options, store=store,
            request_deadline=request_deadline,
        )
    finally:
        if opened_trace:
            TRACER.close()
        elif TRACER.enabled:
            TRACER.flush()  # sidecar file: parent merges after waitpid
    payload = {
        "result": result,
        "delta": None,
        "faulted": injector is not None,
        "mixy_new": {},
        "mix_new": {},
        "store_stats": {},
    }
    if injector is None:
        payload["delta"] = service.collect_delta_since(mark, stats0)
    if store is not None:
        # Memo dicts are insert-only within a request, so "new" is the
        # tail past the pre-request length (dict order is insertion
        # order; overwrites keep their original position and need not
        # ship — the parent's copy is identical by determinism).
        payload["mixy_new"] = dict(
            itertools.islice(store.mixy_blocks.items(), mixy_before, None)
        )
        payload["mix_new"] = dict(
            itertools.islice(store.mix_blocks.items(), mix_before, None)
        )
        payload["store_stats"] = {
            k: store.stats[k] - stats_before.get(k, 0)
            for k in store.stats
            if store.stats[k] != stats_before.get(k, 0)
        }
    return payload


def _pool_worker_serve(daemon: "ReproDaemon", read_fd: int, write_fd: int) -> None:
    """Child: the long-lived pooled request worker's serving loop.

    One pickled job frame in, one pickled reply frame out, then a
    between-requests reset (:func:`repro.parallel.reset_worker_state`)
    and back to the read.  Each request runs through the exact machinery
    a fork-per-request worker uses (:func:`_worker_payload`), so the
    reply contract is identical; the only new obligation is that the
    worker leaves no per-request state behind.  EOF on the job pipe is
    the retire signal.  Never returns."""
    import resource

    from repro.parallel import reset_worker_state

    while True:
        frame, _ = _read_frame(read_fd, 0, None)
        if frame is None:
            os._exit(0)  # parent closed the pipe (or died): retire
        try:
            job = pickle.loads(frame)
            payload = _worker_payload(
                job["lang"],
                job["source"],
                job["options"],
                _injector_from_options(job["options"]),
                daemon.store,
                job.get("request_deadline"),
            )
        except BaseException as error:
            payload = {"error": f"{type(error).__name__}: {error}"}
        payload["rss_kb"] = int(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        )
        try:
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        except BaseException as error:
            blob = pickle.dumps(
                {
                    "error": f"{type(error).__name__}: {error}",
                    "rss_kb": payload.get("rss_kb", 0),
                }
            )
        try:
            _write_frame(write_fd, blob)
        except BaseException:
            os._exit(1)  # parent gone mid-reply: nothing left to serve
        try:
            reset_worker_state()
        except BaseException:
            os._exit(1)  # a worker that cannot reset must not serve again


class PoolWorker:
    """Parent-side handle to one long-lived pooled request worker."""

    __slots__ = ("pid", "send_fd", "recv_fd", "epoch", "served", "rss_kb", "seq")

    def __init__(self, pid: int, send_fd: int, recv_fd: int, epoch: int) -> None:
        self.pid = pid
        self.send_fd = send_fd
        self.recv_fd = recv_fd
        #: The daemon warm-state epoch this worker's snapshot reflects.
        self.epoch = epoch
        #: Clean requests served (the recycle request-cap counts these).
        self.served = 0
        #: Worker-reported RSS high-water mark (KB) after its last reply.
        self.rss_kb = 0
        #: Admission sequence number of the currently dispatched request.
        self.seq = -1

    def exchange(
        self, blob: bytes, kill_after: Optional[float]
    ) -> tuple[Optional[bytes], bool]:
        """One request round-trip over the worker's pipes.  Same contract
        as :func:`_read_frame`: a ``None`` frame means the worker died
        (or was killed after ``kill_after``, flagged by ``timed_out``)."""
        try:
            _write_frame(self.send_fd, blob)
        except OSError:
            return None, False  # worker died between requests
        return _read_frame(self.recv_fd, self.pid, kill_after)


class _MergeSequencer:
    """Admission-ordered merge gate.  Pooled requests *execute*
    concurrently, but their warm-state merges (and therefore their
    replies) complete strictly in worker-grant order — so the shared
    cache and the epoch counter evolve as a deterministic function of
    the admission sequence, never of thread-scheduling races."""

    def __init__(self) -> None:
        self._cv = threading.Condition()
        self._admitted = 0
        self._turn = 0

    def admit(self) -> int:
        with self._cv:
            seq = self._admitted
            self._admitted += 1
            return seq

    def wait_turn(self, seq: int) -> None:
        with self._cv:
            while self._turn != seq:
                self._cv.wait()

    def done(self, seq: int) -> None:
        with self._cv:
            assert self._turn == seq, (self._turn, seq)
            self._turn = seq + 1
            self._cv.notify_all()


class WorkerPool:
    """A persistent prefork pool of request workers.

    Workers are forked lazily — up to ``size`` — from the warm daemon
    process, and each serves many requests over its job pipe (the
    fork-per-request model paid that fork, plus a full warm-state diff,
    on *every* request).  A worker is **recycled** — killed and replaced
    by a fresh fork of the now-warmer parent — when:

    - its snapshot ``epoch`` falls behind the daemon's (checked lazily
      at acquire time: merges bump the epoch only when they change what
      a fresh fork would inherit, so all-warm traffic never refreshes);
    - it has served ``worker_requests`` requests (staleness bound);
    - its reported RSS high-water mark passes ``max_rss_kb``;
    - anything went wrong: analyzer error, fault-injected request,
      death mid-request, or a kill-deadline breach.

    The parent merges warm state only from clean completions, exactly as
    in the fork-per-request model — a recycled worker's in-flight
    learning is simply discarded.
    """

    def __init__(
        self,
        daemon: "ReproDaemon",
        size: int,
        worker_requests: Optional[int],
        max_rss_kb: Optional[int],
    ) -> None:
        self._daemon = daemon
        self.size = max(1, int(size))
        self.worker_requests = worker_requests
        self.max_rss_kb = max_rss_kb
        self._cv = threading.Condition()
        self._idle: list[PoolWorker] = []
        self._live: dict[int, PoolWorker] = {}
        self._closed = False
        self.forks = 0
        self.recycles = 0

    # -- acquisition ---------------------------------------------------------

    def acquire(self) -> PoolWorker:
        """A current-epoch worker, its admission sequence number already
        assigned (``worker.seq``) under the pool lock — so merge order
        equals grant order and a granted request can never wait on an
        ungranted one.  Blocks while every worker is busy; dead or
        stale idle workers are recycled on the way."""
        with self._cv:
            while True:
                if self._closed:
                    raise RuntimeError("worker pool is closed")
                worker = self._next_idle_locked()
                if worker is None and len(self._live) < self.size:
                    worker = self._spawn_locked()
                if worker is not None:
                    worker.seq = self._daemon._sequencer.admit()
                    return worker
                self._cv.wait(_POLL_SECS)

    def _next_idle_locked(self) -> Optional[PoolWorker]:
        epoch = self._daemon._epoch
        while self._idle:
            worker = self._idle.pop(0)
            if self._dead_locked(worker):
                # e.g. chaos SIGKILLed an idle worker between requests:
                # reap the corpse here so the request never sees it.
                self._discard_locked(worker, "died-idle", kill=False)
                continue
            if worker.epoch != epoch:
                self._discard_locked(worker, "stale-epoch", kill=True)
                continue
            return worker
        return None

    def _dead_locked(self, worker: PoolWorker) -> bool:
        try:
            pid, _ = os.waitpid(worker.pid, os.WNOHANG)
        except OSError:
            return True  # already reaped
        return pid != 0

    def _spawn_locked(self) -> PoolWorker:
        daemon = self._daemon
        if TRACER.enabled:
            TRACER.flush()  # fork must not duplicate buffered lines
        sys.stdout.flush()
        sys.stderr.flush()
        job_read, job_write = os.pipe()
        reply_read, reply_write = os.pipe()
        # Read before fork: a merge racing past between this read and
        # the fork can only make the child *warmer* than its label, so
        # the worst case is one spurious recycle, never a stale reuse.
        epoch = daemon._epoch
        siblings = [
            fd
            for other in self._live.values()
            for fd in (other.send_fd, other.recv_fd)
        ]
        pid = os.fork()
        if pid == 0:
            # -- child: serve until EOF; never return to the caller -------
            try:
                os.close(job_write)
                os.close(reply_read)
                for fd in siblings:
                    # Inherited copies of sibling pipes would hold a
                    # retired sibling's job pipe open past its EOF.
                    try:
                        os.close(fd)
                    except OSError:
                        pass
                from repro.parallel import mark_forked_child

                mark_forked_child()  # no grandchildren; sidecar tracing
                if daemon._sock is not None:
                    try:
                        daemon._sock.close()
                    except OSError:
                        pass
                _pool_worker_serve(daemon, job_read, reply_write)
            finally:
                os._exit(1)  # only reachable if the serve loop raised
        os.close(job_read)
        os.close(reply_write)
        worker = PoolWorker(pid, job_write, reply_read, epoch)
        self._live[pid] = worker
        self.forks += 1
        if TRACER.enabled:
            TRACER.event("pool_spawn", pid=pid, epoch=epoch)
        return worker

    # -- release and retirement ----------------------------------------------

    def release(self, worker: PoolWorker, retire: Optional[str] = None) -> None:
        """Return a worker after its request.  ``retire`` (a reason
        string) forces recycling; otherwise the request-cap and RSS
        high-water policies decide."""
        if (
            retire is None
            and self.worker_requests
            and worker.served >= self.worker_requests
        ):
            retire = "request-cap"
        if retire is None and self.max_rss_kb and worker.rss_kb > self.max_rss_kb:
            retire = "rss-high-water"
        with self._cv:
            if worker.pid not in self._live:
                pass  # pool closed underneath the request
            elif retire is not None:
                self._discard_locked(worker, retire, kill=True)
            else:
                self._idle.append(worker)
            self._cv.notify_all()

    def reap(self, worker: PoolWorker) -> str:
        """A worker died (or was SIGKILLed) mid-request: collect its exit
        status for the degraded reply and drop it from the pool.  The
        replacement is forked lazily at the next acquire, from the
        parent's *current* warm state."""
        with self._cv:
            self._live.pop(worker.pid, None)
            self.recycles += 1
            self._cv.notify_all()
        for fd in (worker.send_fd, worker.recv_fd):
            try:
                os.close(fd)
            except OSError:
                pass
        try:
            _, status = os.waitpid(worker.pid, 0)
        except OSError:
            status = 0
        if TRACER.enabled:
            TRACER.merge_worker_files(only_pid=worker.pid)
            TRACER.event("pool_retire", pid=worker.pid, reason="died")
        return _death_reason(status)

    def _discard_locked(
        self, worker: PoolWorker, reason: str, kill: bool
    ) -> None:
        self._live.pop(worker.pid, None)
        self.recycles += 1
        for fd in (worker.send_fd, worker.recv_fd):
            try:
                os.close(fd)
            except OSError:
                pass
        if kill:
            try:
                os.kill(worker.pid, signal.SIGKILL)
            except OSError:
                pass
            try:
                os.waitpid(worker.pid, 0)
            except OSError:
                pass
        if TRACER.enabled:
            TRACER.merge_worker_files(only_pid=worker.pid)
            TRACER.event(
                "pool_recycle",
                pid=worker.pid,
                reason=reason,
                served=worker.served,
            )

    def close(self) -> None:
        """Kill and reap every worker (daemon shutdown)."""
        with self._cv:
            self._closed = True
            workers = list(self._live.values())
            self._live.clear()
            self._idle.clear()
            self._cv.notify_all()
        for worker in workers:
            for fd in (worker.send_fd, worker.recv_fd):
                try:
                    os.close(fd)
                except OSError:
                    pass
            try:
                os.kill(worker.pid, signal.SIGKILL)
            except OSError:
                pass
            try:
                os.waitpid(worker.pid, 0)
            except OSError:
                pass
        if TRACER.enabled:
            TRACER.merge_worker_files()

    def describe(self) -> dict:
        """The ``stats`` reply's pool section (chaos reads worker pids
        from here to aim its SIGKILLs)."""
        with self._cv:
            idle = {worker.pid for worker in self._idle}
            return {
                "size": self.size,
                "forks": self.forks,
                "recycles": self.recycles,
                "workers": [
                    {
                        "pid": worker.pid,
                        "epoch": worker.epoch,
                        "served": worker.served,
                        "busy": worker.pid not in idle,
                    }
                    for worker in self._live.values()
                ],
            }


# ---------------------------------------------------------------------------
# The daemon
# ---------------------------------------------------------------------------


class ReproDaemon:
    """One serving loop over one listening socket and one open store."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        listen: Optional[str] = None,
        store_dir: Optional[str] = ".repro-store",
        save_every: int = 1,
        max_requests: Optional[int] = None,
        queue_depth: int = 8,
        read_deadline: float = 10.0,
        max_request_bytes: int = 4 * 1024 * 1024,
        max_conns: int = 32,
        request_deadline: Optional[float] = None,
        isolate: Optional[bool] = None,
        checkpoint_secs: float = 30.0,
        crash_dir: str = ".repro-crashes",
        pool_size: Optional[int] = None,
        worker_requests: int = 200,
        worker_max_rss_mb: Optional[float] = None,
    ) -> None:
        if (socket_path is None) == (listen is None):
            raise ValueError("exactly one of socket_path / listen required")
        self.socket_path = socket_path
        self.listen = listen
        self.store_dir = store_dir
        self.save_every = max(1, save_every)
        self.max_requests = max_requests
        self.queue_depth = max(1, queue_depth)
        self.read_deadline = read_deadline
        self.max_request_bytes = max_request_bytes
        self.max_conns = max(1, max_conns)
        self.request_deadline = request_deadline
        self.checkpoint_secs = checkpoint_secs
        self.crash_dir = crash_dir
        # Auto: isolate wherever fork exists; --no-isolate opts out.
        self._isolate = (
            isolate if isolate is not None else hasattr(os, "fork")
        )
        #: Pooled isolation width: N long-lived prefork workers serving
        #: requests concurrently.  0 selects the legacy fork-per-request
        #: model (serialized); the default is a small host-sized pool.
        if pool_size is None:
            pool_size = min(4, os.cpu_count() or 1)
        self.pool_size = max(0, int(pool_size)) if self._isolate else 0
        self.worker_requests = worker_requests
        self.worker_max_rss_kb = (
            int(worker_max_rss_mb * 1024) if worker_max_rss_mb else None
        )
        #: Lazily created at the first pooled analyze — by then any
        #: test monkeypatching is in place and forks inherit it.
        self._pool: Optional[WorkerPool] = None
        self._sequencer = _MergeSequencer()
        #: Warm-state epoch: bumped only by merges that change what a
        #: freshly forked worker would inherit (new cache entries or
        #: block memos), i.e. exactly when idle snapshots go stale.
        self._epoch = 0
        self.requests_served = 0
        self._unsaved = 0
        self._stop = False
        self._stop_event = threading.Event()
        self.store = None
        self._sock: Optional[socket.socket] = None
        #: serializes warm-state mutation: merges + saves (and, in the
        #: non-pooled modes, whole analyses).  Pooled requests *execute*
        #: concurrently and only take this lock for their merge — the
        #: admission-ordered :class:`_MergeSequencer` is what keeps
        #: concurrent clients deterministic there.
        self._serial = threading.Lock()
        #: guards the small shared counters below.
        self._lock = threading.Lock()
        #: bounded admission: acquired per analyze, shed when exhausted.
        self._slots = threading.BoundedSemaphore(self.queue_depth)
        self._conns = 0
        self._inflight = 0
        self._shed = 0
        self._worker_crashes = 0
        self._avg_secs = 0.0

    # -- lifecycle -----------------------------------------------------------

    def bind(self) -> str:
        """Open the store, bind the socket, and return the announce
        string (``unix:PATH`` or ``tcp:HOST:PORT`` with the real port)."""
        from repro import smt
        from repro.store import AnalysisStore

        if self.store_dir is not None:
            self.store = AnalysisStore.open(self.store_dir)
            loaded = self.store.load_into_service(smt.get_service())
            if loaded:
                print(
                    f"repro-serve: warmed {loaded} solver-cache entr"
                    f"{'y' if loaded == 1 else 'ies'} from {self.store_dir}",
                    file=sys.stderr,
                )
        if self.socket_path is not None:
            # A previous life's socket file would make bind() fail; it is
            # dead by definition (one daemon per socket path).
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.bind(self.socket_path)
            announce = f"unix:{self.socket_path}"
        else:
            host, _, port_text = self.listen.rpartition(":")
            self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._sock.bind((host or "127.0.0.1", int(port_text or 0)))
            bound_host, bound_port = self._sock.getsockname()
            announce = f"tcp:{bound_host}:{bound_port}"
        self._sock.listen(max(8, self.max_conns))
        return announce

    def serve_forever(self) -> int:
        """Accept and serve connections until shutdown / max_requests.
        Returns 0; daemon-fatal errors propagate (per-request and
        per-connection failures never do)."""
        assert self._sock is not None, "bind() first"
        self._sock.settimeout(_POLL_SECS)
        checkpointer: Optional[threading.Thread] = None
        if self.store is not None and self.checkpoint_secs > 0:
            checkpointer = threading.Thread(
                target=self._checkpoint_loop, daemon=True, name="checkpoint"
            )
            checkpointer.start()
        threads: list[threading.Thread] = []
        try:
            while not self._stop:
                try:
                    conn, _ = self._sock.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                with self._lock:
                    refuse = self._conns >= self.max_conns
                    if not refuse:
                        self._conns += 1
                if refuse:
                    self._refuse(conn)
                    continue
                thread = threading.Thread(
                    target=self._connection_thread, args=(conn,), daemon=True
                )
                thread.start()
                threads.append(thread)
                threads = [t for t in threads if t.is_alive()]
        finally:
            self._stop = True
            self._stop_event.set()
            for thread in threads:
                thread.join(timeout=10.0)
            if checkpointer is not None:
                checkpointer.join(timeout=10.0)
            if self._pool is not None:
                self._pool.close()
            self._persist()
            self._sock.close()
            if self.socket_path is not None:
                try:
                    os.unlink(self.socket_path)
                except OSError:
                    pass
        return 0

    def _refuse(self, conn: socket.socket) -> None:
        """Over the connection cap: shed at accept time, best effort."""
        with self._lock:
            self._shed += 1
        try:
            with conn:
                conn.settimeout(1.0)
                self._send(
                    conn,
                    _reply(
                        "busy",
                        error="too many connections",
                        retry_after_ms=self._retry_after_ms(),
                    ),
                )
        except OSError:
            pass

    def _connection_thread(self, conn: socket.socket) -> None:
        try:
            with conn:
                self._serve_connection(conn)
        except Exception:
            pass  # a hostile connection must never unwind the daemon
        finally:
            with self._lock:
                self._conns -= 1

    def _send(self, conn: socket.socket, response: dict) -> bool:
        """One response line, best effort; False if the client is gone."""
        try:
            conn.settimeout(30.0)
            conn.sendall(
                (json.dumps(response, sort_keys=True) + "\n").encode("utf-8")
            )
            conn.settimeout(_POLL_SECS)
            return True
        except OSError:
            return False

    def _serve_connection(self, conn: socket.socket) -> None:
        """Read newline-delimited requests with a per-connection read
        deadline and size cap.  Hostile input — garbage bytes, an
        unterminated (slow-loris) line, a line over the cap — gets a
        ``protocol_error`` reply and, where recovery is meaningless, a
        close; it never wedges the daemon or other connections."""
        conn.settimeout(_POLL_SECS)
        buf = bytearray()
        idle = 0.0
        skipping = False  # inside an oversized line, already refused
        while not self._stop:
            newline = buf.find(b"\n")
            if newline >= 0:
                raw = bytes(buf[: newline])
                del buf[: newline + 1]
                if skipping:
                    skipping = False  # the oversized line finally ended
                    continue
                if len(raw) > self.max_request_bytes:
                    # The whole oversized line arrived in one read, so it
                    # never tripped the mid-accumulation check below.
                    if not self._send(
                        conn,
                        _reply(
                            "protocol_error",
                            error=(
                                f"request exceeds {self.max_request_bytes} "
                                "bytes; line dropped"
                            ),
                        ),
                    ):
                        return
                    continue
                line = raw.decode("utf-8", errors="replace")
                if not line.strip():
                    continue
                idle = 0.0
                if not self._send(conn, self.handle_line(line)):
                    return
                continue
            if not skipping and len(buf) > self.max_request_bytes:
                self._send(
                    conn,
                    _reply(
                        "protocol_error",
                        error=(
                            f"request exceeds {self.max_request_bytes} "
                            "bytes; line dropped"
                        ),
                    ),
                )
                skipping = True
            if skipping:
                del buf[:]  # discard until the newline shows up
            try:
                chunk = conn.recv(1 << 16)
            except socket.timeout:
                idle += _POLL_SECS
                if self.read_deadline and idle >= self.read_deadline:
                    if buf or skipping:
                        # Mid-request stall (slow loris): say why.
                        self._send(
                            conn,
                            _reply(
                                "protocol_error",
                                error=(
                                    "read stalled for "
                                    f"{self.read_deadline:g}s mid-request"
                                ),
                            ),
                        )
                    return
                continue
            except OSError:
                return  # reset / shutdown underneath us
            if not chunk:
                return  # clean EOF
            idle = 0.0
            buf += chunk

    # -- request handling ----------------------------------------------------

    def handle_line(self, line: str) -> dict:
        """One request line -> one response object.  Never raises: any
        analyzer or protocol failure becomes a non-``ok`` terminal
        status — a bad request must not take the daemon (and every
        other client's warm cache) down with it."""
        try:
            request_obj = json.loads(line)
            if not isinstance(request_obj, dict):
                raise ValueError("request must be a JSON object")
        except (json.JSONDecodeError, ValueError) as error:
            return _reply("protocol_error", error=f"bad request: {error}")
        try:
            return self._dispatch(request_obj)
        except Exception as error:  # daemon survives anything per-request
            return _reply("error", error=f"{type(error).__name__}: {error}")

    def _dispatch(self, request_obj: dict) -> dict:
        from repro import smt

        cmd = request_obj.get("cmd")
        with self._lock:
            self.requests_served += 1
            if self.max_requests is not None and (
                self.requests_served >= self.max_requests
            ):
                self._stop = True
                self._stop_event.set()
        if cmd == "ping":
            return _reply("ok", pong=True, protocol=PROTOCOL_VERSION)
        if cmd == "shutdown":
            self._stop = True
            self._stop_event.set()
            return _reply("ok", bye=True)
        if cmd == "stats":
            with self._lock:
                stats = {
                    "requests_served": self.requests_served,
                    "protocol": PROTOCOL_VERSION,
                    "isolated_workers": bool(self._isolate),
                    "queue_depth": self.queue_depth,
                    "inflight": self._inflight,
                    "shed": self._shed,
                    "worker_crashes": self._worker_crashes,
                    "epoch": self._epoch,
                    "solver": smt.get_service().stats.as_dict(),
                }
            if self._isolate and self.pool_size > 0:
                stats["pool"] = self._ensure_pool().describe()
            if self.store is not None:
                stats["store"] = dict(self.store.stats)
            return _reply("ok", stats=stats)
        if cmd == "analyze":
            return self._handle_analyze(request_obj)
        if cmd == "prove":
            # Same admission, isolation, and budget plumbing as analyze;
            # analyze_source routes on the marker (see its prove branch).
            return self._handle_analyze(request_obj, prove=True)
        return _reply("protocol_error", error=f"unknown cmd {cmd!r}")

    def _handle_analyze(self, request_obj: dict, prove: bool = False) -> dict:
        from repro import smt

        lang = request_obj.get("lang", "mixy")
        source = request_obj.get("source")
        if not isinstance(source, str):
            return _reply(
                "protocol_error", error="analyze needs a string 'source'"
            )
        options = request_obj.get("options")
        if options is None:
            options = {}
        if not isinstance(options, dict):
            return _reply("protocol_error", error="'options' must be an object")
        if prove:
            options = dict(options, prove=True)
        if lang not in ("mix", "mixy"):
            # Same message the in-process ValueError produces, but
            # decided before paying for a fork.
            return _reply(
                "error",
                error=(
                    f"ValueError: unknown lang {lang!r}; "
                    "expected 'mix' or 'mixy'"
                ),
            )
        try:
            injector = _injector_from_options(options)
        except ValueError as error:
            return _reply("protocol_error", error=f"bad request: {error}")
        if not self._slots.acquire(blocking=False):
            retry_ms = self._retry_after_ms()
            with self._lock:
                self._shed += 1
            if TRACER.enabled:
                TRACER.event("shed", retry_after_ms=retry_ms)
            return _reply(
                "busy",
                error="server busy: analyze queue is full",
                retry_after_ms=retry_ms,
            )
        start = time.monotonic()
        try:
            with self._lock:
                self._inflight += 1
            if self._isolate and self.pool_size > 0:
                # Pooled requests execute concurrently; only admission
                # sequencing and warm-state merges serialize.
                reply = self._analyze_pooled(lang, source, options, injector)
            else:
                with self._serial:
                    with TRACER.span(
                        "request", lang, isolated=self._isolate
                    ):
                        if self._isolate:
                            reply = self._analyze_isolated(
                                lang, source, options, injector
                            )
                        else:
                            reply = self._analyze_inproc(
                                lang, source, options, injector
                            )
                    if reply["status"] == "ok":
                        self._save_if_due()
            elapsed = time.monotonic() - start
            with self._lock:
                self._avg_secs = (
                    elapsed
                    if self._avg_secs == 0.0
                    else 0.7 * self._avg_secs + 0.3 * elapsed
                )
            return reply
        finally:
            with self._lock:
                self._inflight -= 1
            self._slots.release()

    def _save_if_due(self) -> None:
        """Count one clean completion toward ``--save-every`` and persist
        when due.  Caller holds ``_serial``."""
        if self.store is None:
            return
        from repro import smt

        self._unsaved += 1
        if self._unsaved >= self.save_every:
            self.store.save(smt.get_service())
            self._unsaved = 0

    def _pool_width(self) -> int:
        """How many analyses can make progress at once."""
        if self._isolate and self.pool_size > 0:
            return max(1, self.pool_size)
        return 1

    def _retry_after_ms(self) -> int:
        """When to tell a shed client to come back: the EWMA request
        duration times the number of dispatch *waves* ahead of it —
        in-flight requests divide over the pool's parallel width, so a
        busy N-worker daemon no longer overestimates the wait N-fold."""
        with self._lock:
            width = self._pool_width()
            waves = (max(1, self._inflight) + width - 1) // width
            estimate = max(0.05, self._avg_secs) * waves
        return max(50, min(30_000, int(estimate * 1000)))

    # -- in-process execution (--no-isolate; also fork-less platforms) -------

    def _analyze_inproc(
        self, lang: str, source: str, options: dict, injector
    ) -> dict:
        from repro import smt

        service = smt.get_service()
        store_stats_before = (
            dict(self.store.stats) if self.store is not None else {}
        )
        saved_injector = service.fault_injector
        if injector is not None:
            service.fault_injector = injector
        tracer_opened = self._request_tracer(options)
        try:
            result = analyze_source(
                lang, source, options, store=self.store,
                request_deadline=self.request_deadline,
            )
        finally:
            service.fault_injector = saved_injector
            if tracer_opened:
                TRACER.close()
        served = {"requests_served": self.requests_served, "isolated": False}
        if self.store is not None:
            served["store"] = {
                key: self.store.stats[key] - store_stats_before.get(key, 0)
                for key in self.store.stats
                if self.store.stats[key] != store_stats_before.get(key, 0)
            }
        return _reply("ok", result=result, served=served)

    # -- isolated execution (forked request workers) -------------------------

    def _kill_after(self, options: dict) -> Optional[float]:
        """Seconds until an unresponsive worker is SIGKILLed — delegated
        to :meth:`repro.budget.Budget.slot_kill_after` so the kill
        deadline and the in-band budget can never disagree on which
        limit governs."""
        from repro.budget import Budget

        return Budget.slot_kill_after(
            options, self.request_deadline, WORKER_KILL_GRACE
        )

    # -- pooled execution (persistent prefork workers) ------------------------

    def _ensure_pool(self) -> WorkerPool:
        with self._lock:
            if self._pool is None:
                self._pool = WorkerPool(
                    self,
                    self.pool_size,
                    self.worker_requests,
                    self.worker_max_rss_kb,
                )
            return self._pool

    def _analyze_pooled(
        self, lang: str, source: str, options: dict, injector
    ) -> dict:
        """One request through the worker pool: acquire a current-epoch
        worker (admission seq assigned with the grant), exchange frames
        concurrently with other requests, then merge — and reply — in
        admission order.  The worker is held across its merge so its
        epoch can self-advance (its local state already contains its own
        contribution); it returns to the pool, or is recycled, after."""
        pool = self._ensure_pool()
        kill_after = self._kill_after(options)
        job = pickle.dumps(
            {
                "lang": lang,
                "source": source,
                "options": options,
                "request_deadline": self.request_deadline,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        reply = self._pooled_attempt(
            pool, job, kill_after, lang, source, options, injector,
            retry_on_death=injector is None,
        )
        if reply is None:
            # The worker died without replying, without a fault schedule,
            # and without a deadline kill — almost always a corpse that
            # was SIGKILLed *between* requests (the idle-reap waitpid
            # check races signal delivery).  One retry on a fresh worker
            # is side-effect-free by construction: a dead worker merges
            # nothing, and answers are cache-independent.
            if TRACER.enabled:
                TRACER.event("pool_request_retry", lang=lang)
            reply = self._pooled_attempt(
                pool, job, kill_after, lang, source, options, injector,
                retry_on_death=False,
            )
        assert reply is not None
        return reply

    def _pooled_attempt(
        self,
        pool: WorkerPool,
        job: bytes,
        kill_after: Optional[float],
        lang: str,
        source: str,
        options: dict,
        injector,
        retry_on_death: bool,
    ) -> Optional[dict]:
        """One dispatch through the pool.  Returns the terminal reply, or
        ``None`` when the worker died reply-less and ``retry_on_death``
        says the caller should re-run the request on a fresh worker
        (the dead one was reaped and merged nothing either way)."""
        from repro import smt

        worker: Optional[PoolWorker] = pool.acquire()
        seq = worker.seq
        reply: Optional[dict] = None
        payload = None
        retire: Optional[str] = None
        try:
            with TRACER.span(
                "request", lang, isolated=True, pooled=True, pid=worker.pid
            ):
                frame, timed_out = worker.exchange(job, kill_after)
            if frame is not None:
                try:
                    payload = pickle.loads(frame)
                except Exception:
                    payload = None  # torn/corrupt frame: treat as a crash
            if payload is None:
                reason = pool.reap(worker)
                if timed_out:
                    reason = (
                        "request deadline exceeded "
                        f"({kill_after - WORKER_KILL_GRACE:g}s); worker killed"
                    )
                worker = None
                if retry_on_death and not timed_out:
                    reply = None  # caller retries on a fresh worker
                else:
                    reply = self._degraded_reply(
                        lang, source, injector, reason
                    )
            elif "error" in payload:
                retire = "analyzer-error"
                error_text = payload["error"]
                payload = None  # nothing mergeable in an error frame
                reply = _reply(
                    "error",
                    error=error_text,
                    served={
                        "requests_served": self.requests_served,
                        "isolated": True,
                    },
                )
            else:
                worker.served += 1
                worker.rss_kb = int(payload.get("rss_kb") or 0)
                if payload.get("faulted"):
                    # The injector consumed schedule state inside the
                    # worker; recycling keeps the next request pristine.
                    retire = "fault-injected"
                served = {
                    "requests_served": self.requests_served,
                    "isolated": True,
                }
                if self.store is not None:
                    served["store"] = dict(payload.get("store_stats") or {})
                reply = _reply("ok", result=payload["result"], served=served)
        finally:
            # Merge — and therefore reply — strictly in admission order;
            # every admitted seq MUST pass done() or the line stalls.
            self._sequencer.wait_turn(seq)
            try:
                if payload is not None:
                    with self._serial:
                        self._merge_pooled(smt.get_service(), payload, worker)
                        if reply is not None and reply["status"] == "ok":
                            self._save_if_due()
            finally:
                self._sequencer.done(seq)
                if worker is not None:
                    pool.release(worker, retire=retire)
        return reply

    def _merge_pooled(self, service, payload: dict, worker) -> None:
        """Fold a clean pooled completion's warm state into the parent
        (caller holds ``_serial``), bumping the epoch iff the merge
        changed what a fresh fork would inherit.  An epoch bump lazily
        recycles every *other* worker; the contributing worker's own
        snapshot already contains its contribution, so its epoch
        advances with the parent's and it keeps serving warm."""
        if payload.get("faulted"):
            return
        imported = 0
        delta = payload.get("delta")
        try:
            if delta is not None:
                imported = service.merge_delta(delta)
        except Exception as error:
            print(
                "repro-serve: note: dropped a worker cache delta "
                f"({type(error).__name__}: {error})",
                file=sys.stderr,
            )
        fresh_memos = False
        if self.store is not None:
            fresh_memos = self.store.merge_worker(
                payload.get("mixy_new") or {},
                payload.get("mix_new") or {},
                payload.get("store_stats") or {},
            )
        if imported or fresh_memos:
            with self._lock:
                previous = self._epoch
                self._epoch = previous + 1
                if worker is not None and worker.epoch == previous:
                    worker.epoch = self._epoch
            if TRACER.enabled:
                TRACER.event(
                    "epoch",
                    epoch=self._epoch,
                    imported=imported,
                    fresh_memos=bool(fresh_memos),
                )

    def _analyze_isolated(
        self, lang: str, source: str, options: dict, injector
    ) -> dict:
        from repro import smt
        from repro.parallel import mark_forked_child

        service = smt.get_service()
        kill_after = self._kill_after(options)
        if TRACER.enabled:
            TRACER.flush()  # fork must not duplicate buffered lines
        sys.stdout.flush()
        sys.stderr.flush()
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:
            # -- child: never return to the caller's stack ----------------
            code = 1
            try:
                os.close(read_fd)
                mark_forked_child()  # no grandchildren; sidecar tracing
                if self._sock is not None:
                    try:
                        self._sock.close()
                    except OSError:
                        pass
                payload = _worker_payload(
                    lang, source, options, injector, self.store,
                    self.request_deadline,
                )
                _write_frame(
                    write_fd,
                    pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
                )
                code = 0
            except BaseException as error:
                try:
                    _write_frame(
                        write_fd,
                        pickle.dumps(
                            {"error": f"{type(error).__name__}: {error}"}
                        ),
                    )
                    code = 0
                except BaseException:
                    pass
            finally:
                try:
                    os.close(write_fd)
                except OSError:
                    pass
                os._exit(code)
        # -- parent -------------------------------------------------------
        os.close(write_fd)
        try:
            frame, timed_out = _read_frame(read_fd, pid, kill_after)
        finally:
            os.close(read_fd)
        _, status = os.waitpid(pid, 0)
        if TRACER.enabled:
            # Worker spans land in a sidecar; merge tolerates torn tails
            # from a SIGKILLed worker.
            TRACER.merge_worker_files()
        payload = None
        if frame is not None:
            try:
                payload = pickle.loads(frame)
            except Exception:
                payload = None  # torn/corrupt frame: treat as a crash
        if payload is None:
            reason = (
                "request deadline exceeded "
                f"({kill_after - WORKER_KILL_GRACE:g}s); worker killed"
                if timed_out
                else _death_reason(status)
            )
            return self._degraded_reply(lang, source, injector, reason)
        if "error" in payload:
            return _reply(
                "error",
                error=payload["error"],
                served={
                    "requests_served": self.requests_served,
                    "isolated": True,
                },
            )
        self._merge_worker(service, payload)
        served = {"requests_served": self.requests_served, "isolated": True}
        if self.store is not None:
            served["store"] = dict(payload.get("store_stats") or {})
        return _reply("ok", result=payload["result"], served=served)

    def _merge_worker(self, service, payload: dict) -> None:
        """Fold a clean worker completion's warm state into the parent.
        Fault-injected requests merge nothing (``faulted``), and a merge
        failure degrades to a cold-cache note — the result already in
        hand stays authoritative."""
        if payload.get("faulted"):
            return
        delta = payload.get("delta")
        try:
            if delta is not None:
                service.merge_delta(delta)
        except Exception as error:
            print(
                "repro-serve: note: dropped a worker cache delta "
                f"({type(error).__name__}: {error})",
                file=sys.stderr,
            )
        if self.store is None:
            return
        self.store.merge_worker(
            payload.get("mixy_new") or {},
            payload.get("mix_new") or {},
            payload.get("store_stats") or {},
        )

    def _degraded_reply(
        self, lang: str, source: str, injector, reason: str
    ) -> dict:
        """A worker died without a clean reply: record a crash repro,
        count it, and answer ``degraded`` — the daemon and its warm
        state are unharmed (nothing from the doomed worker merged)."""
        with self._lock:
            self._worker_crashes += 1
        repro_path = None
        try:
            from repro.crash import record_crash

            try:
                raise WorkerCrash(f"request worker died: {reason}")
            except WorkerCrash as error:
                repro_path = record_crash(
                    error,
                    phase=f"serve:request-worker:{lang}",
                    source=source,
                    shrunk_source=source,
                    crash_dir=self.crash_dir,
                    injector=injector,
                )
        except Exception:
            repro_path = None  # repro recording is best effort
        if TRACER.enabled:
            TRACER.event("worker_crash", reason=reason)
        reply = _reply(
            "degraded",
            error=f"request worker died: {reason}",
            served={
                "requests_served": self.requests_served,
                "isolated": True,
            },
        )
        if repro_path:
            reply["crash_repro"] = str(repro_path)
        return reply

    # -- periodic checkpointing ---------------------------------------------

    def _checkpoint_loop(self) -> None:
        """Persist dirty warm state every ``checkpoint_secs`` so a
        ``kill -9`` loses at most one interval, on top of the per-N
        ``--save-every`` saves."""
        from repro import smt

        while not self._stop_event.wait(self.checkpoint_secs):
            if self._stop or self.store is None or not self.store.dirty:
                continue
            with self._serial:
                with TRACER.span("checkpoint", "periodic"):
                    self.store.save(smt.get_service())

    def _request_tracer(self, options: dict) -> bool:
        """Per-request tracing: honor ``options["trace"]`` when the
        daemon itself is not already tracing.  Appends, so a client
        re-using one trace path accumulates sessions instead of
        truncating them."""
        path = options.get("trace")
        if not path:
            return False
        if TRACER.enabled:
            return False
        TRACER.enable(path, mode="append")
        return True

    def _persist(self) -> None:
        if self.store is not None:
            from repro import smt

            with self._serial:
                self.store.save(smt.get_service())


def _death_reason(status: int) -> str:
    """Human-readable cause from a ``waitpid`` status word."""
    if os.WIFSIGNALED(status):
        num = os.WTERMSIG(status)
        try:
            name = signal.Signals(num).name
        except ValueError:
            name = f"signal {num}"
        return f"killed by {name}"
    if os.WIFEXITED(status):
        return f"exited with status {os.WEXITSTATUS(status)} before replying"
    return "died without a reply"


# ---------------------------------------------------------------------------
# The client
# ---------------------------------------------------------------------------


class ClientError(ConnectionError):
    """A client-side failure with a one-line diagnostic.  ``retryable``
    marks transient conditions (dead/refused socket, daemon died
    mid-reply) worth retrying with backoff; protocol-level garbage is
    not retryable."""

    def __init__(self, message: str, retryable: bool = False) -> None:
        super().__init__(message)
        self.retryable = retryable


def connect(
    address: str,
    timeout: float = 60.0,
    connect_timeout: Optional[float] = None,
) -> socket.socket:
    """Open a client socket to ``unix:PATH`` / ``tcp:HOST:PORT`` (or a
    bare filesystem path, treated as a Unix socket).  The connect phase
    uses ``connect_timeout`` (default: ``timeout``) so a dead host
    fails fast even when the request timeout is generous."""
    establish = timeout if connect_timeout is None else connect_timeout
    if address.startswith("tcp:"):
        host, _, port_text = address[len("tcp:"):].rpartition(":")
        sock = socket.create_connection(
            (host or "127.0.0.1", int(port_text)), timeout=establish
        )
        sock.settimeout(timeout)
        return sock
    path = address[len("unix:"):] if address.startswith("unix:") else address
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(establish)
    sock.connect(path)
    sock.settimeout(timeout)
    return sock


def request(
    address: str,
    payload: dict,
    timeout: float = 60.0,
    connect_timeout: Optional[float] = None,
) -> dict:
    """One request, one response, over a fresh connection.  Every
    failure mode — no daemon, refused/reset connection, a daemon dying
    mid-reply, a truncated or malformed response — raises
    :class:`ClientError` with a one-line diagnostic, never a raw
    traceback-bait exception."""
    try:
        sock = connect(address, timeout=timeout, connect_timeout=connect_timeout)
    except FileNotFoundError:
        raise ClientError(
            f"cannot connect to {address}: no such socket", retryable=True
        ) from None
    except ConnectionRefusedError:
        raise ClientError(
            f"cannot connect to {address}: connection refused", retryable=True
        ) from None
    except (socket.timeout, TimeoutError):
        raise ClientError(
            f"cannot connect to {address}: connect timed out", retryable=True
        ) from None
    except OSError as error:
        raise ClientError(f"cannot connect to {address}: {error}") from None
    with sock:
        try:
            sock.sendall((json.dumps(payload) + "\n").encode("utf-8"))
            reader = sock.makefile("rb")
            line = reader.readline()
        except (BrokenPipeError, ConnectionResetError):
            raise ClientError(
                f"{address}: connection lost mid-request "
                "(daemon died or reset?)",
                retryable=True,
            ) from None
        except (socket.timeout, TimeoutError):
            raise ClientError(
                f"{address}: timed out after {timeout:g}s waiting for a reply",
                retryable=True,
            ) from None
        except OSError as error:
            raise ClientError(f"{address}: {error}", retryable=True) from None
    if not line:
        raise ClientError(
            f"{address}: daemon closed the connection without replying",
            retryable=True,
        )
    if not line.endswith(b"\n"):
        raise ClientError(
            f"{address}: truncated reply (daemon died mid-reply?)",
            retryable=True,
        )
    try:
        response = json.loads(line)
    except json.JSONDecodeError:
        raise ClientError(f"{address}: malformed reply (not JSON)") from None
    if not isinstance(response, dict):
        raise ClientError(f"{address}: malformed reply (not an object)")
    return response


def request_with_retry(
    address: str,
    payload: dict,
    timeout: float = 60.0,
    connect_timeout: Optional[float] = None,
    retries: int = 0,
    base_ms: float = 100.0,
    max_ms: float = 5000.0,
    rng: Optional[random.Random] = None,
) -> dict:
    """:func:`request` plus up to ``retries`` retried attempts on
    transient failures: retryable :class:`ClientError` and ``busy``
    replies.  Backoff is exponential (``base_ms * 2**attempt``, capped
    at ``max_ms``) with full jitter, except that a ``busy`` reply's
    ``retry_after_ms`` hint — the daemon's own queue estimate —
    overrides the exponential schedule."""
    rng = rng if rng is not None else random.Random()
    attempt = 0
    while True:
        try:
            response = request(
                address, payload, timeout=timeout,
                connect_timeout=connect_timeout,
            )
        except ClientError as error:
            if attempt >= retries or not error.retryable:
                raise
            delay_ms = min(max_ms, base_ms * (2 ** attempt))
        else:
            if response.get("status") != "busy" or attempt >= retries:
                return response
            hint = response.get("retry_after_ms")
            delay_ms = (
                float(hint)
                if isinstance(hint, (int, float)) and hint > 0
                else min(max_ms, base_ms * (2 ** attempt))
            )
        time.sleep((delay_ms / 1000.0) * (0.5 + rng.random()))
        attempt += 1


def bench(
    address: str,
    payload: dict,
    requests: int,
    concurrency: int,
    timeout: float = 300.0,
    retries: int = 8,
    payloads: Optional[list[dict]] = None,
) -> dict:
    """Load generator (``repro client --bench N --concurrency C``): fire
    ``requests`` analyze requests at the daemon over ``concurrency``
    client threads — one fresh connection per request, like the CLI
    client — and return throughput plus latency percentiles.

    ``payloads``, when given, is a request mix the workers draw from
    round-robin (benchmarks use it for distinct-corpora traffic);
    otherwise every request sends ``payload``.  ``busy`` sheds are
    retried (honoring the daemon's ``retry_after_ms`` hint), so the
    reported latency is the client-observed time to an answer, not to a
    first attempt.  Replies' ``result`` payloads come back in
    ``results`` so callers can check determinism."""
    if requests < 1 or concurrency < 1:
        raise ValueError("bench needs requests >= 1 and concurrency >= 1")
    mix = payloads if payloads else [payload]
    lock = threading.Lock()
    cursor = {"next": 0}
    latencies: list[float] = []
    statuses: dict[str, int] = {}
    errors: list[str] = []
    results: list[tuple[int, Optional[dict]]] = []

    def drive() -> None:
        rng = random.Random()
        while True:
            with lock:
                index = cursor["next"]
                if index >= requests:
                    return
                cursor["next"] = index + 1
            started = time.monotonic()
            try:
                response = request_with_retry(
                    address,
                    mix[index % len(mix)],
                    timeout=timeout,
                    retries=retries,
                    rng=rng,
                )
            except ClientError as error:
                with lock:
                    errors.append(str(error))
                continue
            elapsed = time.monotonic() - started
            status = str(response.get("status", "?"))
            with lock:
                latencies.append(elapsed)
                statuses[status] = statuses.get(status, 0) + 1
                results.append((index, response.get("result")))

    wall_started = time.monotonic()
    threads = [
        threading.Thread(target=drive, daemon=True, name=f"bench-{i}")
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - wall_started
    ordered = sorted(latencies)

    def percentile(p: float) -> float:
        if not ordered:
            return 0.0
        return ordered[min(len(ordered) - 1, int(p / 100.0 * len(ordered)))]

    return {
        "requests": requests,
        "concurrency": concurrency,
        "completed": len(latencies),
        "ok": statuses.get("ok", 0),
        "statuses": statuses,
        "errors": errors,
        "wall_secs": wall,
        "throughput_rps": (len(latencies) / wall) if wall > 0 else 0.0,
        "p50_ms": percentile(50) * 1000.0,
        "p95_ms": percentile(95) * 1000.0,
        "p99_ms": percentile(99) * 1000.0,
        "results": [result for _, result in sorted(results)],
    }
