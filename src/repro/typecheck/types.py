"""Types of the MIX source language: ``int``, ``bool``, ``τ ref`` (paper
Figure 1), plus the extension types ``str``, ``unit``, and ``τ -> τ``."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Optional


@dataclass(frozen=True)
class Type:
    """Base class for types."""


@dataclass(frozen=True)
class BaseType(Type):
    name: str

    def __str__(self) -> str:
        return self.name


INT = BaseType("int")
BOOL = BaseType("bool")
STR = BaseType("str")
UNIT = BaseType("unit")


@dataclass(frozen=True)
class RefType(Type):
    """``τ ref`` — the type of updatable references to ``τ``."""

    elem: Type

    def __str__(self) -> str:
        return f"{self.elem} ref"


@dataclass(frozen=True)
class FunType(Type):
    """``τ1 -> τ2`` (extension)."""

    param: Type
    result: Type

    def __str__(self) -> str:
        param = f"({self.param})" if isinstance(self.param, FunType) else str(self.param)
        return f"{param} -> {self.result}"


class TypeEnv:
    """An immutable typing environment Γ (variable -> type)."""

    def __init__(self, bindings: Optional[Mapping[str, Type]] = None) -> None:
        self._bindings: dict[str, Type] = dict(bindings or {})

    def lookup(self, name: str) -> Optional[Type]:
        return self._bindings.get(name)

    def extend(self, name: str, typ: Type) -> "TypeEnv":
        child = dict(self._bindings)
        child[name] = typ
        return TypeEnv(child)

    def items(self) -> Iterator[tuple[str, Type]]:
        return iter(sorted(self._bindings.items()))

    def __contains__(self, name: str) -> bool:
        return name in self._bindings

    def __len__(self) -> int:
        return len(self._bindings)

    def __str__(self) -> str:
        inner = ", ".join(f"{k}: {v}" for k, v in self.items())
        return f"{{{inner}}}"
