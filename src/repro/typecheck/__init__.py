"""The off-the-shelf type system of the paper's Section 3.1.

Judgments have the form ``Γ ⊢_Λ e : τ`` where ``Γ`` is the variable
typing environment and ``Λ`` the memory typing (location -> type) used by
the soundness statement.  The checker is completely standard; MIX's only
interaction with it is through :class:`repro.core.mix`'s mix rules.
"""

from repro.typecheck.types import (
    BOOL,
    INT,
    STR,
    UNIT,
    FunType,
    RefType,
    Type,
    TypeEnv,
)

_LAZY = {"TypeChecker", "TypeError_", "check_expr"}


def __getattr__(name: str):
    # The checker imports repro.lang.ast, which imports this package for
    # the Type classes; loading the checker lazily breaks that cycle.
    if name in _LAZY:
        from repro.typecheck import checker

        return getattr(checker, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BOOL",
    "INT",
    "STR",
    "UNIT",
    "FunType",
    "RefType",
    "Type",
    "TypeChecker",
    "TypeEnv",
    "TypeError_",
    "check_expr",
]
