"""The standard type checker ``Γ ⊢_Λ e : τ`` of paper Section 3.1.

The checker is deliberately *off the shelf*: flow-insensitive,
path-insensitive, and unaware of symbolic execution.  Its single point of
extension is the ``symbolic_block_hook``: when the checker encounters a
symbolic block ``{s e s}`` it delegates to the hook, which the MIX driver
(:mod:`repro.core.mix`) installs as rule TSymBlock.  Without a hook,
symbolic blocks are rejected — a standalone type checker cannot analyze
them.

Memory typings ``Λ`` map locations to types; they only matter for the
soundness statement, where an expression may mention pre-existing
locations.  Source programs cannot name locations, so ``Λ`` is typically
empty when checking whole programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.lang.ast import (
    App,
    Assign,
    Assume,
    BinOp,
    BinOpKind,
    BoolLit,
    Check,
    Deref,
    Expr,
    Fun,
    If,
    IntLit,
    Let,
    Not,
    Pos,
    Ref,
    Seq,
    StrLit,
    SymBlock,
    Symbolic,
    TypedBlock,
    UnitLit,
    Var,
    While,
)
from repro.typecheck.types import (
    BOOL,
    INT,
    STR,
    UNIT,
    FunType,
    RefType,
    Type,
    TypeEnv,
)


class TypeError_(Exception):
    """A static type error, with optional source position."""

    def __init__(self, message: str, pos: Optional[Pos] = None) -> None:
        location = f" at {pos}" if pos else ""
        super().__init__(f"{message}{location}")
        self.message = message
        self.pos = pos


# A hook invoked on `{s e s}`: (environment, block) -> type of the block.
SymbolicBlockHook = Callable[[TypeEnv, SymBlock], Type]

#: Types at which ``=`` is permitted (no function comparison).
_EQUALITY_TYPES = (INT, BOOL, STR, UNIT)


@dataclass
class TypeChecker:
    """A type checker instance, optionally wired into MIX via the hook."""

    symbolic_block_hook: Optional[SymbolicBlockHook] = None

    def check(self, expr: Expr, env: Optional[TypeEnv] = None) -> Type:
        """Compute the type of ``expr`` under ``env`` or raise TypeError_."""
        return self._check(expr, env or TypeEnv())

    # -- rules ------------------------------------------------------------------

    def _check(self, expr: Expr, env: TypeEnv) -> Type:
        if isinstance(expr, Var):
            typ = env.lookup(expr.name)
            if typ is None:
                raise TypeError_(f"unbound variable {expr.name}", expr.pos)
            return typ
        if isinstance(expr, IntLit):
            return INT
        if isinstance(expr, BoolLit):
            return BOOL
        if isinstance(expr, StrLit):
            return STR
        if isinstance(expr, UnitLit):
            return UNIT
        if isinstance(expr, BinOp):
            return self._check_binop(expr, env)
        if isinstance(expr, Not):
            self._expect(expr.operand, env, BOOL, "operand of 'not'")
            return BOOL
        if isinstance(expr, If):
            self._expect(expr.cond, env, BOOL, "condition of 'if'")
            then_type = self._check(expr.then, env)
            else_type = self._check(expr.els, env)
            if then_type != else_type:
                raise TypeError_(
                    f"branches of 'if' disagree: {then_type} vs {else_type}", expr.pos
                )
            return then_type
        if isinstance(expr, Let):
            bound_type = self._check(expr.bound, env)
            if expr.annotation is not None and expr.annotation != bound_type:
                raise TypeError_(
                    f"let annotation {expr.annotation} does not match {bound_type}",
                    expr.pos,
                )
            return self._check(expr.body, env.extend(expr.name, bound_type))
        if isinstance(expr, Seq):
            self._check(expr.first, env)
            return self._check(expr.second, env)
        if isinstance(expr, Ref):
            return RefType(self._check(expr.init, env))
        if isinstance(expr, Deref):
            ref_type = self._check(expr.ref, env)
            if not isinstance(ref_type, RefType):
                raise TypeError_(f"dereference of non-reference type {ref_type}", expr.pos)
            return ref_type.elem
        if isinstance(expr, Assign):
            target_type = self._check(expr.target, env)
            if not isinstance(target_type, RefType):
                raise TypeError_(
                    f"assignment through non-reference type {target_type}", expr.pos
                )
            # Standard type systems require writes to preserve types
            # (contrast with the symbolic executor's SEAssign).
            self._expect(expr.value, env, target_type.elem, "right-hand side of ':='")
            return target_type.elem
        if isinstance(expr, While):
            self._expect(expr.cond, env, BOOL, "condition of 'while'")
            self._check(expr.body, env)
            return UNIT
        if isinstance(expr, Fun):
            body_type = self._check(expr.body, env.extend(expr.param, expr.param_type))
            return FunType(expr.param_type, body_type)
        if isinstance(expr, App):
            fn_type = self._check(expr.fn, env)
            if not isinstance(fn_type, FunType):
                raise TypeError_(f"application of non-function type {fn_type}", expr.pos)
            self._expect(expr.arg, env, fn_type.param, "function argument")
            return fn_type.result
        if isinstance(expr, TypedBlock):
            # Typed-in-typed passes through (the paper notes this is trivial).
            return self._check(expr.body, env)
        if isinstance(expr, SymBlock):
            if self.symbolic_block_hook is None:
                raise TypeError_(
                    "symbolic block encountered but no symbolic executor is "
                    "attached (run under MIX)",
                    expr.pos,
                )
            return self.symbolic_block_hook(env, expr)
        if isinstance(expr, Symbolic):
            # A symbolic input is an arbitrary int — the checker sees it
            # exactly as it would any other integer expression.
            return INT
        if isinstance(expr, Assume):
            self._expect(expr.cond, env, BOOL, "condition of 'assume'")
            return UNIT
        if isinstance(expr, Check):
            self._expect(expr.cond, env, BOOL, "condition of 'check'")
            return UNIT
        raise TypeError_(f"unknown expression node {expr!r}", expr.pos)

    def _check_binop(self, expr: BinOp, env: TypeEnv) -> Type:
        op = expr.op
        if op in (BinOpKind.AND, BinOpKind.OR):
            self._expect(expr.left, env, BOOL, f"left operand of '{op.value}'")
            self._expect(expr.right, env, BOOL, f"right operand of '{op.value}'")
            return BOOL
        if op is BinOpKind.EQ:
            left = self._check(expr.left, env)
            right = self._check(expr.right, env)
            if left != right:
                raise TypeError_(f"'=' compares {left} with {right}", expr.pos)
            if left not in _EQUALITY_TYPES and not isinstance(left, RefType):
                raise TypeError_(f"'=' is not defined at type {left}", expr.pos)
            return BOOL
        if op in (BinOpKind.LT, BinOpKind.LE):
            self._expect(expr.left, env, INT, f"left operand of '{op.value}'")
            self._expect(expr.right, env, INT, f"right operand of '{op.value}'")
            return BOOL
        # Arithmetic: +, -, *, /
        self._expect(expr.left, env, INT, f"left operand of '{op.value}'")
        self._expect(expr.right, env, INT, f"right operand of '{op.value}'")
        return INT

    def _expect(self, expr: Expr, env: TypeEnv, expected: Type, context: str) -> None:
        actual = self._check(expr, env)
        if actual != expected:
            raise TypeError_(
                f"{context} has type {actual}, expected {expected}", expr.pos
            )


def check_expr(expr: Expr, env: Optional[TypeEnv] = None) -> Type:
    """Type check with no MIX hook (pure, standalone type checking)."""
    return TypeChecker().check(expr, env)
