"""The cross-run analysis store (``.repro-store/``).

The tower's caches already make re-analysis cheap *within* one process:
the :class:`~repro.smt.service.SolverService` answers repeated queries
from its tiered cache, and the MIXY driver's §4.3 block cache skips
whole blocks whose calling context is unchanged.  This module makes
that reuse survive the process: a small on-disk store that a later run
— or a long-lived ``repro serve`` daemon across restarts — loads to
start warm.

Layout of one store directory::

    .repro-store/
      meta.json          # {"schema": "repro-store", "version": 1}
      solver-cache.pkl   # SolverService.export_cache(), wire-encoded
      blocks.pkl         # block-result memos, keyed on content hashes

The **solver cache** section persists every exact-tier entry (verdict
plus sat-set / unsat-core membership) via the wire codec
(:func:`repro.smt.terms.to_wire_many`): terms hash by identity, so they
cross runs the same way they cross processes in the parallel engine.
Every entry is a definite verdict of its formula — UNKNOWN is never
cached — so importing a store can accelerate but never change an
answer.

The **block memo** sections record, per analyzed block, just enough to
replay the block's *observable effects* without re-executing it: which
watched slots concluded null (MIXY), the result type and stat deltas
(MIX), the warnings it raised, and how many fresh names it consumed
(so a skip leaves every later block's terms exactly where a cold run
would put them).  Keys are content hashes over the block's text, its
transitive callee cone, and its typed calling context
(:func:`repro.schedule.block_content_hash` widened with a context), so
editing one function invalidates exactly that function's dependency
cone and nothing else.

Durability contract, same as the PR-6 hint files: the store is an
accelerator, never a correctness input.  All writes go through
:func:`repro.fsio.atomic_write`; a missing, torn, corrupt, or
version-mismatched store degrades to a cold start with a note on
stderr, never a crash.
"""

from __future__ import annotations

import json
import os
import pickle
import sys
from typing import Optional

STORE_VERSION = 1
STORE_SCHEMA = "repro-store"

#: Exceptions that mean "this store file is unusable": anything pickle
#: or a shape mismatch can throw.  Broad on purpose — a bad store must
#: degrade to cold, never take the analysis down.
_LOAD_ERRORS = (
    OSError,
    EOFError,
    ValueError,
    TypeError,
    KeyError,
    AttributeError,
    IndexError,
    ImportError,
    pickle.UnpicklingError,
    json.JSONDecodeError,
)


class AnalysisStore:
    """One open store directory: loaded sections plus hit/record stats."""

    def __init__(self, root: str) -> None:
        self.root = root
        #: the persisted solver cache, if one loaded (a CacheDelta)
        self.solver_cache = None
        #: content-hash -> memo entry (plain dicts; see mixy_put/mix_put)
        self.mixy_blocks: dict[str, dict] = {}
        self.mix_blocks: dict[str, dict] = {}
        #: why (part of) the store was ignored, for stderr surfacing
        self.notes: list[str] = []
        #: set by put(); save() is a no-op on a clean store
        self.dirty = False
        self.stats = {
            "solver_entries_loaded": 0,
            "mixy_hits": 0,
            "mixy_misses": 0,
            "mixy_records": 0,
            "mix_hits": 0,
            "mix_misses": 0,
            "mix_records": 0,
        }

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def open(cls, root: str, quiet: bool = False) -> "AnalysisStore":
        """Open (or initialize) the store at ``root``.  Never raises on
        bad contents: each unusable section is skipped with a note."""
        store = cls(root)
        meta_path = os.path.join(root, "meta.json")
        if os.path.exists(meta_path):
            try:
                with open(meta_path, encoding="utf-8") as fh:
                    meta = json.load(fh)
                if (
                    not isinstance(meta, dict)
                    or meta.get("schema") != STORE_SCHEMA
                    or meta.get("version") != STORE_VERSION
                ):
                    store.notes.append(
                        f"store {root}: unsupported meta {meta!r}; starting cold"
                    )
                    store._surface(quiet)
                    return store
            except _LOAD_ERRORS as error:
                store.notes.append(
                    f"store {root}: unreadable meta.json ({error}); starting cold"
                )
                store._surface(quiet)
                return store
            store._load_solver_cache()
            store._load_blocks()
        elif os.path.exists(root) and not os.path.isdir(root):
            store.notes.append(f"store {root}: not a directory; starting cold")
        store._surface(quiet)
        return store

    def _load_solver_cache(self) -> None:
        path = os.path.join(self.root, "solver-cache.pkl")
        if not os.path.exists(path):
            return
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            if payload["version"] != STORE_VERSION:
                raise ValueError(f"version {payload['version']}")
            delta = payload["delta"]
            len(delta.entries)  # shape probe: unusable payloads fail here
            self.solver_cache = delta
        except _LOAD_ERRORS as error:
            self.notes.append(
                f"store {self.root}: ignoring corrupt solver-cache.pkl "
                f"({type(error).__name__}: {error}); solver cache starts cold"
            )

    def _load_blocks(self) -> None:
        path = os.path.join(self.root, "blocks.pkl")
        if not os.path.exists(path):
            return
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            if payload["version"] != STORE_VERSION:
                raise ValueError(f"version {payload['version']}")
            mixy, mix = dict(payload["mixy"]), dict(payload["mix"])
            self.mixy_blocks, self.mix_blocks = mixy, mix
        except _LOAD_ERRORS as error:
            self.notes.append(
                f"store {self.root}: ignoring corrupt blocks.pkl "
                f"({type(error).__name__}: {error}); block memos start cold"
            )

    def _surface(self, quiet: bool) -> None:
        if quiet:
            return
        for note in self.notes:
            print(f"note: {note}", file=sys.stderr)

    def load_into_service(self, service) -> int:
        """Import the persisted solver cache into ``service``; returns
        the number of entries imported (0 on a cold store)."""
        if self.solver_cache is None:
            return 0
        try:
            imported = service.import_cache(self.solver_cache)
        except _LOAD_ERRORS as error:
            self.notes.append(
                f"store {self.root}: solver cache failed to import "
                f"({type(error).__name__}: {error}); continuing cold"
            )
            print(f"note: {self.notes[-1]}", file=sys.stderr)
            return 0
        self.stats["solver_entries_loaded"] += imported
        return imported

    def save(self, service=None, force: bool = False) -> None:
        """Persist the store atomically: the block memos, plus
        ``service.export_cache()`` when a service is given.  Write
        failures are swallowed with a note — persisting is an
        optimization, never worth failing an analysis over."""
        if not (self.dirty or force or service is not None):
            return
        try:
            os.makedirs(self.root, exist_ok=True)
            from repro.fsio import atomic_write

            if service is not None:
                with atomic_write(
                    os.path.join(self.root, "solver-cache.pkl"), binary=True
                ) as fh:
                    pickle.dump(
                        {"version": STORE_VERSION, "delta": service.export_cache()},
                        fh,
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
            with atomic_write(
                os.path.join(self.root, "blocks.pkl"), binary=True
            ) as fh:
                pickle.dump(
                    {
                        "version": STORE_VERSION,
                        "mixy": self.mixy_blocks,
                        "mix": self.mix_blocks,
                    },
                    fh,
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            with atomic_write(os.path.join(self.root, "meta.json")) as fh:
                json.dump(
                    {"schema": STORE_SCHEMA, "version": STORE_VERSION}, fh
                )
                fh.write("\n")
            self.dirty = False
        except OSError as error:
            note = f"store {self.root}: could not persist ({error})"
            self.notes.append(note)
            print(f"note: {note}", file=sys.stderr)

    # -- block memos ---------------------------------------------------------

    def mixy_get(self, key: str) -> Optional[dict]:
        entry = self.mixy_blocks.get(key)
        self.stats["mixy_hits" if entry is not None else "mixy_misses"] += 1
        return entry

    def mixy_put(self, key: str, entry: dict) -> None:
        self.mixy_blocks[key] = entry
        self.stats["mixy_records"] += 1
        self.dirty = True

    def mix_get(self, key: str) -> Optional[dict]:
        entry = self.mix_blocks.get(key)
        self.stats["mix_hits" if entry is not None else "mix_misses"] += 1
        return entry

    def mix_put(self, key: str, entry: dict) -> None:
        self.mix_blocks[key] = entry
        self.stats["mix_records"] += 1
        self.dirty = True
