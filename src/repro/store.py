"""The cross-run analysis store (``.repro-store/``).

The tower's caches already make re-analysis cheap *within* one process:
the :class:`~repro.smt.service.SolverService` answers repeated queries
from its tiered cache, and the MIXY driver's §4.3 block cache skips
whole blocks whose calling context is unchanged.  This module makes
that reuse survive the process: a small on-disk store that a later run
— or a long-lived ``repro serve`` daemon across restarts — loads to
start warm.

Layout of one store directory (format version 2)::

    .repro-store/
      meta.json            # manifest: schema, generation, per-section CRCs
      solver-cache.0.pkl   # section files, one per (section, slot)
      solver-cache.1.pkl
      blocks.0.pkl
      blocks.1.pkl

The **solver cache** section persists every exact-tier entry (verdict
plus sat-set / unsat-core membership) via the wire codec
(:func:`repro.smt.terms.to_wire_many`): terms hash by identity, so they
cross runs the same way they cross processes in the parallel engine.
Every entry is a definite verdict of its formula — UNKNOWN is never
cached — so importing a store can accelerate but never change an
answer.

The **block memo** sections record, per analyzed block, just enough to
replay the block's *observable effects* without re-executing it: which
watched slots concluded null (MIXY), the result type and stat deltas
(MIX), the warnings it raised, and how many fresh names it consumed
(so a skip leaves every later block's terms exactly where a cold run
would put them).  Keys are content hashes over the block's text, its
transitive callee cone, and its typed calling context
(:func:`repro.schedule.block_content_hash` widened with a context), so
editing one function invalidates exactly that function's dependency
cone and nothing else.

**Integrity: per-section checksums, two generations.**  Saves alternate
between two file *slots* per section: generation ``n`` writes its
sections to slot ``n % 2`` and then atomically replaces ``meta.json``
with a manifest recording both the new generation and the previous one,
each with per-section CRC32/size records
(:func:`repro.fsio.checksummed_write`).  A ``kill -9`` at any
instruction therefore leaves at least one fully consistent generation:
the manifest flip is atomic, and the generation a manifest calls newest
is never the one being overwritten.  On load each section is verified
against its CRC; a damaged current section **rolls back** to the
previous generation's copy (counted in ``sections_recovered``), and
only when both generations fail does that section start cold — with a
stderr note either way.

Durability contract, same as the PR-6 hint files: the store is an
accelerator, never a correctness input.  All writes go through
:func:`repro.fsio.atomic_write`; a missing, torn, corrupt, or
version-mismatched store degrades to a cold start with a note on
stderr, never a crash.
"""

from __future__ import annotations

import json
import os
import pickle
import sys
from typing import Optional

from repro.fsio import atomic_write, checksummed_write, read_checksummed

STORE_VERSION = 2
STORE_SCHEMA = "repro-store"

#: The persisted sections, in save order.
SECTIONS = ("solver-cache", "blocks")

#: Exceptions that mean "this store file is unusable": anything pickle
#: or a shape mismatch can throw.  Broad on purpose — a bad store must
#: degrade to cold, never take the analysis down.
_LOAD_ERRORS = (
    OSError,
    EOFError,
    ValueError,
    TypeError,
    KeyError,
    AttributeError,
    IndexError,
    ImportError,
    pickle.UnpicklingError,
    json.JSONDecodeError,
)


class AnalysisStore:
    """One open store directory: loaded sections plus hit/record stats."""

    def __init__(self, root: str) -> None:
        self.root = root
        #: the persisted solver cache, if one loaded (a CacheDelta)
        self.solver_cache = None
        #: content-hash -> memo entry (plain dicts; see mixy_put/mix_put)
        self.mixy_blocks: dict[str, dict] = {}
        self.mix_blocks: dict[str, dict] = {}
        #: why (part of) the store was ignored, for stderr surfacing
        self.notes: list[str] = []
        #: set by put(); save() is a no-op on a clean store
        self.dirty = False
        #: last persisted generation (0 = never saved); save() writes
        #: generation+1 into slot (generation+1) % 2.
        self.generation = 0
        #: the manifest entry save() will record as "previous".
        self._current_manifest: Optional[dict] = None
        self.stats = {
            "solver_entries_loaded": 0,
            "mixy_hits": 0,
            "mixy_misses": 0,
            "mixy_records": 0,
            "mix_hits": 0,
            "mix_misses": 0,
            "mix_records": 0,
            #: sections whose current generation failed its checksum but
            #: whose previous generation verified (rollback happened)
            "sections_recovered": 0,
            #: sections unusable in every recorded generation
            "sections_lost": 0,
        }

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def open(cls, root: str, quiet: bool = False) -> "AnalysisStore":
        """Open (or initialize) the store at ``root``.  Never raises on
        bad contents: each unusable section is skipped with a note."""
        store = cls(root)
        meta_path = os.path.join(root, "meta.json")
        if os.path.exists(meta_path):
            manifest = store._load_manifest(meta_path)
            if manifest is not None:
                store.generation = manifest.get("generation", 0)
                store._current_manifest = manifest
                store._load_sections(manifest)
        elif os.path.exists(root) and not os.path.isdir(root):
            store.notes.append(f"store {root}: not a directory; starting cold")
        store._surface(quiet)
        return store

    def _load_manifest(self, meta_path: str) -> Optional[dict]:
        try:
            with open(meta_path, encoding="utf-8") as fh:
                meta = json.load(fh)
            if (
                not isinstance(meta, dict)
                or meta.get("schema") != STORE_SCHEMA
                or meta.get("version") != STORE_VERSION
                or not isinstance(meta.get("generation"), int)
                or not isinstance(meta.get("sections"), dict)
            ):
                self.notes.append(
                    f"store {self.root}: unsupported meta {meta!r}; "
                    "starting cold"
                )
                return None
            return meta
        except _LOAD_ERRORS as error:
            self.notes.append(
                f"store {self.root}: unreadable meta.json ({error}); "
                "starting cold"
            )
            return None

    def _section_bytes(self, manifest: dict, name: str) -> Optional[bytes]:
        """Read + verify one section, rolling back to the previous
        generation on checksum failure.  Returns the payload bytes or
        None (cold), recording notes and integrity counters."""
        candidates = [("current", manifest)]
        previous = manifest.get("previous")
        if isinstance(previous, dict):
            candidates.append(("previous", previous))
        found = False
        for label, gen in candidates:
            sections = gen.get("sections")
            record = sections.get(name) if isinstance(sections, dict) else None
            if not isinstance(record, dict) or "file" not in record:
                continue
            found = True
            data = read_checksummed(
                os.path.join(self.root, str(record["file"])), record
            )
            if data is None:
                self.notes.append(
                    f"store {self.root}: {name} generation "
                    f"{gen.get('generation')} failed its checksum"
                )
                continue
            if label == "previous":
                self.stats["sections_recovered"] += 1
                self.notes.append(
                    f"store {self.root}: {name} rolled back to last-known-"
                    f"good generation {gen.get('generation')}"
                )
            return data
        if found:
            self.stats["sections_lost"] += 1
            self.notes.append(
                f"store {self.root}: {name} corrupt in every recorded "
                "generation; section starts cold"
            )
        return None

    def _load_sections(self, manifest: dict) -> None:
        data = self._section_bytes(manifest, "solver-cache")
        if data is not None:
            try:
                payload = pickle.loads(data)
                if payload["version"] != STORE_VERSION:
                    raise ValueError(f"version {payload['version']}")
                delta = payload["delta"]
                len(delta.entries)  # shape probe: unusable payloads fail here
                self.solver_cache = delta
            except _LOAD_ERRORS as error:
                self.notes.append(
                    f"store {self.root}: ignoring corrupt solver-cache "
                    f"({type(error).__name__}: {error}); solver cache "
                    "starts cold"
                )
        data = self._section_bytes(manifest, "blocks")
        if data is not None:
            try:
                payload = pickle.loads(data)
                if payload["version"] != STORE_VERSION:
                    raise ValueError(f"version {payload['version']}")
                mixy, mix = dict(payload["mixy"]), dict(payload["mix"])
                self.mixy_blocks, self.mix_blocks = mixy, mix
            except _LOAD_ERRORS as error:
                self.notes.append(
                    f"store {self.root}: ignoring corrupt blocks section "
                    f"({type(error).__name__}: {error}); block memos "
                    "start cold"
                )

    def _surface(self, quiet: bool) -> None:
        if quiet:
            return
        for note in self.notes:
            print(f"note: {note}", file=sys.stderr)

    def load_into_service(self, service) -> int:
        """Import the persisted solver cache into ``service``; returns
        the number of entries imported (0 on a cold store)."""
        if self.solver_cache is None:
            return 0
        try:
            imported = service.import_cache(self.solver_cache)
        except _LOAD_ERRORS as error:
            self.notes.append(
                f"store {self.root}: solver cache failed to import "
                f"({type(error).__name__}: {error}); continuing cold"
            )
            print(f"note: {self.notes[-1]}", file=sys.stderr)
            return 0
        self.stats["solver_entries_loaded"] += imported
        return imported

    def save(self, service=None, force: bool = False) -> None:
        """Persist the store as a new generation: sections land in the
        alternate file slot (checksummed, atomically written), then the
        manifest flips to record the new generation with the old one as
        its last-known-good fallback.  Write failures are swallowed with
        a note — persisting is an optimization, never worth failing an
        analysis over."""
        if not (self.dirty or force or service is not None):
            return
        generation = self.generation + 1
        slot = generation % 2
        try:
            os.makedirs(self.root, exist_ok=True)
            sections: dict[str, dict] = {}
            delta = self.solver_cache
            if service is not None:
                delta = service.export_cache()
            if delta is not None:
                name = f"solver-cache.{slot}.pkl"
                record = checksummed_write(
                    os.path.join(self.root, name),
                    pickle.dumps(
                        {"version": STORE_VERSION, "delta": delta},
                        protocol=pickle.HIGHEST_PROTOCOL,
                    ),
                )
                sections["solver-cache"] = {"file": name, **record}
            name = f"blocks.{slot}.pkl"
            record = checksummed_write(
                os.path.join(self.root, name),
                pickle.dumps(
                    {
                        "version": STORE_VERSION,
                        "mixy": self.mixy_blocks,
                        "mix": self.mix_blocks,
                    },
                    protocol=pickle.HIGHEST_PROTOCOL,
                ),
            )
            sections["blocks"] = {"file": name, **record}
            manifest = {
                "schema": STORE_SCHEMA,
                "version": STORE_VERSION,
                "generation": generation,
                "sections": sections,
                "previous": (
                    {
                        key: self._current_manifest[key]
                        for key in ("generation", "sections")
                    }
                    if self._current_manifest is not None
                    else None
                ),
            }
            with atomic_write(os.path.join(self.root, "meta.json")) as fh:
                json.dump(manifest, fh, sort_keys=True)
                fh.write("\n")
            self.generation = generation
            self._current_manifest = manifest
            self.dirty = False
        except OSError as error:
            note = f"store {self.root}: could not persist ({error})"
            self.notes.append(note)
            print(f"note: {note}", file=sys.stderr)

    def merge_worker(
        self,
        mixy_new: dict,
        mix_new: dict,
        stats_delta: Optional[dict] = None,
    ) -> bool:
        """Fold one request worker's new block memos and stat deltas into
        this (parent-side) store.  Returns True iff any memo was genuinely
        new to the parent — the signal ``repro serve`` uses to decide
        whether pooled workers' snapshots just went stale (an epoch bump);
        a worker re-deriving memos the parent already holds changes
        nothing another worker could observe."""
        fresh = any(key not in self.mixy_blocks for key in mixy_new) or any(
            key not in self.mix_blocks for key in mix_new
        )
        self.mixy_blocks.update(mixy_new)
        self.mix_blocks.update(mix_new)
        if mixy_new or mix_new:
            self.dirty = True
        for key, delta_value in (stats_delta or {}).items():
            self.stats[key] = self.stats.get(key, 0) + delta_value
        return fresh

    # -- block memos ---------------------------------------------------------

    def mixy_get(self, key: str) -> Optional[dict]:
        entry = self.mixy_blocks.get(key)
        self.stats["mixy_hits" if entry is not None else "mixy_misses"] += 1
        return entry

    def mixy_put(self, key: str, entry: dict) -> None:
        self.mixy_blocks[key] = entry
        self.stats["mixy_records"] += 1
        self.dirty = True

    def mix_get(self, key: str) -> Optional[dict]:
        entry = self.mix_blocks.get(key)
        self.stats["mix_hits" if entry is not None else "mix_misses"] += 1
        return entry

    def mix_put(self, key: str, entry: dict) -> None:
        self.mix_blocks[key] = entry
        self.stats["mix_records"] += 1
        self.dirty = True
