"""Tseitin CNF conversion from core-fragment terms to SAT clauses.

The input must already be in the solver core fragment produced by
:mod:`repro.smt.preprocess`: boolean structure over boolean variables and
linear integer comparisons.  Each distinct canonical :class:`LinAtom`
(and each boolean variable) is mapped to one SAT variable; the mapping is
exposed so the lazy theory loop can read theory literals back out of SAT
models and push blocking clauses back in.
"""

from __future__ import annotations

from typing import Union

from repro.smt.linear import LinAtom, atom_from_comparison
from repro.smt.sat import SatSolver
from repro.smt.terms import BOOL, Kind, SortError, Term

AtomKey = Union[LinAtom, Term]  # LinAtom or a boolean variable term


class CnfBuilder:
    """Encodes assertions into a :class:`SatSolver`, tracking atom maps."""

    def __init__(self, sat: SatSolver) -> None:
        self.sat = sat
        self.atom_to_var: dict[AtomKey, int] = {}
        self.var_to_atom: dict[int, AtomKey] = {}
        self._term_lits: dict[Term, int] = {}
        self._true_lit: int | None = None

    # -- literals ------------------------------------------------------------

    def true_literal(self) -> int:
        if self._true_lit is None:
            v = self.sat.new_var()
            self.sat.add_clause([v])
            self._true_lit = v
        return self._true_lit

    def atom_literal(self, key: AtomKey) -> int:
        v = self.atom_to_var.get(key)
        if v is None:
            v = self.sat.new_var()
            self.atom_to_var[key] = v
            self.var_to_atom[v] = key
        return v

    # -- encoding ------------------------------------------------------------

    def add_assertion(self, term: Term) -> None:
        self.sat.add_clause([self.encode(term)])

    def encode(self, term: Term) -> int:
        """Return a literal equisatisfiably representing ``term``."""
        if term.sort != BOOL:
            raise SortError(f"cannot encode non-boolean term {term}")
        cached = self._term_lits.get(term)
        if cached is not None:
            return cached
        lit = self._encode_uncached(term)
        self._term_lits[term] = lit
        return lit

    def _encode_uncached(self, term: Term) -> int:
        kind = term.kind
        if kind is Kind.CONST_BOOL:
            return self.true_literal() if term.payload else -self.true_literal()
        if kind is Kind.VAR:
            return self.atom_literal(term)
        if kind is Kind.NOT:
            return -self.encode(term.args[0])
        if kind in (Kind.LE, Kind.LT):
            atom = atom_from_comparison(kind, term.args[0], term.args[1])
            if atom.is_trivially_true:
                return self.true_literal()
            if atom.is_trivially_false:
                return -self.true_literal()
            return self.atom_literal(atom)
        if kind is Kind.AND:
            return self._encode_and([self.encode(a) for a in term.args])
        if kind is Kind.OR:
            return -self._encode_and([-self.encode(a) for a in term.args])
        if kind is Kind.IMPLIES:
            a, b = (self.encode(x) for x in term.args)
            return -self._encode_and([a, -b])
        if kind is Kind.IFF:
            return self._encode_iff(self.encode(term.args[0]), self.encode(term.args[1]))
        if kind is Kind.ITE:
            c, t, e = (self.encode(x) for x in term.args)
            return self._encode_ite(c, t, e)
        raise SortError(
            f"term kind {kind.value} survived preprocessing; cannot CNF-encode {term}"
        )

    def _encode_and(self, lits: list[int]) -> int:
        v = self.sat.new_var()
        for lit in lits:
            self.sat.add_clause([-v, lit])
        self.sat.add_clause([v] + [-lit for lit in lits])
        return v

    def _encode_iff(self, a: int, b: int) -> int:
        v = self.sat.new_var()
        self.sat.add_clause([-v, -a, b])
        self.sat.add_clause([-v, a, -b])
        self.sat.add_clause([v, a, b])
        self.sat.add_clause([v, -a, -b])
        return v

    def _encode_ite(self, c: int, t: int, e: int) -> int:
        v = self.sat.new_var()
        self.sat.add_clause([-v, -c, t])
        self.sat.add_clause([-v, c, e])
        self.sat.add_clause([v, -c, -t])
        self.sat.add_clause([v, c, -e])
        return v
