"""The top-level SMT solver: lazy DPLL(T) over the CDCL core.

``check()`` runs the classic lazy loop: the SAT engine proposes a boolean
model; the conjunction of linear-arithmetic literals it asserts is checked
for integer feasibility; on theory conflict a (deletion-minimized)
blocking clause is learned and the search resumes.  Uninterpreted
functions and arrays were already reduced to arithmetic by Ackermann
expansion in preprocessing, so a single theory engine suffices.

This is the reproduction's substitute for STP (the solver used by the
paper's Otter symbolic executor).  The interface the mix rules need:

- :meth:`Solver.check` / :meth:`Solver.model`
- :func:`is_satisfiable` -- path-condition feasibility,
- :func:`is_valid` -- the ``exhaustive(g1, ..., gn)`` tautology check of
  rule TSymBlock (validity of the disjunction of path conditions).

The one-shot helpers route through the process-wide
:class:`repro.smt.service.SolverService`, which memoizes verdicts in a
normalized-key query cache (see that module) before falling back to a
:class:`Solver`.

**Incrementality.**  :meth:`Solver.push` / :meth:`Solver.pop` are genuine
assertion scopes: the preprocessor, the Tseitin builder, the CDCL solver,
and everything the CDCL core has learned persist across ``check()``
calls.  Each scope owns a *selector* literal; scoped assertions are
encoded as ``selector -> goal`` clauses and ``check()`` solves under the
assumption that every live selector holds.  ``pop()`` permanently
falsifies the scope's selector instead of rebuilding the solver, so

- Tseitin definitions of shared subformulas are encoded once,
- theory blocking clauses (valid lemmas about integer-infeasible atom
  conjunctions) survive and keep pruning later checks, and
- CDCL-learned clauses remain — they are implied by the clause database
  regardless of which selectors are active.

The theory check is restricted to atoms appearing in *live* assertions
(plus all definitional side conditions), so atoms from popped scopes do
not burden the integer engine.  ``push``/``pop``/``check`` sequences are
guaranteed to produce the same verdicts as a fresh solver over the same
live assertions (differentially tested in
``tests/test_smt_incremental.py``).
"""

from __future__ import annotations

import time
from bisect import bisect_right
from enum import Enum, unique
from typing import Callable, Iterable, Optional

from repro.smt.cnf import CnfBuilder
from repro.smt.intsolve import IntBudgetExceeded, check_integer
from repro.smt.linear import LinAtom, atom_from_comparison
from repro.smt.preprocess import Preprocessor
from repro.smt.sat import SatCancelled, SatSolver, SatTimeout
from repro.smt.terms import (
    BOOL,
    INT,
    FuncDecl,
    Kind,
    SortError,
    Term,
)


class SolverError(Exception):
    """The solver could not decide the query (budget or fragment limits)."""


@unique
class SatResult(Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


class Model:
    """A satisfying assignment, evaluable on terms of the checked formula."""

    def __init__(
        self,
        bool_values: dict[Term, bool],
        int_values: dict[Term, int],
        app_instances: dict[FuncDecl, list[tuple[tuple[Term, ...], Term]]],
        select_decls: dict[Term, FuncDecl],
    ) -> None:
        self._bools = bool_values
        self._ints = int_values
        self._apps = app_instances
        self._select_decls = select_decls
        # The model is immutable, so evaluation memoizes per term: the
        # paranoid self-check and the model-eval cache tier walk large
        # conjunct sets whose subterms are heavily shared.
        self._memo: dict[Term, object] = {}

    def satisfies(self, terms) -> bool:
        """True iff every term in ``terms`` evaluates to ``True`` here.

        Models are total interpretations (unassigned variables default to
        0 / false), so this is a complete check: it is the primitive both
        the model-eval cache tier and the service's paranoid self-check
        are built on.
        """
        try:
            return all(self.eval(term) is True for term in terms)
        except SortError:
            return False

    def eval(self, term: Term) -> object:
        """Evaluate ``term`` under this model (booleans and integers)."""
        kind = term.kind
        if kind in (Kind.CONST_BOOL, Kind.CONST_INT):
            return term.payload
        if kind is Kind.VAR:
            if term.sort == BOOL:
                return self._bools.get(term, False)
            if term.sort == INT:
                return self._ints.get(term, 0)
            raise SortError(f"cannot evaluate variable of sort {term.sort}")
        cached = self._memo.get(term)
        if cached is not None:
            return cached
        value = self._eval_composite(term, kind)
        self._memo[term] = value
        return value

    def _eval_composite(self, term: Term, kind: Kind) -> object:
        if kind is Kind.NOT:
            return not self.eval(term.args[0])
        if kind is Kind.AND:
            return all(self.eval(a) for a in term.args)
        if kind is Kind.OR:
            return any(self.eval(a) for a in term.args)
        if kind is Kind.IMPLIES:
            return (not self.eval(term.args[0])) or self.eval(term.args[1])
        if kind is Kind.IFF:
            return self.eval(term.args[0]) == self.eval(term.args[1])
        if kind is Kind.ITE:
            return self.eval(term.args[1] if self.eval(term.args[0]) else term.args[2])
        if kind is Kind.EQ:
            return self._eval_eq(term.args[0], term.args[1])
        if kind is Kind.DISTINCT:
            values = [self._eval_value(a) for a in term.args]
            return len(set(values)) == len(values)
        if kind is Kind.LE:
            return self.eval(term.args[0]) <= self.eval(term.args[1])  # type: ignore[operator]
        if kind is Kind.LT:
            return self.eval(term.args[0]) < self.eval(term.args[1])  # type: ignore[operator]
        if kind is Kind.ADD:
            return sum(self.eval(a) for a in term.args)  # type: ignore[misc]
        if kind is Kind.MUL:
            return self.eval(term.args[0]) * self.eval(term.args[1])  # type: ignore[operator]
        if kind is Kind.NEG:
            return -self.eval(term.args[0])  # type: ignore[operator]
        if kind is Kind.SELECT:
            return self._eval_select(term.args[0], term.args[1])
        if kind is Kind.APPLY:
            return self._eval_apply(term.payload, term.args)  # type: ignore[arg-type]
        raise SortError(f"cannot evaluate term {term}")

    def _eval_eq(self, left: Term, right: Term) -> bool:
        if left.sort.is_array:
            raise SortError("cannot evaluate array equality")
        return self._eval_value(left) == self._eval_value(right)

    def _eval_value(self, term: Term) -> object:
        return self.eval(term)

    def _eval_select(self, array: Term, index: Term) -> object:
        index_value = self.eval(index)
        while array.kind is Kind.STORE:
            base, written_index, written_value = array.args
            if self.eval(written_index) == index_value:
                return self.eval(written_value)
            array = base
        if array.kind is Kind.ITE:
            cond = self.eval(array.args[0])
            chosen = array.args[1] if cond else array.args[2]
            return self._eval_select(chosen, index)
        if array.kind is not Kind.VAR:
            raise SortError(f"cannot evaluate select from {array}")
        decl = self._select_decls.get(array)
        if decl is None:
            return 0 if array.sort.elem_sort == INT else False
        return self._lookup_app(decl, (index_value,))

    def _eval_apply(self, decl: FuncDecl, args: tuple[Term, ...]) -> object:
        return self._lookup_app(decl, tuple(self.eval(a) for a in args))

    def _lookup_app(self, decl: FuncDecl, arg_values: tuple[object, ...]) -> object:
        for instance_args, result_var in self._apps.get(decl, []):
            if tuple(self.eval(a) for a in instance_args) == arg_values:
                return self.eval(result_var)
        return 0 if decl.ret_sort == INT else False

    def as_dict(self) -> dict[str, object]:
        """A name -> value snapshot of all assigned variables."""
        out: dict[str, object] = {}
        for term, value in self._bools.items():
            out[str(term.payload)] = value
        for term, value in self._ints.items():
            out[str(term.payload)] = value
        return out


class Solver:
    """An SMT solver instance with *incremental* assertion-stack semantics.

    One :class:`Preprocessor` / :class:`CnfBuilder` / :class:`SatSolver`
    triple lives for the whole solver lifetime.  Assertions are encoded
    exactly once; ``check()`` only encodes the delta since the previous
    call and then solves under the live scope selectors (see the module
    docstring for the scheme).
    """

    #: Cap on theory-conflict iterations of the lazy loop per ``check``.
    max_theory_rounds = 10_000

    def __init__(
        self,
        int_budget: int = 4000,
        deadline: Optional[float] = None,
        flip_phase: bool = False,
        cancel: Optional[Callable[[], bool]] = None,
    ) -> None:
        self._assertions: list[Term] = []
        self._scopes: list[int] = []
        self._model: Optional[Model] = None
        self._int_budget = int_budget
        #: Portfolio racing variant: invert the CDCL core's initial
        #: branching phase (same verdicts, different search order).
        self._flip_phase = flip_phase
        #: Cooperative poison flag (portfolio race losers): polled in
        #: the lazy loop and inside the CDCL search; reading true
        #: raises :class:`SatCancelled`.
        self._cancel = cancel
        #: Absolute :func:`time.monotonic` instant checks must stop at
        #: (the resource governor's per-query deadline); None = unbounded.
        self.deadline = deadline
        #: True iff the most recent ``check()`` returned UNKNOWN because
        #: it hit ``deadline`` (as opposed to a budget/round limit).
        self.timed_out = False
        self.stats = {
            "checks": 0,
            "theory_rounds": 0,
            "sat_conflicts": 0,
            "sat_restarts": 0,
        }
        # Persistent engine state (created lazily on first check).
        self._pre: Optional[Preprocessor] = None
        self._sat: Optional[SatSolver] = None
        self._cnf: Optional[CnfBuilder] = None
        #: How many of ``_assertions`` have been encoded into the CNF.
        self._enc_index = 0
        #: Selector literal per scope (parallel to ``_scopes``); allocated
        #: lazily when the scope's first assertion is encoded.
        self._scope_sels: list[Optional[int]] = []
        #: Per encoded assertion: the SAT vars of its theory atoms.
        self._goal_atoms: list[frozenset[int]] = []
        #: SAT vars of atoms in definitional side conditions (kept live
        #: forever — Ackermann/ite definitions may span scopes).
        self._side_atoms: set[int] = set()

    # -- assertion stack -------------------------------------------------------

    def add(self, *assertions: Term) -> None:
        for a in assertions:
            if a.sort != BOOL:
                raise SortError(f"assertions must be boolean, got {a.sort}")
            self._assertions.append(a)

    def push(self) -> None:
        self._scopes.append(len(self._assertions))
        self._scope_sels.append(None)

    def pop(self) -> None:
        if not self._scopes:
            raise SolverError("pop without matching push")
        del self._assertions[self._scopes.pop() :]
        sel = self._scope_sels.pop()
        if sel is not None and self._sat is not None:
            # Permanently retract the scope: its selector can never hold
            # again, so its guarded clauses are vacuously satisfied.
            self._sat.add_clause([-sel])
        self._enc_index = min(self._enc_index, len(self._assertions))
        del self._goal_atoms[len(self._assertions) :]

    @property
    def assertions(self) -> tuple[Term, ...]:
        return tuple(self._assertions)

    # -- encoding --------------------------------------------------------------

    def _engine(self) -> tuple[Preprocessor, SatSolver, CnfBuilder]:
        if self._sat is None:
            self._pre = Preprocessor()
            self._sat = SatSolver(flip_phase=self._flip_phase)
            self._cnf = CnfBuilder(self._sat)
        assert self._pre is not None and self._cnf is not None
        return self._pre, self._sat, self._cnf

    def _selector_for_scope(self, scope: int) -> int:
        """The (lazily allocated) selector literal of 1-based ``scope``."""
        sel = self._scope_sels[scope - 1]
        if sel is None:
            sel = self._engine()[1].new_var()
            self._scope_sels[scope - 1] = sel
        return sel

    def _collect_atom_vars(self, term: Term, cnf: CnfBuilder) -> set[int]:
        """SAT vars of the theory atoms syntactically inside ``term``."""
        out: set[int] = set()
        stack = [term]
        seen: set[int] = set()
        while stack:
            t = stack.pop()
            if id(t) in seen:
                continue
            seen.add(id(t))
            if t.kind in (Kind.LE, Kind.LT):
                atom = atom_from_comparison(t.kind, t.args[0], t.args[1])
                v = cnf.atom_to_var.get(atom)
                if v is not None:
                    out.add(v)
                continue
            stack.extend(t.args)
        return out

    def _encode_pending(self) -> None:
        """Encode assertions added since the last ``check()``."""
        pre, sat, cnf = self._engine()
        for index in range(self._enc_index, len(self._assertions)):
            processed = pre.process(self._assertions[index])
            lit = cnf.encode(processed.goal)
            scope = bisect_right(self._scopes, index)
            if scope == 0:
                sat.add_clause([lit])  # base scope: never retracted
            else:
                sat.add_clause([-self._selector_for_scope(scope), lit])
            self._goal_atoms.append(
                frozenset(self._collect_atom_vars(processed.goal, cnf))
            )
            for side in processed.side_conditions:
                cnf.add_assertion(side)  # definitional: sound unconditionally
                self._side_atoms |= self._collect_atom_vars(side, cnf)
        self._enc_index = len(self._assertions)

    # -- solving ---------------------------------------------------------------

    def check(self, *extra: Term) -> SatResult:
        """Decide satisfiability of the asserted formulas plus ``extra``.

        With a ``deadline`` set, the lazy loop (and the CDCL search
        inside it) polls the clock; hitting the deadline yields
        ``UNKNOWN`` with ``timed_out`` set — never a wrong verdict.
        """
        self.stats["checks"] += 1
        self._model = None
        self.timed_out = False
        pre, sat, cnf = self._engine()
        self._encode_pending()

        relevant: set[int] = set(self._side_atoms)
        for atoms in self._goal_atoms:
            relevant |= atoms

        assumptions: list[int] = [s for s in self._scope_sels if s is not None]
        temp_sel: Optional[int] = None
        if extra:
            temp_sel = sat.new_var()
            assumptions.append(temp_sel)
            for formula in extra:
                processed = pre.process(formula)
                lit = cnf.encode(processed.goal)
                sat.add_clause([-temp_sel, lit])
                relevant |= self._collect_atom_vars(processed.goal, cnf)
                for side in processed.side_conditions:
                    cnf.add_assertion(side)
                    atom_vars = self._collect_atom_vars(side, cnf)
                    self._side_atoms |= atom_vars
                    relevant |= atom_vars

        try:
            for _ in range(self.max_theory_rounds):
                if self.deadline is not None and time.monotonic() >= self.deadline:
                    self.timed_out = True
                    return SatResult.UNKNOWN
                if self._cancel is not None and self._cancel():
                    raise SatCancelled
                try:
                    bool_model = sat.solve(
                        assumptions, deadline=self.deadline, cancel=self._cancel
                    )
                except SatTimeout:
                    self.timed_out = True
                    return SatResult.UNKNOWN
                self.stats["sat_conflicts"] = sat.num_conflicts
                self.stats["sat_restarts"] = sat.num_restarts
                if bool_model is None:
                    return SatResult.UNSAT
                asserted: list[tuple[int, LinAtom]] = []
                for sat_var in relevant:
                    atom = cnf.var_to_atom.get(sat_var)
                    if not isinstance(atom, LinAtom):
                        continue
                    value = bool_model[sat_var]
                    literal = sat_var if value else -sat_var
                    asserted.append((literal, atom if value else atom.negate()))
                try:
                    result = check_integer(
                        [a for _, a in asserted], budget=self._int_budget
                    )
                except IntBudgetExceeded:
                    return SatResult.UNKNOWN
                if result.feasible:
                    self._model = self._build_model(cnf, pre, bool_model, result.model)
                    return SatResult.SAT
                self.stats["theory_rounds"] += 1
                core = self._minimize_core(asserted)
                # Theory lemma: this atom conjunction has no integer model.
                # Globally valid, so it survives pops and future checks.
                sat.add_clause([-lit for lit, _ in core])
            return SatResult.UNKNOWN
        finally:
            if temp_sel is not None:
                sat.add_clause([-temp_sel])

    def _minimize_core(
        self, asserted: list[tuple[int, LinAtom]]
    ) -> list[tuple[int, LinAtom]]:
        """Deletion-based minimization of an infeasible atom set."""
        core = list(asserted)
        if len(core) > 40:
            return core  # minimization cost would dominate; block as-is
        if self.deadline is not None and time.monotonic() >= self.deadline:
            return core  # out of time — block as-is rather than overshoot
        i = 0
        while i < len(core):
            if self._cancel is not None and self._cancel():
                raise SatCancelled  # race lost mid-minimization: abort now
            candidate = core[:i] + core[i + 1 :]
            try:
                result = check_integer(
                    [a for _, a in candidate], budget=self._int_budget
                )
            except IntBudgetExceeded:
                i += 1
                continue
            if result.feasible:
                i += 1
            else:
                core = candidate
        return core

    def _build_model(
        self,
        cnf: CnfBuilder,
        pre: Preprocessor,
        bool_model: dict[int, bool],
        int_model: dict[object, int],
    ) -> Model:
        bools: dict[Term, bool] = {}
        for atom, sat_var in cnf.atom_to_var.items():
            if isinstance(atom, Term):
                bools[atom] = bool_model[sat_var]
        ints: dict[Term, int] = {}
        for key, value in int_model.items():
            if isinstance(key, Term):
                ints[key] = value
        return Model(bools, ints, dict(pre._applications), dict(pre._select_decls))

    def model(self) -> Model:
        if self._model is None:
            raise SolverError("model() is only available after a SAT check")
        return self._model


# ---------------------------------------------------------------------------
# One-shot helpers
# ---------------------------------------------------------------------------


def is_satisfiable(*formulas: Term, int_budget: int = 4000) -> bool:
    """True iff the conjunction of ``formulas`` has a model.

    Routed through the process-wide :class:`repro.smt.service.SolverService`
    (query cache + shared incremental solver).  Raises :class:`SolverError`
    if the solver cannot decide the query.
    """
    from repro.smt.service import get_service

    return get_service().is_satisfiable(*formulas, int_budget=int_budget)


def is_valid(formula: Term, assuming: Iterable[Term] = (), int_budget: int = 4000) -> bool:
    """True iff ``formula`` holds in every model of ``assuming``.

    This implements the paper's ``exhaustive(g1, ..., gn)`` check: the
    disjunction of path conditions is a tautology iff its negation is
    unsatisfiable.  Routed through the process-wide solver service.
    """
    from repro.smt.service import get_service

    return get_service().is_valid(formula, assuming=assuming, int_budget=int_budget)
