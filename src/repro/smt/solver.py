"""The top-level SMT solver: lazy DPLL(T) over the CDCL core.

``check()`` runs the classic lazy loop: the SAT engine proposes a boolean
model; the conjunction of linear-arithmetic literals it asserts is checked
for integer feasibility; on theory conflict a (deletion-minimized)
blocking clause is learned and the search resumes.  Uninterpreted
functions and arrays were already reduced to arithmetic by Ackermann
expansion in preprocessing, so a single theory engine suffices.

This is the reproduction's substitute for STP (the solver used by the
paper's Otter symbolic executor).  The interface the mix rules need:

- :meth:`Solver.check` / :meth:`Solver.model`
- :func:`is_satisfiable` -- path-condition feasibility,
- :func:`is_valid` -- the ``exhaustive(g1, ..., gn)`` tautology check of
  rule TSymBlock (validity of the disjunction of path conditions).
"""

from __future__ import annotations

import itertools
from enum import Enum, unique
from typing import Iterable, Optional

from repro.smt.cnf import CnfBuilder
from repro.smt.intsolve import IntBudgetExceeded, check_integer
from repro.smt.linear import LinAtom
from repro.smt.preprocess import Preprocessor
from repro.smt.sat import SatSolver
from repro.smt.terms import (
    BOOL,
    INT,
    FuncDecl,
    Kind,
    SortError,
    Term,
    not_,
)


class SolverError(Exception):
    """The solver could not decide the query (budget or fragment limits)."""


@unique
class SatResult(Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


class Model:
    """A satisfying assignment, evaluable on terms of the checked formula."""

    def __init__(
        self,
        bool_values: dict[Term, bool],
        int_values: dict[Term, int],
        app_instances: dict[FuncDecl, list[tuple[tuple[Term, ...], Term]]],
        select_decls: dict[Term, FuncDecl],
    ) -> None:
        self._bools = bool_values
        self._ints = int_values
        self._apps = app_instances
        self._select_decls = select_decls

    def eval(self, term: Term) -> object:
        """Evaluate ``term`` under this model (booleans and integers)."""
        kind = term.kind
        if kind in (Kind.CONST_BOOL, Kind.CONST_INT):
            return term.payload
        if kind is Kind.VAR:
            if term.sort == BOOL:
                return self._bools.get(term, False)
            if term.sort == INT:
                return self._ints.get(term, 0)
            raise SortError(f"cannot evaluate variable of sort {term.sort}")
        if kind is Kind.NOT:
            return not self.eval(term.args[0])
        if kind is Kind.AND:
            return all(self.eval(a) for a in term.args)
        if kind is Kind.OR:
            return any(self.eval(a) for a in term.args)
        if kind is Kind.IMPLIES:
            return (not self.eval(term.args[0])) or self.eval(term.args[1])
        if kind is Kind.IFF:
            return self.eval(term.args[0]) == self.eval(term.args[1])
        if kind is Kind.ITE:
            return self.eval(term.args[1] if self.eval(term.args[0]) else term.args[2])
        if kind is Kind.EQ:
            return self._eval_eq(term.args[0], term.args[1])
        if kind is Kind.DISTINCT:
            values = [self._eval_value(a) for a in term.args]
            return len(set(values)) == len(values)
        if kind is Kind.LE:
            return self.eval(term.args[0]) <= self.eval(term.args[1])  # type: ignore[operator]
        if kind is Kind.LT:
            return self.eval(term.args[0]) < self.eval(term.args[1])  # type: ignore[operator]
        if kind is Kind.ADD:
            return sum(self.eval(a) for a in term.args)  # type: ignore[misc]
        if kind is Kind.MUL:
            return self.eval(term.args[0]) * self.eval(term.args[1])  # type: ignore[operator]
        if kind is Kind.NEG:
            return -self.eval(term.args[0])  # type: ignore[operator]
        if kind is Kind.SELECT:
            return self._eval_select(term.args[0], term.args[1])
        if kind is Kind.APPLY:
            return self._eval_apply(term.payload, term.args)  # type: ignore[arg-type]
        raise SortError(f"cannot evaluate term {term}")

    def _eval_eq(self, left: Term, right: Term) -> bool:
        if left.sort.is_array:
            raise SortError("cannot evaluate array equality")
        return self._eval_value(left) == self._eval_value(right)

    def _eval_value(self, term: Term) -> object:
        return self.eval(term)

    def _eval_select(self, array: Term, index: Term) -> object:
        index_value = self.eval(index)
        while array.kind is Kind.STORE:
            base, written_index, written_value = array.args
            if self.eval(written_index) == index_value:
                return self.eval(written_value)
            array = base
        if array.kind is Kind.ITE:
            cond = self.eval(array.args[0])
            chosen = array.args[1] if cond else array.args[2]
            return self._eval_select(chosen, index)
        if array.kind is not Kind.VAR:
            raise SortError(f"cannot evaluate select from {array}")
        decl = self._select_decls.get(array)
        if decl is None:
            return 0 if array.sort.elem_sort == INT else False
        return self._lookup_app(decl, (index_value,))

    def _eval_apply(self, decl: FuncDecl, args: tuple[Term, ...]) -> object:
        return self._lookup_app(decl, tuple(self.eval(a) for a in args))

    def _lookup_app(self, decl: FuncDecl, arg_values: tuple[object, ...]) -> object:
        for instance_args, result_var in self._apps.get(decl, []):
            if tuple(self.eval(a) for a in instance_args) == arg_values:
                return self.eval(result_var)
        return 0 if decl.ret_sort == INT else False

    def as_dict(self) -> dict[str, object]:
        """A name -> value snapshot of all assigned variables."""
        out: dict[str, object] = {}
        for term, value in self._bools.items():
            out[str(term.payload)] = value
        for term, value in self._ints.items():
            out[str(term.payload)] = value
        return out


class Solver:
    """An SMT solver instance with assertion-stack semantics."""

    #: Cap on theory-conflict iterations of the lazy loop per ``check``.
    max_theory_rounds = 10_000

    def __init__(self, int_budget: int = 4000) -> None:
        self._assertions: list[Term] = []
        self._scopes: list[int] = []
        self._model: Optional[Model] = None
        self._int_budget = int_budget
        self.stats = {"checks": 0, "theory_rounds": 0, "sat_conflicts": 0}

    # -- assertion stack -------------------------------------------------------

    def add(self, *assertions: Term) -> None:
        for a in assertions:
            if a.sort != BOOL:
                raise SortError(f"assertions must be boolean, got {a.sort}")
            self._assertions.append(a)

    def push(self) -> None:
        self._scopes.append(len(self._assertions))

    def pop(self) -> None:
        if not self._scopes:
            raise SolverError("pop without matching push")
        del self._assertions[self._scopes.pop() :]

    @property
    def assertions(self) -> tuple[Term, ...]:
        return tuple(self._assertions)

    # -- solving ---------------------------------------------------------------

    def check(self, *extra: Term) -> SatResult:
        """Decide satisfiability of the asserted formulas plus ``extra``."""
        self.stats["checks"] += 1
        self._model = None
        pre = Preprocessor()
        sat = SatSolver()
        cnf = CnfBuilder(sat)
        for assertion in itertools.chain(self._assertions, extra):
            processed = pre.process(assertion)
            cnf.add_assertion(processed.goal)
            for side in processed.side_conditions:
                cnf.add_assertion(side)

        for _ in range(self.max_theory_rounds):
            bool_model = sat.solve()
            self.stats["sat_conflicts"] = sat.num_conflicts
            if bool_model is None:
                return SatResult.UNSAT
            asserted: list[tuple[int, LinAtom]] = []
            for sat_var, atom in cnf.var_to_atom.items():
                if not isinstance(atom, LinAtom):
                    continue
                value = bool_model[sat_var]
                literal = sat_var if value else -sat_var
                asserted.append((literal, atom if value else atom.negate()))
            try:
                result = check_integer(
                    [a for _, a in asserted], budget=self._int_budget
                )
            except IntBudgetExceeded:
                return SatResult.UNKNOWN
            if result.feasible:
                self._model = self._build_model(cnf, pre, bool_model, result.model)
                return SatResult.SAT
            self.stats["theory_rounds"] += 1
            core = self._minimize_core(asserted)
            sat.add_clause([-lit for lit, _ in core])
        return SatResult.UNKNOWN

    def _minimize_core(
        self, asserted: list[tuple[int, LinAtom]]
    ) -> list[tuple[int, LinAtom]]:
        """Deletion-based minimization of an infeasible atom set."""
        core = list(asserted)
        if len(core) > 40:
            return core  # minimization cost would dominate; block as-is
        i = 0
        while i < len(core):
            candidate = core[:i] + core[i + 1 :]
            try:
                result = check_integer(
                    [a for _, a in candidate], budget=self._int_budget
                )
            except IntBudgetExceeded:
                i += 1
                continue
            if result.feasible:
                i += 1
            else:
                core = candidate
        return core

    def _build_model(
        self,
        cnf: CnfBuilder,
        pre: Preprocessor,
        bool_model: dict[int, bool],
        int_model: dict[object, int],
    ) -> Model:
        bools: dict[Term, bool] = {}
        for atom, sat_var in cnf.atom_to_var.items():
            if isinstance(atom, Term):
                bools[atom] = bool_model[sat_var]
        ints: dict[Term, int] = {}
        for key, value in int_model.items():
            if isinstance(key, Term):
                ints[key] = value
        return Model(bools, ints, dict(pre._applications), dict(pre._select_decls))

    def model(self) -> Model:
        if self._model is None:
            raise SolverError("model() is only available after a SAT check")
        return self._model


# ---------------------------------------------------------------------------
# One-shot helpers
# ---------------------------------------------------------------------------


def is_satisfiable(*formulas: Term, int_budget: int = 4000) -> bool:
    """True iff the conjunction of ``formulas`` has a model.

    Raises :class:`SolverError` if the solver cannot decide the query.
    """
    solver = Solver(int_budget=int_budget)
    solver.add(*formulas)
    result = solver.check()
    if result is SatResult.UNKNOWN:
        raise SolverError(f"undecided satisfiability query: {list(formulas)}")
    return result is SatResult.SAT


def is_valid(formula: Term, assuming: Iterable[Term] = (), int_budget: int = 4000) -> bool:
    """True iff ``formula`` holds in every model of ``assuming``.

    This implements the paper's ``exhaustive(g1, ..., gn)`` check: the
    disjunction of path conditions is a tautology iff its negation is
    unsatisfiable.
    """
    solver = Solver(int_budget=int_budget)
    solver.add(*assuming)
    solver.add(not_(formula))
    result = solver.check()
    if result is SatResult.UNKNOWN:
        raise SolverError(f"undecided validity query: {formula}")
    return result is SatResult.UNSAT
