"""Shared encodings of operations outside the solver's native language.

Currently: truncating integer division by a non-zero constant, used by
both symbolic executors.  The quotient becomes a fresh variable pinned
by a definitional constraint; the encoding is exact for C-style
(round-toward-zero) division::

    q = trunc(x / c)   <=>   (x >= 0  and  |c|q <= x' <= |c|q + |c|-1)
                          or (x <  0  and  x' <= |c|q <= x' + |c|-1)

where ``x' = x`` for positive ``c`` and ``x' = -x`` otherwise.
"""

from __future__ import annotations

from repro import smt
from repro.smt.simplify import simplify


def trunc_div_constant(a: int, c: int) -> int:
    """Concrete truncating division (c != 0)."""
    q = abs(a) // abs(c)
    return q if (a >= 0) == (c >= 0) else -q


def encode_trunc_div(
    dividend: smt.Term, divisor: int, quotient: smt.Term
) -> smt.Term:
    """The definitional constraint pinning ``quotient = dividend / divisor``
    (truncating, ``divisor`` a non-zero integer constant)."""
    if divisor == 0:
        raise ZeroDivisionError("encode_trunc_div requires a non-zero divisor")
    magnitude = abs(divisor)
    x = dividend if divisor > 0 else simplify(smt.neg(dividend))
    prod = smt.mul(smt.int_const(magnitude), quotient)
    zero = smt.int_const(0)
    nonneg = smt.and_(
        smt.ge(x, zero),
        smt.le(prod, x),
        smt.le(x, smt.add(prod, smt.int_const(magnitude - 1))),
    )
    negative = smt.and_(
        smt.lt(x, zero),
        smt.le(x, prod),
        smt.le(prod, smt.add(x, smt.int_const(magnitude - 1))),
    )
    return smt.or_(nonneg, negative)
