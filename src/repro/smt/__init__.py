"""A small, self-contained SMT solver for quantifier-free formulas.

This package is the reproduction's substitute for STP (the solver used by
the paper's MIXY prototype).  It decides the fragment that MIX and MIXY
actually generate: propositional structure over linear integer arithmetic,
equality with uninterpreted functions (via Ackermann expansion), and
McCarthy arrays (via select-over-store rewriting).

The public surface:

- :mod:`repro.smt.terms` -- sorts, hash-consed terms, term constructors.
- :class:`repro.smt.solver.Solver` -- ``add`` / ``check`` / ``model``,
  with genuinely incremental ``push``/``pop``.
- :func:`repro.smt.solver.is_valid` / :func:`is_satisfiable` -- one-shot
  queries used by the mix rules (e.g. the ``exhaustive`` tautology check).
  These route through the process-wide :class:`repro.smt.service.SolverService`,
  which caches verdicts (see :mod:`repro.smt.service`) and exposes
  :class:`repro.smt.service.SolverStats` counters.
"""

from repro.smt.terms import (
    BOOL,
    INT,
    FuncDecl,
    Sort,
    SortError,
    Term,
    add,
    and_,
    apply_func,
    array_sort,
    bool_const,
    distinct,
    eq,
    false,
    ge,
    gt,
    iff,
    implies,
    int_const,
    ite,
    le,
    lt,
    mul,
    neg,
    not_,
    or_,
    select,
    store,
    sub,
    true,
    var,
)
from repro.smt.solver import (
    Model,
    SatResult,
    Solver,
    SolverError,
    is_satisfiable,
    is_valid,
)
from repro.smt.service import (
    FaultInjector,
    InjectedCrash,
    SolverService,
    SolverStats,
    get_service,
    reset_service,
    set_service,
)

__all__ = [
    "BOOL",
    "INT",
    "FaultInjector",
    "FuncDecl",
    "InjectedCrash",
    "Model",
    "SatResult",
    "Solver",
    "SolverError",
    "SolverService",
    "SolverStats",
    "Sort",
    "SortError",
    "get_service",
    "reset_service",
    "set_service",
    "Term",
    "add",
    "and_",
    "apply_func",
    "array_sort",
    "bool_const",
    "distinct",
    "eq",
    "false",
    "ge",
    "gt",
    "iff",
    "implies",
    "int_const",
    "is_satisfiable",
    "is_valid",
    "ite",
    "le",
    "lt",
    "mul",
    "neg",
    "not_",
    "or_",
    "select",
    "store",
    "sub",
    "true",
    "var",
]
