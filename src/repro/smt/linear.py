"""Linear integer atoms: extraction from terms and canonicalization.

After preprocessing (:mod:`repro.smt.preprocess`) every integer-sorted leaf
is a plain variable, so each arithmetic atom denotes a linear constraint

    c1*x1 + ... + cn*xn <= k        (all ci, k integers)

:class:`LinAtom` is the canonical, hashable form of such a constraint.
Canonicalization divides by the gcd of the coefficients and *tightens* the
constant (``k -> floor(k / g)``), which is sound and complete over the
integers and lets the rational simplex refute systems such as
``3x - 3y = 1`` that plain branch-and-bound cannot.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import floor, gcd

from repro.smt.terms import INT, Kind, SortError, Term


class NonlinearError(SortError):
    """Raised when a term is not linear in its integer variables."""


@dataclass(frozen=True)
class LinAtom:
    """Canonical linear constraint ``sum(coeffs) <= constant``.

    ``coeffs`` maps variable terms to non-zero integer coefficients and is
    stored as a sorted tuple so atoms are hashable and syntactically
    comparable.  The negation of a ``LinAtom`` is again a ``LinAtom``
    because the domain is the integers: ``not (e <= k)  ==  -e <= -k-1``.
    """

    coeffs: tuple[tuple[Term, int], ...]
    constant: int

    def negate(self) -> "LinAtom":
        flipped = tuple((v, -c) for v, c in self.coeffs)
        return make_atom(dict(flipped), -self.constant - 1)

    @property
    def is_trivially_true(self) -> bool:
        return not self.coeffs and 0 <= self.constant

    @property
    def is_trivially_false(self) -> bool:
        return not self.coeffs and 0 > self.constant

    def __str__(self) -> str:
        if not self.coeffs:
            return f"0 <= {self.constant}"
        parts = []
        for v, c in self.coeffs:
            parts.append(f"{c}*{v}" if c != 1 else str(v))
        return f"{' + '.join(parts)} <= {self.constant}"


def make_atom(coeffs: dict[Term, int], constant: int) -> LinAtom:
    """Build a canonical atom from raw coefficients (gcd-tightened)."""
    nonzero = {v: c for v, c in coeffs.items() if c != 0}
    if not nonzero:
        return LinAtom((), constant)
    g = 0
    for c in nonzero.values():
        g = gcd(g, abs(c))
    if g > 1:
        nonzero = {v: c // g for v, c in nonzero.items()}
        constant = floor(Fraction(constant, g))
    ordered = tuple(sorted(nonzero.items(), key=lambda item: str(item[0])))
    return LinAtom(ordered, constant)


def linearize(term: Term) -> tuple[dict[Term, int], int]:
    """Decompose an integer term into (coefficients, constant).

    Leaves must be integer constants or variables; raises
    :class:`NonlinearError` on symbolic products or other kinds (those must
    have been eliminated by preprocessing).
    """
    if term.sort != INT:
        raise SortError(f"linearize expects an Int term, got {term.sort}")
    coeffs: dict[Term, int] = {}
    constant = 0

    def walk(node: Term, scale: int) -> None:
        nonlocal constant
        kind = node.kind
        if kind is Kind.CONST_INT:
            constant += scale * node.payload  # type: ignore[operator]
        elif kind is Kind.VAR:
            coeffs[node] = coeffs.get(node, 0) + scale
        elif kind is Kind.ADD:
            for a in node.args:
                walk(a, scale)
        elif kind is Kind.NEG:
            walk(node.args[0], -scale)
        elif kind is Kind.MUL:
            left, right = node.args
            if left.kind is Kind.CONST_INT:
                walk(right, scale * left.payload)  # type: ignore[operator]
            elif right.kind is Kind.CONST_INT:
                walk(left, scale * right.payload)  # type: ignore[operator]
            else:
                raise NonlinearError(f"nonlinear product: {node}")
        else:
            raise NonlinearError(
                f"unexpected integer leaf {node} (kind {kind.value}); "
                "preprocessing should have replaced it with a variable"
            )

    walk(term, 1)
    return coeffs, constant


def atom_from_comparison(kind: Kind, left: Term, right: Term) -> LinAtom:
    """Build the canonical atom for ``left <= right`` or ``left < right``."""
    lc, lk = linearize(left)
    rc, rk = linearize(right)
    coeffs = dict(lc)
    for v, c in rc.items():
        coeffs[v] = coeffs.get(v, 0) - c
    constant = rk - lk
    if kind is Kind.LT:
        constant -= 1  # over integers, e < k  iff  e <= k - 1
    elif kind is not Kind.LE:
        raise SortError(f"not a comparison kind: {kind}")
    return make_atom(coeffs, constant)
