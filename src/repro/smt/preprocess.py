"""Formula preprocessing: reduce arbitrary terms to the solver core.

The core fragment handled by CNF conversion and the theory engine is:

- boolean structure (``not/and/or/implies/iff/ite``) over
- boolean variables and linear integer comparisons (``<=``, ``<``).

This module rewrites everything else into that fragment:

- array ``select``/``store`` chains: read-over-write rewriting happens in
  :mod:`repro.smt.simplify`; selects from *base* array variables become
  uninterpreted applications and are then Ackermann-expanded;
- uninterpreted function applications: Ackermann expansion — each
  application becomes a fresh variable, with congruence side conditions
  ``args1 = args2  ==>  v1 = v2`` for every pair of same-symbol
  applications;
- non-boolean ``ite``: a fresh variable plus two guarded definitions;
- integer equality: ``a = b  ==>  a <= b  and  b <= a``;
- boolean equality: ``iff``; ``distinct``: pairwise negated equality.

Fresh variables are written into the reserved ``$`` namespace; user code
must not create variables whose names start with ``$``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.smt.simplify import simplify
from repro.smt.terms import (
    BOOL,
    INT,
    FuncDecl,
    Kind,
    Sort,
    SortError,
    Term,
    and_,
    eq,
    iff,
    implies,
    ite,
    le,
    not_,
    or_,
    var,
)


class UnsupportedTermError(SortError):
    """The formula leaves the fragment this solver decides."""


@dataclass
class Preprocessed:
    """The rewritten goal plus side conditions (all in the core fragment)."""

    goal: Term
    side_conditions: list[Term] = field(default_factory=list)

    def conjoined(self) -> Term:
        return and_(self.goal, *self.side_conditions)


class Preprocessor:
    """Stateful rewriter; one instance per ``check()`` call.

    State is shared across the assertions of one check so that Ackermann
    congruence constraints relate applications from *different* assertions.
    """

    def __init__(self) -> None:
        self._memo: dict[Term, Term] = {}
        self._fresh_counter = 0
        self._side_conditions: list[Term] = []
        # FuncDecl -> list of (arg terms, result variable)
        self._applications: dict[FuncDecl, list[tuple[tuple[Term, ...], Term]]] = {}
        self._select_decls: dict[Term, FuncDecl] = {}

    def process(self, assertion: Term) -> Preprocessed:
        if assertion.sort != BOOL:
            raise SortError(f"assertions must be boolean, got {assertion.sort}")
        goal = self._rewrite(simplify(assertion))
        side = self._side_conditions
        self._side_conditions = []
        return Preprocessed(simplify(goal), [simplify(s) for s in side])

    # -- helpers ---------------------------------------------------------------

    def _fresh(self, prefix: str, sort: Sort) -> Term:
        self._fresh_counter += 1
        return var(f"${prefix}{self._fresh_counter}", sort)

    def _defer(self, condition: Term) -> None:
        self._side_conditions.append(condition)

    # -- rewriting ---------------------------------------------------------------

    def _rewrite(self, term: Term) -> Term:
        cached = self._memo.get(term)
        if cached is not None:
            return cached
        result = self._rewrite_uncached(term)
        self._memo[term] = result
        return result

    def _rewrite_uncached(self, term: Term) -> Term:
        kind = term.kind

        if kind in (Kind.CONST_BOOL, Kind.CONST_INT):
            return term
        if kind is Kind.VAR:
            if term.sort.is_array:
                return term  # handled at the enclosing select
            if term.sort not in (BOOL, INT):
                raise UnsupportedTermError(
                    f"free sort {term.sort} is not supported; encode it as Int"
                )
            return term

        if kind is Kind.SELECT:
            return self._rewrite_select(term)
        if kind is Kind.STORE:
            raise UnsupportedTermError(
                "store must appear under a select (it has array sort); "
                "array-valued results are not supported"
            )
        if kind is Kind.APPLY:
            args = tuple(self._rewrite(a) for a in term.args)
            return self._ackermannize(term.payload, args)  # type: ignore[arg-type]

        if kind is Kind.ITE:
            return self._rewrite_ite(term)

        if kind is Kind.EQ:
            return self._rewrite_eq(term.args[0], term.args[1])

        if kind is Kind.DISTINCT:
            pairs = []
            args = term.args
            for i in range(len(args)):
                for j in range(i + 1, len(args)):
                    pairs.append(not_(self._rewrite_eq(args[i], args[j])))
            return and_(*pairs)

        # Structural kinds: rewrite children, keep the operator.
        args = tuple(self._rewrite(a) for a in term.args)
        if kind is Kind.NOT:
            return not_(args[0])
        if kind is Kind.AND:
            return and_(*args)
        if kind is Kind.OR:
            return or_(*args)
        if kind is Kind.IMPLIES:
            return implies(args[0], args[1])
        if kind is Kind.IFF:
            return iff(args[0], args[1])
        if kind in (Kind.LE, Kind.LT):
            from repro.smt.terms import lt as _lt

            return le(args[0], args[1]) if kind is Kind.LE else _lt(args[0], args[1])
        if kind in (Kind.ADD, Kind.MUL, Kind.NEG):
            from repro.smt.terms import add, mul, neg

            if kind is Kind.ADD:
                return add(*args)
            if kind is Kind.MUL:
                return mul(args[0], args[1])
            return neg(args[0])
        raise UnsupportedTermError(f"unsupported term kind {kind.value}: {term}")

    def _rewrite_select(self, term: Term) -> Term:
        array, index = term.args
        array = simplify(array)
        if array.kind is Kind.ITE:
            cond, then, els = array.args
            from repro.smt.terms import select as _select

            pushed = ite(cond, _select(then, index), _select(els, index))
            return self._rewrite(pushed)
        if array.kind is Kind.STORE:
            # simplify() rewrites read-over-write; re-run it on this node.
            from repro.smt.terms import select as _select

            return self._rewrite(simplify(_select(array, index)))
        if array.kind is not Kind.VAR:
            raise UnsupportedTermError(f"unsupported array term: {array}")
        decl = self._select_decls.get(array)
        if decl is None:
            decl = FuncDecl(
                f"$sel_{array.payload}", (array.sort.index_sort,), array.sort.elem_sort
            )
            self._select_decls[array] = decl
        rewritten_index = self._rewrite(index)
        return self._ackermannize(decl, (rewritten_index,))

    def _ackermannize(self, decl: FuncDecl, args: tuple[Term, ...]) -> Term:
        if decl.ret_sort not in (BOOL, INT):
            raise UnsupportedTermError(
                f"uninterpreted function {decl.name} returns {decl.ret_sort}; "
                "only Bool and Int results are supported"
            )
        instances = self._applications.setdefault(decl, [])
        for prior_args, prior_var in instances:
            if prior_args == args:
                return prior_var
        result = self._fresh(f"ack_{decl.name}_", decl.ret_sort)
        for prior_args, prior_var in instances:
            agreement = and_(
                *(self._rewrite_eq(a, b) for a, b in zip(args, prior_args))
            )
            self._defer(implies(agreement, self._rewrite_eq(result, prior_var)))
        instances.append((args, result))
        return result

    def _rewrite_ite(self, term: Term) -> Term:
        cond = self._rewrite(term.args[0])
        if term.sort == BOOL:
            return ite(cond, self._rewrite(term.args[1]), self._rewrite(term.args[2]))
        if term.sort != INT:
            raise UnsupportedTermError(f"ite at sort {term.sort} is not supported")
        then = self._rewrite(term.args[1])
        els = self._rewrite(term.args[2])
        fresh = self._fresh("ite_", INT)
        self._defer(implies(cond, self._rewrite_eq(fresh, then)))
        self._defer(implies(not_(cond), self._rewrite_eq(fresh, els)))
        return fresh

    def _rewrite_eq(self, left: Term, right: Term) -> Term:
        if left.sort != right.sort:
            raise SortError(f"eq operands disagree: {left.sort} vs {right.sort}")
        if left.sort == BOOL:
            return iff(self._rewrite(left), self._rewrite(right))
        if left.sort == INT:
            a = self._rewrite(left)
            b = self._rewrite(right)
            return and_(le(a, b), le(b, a))
        if left.sort.is_array:
            raise UnsupportedTermError("array equality is not supported")
        raise UnsupportedTermError(f"equality at sort {left.sort} is not supported")
