"""Sorts and hash-consed terms for the SMT substrate.

Terms form an immutable DAG.  Structurally identical terms are shared
(hash-consed), so equality and hashing are identity-based and cheap, and
memoized traversals over the DAG are linear in its size rather than in the
size of the unfolded tree.

The term language is many-sorted and quantifier-free:

- sorts: ``Bool``, ``Int``, ``Array(index, elem)``, and free sorts;
- boolean structure: ``not``, ``and``, ``or``, ``implies``, ``iff``, ``ite``;
- integer arithmetic: ``+``, ``-``, ``*`` (by any term; the solver requires
  linearity, the term language does not), comparisons;
- equality at any sort, ``distinct``;
- McCarthy arrays: ``select`` / ``store``;
- uninterpreted functions via :class:`FuncDecl` and :func:`apply_func`.

Constructors perform full sort checking and raise :class:`SortError` on
ill-sorted applications, mirroring the paper's observation that the syntax
of symbolic expressions "forbids the formation of certain ill-typed
symbolic expressions".
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from enum import Enum, unique
from typing import Iterable, Iterator


class SortError(TypeError):
    """Raised when a term constructor is applied at the wrong sorts."""


@dataclass(frozen=True)
class Sort:
    """A sort (SMT type).  ``params`` holds element sorts for arrays."""

    name: str
    params: tuple["Sort", ...] = ()

    def __str__(self) -> str:
        if not self.params:
            return self.name
        inner = ", ".join(str(p) for p in self.params)
        return f"{self.name}({inner})"

    @property
    def is_array(self) -> bool:
        return self.name == "Array"

    @property
    def index_sort(self) -> "Sort":
        if not self.is_array:
            raise SortError(f"{self} is not an array sort")
        return self.params[0]

    @property
    def elem_sort(self) -> "Sort":
        if not self.is_array:
            raise SortError(f"{self} is not an array sort")
        return self.params[1]


BOOL = Sort("Bool")
INT = Sort("Int")


def array_sort(index: Sort, elem: Sort) -> Sort:
    """The sort of arrays (symbolic memories) from ``index`` to ``elem``."""
    return Sort("Array", (index, elem))


@unique
class Kind(Enum):
    """Node kinds of the term DAG."""

    CONST_BOOL = "const_bool"
    CONST_INT = "const_int"
    VAR = "var"
    NOT = "not"
    AND = "and"
    OR = "or"
    IMPLIES = "implies"
    IFF = "iff"
    ITE = "ite"
    EQ = "eq"
    DISTINCT = "distinct"
    LE = "le"
    LT = "lt"
    ADD = "add"
    MUL = "mul"
    NEG = "neg"
    SELECT = "select"
    STORE = "store"
    APPLY = "apply"


@dataclass(frozen=True)
class FuncDecl:
    """An uninterpreted function symbol."""

    name: str
    arg_sorts: tuple[Sort, ...]
    ret_sort: Sort

    def __str__(self) -> str:
        args = ", ".join(str(s) for s in self.arg_sorts)
        return f"{self.name}: ({args}) -> {self.ret_sort}"

    def __call__(self, *args: "Term") -> "Term":
        return apply_func(self, *args)


class Term:
    """A hash-consed term.  Do not instantiate directly; use constructors."""

    __slots__ = ("kind", "sort", "args", "payload", "_id", "__weakref__")

    kind: Kind
    sort: Sort
    args: tuple["Term", ...]
    payload: object  # int/bool constant value, var name, or FuncDecl

    def __init__(
        self, kind: Kind, sort: Sort, args: tuple["Term", ...], payload: object
    ) -> None:
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "sort", sort)
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "payload", payload)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Term objects are immutable")

    # Hash-consing makes identity equality sound and fast.
    def __eq__(self, other: object) -> bool:
        return self is other

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        return f"<Term {self}>"

    def __str__(self) -> str:
        return _pretty(self)

    # Convenience predicates -------------------------------------------------

    @property
    def is_const(self) -> bool:
        return self.kind in (Kind.CONST_BOOL, Kind.CONST_INT)

    @property
    def is_true(self) -> bool:
        return self.kind is Kind.CONST_BOOL and self.payload is True

    @property
    def is_false(self) -> bool:
        return self.kind is Kind.CONST_BOOL and self.payload is False

    @property
    def is_var(self) -> bool:
        return self.kind is Kind.VAR

    @property
    def name(self) -> str:
        if self.kind is not Kind.VAR:
            raise SortError(f"{self} is not a variable")
        return self.payload  # type: ignore[return-value]

    @property
    def value(self) -> object:
        if not self.is_const:
            raise SortError(f"{self} is not a constant")
        return self.payload

    def subterms(self) -> Iterator["Term"]:
        """All subterms (including self), each visited once."""
        seen: set[Term] = set()
        stack = [self]
        while stack:
            term = stack.pop()
            if term in seen:
                continue
            seen.add(term)
            yield term
            stack.extend(term.args)


class _TermTable:
    """The hash-consing table; one per process, guarded by a lock."""

    def __init__(self) -> None:
        self._table: dict[tuple, Term] = {}
        self._lock = threading.Lock()

    def make(
        self, kind: Kind, sort: Sort, args: tuple[Term, ...], payload: object
    ) -> Term:
        key = (kind, sort, tuple(id(a) for a in args), payload)
        with self._lock:
            term = self._table.get(key)
            if term is None:
                term = Term(kind, sort, args, payload)
                self._table[key] = term
            return term

    def size(self) -> int:
        return len(self._table)


_TABLE = _TermTable()


def term_table_size() -> int:
    """Number of distinct terms ever built (diagnostic)."""
    return _TABLE.size()


# ---------------------------------------------------------------------------
# Constructors
# ---------------------------------------------------------------------------

_TRUE = _TABLE.make(Kind.CONST_BOOL, BOOL, (), True)
_FALSE = _TABLE.make(Kind.CONST_BOOL, BOOL, (), False)


def true() -> Term:
    return _TRUE


def false() -> Term:
    return _FALSE


def bool_const(value: bool) -> Term:
    return _TRUE if value else _FALSE


def int_const(value: int) -> Term:
    if not isinstance(value, int) or isinstance(value, bool):
        raise SortError(f"int_const expects an int, got {value!r}")
    return _TABLE.make(Kind.CONST_INT, INT, (), value)


def var(name: str, sort: Sort) -> Term:
    """A free variable.  Two calls with the same name/sort share a node."""
    if not isinstance(name, str) or not name:
        raise SortError("variable names must be non-empty strings")
    return _TABLE.make(Kind.VAR, sort, (), name)


def _require(term: Term, sort: Sort, context: str) -> None:
    if term.sort != sort:
        raise SortError(f"{context}: expected sort {sort}, got {term.sort} ({term})")


def not_(arg: Term) -> Term:
    _require(arg, BOOL, "not")
    return _TABLE.make(Kind.NOT, BOOL, (arg,), None)


def _bool_nary(kind: Kind, args: Iterable[Term], context: str) -> Term:
    flat = tuple(args)
    for a in flat:
        _require(a, BOOL, context)
    if len(flat) == 1:
        return flat[0]
    return _TABLE.make(kind, BOOL, flat, None)


def and_(*args: Term) -> Term:
    if not args:
        return _TRUE
    return _bool_nary(Kind.AND, args, "and")


def or_(*args: Term) -> Term:
    if not args:
        return _FALSE
    return _bool_nary(Kind.OR, args, "or")


def implies(antecedent: Term, consequent: Term) -> Term:
    _require(antecedent, BOOL, "implies")
    _require(consequent, BOOL, "implies")
    return _TABLE.make(Kind.IMPLIES, BOOL, (antecedent, consequent), None)


def iff(left: Term, right: Term) -> Term:
    _require(left, BOOL, "iff")
    _require(right, BOOL, "iff")
    return _TABLE.make(Kind.IFF, BOOL, (left, right), None)


def ite(cond: Term, then: Term, els: Term) -> Term:
    """If-then-else at any sort (the paper's ``g ? s1 : s2``)."""
    _require(cond, BOOL, "ite condition")
    if then.sort != els.sort:
        raise SortError(f"ite branches disagree: {then.sort} vs {els.sort}")
    return _TABLE.make(Kind.ITE, then.sort, (cond, then, els), None)


def eq(left: Term, right: Term) -> Term:
    if left.sort != right.sort:
        raise SortError(f"eq operands disagree: {left.sort} vs {right.sort}")
    return _TABLE.make(Kind.EQ, BOOL, (left, right), None)


def distinct(*args: Term) -> Term:
    """Pairwise disequality; used for allocation freshness."""
    if len(args) < 2:
        return _TRUE
    first = args[0].sort
    for a in args:
        if a.sort != first:
            raise SortError("distinct operands must share a sort")
    return _TABLE.make(Kind.DISTINCT, BOOL, tuple(args), None)


def le(left: Term, right: Term) -> Term:
    _require(left, INT, "le")
    _require(right, INT, "le")
    return _TABLE.make(Kind.LE, BOOL, (left, right), None)


def lt(left: Term, right: Term) -> Term:
    _require(left, INT, "lt")
    _require(right, INT, "lt")
    return _TABLE.make(Kind.LT, BOOL, (left, right), None)


def ge(left: Term, right: Term) -> Term:
    return le(right, left)


def gt(left: Term, right: Term) -> Term:
    return lt(right, left)


def add(*args: Term) -> Term:
    if not args:
        return int_const(0)
    for a in args:
        _require(a, INT, "add")
    if len(args) == 1:
        return args[0]
    return _TABLE.make(Kind.ADD, INT, tuple(args), None)


def sub(left: Term, right: Term) -> Term:
    return add(left, neg(right))


def neg(arg: Term) -> Term:
    _require(arg, INT, "neg")
    return _TABLE.make(Kind.NEG, INT, (arg,), None)


def mul(left: Term, right: Term) -> Term:
    _require(left, INT, "mul")
    _require(right, INT, "mul")
    return _TABLE.make(Kind.MUL, INT, (left, right), None)


def select(array: Term, index: Term) -> Term:
    if not array.sort.is_array:
        raise SortError(f"select expects an array, got {array.sort}")
    _require_index = array.sort.index_sort
    if index.sort != _require_index:
        raise SortError(
            f"select index sort mismatch: expected {_require_index}, got {index.sort}"
        )
    return _TABLE.make(Kind.SELECT, array.sort.elem_sort, (array, index), None)


def store(array: Term, index: Term, value: Term) -> Term:
    if not array.sort.is_array:
        raise SortError(f"store expects an array, got {array.sort}")
    if index.sort != array.sort.index_sort:
        raise SortError("store index sort mismatch")
    if value.sort != array.sort.elem_sort:
        raise SortError("store value sort mismatch")
    return _TABLE.make(Kind.STORE, array.sort, (array, index, value), None)


def apply_func(decl: FuncDecl, *args: Term) -> Term:
    if len(args) != len(decl.arg_sorts):
        raise SortError(
            f"{decl.name} expects {len(decl.arg_sorts)} arguments, got {len(args)}"
        )
    for actual, expected in zip(args, decl.arg_sorts):
        if actual.sort != expected:
            raise SortError(
                f"{decl.name}: argument sort mismatch "
                f"(expected {expected}, got {actual.sort})"
            )
    return _TABLE.make(Kind.APPLY, decl.ret_sort, tuple(args), decl)


# ---------------------------------------------------------------------------
# Wire codec
# ---------------------------------------------------------------------------
#
# Terms hash (and pickle-compare) by identity, so they cannot cross a
# process boundary naively: two processes interning the same structure
# hold *different* objects.  The wire form is therefore purely
# structural — a post-order node list with structure sharing — and
# ``from_wire`` rebuilds through ``_TABLE.make``, re-interning every
# node.  Within one process this makes the round trip the identity:
# ``from_wire(to_wire(t)) is t``.  ``Sort`` and ``FuncDecl`` are plain
# frozen dataclasses and ship by value inside node payloads.

#: wire node: (kind value, sort, argument node indices, payload)
WireNode = tuple[str, Sort, tuple[int, ...], object]
#: wire form of a term list: (shared node table, root indices)
Wire = tuple[list[WireNode], list[int]]


def to_wire_many(terms: Iterable[Term]) -> Wire:
    """Encode ``terms`` into one shared-structure node table."""
    index: dict[Term, int] = {}
    nodes: list[WireNode] = []

    def visit(root: Term) -> int:
        stack: list[tuple[Term, bool]] = [(root, False)]
        while stack:
            term, ready = stack.pop()
            if term in index:
                continue
            if ready:
                index[term] = len(nodes)
                nodes.append(
                    (
                        term.kind.value,
                        term.sort,
                        tuple(index[a] for a in term.args),
                        term.payload,
                    )
                )
            else:
                stack.append((term, True))
                for arg in term.args:
                    if arg not in index:
                        stack.append((arg, False))
        return index[root]

    roots = [visit(t) for t in terms]
    return nodes, roots


def from_wire_many(wire: Wire) -> list[Term]:
    """Decode a :func:`to_wire_many` result, re-interning every node."""
    nodes, roots = wire
    built: list[Term] = []
    for kind_value, sort, arg_indices, payload in nodes:
        args = tuple(built[i] for i in arg_indices)
        built.append(_TABLE.make(Kind(kind_value), sort, args, payload))
    return [built[i] for i in roots]


def to_wire(term: Term) -> Wire:
    """Encode one term (see :func:`to_wire_many`)."""
    return to_wire_many((term,))


def from_wire(wire: Wire) -> Term:
    """Decode one term; interned, so within a process this is identity."""
    roots = from_wire_many(wire)
    if len(roots) != 1:
        raise SortError(f"expected a single wire root, got {len(roots)}")
    return roots[0]


# ---------------------------------------------------------------------------
# Pretty-printing
# ---------------------------------------------------------------------------

_INFIX = {
    Kind.AND: "and",
    Kind.OR: "or",
    Kind.IMPLIES: "=>",
    Kind.IFF: "<=>",
    Kind.EQ: "=",
    Kind.LE: "<=",
    Kind.LT: "<",
    Kind.ADD: "+",
    Kind.MUL: "*",
}


def _pretty(term: Term) -> str:
    kind = term.kind
    if kind in (Kind.CONST_BOOL, Kind.CONST_INT):
        return str(term.payload).lower() if kind is Kind.CONST_BOOL else str(term.payload)
    if kind is Kind.VAR:
        return str(term.payload)
    if kind is Kind.NOT:
        return f"(not {_pretty(term.args[0])})"
    if kind is Kind.NEG:
        return f"(- {_pretty(term.args[0])})"
    if kind is Kind.ITE:
        cond, then, els = term.args
        return f"(ite {_pretty(cond)} {_pretty(then)} {_pretty(els)})"
    if kind is Kind.SELECT:
        return f"{_pretty(term.args[0])}[{_pretty(term.args[1])}]"
    if kind is Kind.STORE:
        arr, idx, val = term.args
        return f"{_pretty(arr)}[{_pretty(idx)} := {_pretty(val)}]"
    if kind is Kind.APPLY:
        decl: FuncDecl = term.payload  # type: ignore[assignment]
        inner = " ".join(_pretty(a) for a in term.args)
        return f"({decl.name} {inner})" if inner else decl.name
    if kind is Kind.DISTINCT:
        inner = " ".join(_pretty(a) for a in term.args)
        return f"(distinct {inner})"
    op = _INFIX[kind]
    inner = f" {op} ".join(_pretty(a) for a in term.args)
    return f"({inner})"
