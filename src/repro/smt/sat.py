"""A CDCL SAT solver (conflict-driven clause learning).

Implements the standard modern architecture: two-watched-literal unit
propagation, first-UIP conflict analysis with clause learning, VSIDS-style
activity-based branching with phase saving, and Luby restarts.

Literals are non-zero integers (DIMACS convention): ``+v`` is the positive
literal of variable ``v``, ``-v`` the negative one.  Variables are
allocated with :meth:`SatSolver.new_var` and clauses may be added between
:meth:`SatSolver.solve` calls, which is how the lazy SMT loop feeds theory
blocking clauses back into the search.

:meth:`SatSolver.solve` optionally takes *assumptions* — literals decided
(in order, before any heuristic decision) at their own decision levels, in
the MiniSat style.  Returning ``None`` under assumptions means "UNSAT
under these assumptions" and does **not** poison the solver: clauses and
learned clauses remain valid and later calls with different assumptions
may succeed.  Assumptions are what make the incremental
:class:`repro.smt.solver.Solver` possible — retracting a scope amounts to
permanently falsifying its selector literal while keeping every clause
(and everything learned from it) in place.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Optional, Sequence


class SatTimeout(Exception):
    """The search hit its wall-clock deadline (see ``solve(deadline=)``).

    Raised from inside the CDCL loop; the solver remains usable (the
    next ``add_clause``/``solve`` backtracks to the root as usual) —
    the caller decides how to degrade, normally to ``UNKNOWN``.
    """


class SatCancelled(Exception):
    """The search was cancelled cooperatively (see ``solve(cancel=)``).

    Raised when the caller-supplied poison flag reads true — the
    portfolio-racing path in :mod:`repro.parallel` sets it when a
    sibling worker finishes the same query first.  Deliberately *not* a
    :class:`repro.smt.solver.SolverError` subclass: a cancelled race
    loser must abort its task outright, not be contained as a cached
    UNKNOWN verdict somewhere up the stack.
    """


class SatSolver:
    """CDCL solver over literals encoded as signed integers."""

    def __init__(self, flip_phase: bool = False) -> None:
        #: Initial saved phase for fresh variables.  The default (False)
        #: branches negative-first; ``flip_phase=True`` is the portfolio
        #: racing variant that explores the positive side first — same
        #: verdicts, different search order.
        self._flip_phase = flip_phase
        self._num_vars = 0
        self._clauses: list[list[int]] = []
        self._watches: dict[int, list[list[int]]] = {}
        self._assign: list[Optional[bool]] = [None]  # 1-indexed by variable
        self._level: list[int] = [0]
        self._reason: list[Optional[list[int]]] = [None]
        self._activity: list[float] = [0.0]
        self._phase: list[bool] = [flip_phase]
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._queue_head = 0
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._pending_unsat = False
        self.num_conflicts = 0
        self.num_decisions = 0
        self.num_propagations = 0
        self.num_restarts = 0
        self.num_clauses_added = 0

    # -- construction ----------------------------------------------------------

    def new_var(self) -> int:
        self._num_vars += 1
        self._assign.append(None)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(self._flip_phase)
        return self._num_vars

    @property
    def num_vars(self) -> int:
        return self._num_vars

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a clause; duplicates removed, tautologies dropped."""
        self.num_clauses_added += 1
        seen: set[int] = set()
        clause: list[int] = []
        for lit in literals:
            if lit == 0 or abs(lit) > self._num_vars:
                raise ValueError(f"literal {lit} out of range")
            if -lit in seen:
                return  # tautology
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
        if not clause:
            self._pending_unsat = True
            return
        self._backtrack(0)
        # Drop root-level falsified literals; satisfied clauses are kept as-is.
        clause = [
            lit for lit in clause if self._value(lit) is not False or self._lit_level(lit) > 0
        ]
        if not clause:
            self._pending_unsat = True
            return
        if len(clause) == 1:
            if self._value(clause[0]) is False:
                self._pending_unsat = True
            elif self._value(clause[0]) is None:
                self._enqueue(clause[0], None)
            return
        self._attach(clause)

    def _attach(self, clause: list[int]) -> None:
        self._clauses.append(clause)
        self._watches.setdefault(clause[0], []).append(clause)
        self._watches.setdefault(clause[1], []).append(clause)

    # -- assignment helpers ------------------------------------------------------

    def _value(self, lit: int) -> Optional[bool]:
        value = self._assign[abs(lit)]
        if value is None:
            return None
        return value if lit > 0 else not value

    def _lit_level(self, lit: int) -> int:
        return self._level[abs(lit)]

    @property
    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, lit: int, reason: Optional[list[int]]) -> None:
        v = abs(lit)
        self._assign[v] = lit > 0
        self._level[v] = self._decision_level
        self._reason[v] = reason
        self._trail.append(lit)

    def _backtrack(self, level: int) -> None:
        if self._decision_level <= level:
            return
        limit = self._trail_lim[level]
        for lit in reversed(self._trail[limit:]):
            v = abs(lit)
            self._phase[v] = self._assign[v]  # type: ignore[assignment]
            self._assign[v] = None
            self._reason[v] = None
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._queue_head = min(self._queue_head, len(self._trail))

    # -- propagation ---------------------------------------------------------------

    def _propagate(self) -> Optional[list[int]]:
        """Propagate units; return a conflicting clause or None."""
        while self._queue_head < len(self._trail):
            lit = self._trail[self._queue_head]
            self._queue_head += 1
            falsified = -lit
            watchers = self._watches.get(falsified)
            if not watchers:
                continue
            kept: list[list[int]] = []
            i = 0
            while i < len(watchers):
                clause = watchers[i]
                i += 1
                # Normalize: watched literals at positions 0 and 1.
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                other = clause[0]
                if self._value(other) is True:
                    kept.append(clause)
                    continue
                moved = False
                for j in range(2, len(clause)):
                    if self._value(clause[j]) is not False:
                        clause[1], clause[j] = clause[j], clause[1]
                        self._watches.setdefault(clause[1], []).append(clause)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(clause)
                if self._value(other) is False:
                    kept.extend(watchers[i:])
                    self._watches[falsified] = kept
                    return clause
                self.num_propagations += 1
                self._enqueue(other, clause)
            self._watches[falsified] = kept
        return None

    # -- conflict analysis ---------------------------------------------------------

    def _bump(self, v: int) -> None:
        self._activity[v] += self._var_inc
        if self._activity[v] > 1e100:
            for i in range(1, self._num_vars + 1):
                self._activity[i] *= 1e-100
            self._var_inc *= 1e-100

    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        """First-UIP learning; returns (learned clause, backjump level)."""
        learned: list[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self._num_vars + 1)
        counter = 0
        lit = None
        index = len(self._trail) - 1
        reason: Optional[list[int]] = conflict
        while True:
            assert reason is not None
            for q in reason:
                if lit is not None and q == lit:
                    continue
                v = abs(q)
                if not seen[v] and self._level[v] > 0:
                    seen[v] = True
                    self._bump(v)
                    if self._level[v] >= self._decision_level:
                        counter += 1
                    else:
                        learned.append(q)
            while not seen[abs(self._trail[index])]:
                index -= 1
            lit = self._trail[index]
            index -= 1
            seen[abs(lit)] = False
            counter -= 1
            if counter == 0:
                break
            reason = self._reason[abs(lit)]
        learned[0] = -lit
        if len(learned) == 1:
            return learned, 0
        # Backjump to the second-highest decision level in the clause.
        max_i = 1
        for i in range(2, len(learned)):
            if self._level[abs(learned[i])] > self._level[abs(learned[max_i])]:
                max_i = i
        learned[1], learned[max_i] = learned[max_i], learned[1]
        return learned, self._level[abs(learned[1])]

    # -- search -------------------------------------------------------------------

    def _decide(self) -> bool:
        best = 0
        best_activity = -1.0
        for v in range(1, self._num_vars + 1):
            if self._assign[v] is None and self._activity[v] > best_activity:
                best = v
                best_activity = self._activity[v]
        if best == 0:
            return False
        self.num_decisions += 1
        self._trail_lim.append(len(self._trail))
        self._enqueue(best if self._phase[best] else -best, None)
        return True

    #: Deadline/cancellation poll cadence: check every this many loop
    #: iterations.  Each iteration does a full propagation pass, so the
    #: overshoot past the deadline is a handful of propagations.
    DEADLINE_CHECK_EVERY = 16

    def solve(
        self,
        assumptions: Sequence[int] = (),
        deadline: Optional[float] = None,
        cancel: Optional[Callable[[], bool]] = None,
    ) -> Optional[dict[int, bool]]:
        """Search for a model; None means UNSAT (under the assumptions).

        Assumption literals are decided, in order, before any heuristic
        decision.  An assumption found falsified (by the clause database
        plus earlier assumptions) yields ``None`` without marking the
        solver permanently unsatisfiable.

        ``deadline`` is an absolute :func:`time.monotonic` instant.  The
        search polls it periodically and raises :class:`SatTimeout` once
        it has passed; everything learned up to that point is kept.

        ``cancel`` is a zero-argument poison flag polled on the same
        cadence as the deadline; reading true raises
        :class:`SatCancelled` (portfolio race losers; see
        :mod:`repro.parallel`).  The solver stays usable afterwards.
        """
        if self._pending_unsat:
            return None
        if deadline is not None and time.monotonic() >= deadline:
            raise SatTimeout
        if cancel is not None and cancel():
            raise SatCancelled
        self._backtrack(0)
        conflicts_until_restart = _luby(1) * 100
        restarts = 1
        conflicts_here = 0
        ticks = 0
        poll = deadline is not None or cancel is not None
        while True:
            if poll:
                ticks += 1
                if ticks >= self.DEADLINE_CHECK_EVERY:
                    ticks = 0
                    if deadline is not None and time.monotonic() >= deadline:
                        raise SatTimeout
                    if cancel is not None and cancel():
                        raise SatCancelled
            conflict = self._propagate()
            if conflict is not None:
                self.num_conflicts += 1
                conflicts_here += 1
                if self._decision_level == 0:
                    self._pending_unsat = True
                    return None
                learned, backjump = self._analyze(conflict)
                self._backtrack(backjump)
                if len(learned) == 1:
                    self._enqueue(learned[0], None)
                else:
                    self._attach(learned)
                    self._enqueue(learned[0], learned)
                self._var_inc /= self._var_decay
                continue
            if conflicts_here >= conflicts_until_restart:
                conflicts_here = 0
                restarts += 1
                self.num_restarts += 1
                conflicts_until_restart = _luby(restarts) * 100
                self._backtrack(0)
                continue
            # Decide pending assumptions (in order) before branching.  At
            # this point every decision so far is an earlier assumption,
            # so a falsified assumption literal is genuinely implied.
            next_assumption = 0
            for lit in assumptions:
                value = self._value(lit)
                if value is False:
                    return None  # UNSAT under assumptions; solver stays usable
                if value is None:
                    next_assumption = lit
                    break
            if next_assumption:
                self._trail_lim.append(len(self._trail))
                self._enqueue(next_assumption, None)
                continue
            if not self._decide():
                model = {
                    v: bool(self._assign[v]) for v in range(1, self._num_vars + 1)
                }
                return model


def _luby(i: int) -> int:
    """The Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ..."""
    k = 1
    while (1 << k) - 1 < i:
        k += 1
    if (1 << k) - 1 == i:
        return 1 << (k - 1)
    return _luby(i - ((1 << (k - 1)) - 1))
