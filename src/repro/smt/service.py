"""Process-wide solver service: a query cache in front of shared solvers.

Every feasibility / validity query in the tower (symbolic executors, mix
rules, the MIXY driver) funnels through one :class:`SolverService`.  The
service answers from a tiered cache before ever touching DPLL(T):

0. **syntactic** — literal ``true``/``false`` conjuncts and
   contradiction-by-negation (both ``g`` and ``not g`` present) decide the
   query with no lookup at all.  Conjunct sets are deduplicated, so a
   guard that is already asserted in the path condition costs nothing.
1. **exact** — the normalized key (a frozenset of hash-consed conjuncts,
   O(1) to hash because term identity is physical identity) has a cached
   verdict.
2. **subset** — the conjunct set is a subset of a set previously proved
   satisfiable: the same model still works, so the query is SAT.
3. **superset** — the conjunct set is a superset of a cached UNSAT core:
   adding conjuncts cannot restore satisfiability, so the query is UNSAT.
4. **model eval** — KLEE-style counterexample caching: recent models are
   total interpretations (unassigned variables default to 0 / false), so
   if every conjunct evaluates to true under one of them the query is SAT.
5. **full solve** — only now does the query reach a :class:`Solver`.  Each
   miss gets a fresh solver sized to the query: CDCL model search assigns
   *every* variable in its database, so sharing one growing solver across
   unrelated queries makes each solve pay for all previous ones.  Reuse of
   encoding work across *related* queries is what the cache tiers and the
   incremental ``push``/``pop`` :class:`Solver` (for callers that hold
   one) are for.

``UNKNOWN`` results are never cached.  Caches are sharded by
``int_budget``: a verdict obtained under one budget is never reused under
another (a larger budget can turn UNKNOWN into a real verdict, and
budget-dependent UNKNOWNs must not leak across).

:class:`SolverStats` counts queries and hits per tier plus the CDCL
counters, and is surfaced by the executors, the mix rules, the MIXY
driver, and the CLI ``--solver-stats`` flag.
"""

from __future__ import annotations

import os
import random
import signal
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Deque, Iterable, Iterator, Mapping, Optional

from repro.budget import Budget
from repro.trace import TRACER
from repro.smt.intsolve import IntBudgetExceeded, check_integer
from repro.smt.linear import LinAtom, atom_from_comparison
from repro.smt.sat import SatCancelled
from repro.smt.solver import Model, SatResult, Solver, SolverError
from repro.smt.terms import (
    BOOL,
    INT,
    Kind,
    SortError,
    Term,
    Wire,
    from_wire_many,
    to_wire_many,
)


def _linear_literal_atoms(term: Term) -> Optional[list[LinAtom]]:
    """``term`` as a conjunction of linear-arithmetic atoms, or None.

    Handles the literal shapes path conditions are made of: ``a <= b``,
    ``a < b``, their negations, and integer equality (as two ``<=``
    atoms).  Anything else — boolean variables, disjunctions, ``ite``
    in an argument, nonlinear products — returns None so the caller
    falls back to the full lazy loop.
    """
    kind = term.kind
    try:
        if kind in (Kind.LE, Kind.LT):
            return [atom_from_comparison(kind, term.args[0], term.args[1])]
        if kind is Kind.NOT:
            inner = term.args[0]
            if inner.kind in (Kind.LE, Kind.LT):
                return [
                    atom_from_comparison(
                        inner.kind, inner.args[0], inner.args[1]
                    ).negate()
                ]
            return None
        if kind is Kind.EQ and term.args[0].sort == INT:
            left, right = term.args
            return [
                atom_from_comparison(Kind.LE, left, right),
                atom_from_comparison(Kind.LE, right, left),
            ]
    except SortError:  # nonlinear / unevaluable argument structure
        return None
    return None


@dataclass
class SolverStats:
    """Counters for the solver service, threaded through the whole stack."""

    queries: int = 0
    syntactic_hits: int = 0
    exact_hits: int = 0
    subset_hits: int = 0
    superset_hits: int = 0
    model_eval_hits: int = 0
    full_solves: int = 0
    solve_seconds: float = 0.0
    sat_conflicts: int = 0
    sat_restarts: int = 0
    theory_rounds: int = 0
    # Resource-governor breach counters (see repro.budget).
    #: Queries that hit the per-query timeout and degraded to UNKNOWN.
    query_timeouts: int = 0
    #: Work refused (queries) or abandoned (frontiers) because the run
    #: deadline had already passed.
    deadline_breaches: int = 0
    #: Frontiers collapsed into a BUDGET outcome by the path budget.
    path_budget_breaches: int = 0
    #: Paths stopped by the memory-log depth budget.
    memlog_breaches: int = 0
    #: Faults injected by an installed FaultInjector (testing only).
    injected_faults: int = 0
    # Trust-ring counters (witness replay / self-check / containment).
    #: Solver-internal errors (real or injected) contained as UNKNOWN.
    solver_errors_contained: int = 0
    #: SAT models that failed the paranoid self-check and were re-solved.
    self_check_failures: int = 0
    #: Reported error paths whose concrete replay reproduced the error.
    witnesses_confirmed: int = 0
    #: Reported error paths replay could neither confirm nor contradict.
    witnesses_unconfirmed: int = 0
    #: Reported error paths a faithful replay contradicted (tool bug!).
    witnesses_diverged: int = 0
    #: Typed/symbolic blocks whose analysis crashed and was degraded.
    blocks_contained: int = 0
    # Parallel-engine counters (see repro.parallel).
    #: Blocks/query batches speculatively analyzed by worker processes.
    speculative_blocks: int = 0
    #: Worker tasks that died or errored; their deltas were discarded and
    #: the serial pass re-did the work (nothing is lost but time).
    speculation_failures: int = 0
    #: Cache entries imported from worker deltas into this service.
    cache_entries_imported: int = 0
    # Scheduler counters (see repro.schedule).
    #: Worker tasks dispatched as similarity-grouped waves.
    waves_dispatched: int = 0
    #: Frontier blocks whose re-speculation was skipped as converged.
    blocks_skipped: int = 0
    #: UNSAT conjunct sets shrunk to a proper core before recording
    #: (intfirst direct solves; see SolverService._minimize_conjunct_core).
    cores_minimized: int = 0
    #: Portfolio race contender tasks launched (speculative sub-table).
    raced: int = 0
    #: Race losers cancelled — cooperatively poisoned or never started
    #: (speculative sub-table).
    cancelled: int = 0
    #: Worker-side (speculative) perf counters, accumulated by
    #: :meth:`merge_perf` under ``--jobs N``.  Workers overlap the
    #: parent's wall clock, so their ``solve_seconds`` (and hits/solves)
    #: live in this sub-table instead of the authoritative fields above
    #: — summing the two would double-count wall-time attribution.
    speculative: Optional["SolverStats"] = None

    @property
    def cache_hits(self) -> int:
        return (
            self.syntactic_hits
            + self.exact_hits
            + self.subset_hits
            + self.superset_hits
            + self.model_eval_hits
        )

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.queries if self.queries else 0.0

    def as_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "queries": self.queries,
            "syntactic_hits": self.syntactic_hits,
            "exact_hits": self.exact_hits,
            "subset_hits": self.subset_hits,
            "superset_hits": self.superset_hits,
            "model_eval_hits": self.model_eval_hits,
            "cache_hits": self.cache_hits,
            "hit_rate": round(self.hit_rate, 4),
            "full_solves": self.full_solves,
            "solve_seconds": round(self.solve_seconds, 6),
            "sat_conflicts": self.sat_conflicts,
            "sat_restarts": self.sat_restarts,
            "theory_rounds": self.theory_rounds,
            "query_timeouts": self.query_timeouts,
            "deadline_breaches": self.deadline_breaches,
            "path_budget_breaches": self.path_budget_breaches,
            "memlog_breaches": self.memlog_breaches,
            "injected_faults": self.injected_faults,
            "solver_errors_contained": self.solver_errors_contained,
            "self_check_failures": self.self_check_failures,
            "witnesses_confirmed": self.witnesses_confirmed,
            "witnesses_unconfirmed": self.witnesses_unconfirmed,
            "witnesses_diverged": self.witnesses_diverged,
            "blocks_contained": self.blocks_contained,
            "speculative_blocks": self.speculative_blocks,
            "speculation_failures": self.speculation_failures,
            "cache_entries_imported": self.cache_entries_imported,
            "waves_dispatched": self.waves_dispatched,
            "blocks_skipped": self.blocks_skipped,
            "cores_minimized": self.cores_minimized,
        }
        if self.speculative is not None:
            spec: dict[str, object] = {
                name: getattr(self.speculative, name) for name in self.PERF_FIELDS
            }
            spec["solve_seconds"] = round(self.speculative.solve_seconds, 6)
            spec["cache_hits"] = self.speculative.cache_hits
            spec["hit_rate"] = round(self.speculative.hit_rate, 4)
            spec["raced"] = self.speculative.raced
            spec["cancelled"] = self.speculative.cancelled
            out["speculative"] = spec
        return out

    def spec(self) -> "SolverStats":
        """The speculative sub-table, created on first use (the parallel
        engine records race/cancel attribution here)."""
        if self.speculative is None:
            self.speculative = SolverStats()
        return self.speculative

    #: Counters that describe solver *work* and may be summed across
    #: processes.  Trust-ring verdicts and injected-fault counts are
    #: deliberately absent: workers run speculatively, so their trust
    #: observations are not authoritative and must not pollute the run's.
    PERF_FIELDS = (
        "queries",
        "syntactic_hits",
        "exact_hits",
        "subset_hits",
        "superset_hits",
        "model_eval_hits",
        "full_solves",
        "solve_seconds",
        "sat_conflicts",
        "sat_restarts",
        "theory_rounds",
        "query_timeouts",
        "deadline_breaches",
        "path_budget_breaches",
        "memlog_breaches",
        "solver_errors_contained",
        "cores_minimized",
    )

    def perf_delta_since(self, baseline: "SolverStats") -> "SolverStats":
        """The perf-counter difference ``self - baseline`` (worker side)."""
        delta = SolverStats()
        for name in self.PERF_FIELDS:
            setattr(delta, name, getattr(self, name) - getattr(baseline, name))
        return delta

    def merge_perf(self, delta: "SolverStats") -> None:
        """Fold a worker's perf-counter delta into the ``speculative``
        sub-table.  Workers run concurrently with (and are then replayed
        by) the authoritative pass, so adding their counters to the
        authoritative fields would count the same wall time twice."""
        if self.speculative is None:
            self.speculative = SolverStats()
        spec = self.speculative
        for name in self.PERF_FIELDS:
            setattr(spec, name, getattr(spec, name) + getattr(delta, name))

    def _rows(self) -> list[tuple[str, object]]:
        """Flattened ``(key, value)`` rows straight from :meth:`as_dict`
        — the one code path both the JSON form and the table render
        from, so the two can never drift."""
        rows: list[tuple[str, object]] = []
        for key, value in self.as_dict().items():
            if isinstance(value, dict):
                rows.extend((f"{key}.{sub}", v) for sub, v in value.items())
            else:
                rows.append((key, value))
        return rows

    def format_table(self) -> str:
        """A human-readable counter table (used by ``--solver-stats``)."""
        rows = self._rows()
        key_w = max(len(k) for k, _ in rows)
        val_w = max(len(str(v)) for _, v in rows)
        lines = ["solver service stats", "-" * (key_w + 2 + val_w)]
        for key, value in rows:
            lines.append(f"{key:<{key_w}}  {value}")
        return "\n".join(lines)


class InjectedCrash(RuntimeError):
    """A non-solver exception raised by a ``CRASH``-kind injected fault.

    Deliberately *not* a :class:`SolverError`: it models an unexpected
    executor/solver implementation bug, so it sails past every SolverError
    handler in the tower and must be stopped by the per-block crash
    containment boundary (trust ring 3), nothing earlier.
    """


class FaultInjector:
    """Deterministic, seedable solver-fault injection (CI degradation tests).

    Installed on a :class:`SolverService` (``service.fault_injector``),
    it fires on the service's *query counter*: ``faults={n: kind}``
    injects ``kind`` at the n-th query (1-based), and a ``seed``/``rate``
    pair additionally injects ``kind`` pseudo-randomly but reproducibly.
    The fault kinds mirror the real degradation paths:

    - ``TIMEOUT`` — the query behaves exactly like a per-query deadline
      breach: ``UNKNOWN``, never cached, ``query_timeouts`` bumped;
    - ``UNKNOWN`` — an undecided query (e.g. ``int_budget`` exhaustion);
    - ``ERROR`` — a solver-internal error; the service contains it like
      a timeout (uncached UNKNOWN, ``solver_errors_contained`` bumped);
    - ``BAD_MODEL`` — the solve "succeeds" but returns a corrupted model
      (wrong variable assignments).  Only the paranoid self-check
      (trust ring 2) catches this one;
    - ``CRASH`` — an :class:`InjectedCrash` escapes the service entirely,
      exercising the per-block containment boundary (trust ring 3);
    - ``DIE`` — the process ``SIGKILL``s itself mid-query: no exception,
      no cleanup, no chance to contain.  Nothing inside the process can
      survive this one — it exists to exercise *cross-process* isolation
      (the ``repro serve`` request workers and the chaos harness).

    Faults fire *before* the cache tiers, so "fail the Nth query" is
    deterministic regardless of what earlier queries populated.
    """

    TIMEOUT = "timeout"
    UNKNOWN = "unknown"
    ERROR = "error"
    BAD_MODEL = "bad_model"
    CRASH = "crash"
    DIE = "die"
    #: Faults the analysis process itself can survive — in-process tests
    #: sweep these.  ``DIE`` is deliberately excluded: it SIGKILLs the
    #: host process and is only meaningful behind a worker fork.
    KINDS = (TIMEOUT, UNKNOWN, ERROR, BAD_MODEL, CRASH)
    ALL_KINDS = KINDS + (DIE,)

    def __init__(
        self,
        faults: Optional[Mapping[int, str]] = None,
        seed: Optional[int] = None,
        rate: float = 0.0,
        kind: str = TIMEOUT,
    ) -> None:
        for fault_kind in (kind, *(faults or {}).values()):
            if fault_kind not in self.ALL_KINDS:
                raise ValueError(f"unknown fault kind {fault_kind!r}")
        self.faults = dict(faults or {})
        self.kind = kind
        self.rate = rate
        self.seed = seed
        self._rng = random.Random(seed) if seed is not None else None
        self.queries_seen = 0
        self.injected = 0

    @classmethod
    def at_query(cls, n: int, kind: str = TIMEOUT) -> "FaultInjector":
        """Inject one fault at the n-th query (1-based)."""
        return cls(faults={n: kind})

    def clone(self) -> "FaultInjector":
        """A fresh injector with the same schedule (crash-repro probes)."""
        return FaultInjector(
            faults=self.faults, seed=self.seed, rate=self.rate, kind=self.kind
        )

    def describe(self) -> dict[str, object]:
        """A JSON-able description (recorded in crash reports)."""
        return {
            "faults": {str(n): kind for n, kind in sorted(self.faults.items())},
            "seed": self.seed,
            "rate": self.rate,
            "kind": self.kind,
        }

    def next_fault(self) -> Optional[str]:
        """The fault to inject for the query being served, if any."""
        self.queries_seen += 1
        fault = self.faults.get(self.queries_seen)
        if fault is None and self._rng is not None and self._rng.random() < self.rate:
            fault = self.kind
        if fault is not None:
            self.injected += 1
        return fault


class _Shard:
    """Per-``int_budget`` cache state."""

    #: Bounds keep lookups O(small constant) and memory flat under load.
    MAX_EXACT = 65_536
    MAX_SETS = 512
    MAX_MODELS = 64

    def __init__(self) -> None:
        self.exact: dict[frozenset[Term], bool] = {}
        self.sat_sets: Deque[frozenset[Term]] = deque(maxlen=self.MAX_SETS)
        self.unsat_cores: Deque[frozenset[Term]] = deque(maxlen=self.MAX_SETS)
        self.models: Deque[Model] = deque(maxlen=self.MAX_MODELS)
        #: Insertion journal: every *new* exact-tier key, in insertion
        #: order.  A :meth:`SolverService.cache_mark` is just a journal
        #: position, so "what was learned since the mark" is a suffix
        #: read — O(delta), not the O(cache) set-difference scan that
        #: :meth:`SolverService.cache_baseline` pays.  Wholesale
        #: eviction clears the journal and bumps ``resets``; a mark
        #: taken before a reset conservatively sees the whole journal
        #: (everything now cached postdates the eviction).
        self.journal: list[frozenset[Term]] = []
        self.resets = 0

    def put(self, key: frozenset[Term], verdict: bool) -> None:
        """Insert one exact-tier entry, journaling genuinely new keys
        and applying the wholesale-eviction bound.  Every exact-tier
        write funnels through here so the journal can never miss an
        insertion."""
        if key not in self.exact:
            if len(self.exact) >= self.MAX_EXACT:
                self.exact.clear()  # cheap wholesale eviction; refills fast
                self.journal.clear()
                self.resets += 1
            self.journal.append(key)
        self.exact[key] = verdict

    def record(
        self,
        key: frozenset[Term],
        sat: bool,
        model: Optional[Model],
        core: Optional[frozenset[Term]] = None,
    ) -> None:
        self.put(key, sat)
        if sat:
            self.sat_sets.append(key)
            if model is not None:
                self.models.append(model)
        elif core is not None and core and core < key:
            # A minimized conjunct-level core subsumes the full key in
            # the superset tier: any future superset of the *core* is
            # UNSAT, which catches queries that share the contradiction
            # but differ in unrelated conjuncts (e.g. one rotated bound
            # per fixpoint round).  The core gets its own exact entry so
            # cross-process deltas ship it as a first-class verdict.
            self.put(core, False)
            self.unsat_cores.append(core)
        else:
            self.unsat_cores.append(key)


@dataclass
class CacheDelta:
    """Cache entries gained since a :meth:`SolverService.cache_baseline`.

    The picklable cross-process form of "what this worker learned":
    conjunct sets are wire-encoded (:mod:`repro.smt.terms`, one shared
    node table) because terms hash by identity and cannot cross a
    process boundary as objects.  Each entry is
    ``(int_budget, conjunct root positions, verdict, in sat_sets,
    in unsat_cores)``.  Models are deliberately not shipped: a model is
    dead weight on the wire next to an exact verdict, and the model-eval
    tier refills from the parent's own solves.
    """

    wire: Wire
    entries: list[tuple[int, tuple[int, ...], bool, bool, bool]]
    stats: SolverStats

    def __len__(self) -> int:
        return len(self.entries)


class SolverService:
    """The shared solver-service layer: cache tiers in front of DPLL(T)."""

    def __init__(
        self, cache_enabled: bool = True, paranoid: Optional[bool] = None
    ) -> None:
        self.stats = SolverStats()
        self.cache_enabled = cache_enabled
        self._shards: dict[int, _Shard] = {}
        #: The active run's resource budget (installed via ``governed``).
        self.budget: Optional[Budget] = None
        #: Deterministic fault injection for degradation testing.
        self.fault_injector: Optional[FaultInjector] = None
        #: Solver strategy variant for full solves: "default",
        #: "simplify", "intfirst", or "flip" (see repro.schedule).  Set
        #: only inside speculative workers — the authoritative pass
        #: always runs "default", keeping its cache *contents* (notably
        #: the model-eval tier) byte-identical to a serial run.
        self.strategy: str = "default"
        #: Cooperative cancellation flag for portfolio race losers,
        #: polled at query entry and inside the CDCL/lazy loops.
        self.cancel_check: Optional[Callable[[], bool]] = None
        #: Probe order for the subset/superset cache tiers.  The two
        #: tiers are mutually exclusive (a conjunct set cannot be both a
        #: subset of a SAT set and a superset of an UNSAT core), so any
        #: order yields identical verdicts and cache mutations — hints
        #: put the historically-hot tier first (see repro.schedule).
        self.tier_order: tuple[str, str] = ("subset", "superset")
        #: Conjunct-level UNSAT core produced by the most recent
        #: ``intfirst`` direct solve, consumed (and cleared) by
        #: :meth:`_check_sat` when recording the verdict.
        self._last_core: Optional[frozenset[Term]] = None
        #: Trust ring 2: re-evaluate every SAT model against the original
        #: conjuncts before returning it or letting any cache tier keep it.
        #: Defaults from the REPRO_PARANOID environment variable (CI).
        if paranoid is None:
            paranoid = os.environ.get("REPRO_PARANOID", "") not in ("", "0")
        self.paranoid = paranoid

    # -- public API ------------------------------------------------------------

    @contextmanager
    def governed(self, budget: Optional[Budget]) -> Iterator["SolverService"]:
        """Install ``budget`` for the duration of a run (re-entrant)."""
        previous = self.budget
        self.budget = budget if budget is not None else previous
        try:
            yield self
        finally:
            self.budget = previous

    def is_satisfiable(self, *formulas: Term, int_budget: int = 4000) -> bool:
        """True iff the conjunction of ``formulas`` has a model."""
        result = self.check_sat(formulas, int_budget=int_budget)
        if result is SatResult.UNKNOWN:
            raise SolverError(f"undecided satisfiability query: {list(formulas)}")
        return result is SatResult.SAT

    def is_valid(
        self, formula: Term, assuming: Iterable[Term] = (), int_budget: int = 4000
    ) -> bool:
        """True iff ``formula`` holds in every model of ``assuming``."""
        from repro.smt.terms import not_

        formulas = (*assuming, not_(formula))
        result = self.check_sat(formulas, int_budget=int_budget)
        if result is SatResult.UNKNOWN:
            raise SolverError(f"undecided validity query: {formula}")
        return result is SatResult.UNSAT

    def model(self, *formulas: Term, int_budget: int = 4000) -> Model:
        """A model of the conjunction (used by variable concretization)."""
        if not TRACER.enabled:
            return self._model(formulas, int_budget)
        span = TRACER.begin_span("solver.query", "model", budget=int_budget)
        before = self._tier_snapshot()
        try:
            model = self._model(formulas, int_budget)
        except BaseException as error:
            TRACER.end_span(
                span, tier=self._tier_hit(before), verdict="error",
                error=type(error).__name__,
            )
            raise
        TRACER.end_span(span, tier=self._tier_hit(before), verdict="MODEL")
        return model

    def _model(self, formulas: tuple[Term, ...], int_budget: int) -> Model:
        self.stats.queries += 1
        fault = self._next_fault()
        if fault == FaultInjector.DIE:
            os.kill(os.getpid(), signal.SIGKILL)
        if fault == FaultInjector.CRASH:
            raise InjectedCrash("injected solver crash")
        if fault is not None and fault != FaultInjector.BAD_MODEL:
            # A model query has no UNKNOWN channel: every fault degrades
            # to the error callers already handle conservatively.
            if fault == FaultInjector.TIMEOUT:
                self.stats.query_timeouts += 1
            if fault == FaultInjector.ERROR:
                self.stats.solver_errors_contained += 1
            raise SolverError(f"injected solver fault ({fault})")
        conjuncts = self._normalize(formulas)
        if conjuncts is None:
            raise SolverError(f"no model: query is not satisfiable: {list(formulas)}")
        if self.cache_enabled and fault is None:
            shard = self._shard(int_budget)
            for model in reversed(shard.models):
                if model.satisfies(conjuncts):
                    self.stats.model_eval_hits += 1
                    return model
        result, model = self._solve(
            conjuncts,
            int_budget,
            corrupt=fault == FaultInjector.BAD_MODEL,
            need_model=True,
        )
        if result is not SatResult.SAT or model is None:
            raise SolverError(f"no model: query is not satisfiable: {list(formulas)}")
        if self.cache_enabled and (fault is None or model.satisfies(conjuncts)):
            self._shard(int_budget).record(conjuncts, True, model)
        return model

    def check_sat(self, formulas: Iterable[Term], int_budget: int = 4000) -> SatResult:
        """Tiered satisfiability check of a conjunction of formulas."""
        if not TRACER.enabled:
            return self._check_sat(formulas, int_budget)
        span = TRACER.begin_span("solver.query", "check_sat", budget=int_budget)
        before = self._tier_snapshot()
        try:
            result = self._check_sat(formulas, int_budget)
        except BaseException as error:
            TRACER.end_span(
                span, tier=self._tier_hit(before), verdict="error",
                error=type(error).__name__,
            )
            raise
        TRACER.end_span(span, tier=self._tier_hit(before), verdict=result.name)
        return result

    def _check_sat(self, formulas: Iterable[Term], int_budget: int) -> SatResult:
        if self.cancel_check is not None and self.cancel_check():
            raise SatCancelled  # race already lost: do no work at all
        self.stats.queries += 1
        fault = self._next_fault()
        if fault == FaultInjector.DIE:
            os.kill(os.getpid(), signal.SIGKILL)
        if fault == FaultInjector.CRASH:
            raise InjectedCrash("injected solver crash")
        if fault == FaultInjector.ERROR:
            # Contained like a timeout: a solver-internal error must not
            # escape the service as a raw exception (see solver_errors_
            # contained); UNKNOWN is already handled conservatively by
            # every caller, and is never cached.
            self.stats.solver_errors_contained += 1
            return SatResult.UNKNOWN
        if fault == FaultInjector.TIMEOUT:
            self.stats.query_timeouts += 1
            return SatResult.UNKNOWN  # like a real timeout: never cached
        if fault == FaultInjector.UNKNOWN:
            return SatResult.UNKNOWN
        formulas = tuple(formulas)
        conjuncts = self._normalize(formulas)

        # Tier 0: syntactic.  A literal ``false`` conjunct or a
        # contradiction-by-negation decides without any cache or solver.
        if conjuncts is None:
            self.stats.syntactic_hits += 1
            return SatResult.UNSAT
        if not conjuncts:
            self.stats.syntactic_hits += 1
            return SatResult.SAT
        for term in conjuncts:
            if term.kind is Kind.NOT and term.args[0] in conjuncts:
                self.stats.syntactic_hits += 1
                return SatResult.UNSAT

        if self.cache_enabled and fault is None:
            shard = self._shard(int_budget)
            # Tier 1: exact.
            cached = shard.exact.get(conjuncts)
            if cached is not None:
                self.stats.exact_hits += 1
                return SatResult.SAT if cached else SatResult.UNSAT
            # Tiers 2 and 3: subset-of-SAT-set / superset-of-UNSAT-core,
            # probed in ``tier_order`` (hits are mutually exclusive, so
            # the learned reordering cannot change verdict or cache).
            for tier in self.tier_order:
                if tier == "subset":
                    for sat_set in shard.sat_sets:
                        if conjuncts <= sat_set:
                            self.stats.subset_hits += 1
                            shard.put(conjuncts, True)
                            return SatResult.SAT
                else:
                    for core in shard.unsat_cores:
                        if core <= conjuncts:
                            self.stats.superset_hits += 1
                            shard.put(conjuncts, False)
                            return SatResult.UNSAT
            # Tier 4: reuse a recent model as a total interpretation.
            for model in reversed(shard.models):
                if model.satisfies(conjuncts):
                    self.stats.model_eval_hits += 1
                    shard.record(conjuncts, True, None)
                    return SatResult.SAT

        # Tier 5: full DPLL(T) on the shared incremental solver.
        self._last_core = None
        result, model = self._solve(
            conjuncts, int_budget, corrupt=fault == FaultInjector.BAD_MODEL
        )
        if self.cache_enabled and result is not SatResult.UNKNOWN:
            # Never let a model that fails its own conjuncts into the
            # model-eval tier (a corrupted model's *verdict* is still
            # the solver's, but the assignment itself is untrustworthy).
            if model is not None and fault is not None and not model.satisfies(conjuncts):
                model = None
            core = self._last_core if result is SatResult.UNSAT else None
            self._shard(int_budget).record(
                conjuncts, result is SatResult.SAT, model, core=core
            )
        return result

    def reset(self) -> None:
        """Drop all cached state and counters (tests and benchmarks)."""
        self.stats = SolverStats()
        self._shards.clear()

    # -- cross-process cache deltas (see repro.parallel) -----------------------

    def cache_baseline(self) -> dict[int, set[frozenset[Term]]]:
        """Snapshot the exact-tier keys (worker side, right after fork)."""
        return {b: set(shard.exact) for b, shard in self._shards.items()}

    def collect_delta(
        self,
        baseline: dict[int, set[frozenset[Term]]],
        stats_baseline: SolverStats,
    ) -> CacheDelta:
        """Everything cached since ``baseline``, wire-encoded for the
        parent.  Only definite verdicts live in the exact tier (UNKNOWN
        is never cached), so every shipped entry is sound to reuse: SAT
        is a function of the formula, not of which process solved it."""
        keys: list[tuple[int, frozenset[Term], bool, bool, bool]] = []
        for int_budget, shard in self._shards.items():
            seen = baseline.get(int_budget, set())
            # Set views of the tier deques: membership per entry must be
            # O(1), not a scan of up to MAX_SETS frozensets (that scan
            # dominated the whole delta collection).
            in_sat_sets = set(shard.sat_sets)
            in_unsat_cores = set(shard.unsat_cores)
            for key, verdict in shard.exact.items():
                if key in seen:
                    continue
                keys.append(
                    (
                        int_budget,
                        key,
                        verdict,
                        key in in_sat_sets,
                        key in in_unsat_cores,
                    )
                )
        return self._encode_delta(keys, stats_baseline)

    def cache_mark(self) -> dict[int, tuple[int, int]]:
        """An O(#shards) position marker for :meth:`collect_delta_since`:
        per shard, the eviction-reset count and the insertion-journal
        length.  The cheap replacement for :meth:`cache_baseline` in the
        pooled ``repro serve`` workers, where a per-request O(cache)
        snapshot would eat the isolation budget on every warm request."""
        return {
            b: (shard.resets, len(shard.journal))
            for b, shard in self._shards.items()
        }

    def collect_delta_since(
        self, mark: dict[int, tuple[int, int]], stats_baseline: SolverStats
    ) -> CacheDelta:
        """Everything cached since ``mark`` (a :meth:`cache_mark`),
        wire-encoded like :meth:`collect_delta` but read as a journal
        suffix — O(entries gained), so an all-hits warm request pays
        nothing.  A shard evicted since the mark contributes its whole
        (restarted) journal: every surviving entry postdates the mark."""
        keys: list[tuple[int, frozenset[Term], bool, bool, bool]] = []
        for int_budget, shard in self._shards.items():
            resets, position = mark.get(int_budget, (0, 0))
            if shard.resets != resets:
                position = 0
            if position >= len(shard.journal):
                continue
            in_sat_sets = set(shard.sat_sets)  # O(1) membership, as above
            in_unsat_cores = set(shard.unsat_cores)
            for key in shard.journal[position:]:
                verdict = shard.exact.get(key)
                if verdict is None:
                    continue  # evicted mid-generation cannot happen; belt
                keys.append(
                    (
                        int_budget,
                        key,
                        verdict,
                        key in in_sat_sets,
                        key in in_unsat_cores,
                    )
                )
        return self._encode_delta(keys, stats_baseline)

    def _encode_delta(
        self,
        keys: list[tuple[int, frozenset[Term], bool, bool, bool]],
        stats_baseline: SolverStats,
    ) -> CacheDelta:
        flat: list[Term] = []
        entries: list[tuple[int, tuple[int, ...], bool, bool, bool]] = []
        for int_budget, key, verdict, in_sats, in_cores in keys:
            positions = tuple(range(len(flat), len(flat) + len(key)))
            flat.extend(key)
            entries.append((int_budget, positions, verdict, in_sats, in_cores))
        return CacheDelta(
            wire=to_wire_many(flat),
            entries=entries,
            stats=self.stats.perf_delta_since(stats_baseline),
        )

    def merge_delta(self, delta: CacheDelta) -> int:
        """Fold a worker's :class:`CacheDelta` into this service's cache
        and stats; returns the number of entries actually imported.
        Callers merge deltas in a deterministic (block-name) order so
        the cache contents are reproducible run to run."""
        imported = self._import_entries(delta)
        self.stats.merge_perf(delta.stats)
        self.stats.cache_entries_imported += imported
        return imported

    def _import_entries(self, delta: CacheDelta) -> int:
        roots = from_wire_many(delta.wire)
        imported = 0
        # Per-shard set views of the tier deques, built once and kept in
        # step with the appends below: the dedup checks must be O(1),
        # not O(MAX_SETS) scans per imported entry.
        sat_views: dict[int, set[frozenset[Term]]] = {}
        core_views: dict[int, set[frozenset[Term]]] = {}
        for int_budget, positions, verdict, in_sats, in_cores in delta.entries:
            key = frozenset(roots[i] for i in positions)
            shard = self._shard(int_budget)
            if key not in shard.exact:
                shard.put(key, verdict)
                imported += 1
            if in_sats:
                view = sat_views.get(int_budget)
                if view is None:
                    view = sat_views[int_budget] = set(shard.sat_sets)
                if key not in view:
                    shard.sat_sets.append(key)
                    view.add(key)
            if in_cores:
                view = core_views.get(int_budget)
                if view is None:
                    view = core_views[int_budget] = set(shard.unsat_cores)
                if key not in view:
                    shard.unsat_cores.append(key)
                    view.add(key)
        return imported

    # -- cross-run cache persistence (see repro.store) -------------------------

    def export_cache(self) -> CacheDelta:
        """Every exact-tier entry of every shard, wire-encoded — the
        persistable form of the whole cache, not a delta.  Reuses the
        :class:`CacheDelta` shape against an empty baseline; the stats
        payload is zeroed (a store records verdicts, not the solve time
        some other run paid for them).  Models are not exported, same
        as deltas: the model-eval tier refills from live solves."""
        delta = self.collect_delta({}, self.stats)
        return CacheDelta(wire=delta.wire, entries=delta.entries, stats=SolverStats())

    def import_cache(self, delta: CacheDelta) -> int:
        """Load a persisted :meth:`export_cache` into the shards;
        returns the number of entries imported.  Unlike
        :meth:`merge_delta` this merges no perf counters — a disk
        store's history is not this run's work — so the run's own
        tier/timing stats stay honest.  Every entry is a definite
        verdict of its formula (UNKNOWN is never cached), so importing
        can accelerate but never change any answer."""
        return self._import_entries(delta)

    # -- internals -------------------------------------------------------------

    #: Counter → trace tier label, in answer-precedence order (a
    #: BAD_MODEL fault still does a full solve: report "full_solve").
    _TIER_COUNTERS = (
        ("syntactic_hits", "syntactic"),
        ("exact_hits", "exact"),
        ("subset_hits", "subset"),
        ("superset_hits", "superset"),
        ("model_eval_hits", "model_eval"),
        ("full_solves", "full_solve"),
        ("injected_faults", "fault"),
    )

    def _tier_snapshot(self) -> tuple[int, ...]:
        """Tier counters before a query (trace spans diff them after)."""
        return tuple(getattr(self.stats, name) for name, _ in self._TIER_COUNTERS)

    def _tier_hit(self, before: tuple[int, ...]) -> str:
        """Which cache tier answered the query since ``before``."""
        for (name, label), prev in zip(self._TIER_COUNTERS, before):
            if getattr(self.stats, name) > prev:
                return label
        return "uncached"

    def _shard(self, int_budget: int) -> _Shard:
        shard = self._shards.get(int_budget)
        if shard is None:
            shard = self._shards[int_budget] = _Shard()
        return shard

    @staticmethod
    def _normalize(formulas: Iterable[Term]) -> Optional[frozenset[Term]]:
        """Flatten to a canonical conjunct set; None means literally UNSAT."""
        out: set[Term] = set()
        stack = list(formulas)
        while stack:
            term = stack.pop()
            if term.sort != BOOL:
                raise SortError(f"assertions must be boolean, got {term.sort}")
            if term.kind is Kind.AND:
                stack.extend(term.args)
                continue
            if term.kind is Kind.CONST_BOOL:
                if term.payload:
                    continue  # drop literal true
                return None  # literal false
            out.add(term)
        return frozenset(out)

    @staticmethod
    def _corrupted(model: Model) -> Model:
        """A coherent but wrong total interpretation (BAD_MODEL faults)."""
        return Model(
            {term: not value for term, value in model._bools.items()},
            {term: -value - 1 for term, value in model._ints.items()},
            model._apps,
            model._select_decls,
        )

    def _next_fault(self) -> Optional[str]:
        if self.fault_injector is None:
            return None
        fault = self.fault_injector.next_fault()
        if fault is not None:
            self.stats.injected_faults += 1
        return fault

    def _solve(
        self,
        conjuncts: frozenset[Term],
        int_budget: int,
        corrupt: bool = False,
        need_model: bool = False,
    ) -> tuple[SatResult, Optional[Model]]:
        deadline: Optional[float] = None
        if self.budget is not None:
            if self.budget.expired():
                # The run is over: refuse the solve outright, cheaply.
                self.stats.deadline_breaches += 1
                return SatResult.UNKNOWN, None
            deadline = self.budget.query_deadline_at()
        result, model = self._solve_once(conjuncts, int_budget, deadline, need_model)
        if corrupt and model is not None:
            model = self._corrupted(model)
        if (
            self.paranoid
            and result is SatResult.SAT
            and model is not None
            and not model.satisfies(conjuncts)
        ):
            # Trust ring 2: the solver handed back a "model" that does not
            # satisfy its own query.  Count it, drop it, and re-solve cold
            # on a fresh solver; if that one lies too, the query is
            # undecided as far as we are concerned.
            self.stats.self_check_failures += 1
            result, model = self._solve_once(
                conjuncts, int_budget, deadline, need_model
            )
            if (
                result is SatResult.SAT
                and model is not None
                and not model.satisfies(conjuncts)
            ):
                return SatResult.UNKNOWN, None
        return result, model

    def _solve_once(
        self,
        conjuncts: frozenset[Term],
        int_budget: int,
        deadline: Optional[float],
        need_model: bool = False,
    ) -> tuple[SatResult, Optional[Model]]:
        strategy = self.strategy
        if strategy == "intfirst" and not need_model:
            # Pure linear conjunctions skip the Tseitin/CDCL machinery
            # (and UNSAT-core minimization) entirely: one direct call to
            # the integer engine decides them.  Non-conjunctive structure
            # falls through to the normal lazy loop.
            direct = self._solve_integer_direct(conjuncts, int_budget)
            if direct is not None:
                return direct
        goal = conjuncts
        if strategy == "simplify":
            # Verdict-preserving rewrite of each conjunct before
            # encoding; the cache key stays the original conjunct set.
            from repro.smt.simplify import simplify

            goal = frozenset(simplify(c) for c in conjuncts)
        self.stats.full_solves += 1
        solver = Solver(
            int_budget=int_budget,
            deadline=deadline,
            flip_phase=strategy == "flip",
            cancel=self.cancel_check,
        )
        solver.add(*goal)
        started = time.perf_counter()
        try:
            result = solver.check()
        except SolverError:
            # A solver-internal failure is contained at the service
            # boundary: degrade to an uncached UNKNOWN, like a timeout.
            self.stats.solver_errors_contained += 1
            result = SatResult.UNKNOWN
        finally:
            self.stats.solve_seconds += time.perf_counter() - started
            self.stats.sat_conflicts += solver.stats["sat_conflicts"]
            self.stats.sat_restarts += solver.stats["sat_restarts"]
            self.stats.theory_rounds += solver.stats["theory_rounds"]
        if solver.timed_out:
            self.stats.query_timeouts += 1
        model = solver.model() if result is SatResult.SAT else None
        return result, model

    def _solve_integer_direct(
        self, conjuncts: frozenset[Term], int_budget: int
    ) -> Optional[tuple[SatResult, Optional[Model]]]:
        """The "intfirst" strategy's fast path: if every conjunct is a
        linear-arithmetic literal, one :func:`check_integer` call decides
        the conjunction.  Returns None (fall back to the lazy loop) on
        any non-literal conjunct.  No model is produced — worker-side
        only, where deltas never ship models anyway.

        On UNSAT the conjunction is additionally *minimized* with the
        same deletion probing the lazy loop applies to theory lemmas,
        but at the conjunct level: the resulting core is recorded in
        the superset tier (see :meth:`_Shard.record`), where it keeps
        answering future queries that share the contradiction but
        differ in unrelated conjuncts.  Each probe is one cheap integer
        check — worth it precisely because the worker's delta ships the
        core to the authoritative pass."""
        pairs: list[tuple[Term, list[LinAtom]]] = []
        for term in conjuncts:
            lits = _linear_literal_atoms(term)
            if lits is None:
                return None
            pairs.append((term, lits))
        self.stats.full_solves += 1
        started = time.perf_counter()
        try:
            result = check_integer(
                [a for _, lits in pairs for a in lits], budget=int_budget
            )
            if not result.feasible:
                self._last_core = self._minimize_conjunct_core(pairs, int_budget)
        except IntBudgetExceeded:
            # Same degradation the lazy loop's theory check would reach.
            return SatResult.UNKNOWN, None
        finally:
            self.stats.solve_seconds += time.perf_counter() - started
            self.stats.theory_rounds += 1
        return (SatResult.SAT if result.feasible else SatResult.UNSAT), None

    #: Above this many conjuncts, deletion-based minimization costs more
    #: than the re-solves it can ever save (mirrors Solver's own bound).
    MAX_CORE_CONJUNCTS = 40

    def _minimize_conjunct_core(
        self, pairs: list[tuple[Term, list[LinAtom]]], int_budget: int
    ) -> Optional[frozenset[Term]]:
        """Deletion-based minimization of an infeasible conjunct set;
        returns None when no conjunct could be dropped (the full key is
        then recorded, exactly as before)."""
        if len(pairs) > self.MAX_CORE_CONJUNCTS:
            return None
        core = list(pairs)
        i = 0
        while i < len(core):
            if self.cancel_check is not None and self.cancel_check():
                raise SatCancelled  # race lost mid-minimization
            candidate = core[:i] + core[i + 1 :]
            try:
                result = check_integer(
                    [a for _, lits in candidate for a in lits],
                    budget=int_budget,
                )
            except IntBudgetExceeded:
                i += 1
                continue
            if result.feasible:
                i += 1
            else:
                core = candidate
        if len(core) == len(pairs):
            return None
        self.stats.cores_minimized += 1
        return frozenset(term for term, _ in core)


# ---------------------------------------------------------------------------
# The process-wide service instance
# ---------------------------------------------------------------------------

_service: Optional[SolverService] = None


def get_service() -> SolverService:
    """The process-wide solver service (created on first use)."""
    global _service
    if _service is None:
        _service = SolverService()
    return _service


def set_service(service: SolverService) -> SolverService:
    """Install a specific service instance (benchmark A/B setups)."""
    global _service
    _service = service
    return service


def reset_service() -> SolverService:
    """Replace the process-wide service with a fresh one."""
    return set_service(SolverService())
