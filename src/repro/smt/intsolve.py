"""Integer feasibility for conjunctions of linear atoms.

Strategy: gcd-tightened atoms (see :mod:`repro.smt.linear`) + exact
rational simplex + branch-and-bound on fractional variables.  Tightening
already refutes the classic divisibility traps (e.g. ``3x - 3y = 1``);
branch-and-bound resolves the rest of the population MIX generates.

Branch-and-bound over unbounded polyhedra is not a decision procedure for
full linear integer arithmetic, so the search carries a budget; exhausting
it raises :class:`IntBudgetExceeded` and the top-level solver reports
``UNKNOWN`` rather than guessing.  None of the formulas produced by the
analyses in this repository come close to the budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import ceil, floor
from typing import Hashable, Optional, Sequence

from repro.smt.linear import LinAtom
from repro.smt.simplex import check_rational


class IntBudgetExceeded(Exception):
    """Branch-and-bound ran out of budget; feasibility is unknown."""


@dataclass
class IntResult:
    feasible: bool
    model: dict[Hashable, int]


Bounds = dict[Hashable, tuple[Optional[Fraction], Optional[Fraction]]]


def check_integer(atoms: Sequence[LinAtom], budget: int = 4000) -> IntResult:
    """Decide integer feasibility of the conjunction of ``atoms``."""
    for atom in atoms:
        if atom.is_trivially_false:
            return IntResult(False, {})
    nontrivial = [a for a in atoms if a.coeffs]
    return _branch(nontrivial, {}, _Budget(budget))


class _Budget:
    def __init__(self, remaining: int) -> None:
        self.remaining = remaining

    def spend(self) -> None:
        self.remaining -= 1
        if self.remaining < 0:
            raise IntBudgetExceeded()


def _branch(atoms: Sequence[LinAtom], bounds: Bounds, budget: _Budget) -> IntResult:
    # Depth-first with an explicit stack: branch chains can run hundreds
    # of cuts deep on wide integer ranges, which would blow the Python
    # recursion limit long before the search budget.
    stack: list[Bounds] = [bounds]
    while stack:
        bounds = stack.pop()
        budget.spend()
        result = check_rational(atoms, bounds)
        if not result.feasible:
            continue
        fractional = _pick_fractional(result.assignment)
        if fractional is None:
            model = {
                v: int(value)
                for v, value in result.assignment.items()
                if not isinstance(v, tuple)  # drop internal slack variables
            }
            return IntResult(True, model)
        v, value = fractional
        lo, hi = bounds.get(v, (None, None))
        down = dict(bounds)
        down[v] = (lo, Fraction(floor(value)))
        up = dict(bounds)
        up[v] = (Fraction(ceil(value)), hi)
        stack.append(up)
        stack.append(down)  # LIFO: the down branch is explored first
    return IntResult(False, {})


def _pick_fractional(
    assignment: dict[Hashable, Fraction]
) -> Optional[tuple[Hashable, Fraction]]:
    for v, value in assignment.items():
        if isinstance(v, tuple):
            continue  # slack or internal variables need not be integral
        if value.denominator != 1:
            return v, value
    return None
