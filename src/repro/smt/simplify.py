"""Term simplification: constant folding, boolean identities, and
read-over-write array rewriting.

Simplification is semantics-preserving and idempotent on its output.  The
array rewrite

    select(store(a, i, v), j)  -->  ite(i = j, v, select(a, j))

is load-bearing for the solver: after it runs, all remaining ``select``
terms read from *base* array variables, so they can be treated as
uninterpreted applications (Ackermann expansion in
:mod:`repro.smt.preprocess`).  The McCarthy memory logs built by the
symbolic executor (Figure 3 of the paper) are exactly chains of stores
over an arbitrary base memory, so this rewrite fully eliminates stores.
"""

from __future__ import annotations

from repro.smt.terms import (
    Kind,
    Term,
    add,
    and_,
    bool_const,
    distinct,
    eq,
    iff,
    implies,
    int_const,
    ite,
    le,
    lt,
    mul,
    neg,
    not_,
    or_,
    select,
    store,
)


def simplify(term: Term) -> Term:
    """Return a simplified term equivalent to ``term``."""
    return _Simplifier().run(term)


class _Simplifier:
    def __init__(self) -> None:
        self._memo: dict[Term, Term] = {}

    def run(self, term: Term) -> Term:
        cached = self._memo.get(term)
        if cached is not None:
            return cached
        args = tuple(self.run(a) for a in term.args)
        result = self._rebuild(term, args)
        self._memo[term] = result
        return result

    def _rebuild(self, term: Term, args: tuple[Term, ...]) -> Term:
        kind = term.kind
        handler = _HANDLERS.get(kind)
        if handler is not None:
            return handler(term, args)
        if args == term.args:
            return term
        # Kinds without special handling (VAR, constants, APPLY, STORE).
        return _reapply(term, args)


def _reapply(term: Term, args: tuple[Term, ...]) -> Term:
    """Rebuild ``term`` with new arguments, preserving kind and payload."""
    kind = term.kind
    if kind is Kind.NOT:
        return not_(args[0])
    if kind is Kind.AND:
        return and_(*args)
    if kind is Kind.OR:
        return or_(*args)
    if kind is Kind.IMPLIES:
        return implies(args[0], args[1])
    if kind is Kind.IFF:
        return iff(args[0], args[1])
    if kind is Kind.ITE:
        return ite(args[0], args[1], args[2])
    if kind is Kind.EQ:
        return eq(args[0], args[1])
    if kind is Kind.DISTINCT:
        return distinct(*args)
    if kind is Kind.LE:
        return le(args[0], args[1])
    if kind is Kind.LT:
        return lt(args[0], args[1])
    if kind is Kind.ADD:
        return add(*args)
    if kind is Kind.MUL:
        return mul(args[0], args[1])
    if kind is Kind.NEG:
        return neg(args[0])
    if kind is Kind.SELECT:
        return select(args[0], args[1])
    if kind is Kind.STORE:
        return store(args[0], args[1], args[2])
    if kind is Kind.APPLY:
        return term.payload(*args)  # type: ignore[operator]
    return term


def _simp_not(term: Term, args: tuple[Term, ...]) -> Term:
    (arg,) = args
    if arg.is_true:
        return bool_const(False)
    if arg.is_false:
        return bool_const(True)
    if arg.kind is Kind.NOT:
        return arg.args[0]
    return not_(arg)


def _simp_and(term: Term, args: tuple[Term, ...]) -> Term:
    flat: list[Term] = []
    for a in args:
        if a.is_false:
            return bool_const(False)
        if a.is_true:
            continue
        if a.kind is Kind.AND:
            flat.extend(a.args)
        else:
            flat.append(a)
    deduped = _dedupe(flat)
    if _has_complementary(deduped):
        return bool_const(False)
    return and_(*deduped)


def _simp_or(term: Term, args: tuple[Term, ...]) -> Term:
    flat: list[Term] = []
    for a in args:
        if a.is_true:
            return bool_const(True)
        if a.is_false:
            continue
        if a.kind is Kind.OR:
            flat.extend(a.args)
        else:
            flat.append(a)
    deduped = _dedupe(flat)
    if _has_complementary(deduped):
        return bool_const(True)
    return or_(*deduped)


def _dedupe(items: list[Term]) -> list[Term]:
    seen: set[Term] = set()
    out: list[Term] = []
    for item in items:
        if item not in seen:
            seen.add(item)
            out.append(item)
    return out


def _has_complementary(items: list[Term]) -> bool:
    present = set(items)
    for item in items:
        if item.kind is Kind.NOT and item.args[0] in present:
            return True
    return False


def _simp_implies(term: Term, args: tuple[Term, ...]) -> Term:
    antecedent, consequent = args
    if antecedent.is_false or consequent.is_true:
        return bool_const(True)
    if antecedent.is_true:
        return consequent
    if consequent.is_false:
        return _simp_not(term, (antecedent,))
    return implies(antecedent, consequent)


def _simp_iff(term: Term, args: tuple[Term, ...]) -> Term:
    left, right = args
    if left is right:
        return bool_const(True)
    if left.is_true:
        return right
    if right.is_true:
        return left
    if left.is_false:
        return _simp_not(term, (right,))
    if right.is_false:
        return _simp_not(term, (left,))
    return iff(left, right)


def _simp_ite(term: Term, args: tuple[Term, ...]) -> Term:
    cond, then, els = args
    if cond.is_true:
        return then
    if cond.is_false:
        return els
    if then is els:
        return then
    if then.is_true and els.is_false:
        return cond
    if then.is_false and els.is_true:
        return _simp_not(term, (cond,))
    return ite(cond, then, els)


def _simp_eq(term: Term, args: tuple[Term, ...]) -> Term:
    left, right = args
    if left is right:
        return bool_const(True)
    if left.is_const and right.is_const:
        return bool_const(left.payload == right.payload)
    # (ite c k1 k2) = k  collapses to c / ¬c / false when the arms are
    # constants — the C frontend's int-encoded truth values (`ite c 1 0`
    # compared against 0) otherwise reach the solver as opaque ite atoms
    # it can only case-split on.
    for ite_side, const_side in ((left, right), (right, left)):
        if (
            ite_side.kind is Kind.ITE
            and const_side.is_const
            and ite_side.args[1].is_const
            and ite_side.args[2].is_const
        ):
            cond = ite_side.args[0]
            then_hit = ite_side.args[1].payload == const_side.payload
            else_hit = ite_side.args[2].payload == const_side.payload
            if then_hit and else_hit:
                return bool_const(True)
            if then_hit:
                return cond
            if else_hit:
                return _simp_not(term, (cond,))
            return bool_const(False)
    return eq(left, right)


def _simp_distinct(term: Term, args: tuple[Term, ...]) -> Term:
    consts = [a for a in args if a.is_const]
    if len(set(a.payload for a in consts)) != len(consts):
        return bool_const(False)
    if len(set(args)) != len(args):
        return bool_const(False)
    if len(consts) == len(args):
        return bool_const(True)
    return distinct(*args)


def _simp_le(term: Term, args: tuple[Term, ...]) -> Term:
    left, right = args
    if left is right:
        return bool_const(True)
    if left.is_const and right.is_const:
        return bool_const(left.payload <= right.payload)  # type: ignore[operator]
    return le(left, right)


def _simp_lt(term: Term, args: tuple[Term, ...]) -> Term:
    left, right = args
    if left is right:
        return bool_const(False)
    if left.is_const and right.is_const:
        return bool_const(left.payload < right.payload)  # type: ignore[operator]
    return lt(left, right)


def _simp_add(term: Term, args: tuple[Term, ...]) -> Term:
    constant = 0
    rest: list[Term] = []
    for a in args:
        if a.kind is Kind.ADD:
            inner_args = a.args
        else:
            inner_args = (a,)
        for inner in inner_args:
            if inner.is_const:
                constant += inner.payload  # type: ignore[operator]
            else:
                rest.append(inner)
    if not rest:
        return int_const(constant)
    if constant:
        rest.append(int_const(constant))
    return add(*rest)


def _simp_mul(term: Term, args: tuple[Term, ...]) -> Term:
    left, right = args
    if left.is_const and right.is_const:
        return int_const(left.payload * right.payload)  # type: ignore[operator]
    for const, other in ((left, right), (right, left)):
        if const.is_const:
            if const.payload == 0:
                return int_const(0)
            if const.payload == 1:
                return other
    return mul(left, right)


def _simp_neg(term: Term, args: tuple[Term, ...]) -> Term:
    (arg,) = args
    if arg.is_const:
        return int_const(-arg.payload)  # type: ignore[operator]
    if arg.kind is Kind.NEG:
        return arg.args[0]
    return neg(arg)


def _simp_select(term: Term, args: tuple[Term, ...]) -> Term:
    array, index = args
    # Read-over-write: unroll the store chain, turning positional matches
    # into ITEs so only base-array selects remain.
    while array.kind is Kind.STORE:
        base, written_index, written_value = array.args
        if written_index is index:
            return written_value
        if written_index.is_const and index.is_const:
            # Distinct constants cannot alias; skip this write.
            array = base
            continue
        inner = _simp_select(term, (base, index))
        return _simp_ite(
            term, (_simp_eq(term, (written_index, index)), written_value, inner)
        )
    return select(array, index)


_HANDLERS = {
    Kind.NOT: _simp_not,
    Kind.AND: _simp_and,
    Kind.OR: _simp_or,
    Kind.IMPLIES: _simp_implies,
    Kind.IFF: _simp_iff,
    Kind.ITE: _simp_ite,
    Kind.EQ: _simp_eq,
    Kind.DISTINCT: _simp_distinct,
    Kind.LE: _simp_le,
    Kind.LT: _simp_lt,
    Kind.ADD: _simp_add,
    Kind.MUL: _simp_mul,
    Kind.NEG: _simp_neg,
    Kind.SELECT: _simp_select,
}
