"""Exact rational simplex for feasibility of conjunctions of linear atoms.

This is the "general simplex" of Dutertre and de Moura (the algorithm used
inside most SMT solvers, including the paper's STP-era contemporaries):
every input row ``e <= k`` introduces a slack variable ``s = e`` with upper
bound ``k``; the tableau expresses basic variables over non-basic ones; a
pivoting loop with Bland's rule repairs bound violations and either reaches
a feasible assignment or proves infeasibility.

All arithmetic is exact (:class:`fractions.Fraction`), so the verdicts are
sound — there is no floating-point drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Hashable, Iterable, Optional

from repro.smt.linear import LinAtom


@dataclass
class SimplexResult:
    feasible: bool
    assignment: dict[Hashable, Fraction] = field(default_factory=dict)


class Simplex:
    """Feasibility checker over rationals with per-variable bounds."""

    def __init__(self) -> None:
        # Tableau: rows[basic] = {nonbasic: coeff}; basic = sum(coeff * nb).
        self._rows: dict[Hashable, dict[Hashable, Fraction]] = {}
        self._assignment: dict[Hashable, Fraction] = {}
        self._lower: dict[Hashable, Fraction] = {}
        self._upper: dict[Hashable, Fraction] = {}
        self._slack_index: dict[tuple[tuple[Hashable, int], ...], Hashable] = {}
        self._order: dict[Hashable, int] = {}
        self._next_order = 0

    # -- construction --------------------------------------------------------

    def _register(self, v: Hashable) -> None:
        if v not in self._order:
            self._order[v] = self._next_order
            self._next_order += 1
            self._assignment.setdefault(v, Fraction(0))

    def add_atom(self, atom: LinAtom) -> None:
        """Assert ``atom`` (``sum coeffs <= constant``)."""
        if not atom.coeffs:
            if atom.constant < 0:
                # Trivially false row: encode as 0 <= -1 via an impossible
                # bound on a dedicated variable.
                v = ("__false__",)
                self._register(v)
                self._set_upper(v, Fraction(-1))
                self._set_lower(v, Fraction(0))
            return
        if len(atom.coeffs) == 1:
            ((v, c),) = atom.coeffs
            self._register(v)
            bound = Fraction(atom.constant, c)
            if c > 0:
                self._set_upper(v, bound)
            else:
                self._set_lower(v, bound)
            return
        key = atom.coeffs
        slack = self._slack_index.get(key)
        if slack is None:
            slack = ("__slack__", len(self._slack_index))
            self._slack_index[key] = slack
            self._register(slack)
            row: dict[Hashable, Fraction] = {}
            for v, c in atom.coeffs:
                self._register(v)
                row[v] = Fraction(c)
            self._rows[slack] = row
            self._recompute(slack)
        self._set_upper(slack, Fraction(atom.constant))

    def _set_upper(self, v: Hashable, bound: Fraction) -> None:
        current = self._upper.get(v)
        if current is None or bound < current:
            self._upper[v] = bound

    def _set_lower(self, v: Hashable, bound: Fraction) -> None:
        current = self._lower.get(v)
        if current is None or bound > current:
            self._lower[v] = bound

    def set_bounds(
        self, v: Hashable, lower: Optional[Fraction], upper: Optional[Fraction]
    ) -> None:
        """Externally constrain a variable (used by branch-and-bound)."""
        self._register(v)
        if lower is not None:
            self._set_lower(v, lower)
        if upper is not None:
            self._set_upper(v, upper)

    def _recompute(self, basic: Hashable) -> None:
        row = self._rows[basic]
        self._assignment[basic] = sum(
            (c * self._assignment[v] for v, c in row.items()), Fraction(0)
        )

    # -- solving --------------------------------------------------------------

    def check(self) -> SimplexResult:
        """Decide feasibility of all asserted rows and bounds."""
        # Immediately contradictory bounds are infeasible regardless of the
        # tableau, and catching them here keeps the pivot loop cycle-free.
        for v in self._order:
            lo, hi = self._lower.get(v), self._upper.get(v)
            if lo is not None and hi is not None and lo > hi:
                return SimplexResult(False)
        # Ensure non-basic variables sit within their own bounds.
        for v in list(self._order):
            if v in self._rows:
                continue
            value = self._assignment[v]
            lo, hi = self._lower.get(v), self._upper.get(v)
            if lo is not None and value < lo:
                self._update_nonbasic(v, lo)
            elif hi is not None and value > hi:
                self._update_nonbasic(v, hi)
        while True:
            violated = self._find_violated_basic()
            if violated is None:
                return SimplexResult(True, dict(self._assignment))
            basic, need_increase = violated
            pivot = self._find_pivot(basic, need_increase)
            if pivot is None:
                return SimplexResult(False)
            target = (
                self._lower[basic] if need_increase else self._upper[basic]
            )
            self._pivot_and_update(basic, pivot, target)

    def _find_violated_basic(self) -> Optional[tuple[Hashable, bool]]:
        candidates = sorted(self._rows, key=lambda v: self._order[v])
        for basic in candidates:
            value = self._assignment[basic]
            lo = self._lower.get(basic)
            if lo is not None and value < lo:
                return basic, True
            hi = self._upper.get(basic)
            if hi is not None and value > hi:
                return basic, False
        return None

    def _find_pivot(self, basic: Hashable, need_increase: bool) -> Optional[Hashable]:
        row = self._rows[basic]
        for nonbasic in sorted(row, key=lambda v: self._order[v]):  # Bland's rule
            coeff = row[nonbasic]
            value = self._assignment[nonbasic]
            hi = self._upper.get(nonbasic)
            lo = self._lower.get(nonbasic)
            if need_increase:
                can_help = (coeff > 0 and (hi is None or value < hi)) or (
                    coeff < 0 and (lo is None or value > lo)
                )
            else:
                can_help = (coeff > 0 and (lo is None or value > lo)) or (
                    coeff < 0 and (hi is None or value < hi)
                )
            if can_help:
                return nonbasic
        return None

    def _update_nonbasic(self, v: Hashable, value: Fraction) -> None:
        delta = value - self._assignment[v]
        if delta == 0:
            return
        self._assignment[v] = value
        for basic, row in self._rows.items():
            coeff = row.get(v)
            if coeff:
                self._assignment[basic] += coeff * delta

    def _pivot_and_update(
        self, basic: Hashable, nonbasic: Hashable, target: Fraction
    ) -> None:
        row = self._rows.pop(basic)
        coeff = row.pop(nonbasic)
        # basic = coeff * nonbasic + rest  =>  nonbasic = (basic - rest)/coeff
        new_row: dict[Hashable, Fraction] = {basic: Fraction(1) / coeff}
        for v, c in row.items():
            new_row[v] = -c / coeff
        self._rows[nonbasic] = new_row
        # Substitute into every other row.
        for other, other_row in self._rows.items():
            if other is nonbasic:
                continue
            c = other_row.pop(nonbasic, None)
            if c:
                for v, nc in new_row.items():
                    updated = other_row.get(v, Fraction(0)) + c * nc
                    if updated:
                        other_row[v] = updated
                    else:
                        other_row.pop(v, None)
        # Drive the (old) basic variable's value to its violated bound by
        # moving the (new) basic variable.
        delta = target - self._assignment[basic]
        self._assignment[basic] = target
        self._assignment[nonbasic] += delta / coeff
        for b, r in self._rows.items():
            if b is nonbasic:
                continue
            self._recompute(b)


def check_rational(
    atoms: Iterable[LinAtom],
    bounds: Optional[dict[Hashable, tuple[Optional[Fraction], Optional[Fraction]]]] = None,
) -> SimplexResult:
    """One-shot rational feasibility of a conjunction of atoms."""
    simplex = Simplex()
    for atom in atoms:
        simplex.add_atom(atom)
    if bounds:
        for v, (lo, hi) in bounds.items():
            simplex.set_bounds(v, lo, hi)
    return simplex.check()
