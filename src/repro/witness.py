"""Trust ring 1: machine-checked witnesses for reported error paths.

MIX's soundness story (Theorem 1) is stated against big-step concrete
semantics we already ship as runnable code (:mod:`repro.lang.interp` and
:mod:`repro.mixy.c.interp`) — yet nothing in the tower ever checked a
reported error path against them, so a bug in the executor, the mix
rules, or a cache tier silently became a wrong report.  Following the
*weak completeness* discipline (every reported bug should come with a
machine-checked witness), this module closes the loop:

1. ask the solver service for a **model** of the error path's condition;
2. concretize the model over the block's inputs (the same
   model-to-inputs plumbing the concolic driver uses —
   :func:`repro.symexec.valuation.inputs_from_model`);
3. **replay** those inputs through the concrete interpreter;
4. classify the report:

   - ``CONFIRMED`` — the replay reproduces the error: the diagnostic
     ships with a concrete failing input vector;
   - ``UNCONFIRMED`` — the replay can neither confirm nor contradict the
     report: no model, inputs that cannot be faithfully concretized
     (references, functions), a static-limit diagnostic with no dynamic
     counterpart (loop bound, budget, unsupported construct), or a
     replay that ran out of steps;
   - ``REPLAY_DIVERGED`` — a *faithful* replay finished normally even
     though the path condition claims the error path is taken.  The
     concrete semantics is ground truth, so this is an executor/solver
     bug and is surfaced loudly (counted in ``witnesses_diverged``,
     flagged by the CLI).

Verdicts are counted on the shared :class:`repro.smt.SolverStats`
(``witnesses_confirmed`` / ``witnesses_unconfirmed`` /
``witnesses_diverged``) and threaded into :class:`MixReport` diagnostics
and MIXY warnings behind the ``--validate-witnesses`` CLI flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, unique
from typing import TYPE_CHECKING, Optional

from repro import smt
from repro.lang.ast import Expr
from repro.trace import TRACER
from repro.lang.interp import (
    AssumeViolation,
    CheckFailure,
    EvalBudgetExceeded,
    Interpreter,
    RuntimeTypeError,
)
from repro.symexec.executor import ErrKind, Outcome
from repro.symexec.valuation import Valuation, inputs_from_model
from repro.symexec.values import SymEnv
from repro.typecheck.types import (
    BOOL,
    FunType,
    INT,
    RefType,
    STR,
    Type,
    TypeEnv,
    UNIT,
)

if TYPE_CHECKING:
    from repro.mixy.c.ast import CFunction, CProgram, CType
    from repro.mixy.c.interp import CInterpreter
    from repro.mixy.symexec import CObj, CState


@unique
class WitnessVerdict(Enum):
    """The three-way classification of a replayed error report."""

    CONFIRMED = "CONFIRMED"
    UNCONFIRMED = "UNCONFIRMED"
    REPLAY_DIVERGED = "REPLAY_DIVERGED"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Witness:
    """The replay evidence attached to one diagnostic."""

    verdict: WitnessVerdict
    #: concrete input vector the model concretized to (JSON-able)
    inputs: dict[str, object] = field(default_factory=dict)
    reason: str = ""

    def as_dict(self) -> dict[str, object]:
        return {
            "verdict": self.verdict.value,
            "inputs": dict(self.inputs),
            "reason": self.reason,
        }

    def __str__(self) -> str:
        rendered = ", ".join(f"{k}={v!r}" for k, v in sorted(self.inputs.items()))
        suffix = f" — {self.reason}" if self.reason else ""
        if rendered:
            return f"{self.verdict} (inputs: {rendered}){suffix}"
        return f"{self.verdict}{suffix}"


def _record(witness: Witness) -> Witness:
    stats = smt.get_service().stats
    if witness.verdict is WitnessVerdict.CONFIRMED:
        stats.witnesses_confirmed += 1
    elif witness.verdict is WitnessVerdict.REPLAY_DIVERGED:
        stats.witnesses_diverged += 1
    else:
        stats.witnesses_unconfirmed += 1
    return witness


# ---------------------------------------------------------------------------
# MIX: replaying a failing path of a symbolic block through lang.interp
# ---------------------------------------------------------------------------

#: Diagnostics that report a *static analysis limit*, not a dynamic
#: error; the concrete semantics has nothing to reproduce for them.
_STATIC_KINDS = (ErrKind.UNSUPPORTED, ErrKind.LOOP_BOUND, ErrKind.BUDGET)

_SCALARS = (INT, BOOL, STR, UNIT)


def validate_mix_outcome(
    body: Expr,
    gamma: TypeEnv,
    sigma: SymEnv,
    outcome: Outcome,
    step_budget: int = 200_000,
) -> Witness:
    """Replay one failing executor path; classify the report.

    ``sigma`` must be the symbolic context the block was explored under
    (``Σ(x) = α_x : Γ(x)``), so the model's assignment to each α is the
    concrete value of the corresponding input.
    """
    if not TRACER.enabled:
        return _validate_mix_outcome(body, gamma, sigma, outcome, step_budget)
    with TRACER.span("witness.replay", "mix") as span:
        witness = _validate_mix_outcome(body, gamma, sigma, outcome, step_budget)
        span.fields["verdict"] = witness.verdict.value
        return witness


def _validate_mix_outcome(
    body: Expr,
    gamma: TypeEnv,
    sigma: SymEnv,
    outcome: Outcome,
    step_budget: int,
) -> Witness:
    if outcome.kind in _STATIC_KINDS:
        return _record(
            Witness(
                WitnessVerdict.UNCONFIRMED,
                reason=f"{outcome.kind.value if outcome.kind else 'limit'} "
                "diagnostics report a static analysis limit with no dynamic "
                "counterpart",
            )
        )
    try:
        model = smt.get_service().model(outcome.state.condition())
    except smt.SolverError as error:
        return _record(
            Witness(
                WitnessVerdict.UNCONFIRMED,
                reason=f"no model for the path condition ({error})",
            )
        )

    alphas: dict[str, smt.Term] = {}
    scalar_types: dict[str, Type] = {}
    ref_types: dict[str, RefType] = {}
    for name, typ in gamma.items():
        if isinstance(typ, FunType) or _mentions_fun(typ):
            return _record(
                Witness(
                    WitnessVerdict.UNCONFIRMED,
                    reason=f"input {name!r} is function-typed and cannot be "
                    "concretized for replay",
                )
            )
        value = sigma.lookup(name)
        if value is None or value.term is None:
            return _record(
                Witness(
                    WitnessVerdict.UNCONFIRMED,
                    reason=f"input {name!r} has no symbolic term to concretize",
                )
            )
        if isinstance(typ, RefType):
            ref_types[name] = typ
        else:
            alphas[name] = value.term
            scalar_types[name] = typ

    inputs = inputs_from_model(model, alphas, scalar_types)
    # ``symbolic()`` draws along the path, in program order.  The names
    # were recorded on the state as they were minted; the term table is
    # hash-consed, so rebuilding each variable recovers the exact α the
    # path condition constrains.
    sym_names = list(outcome.state.symbolics)
    sym_values = inputs_from_model(
        model,
        {name: smt.var(name, smt.INT) for name in sym_names},
        {name: INT for name in sym_names},
    )
    sym_feed = [int(sym_values[name]) for name in sym_names]
    # Reference-typed inputs cannot be faithfully reconstructed from the
    # model (relating concrete locations to symbolic addresses needs the
    # Λ₀·V·Λ machinery of the appendix proof); replay them best-effort
    # with default-initialized cells and treat the run as approximate.
    exact = not ref_types
    interp = Interpreter(step_budget=step_budget, symbolic_inputs=sym_feed)
    env: dict[str, object] = dict(inputs)
    shown_inputs: dict[str, object] = dict(inputs)
    for name in sym_names:
        shown_inputs[name] = sym_values[name]
    for name, typ in ref_types.items():
        default = _allocate_default(interp, typ.elem)
        env[name] = interp.allocate(default)
        shown_inputs[name] = f"ref({default!r})"

    try:
        interp.eval(body, env)
    except RuntimeTypeError as error:
        if outcome.kind is ErrKind.CHECK:
            return _record(
                Witness(
                    WitnessVerdict.UNCONFIRMED,
                    inputs=shown_inputs,
                    reason=f"replay faulted before reaching the check: {error}",
                )
            )
        return _record(
            Witness(
                WitnessVerdict.CONFIRMED,
                inputs=shown_inputs,
                reason=f"replay reproduces the error: {error}",
            )
        )
    except CheckFailure as error:
        if outcome.kind is ErrKind.CHECK:
            return _record(
                Witness(
                    WitnessVerdict.CONFIRMED,
                    inputs=shown_inputs,
                    reason=f"replay reproduces the property failure: {error}",
                )
            )
        return _record(
            Witness(
                WitnessVerdict.UNCONFIRMED,
                inputs=shown_inputs,
                reason=f"replay tripped an unrelated check: {error}",
            )
        )
    except AssumeViolation as error:
        return _record(
            Witness(
                WitnessVerdict.UNCONFIRMED,
                inputs=shown_inputs,
                reason=f"replay left the assumed region (vacuous run): {error}",
            )
        )
    except EvalBudgetExceeded:
        return _record(
            Witness(
                WitnessVerdict.UNCONFIRMED,
                inputs=shown_inputs,
                reason="replay exceeded its step budget before reaching "
                "(or refuting) the error",
            )
        )
    except Exception as error:  # defensive: a replay bug must not kill analysis
        return _record(
            Witness(
                WitnessVerdict.UNCONFIRMED,
                inputs=shown_inputs,
                reason=f"replay failed unexpectedly: {type(error).__name__}: {error}",
            )
        )

    # The replay finished without the error.  Only a *faithful* replay
    # contradicting a *dynamic* error claim indicts the tool.
    if not exact:
        return _record(
            Witness(
                WitnessVerdict.UNCONFIRMED,
                inputs=shown_inputs,
                reason="replay completed normally, but reference-typed inputs "
                "made it approximate",
            )
        )
    if outcome.origin != "symbolic" or outcome.kind not in (
        ErrKind.TYPE_ERROR,
        ErrKind.CHECK,
    ):
        return _record(
            Witness(
                WitnessVerdict.UNCONFIRMED,
                inputs=shown_inputs,
                reason="the rejection is a static judgment (typed block), not "
                "a dynamic error the replay could reproduce",
            )
        )
    if not _follows_path(sigma, inputs, outcome):
        return _record(
            Witness(
                WitnessVerdict.UNCONFIRMED,
                inputs=shown_inputs,
                reason="the concretized inputs do not take the reported path "
                "(string/abstraction loss during concretization)",
            )
        )
    return _record(
        Witness(
            WitnessVerdict.REPLAY_DIVERGED,
            inputs=shown_inputs,
            reason="faithful replay completed normally although the path "
            "condition claims this error path is taken — executor/solver bug",
        )
    )


def _follows_path(sigma: SymEnv, inputs: dict[str, object], outcome: Outcome) -> bool:
    """``[[g(S')]]^V`` under the concretized inputs (defensive check)."""
    try:
        return Valuation.from_inputs(sigma, inputs).satisfies(outcome)
    except Exception:
        return True  # undecided: do not soften a divergence on a hunch


def _mentions_fun(typ: Type) -> bool:
    while isinstance(typ, RefType):
        typ = typ.elem
    return isinstance(typ, FunType)


def _allocate_default(interp: Interpreter, typ: Type) -> object:
    """A type-correct default value (cells of approximate ref replays)."""
    if typ == INT:
        return 0
    if typ == BOOL:
        return False
    if typ == STR:
        return ""
    if isinstance(typ, RefType):
        return interp.allocate(_allocate_default(interp, typ.elem))
    return None


# ---------------------------------------------------------------------------
# MIXY: replaying a NULL_DEREF warning through the concrete mini-C interpreter
# ---------------------------------------------------------------------------


def validate_c_null_deref(
    program: "CProgram",
    fn: "CFunction",
    args: list[smt.Term],
    initial_state: "CState",
    global_env: dict[str, int],
    fn_addresses: dict[str, int],
    state: "CState",
    ptr: smt.Term,
    exact: bool = True,
    step_budget: int = 200_000,
) -> Witness:
    """Replay one MIXY NULL_DEREF warning; classify the report.

    ``initial_state`` is the block's materialized entry state (what the
    driver built from the qualifier solutions, or the zero-initialized
    globals of symbolic entry); ``state`` and ``ptr`` come from the warn
    site in ``CSymExecutor._resolve_pointer``.  A model of
    ``state.condition() ∧ ptr = 0`` fixes every symbolic input; a
    type-directed translation rebuilds the entry memory inside a
    :class:`CInterpreter`, whose replay of ``fn`` is the ground truth.

    ``exact`` must be False when the block run abstracted anything the
    concrete replay executes for real (typed-call havoc, lazily
    materialized objects, recursion/unsupported truncation): an inexact
    replay that completes normally stays UNCONFIRMED instead of
    indicting the executor with REPLAY_DIVERGED.
    """
    if not TRACER.enabled:
        return _validate_c_null_deref(
            program, fn, args, initial_state, global_env, fn_addresses,
            state, ptr, exact, step_budget,
        )
    with TRACER.span("witness.replay", fn.name) as span:
        witness = _validate_c_null_deref(
            program, fn, args, initial_state, global_env, fn_addresses,
            state, ptr, exact, step_budget,
        )
        span.fields["verdict"] = witness.verdict.value
        return witness


def _validate_c_null_deref(
    program: "CProgram",
    fn: "CFunction",
    args: list[smt.Term],
    initial_state: "CState",
    global_env: dict[str, int],
    fn_addresses: dict[str, int],
    state: "CState",
    ptr: smt.Term,
    exact: bool,
    step_budget: int,
) -> Witness:
    from repro.mixy.c.interp import (
        CInterpreter,
        CNullDereference,
        CRuntimeError,
        CStepBudgetExceeded,
    )

    condition = state.condition()
    if not (ptr.is_const and ptr.payload == 0):
        condition = smt.and_(condition, smt.eq(ptr, smt.int_const(0)))
    try:
        model = smt.get_service().model(condition)
    except smt.SolverError as error:
        return _record(
            Witness(
                WitnessVerdict.UNCONFIRMED,
                reason=f"no model for the NULL branch of the path ({error})",
            )
        )

    interp = CInterpreter(program, step_budget=step_budget)
    translator = _CMemoryTranslator(
        program, interp, model, initial_state, fn_addresses
    )
    try:
        translator.seed_globals(global_env)
        concrete_args = [
            translator.translate(term, param.typ)
            for term, param in zip(args, fn.params)
        ]
    except Exception as error:  # defensive: translation must not kill analysis
        return _record(
            Witness(
                WitnessVerdict.UNCONFIRMED,
                reason="could not concretize the entry state: "
                f"{type(error).__name__}: {error}",
            )
        )
    shown = {p.name: v for p, v in zip(fn.params, concrete_args)}
    exact = exact and translator.exact

    try:
        interp.call(fn.name, concrete_args)
    except CNullDereference as error:
        return _record(
            Witness(
                WitnessVerdict.CONFIRMED,
                inputs=shown,
                reason=f"replay reproduces the NULL dereference: {error}",
            )
        )
    except CStepBudgetExceeded:
        return _record(
            Witness(
                WitnessVerdict.UNCONFIRMED,
                inputs=shown,
                reason="replay exceeded its step budget before reaching "
                "(or refuting) the dereference",
            )
        )
    except CRuntimeError as error:
        return _record(
            Witness(
                WitnessVerdict.UNCONFIRMED,
                inputs=shown,
                reason=f"replay faulted before the dereference: {error}",
            )
        )
    except Exception as error:  # defensive: a replay bug must not kill analysis
        return _record(
            Witness(
                WitnessVerdict.UNCONFIRMED,
                inputs=shown,
                reason=f"replay failed unexpectedly: {type(error).__name__}: {error}",
            )
        )
    if not exact:
        return _record(
            Witness(
                WitnessVerdict.UNCONFIRMED,
                inputs=shown,
                reason="replay completed normally, but the block run was "
                "approximate (typed-call havoc, lazy objects, or truncation)",
            )
        )
    return _record(
        Witness(
            WitnessVerdict.REPLAY_DIVERGED,
            inputs=shown,
            reason="faithful replay completed normally although the path "
            "condition claims NULL is dereferenced — executor/solver bug",
        )
    )


def validate_c_check(
    program: "CProgram",
    fn: "CFunction",
    args: list[smt.Term],
    initial_state: "CState",
    global_env: dict[str, int],
    fn_addresses: dict[str, int],
    state: "CState",
    cond: smt.Term,
    exact: bool = True,
    step_budget: int = 200_000,
) -> Witness:
    """Replay one MIXY CHECK_FAIL warning; classify the report.

    ``state`` is the failing branch's state — its guard already contains
    ``cond = 0``, so a model of ``state.condition()`` fixes concrete
    inputs (including every ``symbolic()`` draw recorded on
    ``state.symbolics``) on which the property should fail.  The replay
    confirms when the concrete run raises :class:`CCheckFailure`.
    """
    if not TRACER.enabled:
        return _validate_c_check(
            program, fn, args, initial_state, global_env, fn_addresses,
            state, cond, exact, step_budget,
        )
    with TRACER.span("witness.replay", fn.name) as span:
        witness = _validate_c_check(
            program, fn, args, initial_state, global_env, fn_addresses,
            state, cond, exact, step_budget,
        )
        span.fields["verdict"] = witness.verdict.value
        return witness


def _validate_c_check(
    program: "CProgram",
    fn: "CFunction",
    args: list[smt.Term],
    initial_state: "CState",
    global_env: dict[str, int],
    fn_addresses: dict[str, int],
    state: "CState",
    cond: smt.Term,
    exact: bool,
    step_budget: int,
) -> Witness:
    from repro.mixy.c.interp import (
        CAssumeViolation,
        CCheckFailure,
        CInterpreter,
        CRuntimeError,
        CStepBudgetExceeded,
    )

    try:
        model = smt.get_service().model(state.condition())
    except smt.SolverError as error:
        return _record(
            Witness(
                WitnessVerdict.UNCONFIRMED,
                reason=f"no model for the failing branch of the check ({error})",
            )
        )

    sym_names = list(state.symbolics)
    sym_values = inputs_from_model(
        model,
        {name: smt.var(name, smt.INT) for name in sym_names},
        {name: INT for name in sym_names},
    )
    sym_feed = [int(sym_values[name]) for name in sym_names]

    interp = CInterpreter(
        program, step_budget=step_budget, symbolic_inputs=sym_feed
    )
    translator = _CMemoryTranslator(
        program, interp, model, initial_state, fn_addresses
    )
    try:
        translator.seed_globals(global_env)
        concrete_args = [
            translator.translate(term, param.typ)
            for term, param in zip(args, fn.params)
        ]
    except Exception as error:  # defensive: translation must not kill analysis
        return _record(
            Witness(
                WitnessVerdict.UNCONFIRMED,
                reason="could not concretize the entry state: "
                f"{type(error).__name__}: {error}",
            )
        )
    shown = {p.name: v for p, v in zip(fn.params, concrete_args)}
    for name in sym_names:
        shown[name] = sym_values[name]
    exact = exact and translator.exact

    try:
        interp.call(fn.name, concrete_args)
    except CCheckFailure as error:
        return _record(
            Witness(
                WitnessVerdict.CONFIRMED,
                inputs=shown,
                reason=f"replay reproduces the property failure: {error}",
            )
        )
    except CAssumeViolation as error:
        return _record(
            Witness(
                WitnessVerdict.UNCONFIRMED,
                inputs=shown,
                reason=f"replay left the assumed region (vacuous run): {error}",
            )
        )
    except CStepBudgetExceeded:
        return _record(
            Witness(
                WitnessVerdict.UNCONFIRMED,
                inputs=shown,
                reason="replay exceeded its step budget before reaching "
                "(or refuting) the check",
            )
        )
    except CRuntimeError as error:
        return _record(
            Witness(
                WitnessVerdict.UNCONFIRMED,
                inputs=shown,
                reason=f"replay faulted before the check: {error}",
            )
        )
    except Exception as error:  # defensive: a replay bug must not kill analysis
        return _record(
            Witness(
                WitnessVerdict.UNCONFIRMED,
                inputs=shown,
                reason=f"replay failed unexpectedly: {type(error).__name__}: {error}",
            )
        )
    if not exact:
        return _record(
            Witness(
                WitnessVerdict.UNCONFIRMED,
                inputs=shown,
                reason="replay completed normally, but the block run was "
                "approximate (typed-call havoc, lazy objects, or truncation)",
            )
        )
    return _record(
        Witness(
            WitnessVerdict.REPLAY_DIVERGED,
            inputs=shown,
            reason="faithful replay completed normally although the path "
            "condition claims the check fails — executor/solver bug",
        )
    )


class _CMemoryTranslator:
    """Type-directed translation of a solver model over symbolic memory
    into concrete :class:`CInterpreter` memory.

    Symbolic object base addresses map to freshly allocated concrete
    cells — an injective renaming, so pointer equalities are preserved.
    Function addresses map through the executor's address table.  A value
    the model picked outside every known object is passed through raw and
    flagged inexact: the replay faults on it as a wild pointer, which
    classifies UNCONFIRMED rather than CONFIRMED/DIVERGED.
    """

    def __init__(
        self,
        program: "CProgram",
        interp: "CInterpreter",
        model: smt.Model,
        state: "CState",
        fn_addresses: dict[str, int],
    ) -> None:
        self.program = program
        self.interp = interp
        self.model = model
        self.state = state
        self.fn_by_address = {addr: name for name, addr in fn_addresses.items()}
        self.memo: dict[int, int] = {}  # symbolic base -> concrete base
        self.exact = True

    def seed_globals(self, global_env: dict[str, int]) -> None:
        """Map the block's global objects onto the interpreter's own
        global cells (memo first, fill second, so cross-global pointer
        cycles land on the seeded addresses)."""
        pairs = []
        for name, cell in global_env.items():
            obj = self.state.objects.get(cell)
            target = self.interp.global_env.get(name)
            if obj is None or target is None:
                continue
            self.memo[obj.base] = target
            pairs.append((obj, target))
        for obj, target in pairs:
            self._fill(obj, target)

    def translate(self, term: smt.Term, ctype: "CType") -> int:
        from repro.mixy.c.ast import PtrType

        value = self.model.eval(term)
        if not isinstance(value, int) or isinstance(value, bool):
            self.exact = False
            return 0
        if isinstance(ctype, PtrType):
            return self._translate_address(value)
        return value

    def _translate_address(self, address: int) -> int:
        if address == 0:
            return 0
        name = self.fn_by_address.get(address)
        if name is not None and name in self.interp.fn_addresses:
            return self.interp.fn_addresses[name]
        obj = self._object_containing(address)
        if obj is None:
            self.exact = False
            return address
        base = self.memo.get(obj.base)
        if base is None:
            base = self.interp._alloc(obj.size)
            self.memo[obj.base] = base
            self._fill(obj, base)
        return base + (address - obj.base)

    def _object_containing(self, address: int) -> Optional["CObj"]:
        for base, obj in self.state.objects.items():
            if base <= address < base + obj.size:
                return obj
        return None

    def _fill(self, obj: "CObj", base: int) -> None:
        types = self._cell_types(obj)
        for i in range(obj.size):
            term = self.state.cells.get(obj.base + i)
            value = 0 if term is None else self.translate(term, types[i])
            self.interp.memory[base + i] = value

    def _cell_types(self, obj: "CObj") -> list:
        from repro.mixy.c.ast import Scalar, StructType

        if isinstance(obj.ctype, StructType):
            fields = [
                ftype for _name, ftype in self.program.struct_def(obj.ctype).fields
            ]
            return fields + [Scalar("int")] * (obj.size - len(fields))
        return [obj.ctype] * obj.size
