"""Concolic (DART-style) test generation on top of the symbolic executor.

The paper situates its executor among DART/CUTE/EXE/KLEE: "DART and
CUTE, in contrast, would continue down one path as guided by an
underlying concrete run (so-called 'concolic execution'), but then would
ask an SMT solver later whether the path not taken was feasible and, if
so, come back and take it eventually.  All of these implementation
choices can be viewed as optimizations to prune infeasible paths or
hints to focus the exploration."

This module implements exactly that discipline over the same rules:

1. run the program down the *single* path a concrete input dictates
   (a :class:`_DirectedExecutor` — SEIf-True/False with the choice made
   by the concrete valuation rather than non-deterministically),
   recording each branch decision;
2. pick a decision, ask the solver for inputs satisfying the prefix with
   that decision negated;
3. repeat from 1 with the new inputs until no unexplored branch remains
   or the run budget is spent.

Errors met along the way come back with the *concrete inputs that
trigger them* — the test-generation use King proposed and DART revived.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Iterator, Optional, Union

from repro import smt
from repro.lang.ast import Expr, If, While
from repro.symexec.executor import (
    ErrKind,
    Outcome,
    State,
    SymConfig,
    SymExecutor,
)
from repro.symexec.valuation import (
    ConcreteValue,
    Valuation,
    ValuationError,
    inputs_from_model,
)
from repro.symexec.values import NameSupply, SymEnv, SymValue, fresh_of_type
from repro.typecheck.types import BOOL, INT, STR, Type, TypeEnv


@dataclass(frozen=True)
class ConcolicRun:
    """One directed execution: the inputs, the path, and what happened."""

    inputs: dict[str, ConcreteValue]
    decisions: tuple[smt.Term, ...]
    outcome: Outcome

    @property
    def ok(self) -> bool:
        return self.outcome.ok


@dataclass
class ConcolicReport:
    runs: list[ConcolicRun] = field(default_factory=list)
    #: inputs that made the program fail, with the failure message
    failures: list[tuple[dict[str, ConcreteValue], str]] = field(default_factory=list)
    solver_queries: int = 0
    exhausted: bool = False  # True when every branch alternative was tried

    @property
    def paths_covered(self) -> int:
        return len({run.decisions for run in self.runs})


class ConcolicDriver:
    """DART over the MIX source language."""

    def __init__(
        self,
        program: Expr,
        input_types: Union[TypeEnv, dict[str, Type]],
        max_runs: int = 64,
    ) -> None:
        self.program = program
        if isinstance(input_types, TypeEnv):
            input_types = dict(input_types.items())
        for name, typ in input_types.items():
            if typ not in (INT, BOOL, STR):
                raise ValueError(
                    f"concolic inputs must be int/bool/str, got {name}: {typ}"
                )
        self.input_types = dict(input_types)
        self.max_runs = max_runs
        self.names = NameSupply()
        self._sym_env, self._alphas = self._make_env()

    def _make_env(self) -> tuple[SymEnv, dict[str, smt.Term]]:
        bindings: dict[str, SymValue] = {}
        alphas: dict[str, smt.Term] = {}
        for name, typ in sorted(self.input_types.items()):
            value, _constraints = fresh_of_type(typ, self.names)
            bindings[name] = value
            assert value.term is not None
            alphas[name] = value.term
        return SymEnv(bindings), alphas

    # -- the search ----------------------------------------------------------------

    def explore(
        self, initial_inputs: Optional[dict[str, ConcreteValue]] = None
    ) -> ConcolicReport:
        report = ConcolicReport()
        worklist: list[dict[str, ConcreteValue]] = [
            initial_inputs or self._default_inputs()
        ]
        seen_paths: set[tuple[smt.Term, ...]] = set()
        attempted: set[tuple[tuple[smt.Term, ...], int]] = set()
        while worklist and len(report.runs) < self.max_runs:
            inputs = worklist.pop(0)
            run = self._run_directed(inputs)
            report.runs.append(run)
            if not run.ok:
                assert run.outcome.error is not None
                report.failures.append((inputs, run.outcome.error))
            if run.decisions in seen_paths:
                continue
            seen_paths.add(run.decisions)
            # Negate each decision (deepest first, DART-style) and solve.
            for i in reversed(range(len(run.decisions))):
                key = (run.decisions[:i], i)
                if key in attempted:
                    continue
                attempted.add(key)
                flipped = self._solve_flip(run, i, report)
                if flipped is not None:
                    worklist.append(flipped)
        report.exhausted = not worklist
        return report

    def _default_inputs(self) -> dict[str, ConcreteValue]:
        defaults: dict[str, ConcreteValue] = {}
        for name, typ in self.input_types.items():
            defaults[name] = (
                0 if typ == INT else False if typ == BOOL else ""
            )
        return defaults

    def _run_directed(self, inputs: dict[str, ConcreteValue]) -> ConcolicRun:
        valuation = Valuation.from_inputs(self._sym_env, inputs)
        executor = _DirectedExecutor(valuation, names=self.names)
        outcomes = list(executor.execute(self.program, self._sym_env))
        assert len(outcomes) == 1, "directed execution follows one path"
        outcome = outcomes[0]
        return ConcolicRun(dict(inputs), outcome.state.decisions, outcome)

    def _solve_flip(
        self, run: ConcolicRun, index: int, report: ConcolicReport
    ) -> Optional[dict[str, ConcreteValue]]:
        prefix = list(run.decisions[:index])
        negated = smt.not_(run.decisions[index])
        solver = smt.Solver()
        solver.add(*prefix, negated, *run.outcome.state.defs)
        report.solver_queries += 1
        try:
            result = solver.check()
        except smt.SortError:
            return None
        if result is not smt.SatResult.SAT:
            return None
        return inputs_from_model(solver.model(), self._alphas, self.input_types)


class _DirectedExecutor(SymExecutor):
    """A symbolic executor that follows the concrete run's path.

    Conditionals and loop tests consult the driving valuation instead of
    forking; each choice is recorded as a *decision* term so the driver
    can negate it later.
    """

    def __init__(self, valuation: Valuation, names: Optional[NameSupply] = None):
        # Force the plain forking strategy (we direct it) and disable
        # pruning (feasibility is immediate: the concrete run is real).
        config = SymConfig(prune_infeasible=False, max_loop_unroll=10_000)
        super().__init__(config=config, names=names)
        self.valuation = valuation

    def _truth(self, state: State, guard: smt.Term) -> bool:
        try:
            return bool(self.valuation.eval(guard))
        except ValuationError:
            # Guards mentioning definition-bound helpers (division
            # quotients): decide by satisfiability under the bindings.
            probe = replace(state, guard=smt.and_(state.guard, guard))
            return self.valuation.satisfies(
                Outcome(probe)  # type: ignore[arg-type]
            )

    def _fork_if(self, expr: If, env, state: State, guard: smt.Term):
        taken = self._truth(state, guard)
        decision = guard if taken else smt.not_(guard)
        branch = expr.then if taken else expr.els
        new_state = state.and_guard(decision)
        new_state = replace(new_state, decisions=new_state.decisions + (decision,))
        yield from self._eval(branch, env, new_state)

    def _unroll_branches(self, expr: While, env, state: State, guard: smt.Term, remaining: int):
        from repro.symexec.values import unit_value

        if guard.is_true:
            taken = True
        elif guard.is_false:
            taken = False
        else:
            taken = self._truth(state, guard)
        if not taken:
            decision = smt.not_(guard) if not guard.is_false else smt.true()
            exit_state = state.and_guard(decision)
            if not guard.is_false:
                exit_state = replace(
                    exit_state, decisions=exit_state.decisions + (decision,)
                )
            yield Outcome(exit_state, value=unit_value())
            return
        enter_state = state if guard.is_true else state.and_guard(guard)
        if not guard.is_true:
            enter_state = replace(
                enter_state, decisions=enter_state.decisions + (guard,)
            )
        if remaining <= 0:
            yield Outcome(
                enter_state,
                error="directed execution exceeded the loop budget",
                kind=ErrKind.LOOP_BOUND,
                pos=expr.pos,
            )
            return
        yield from self._bind(
            self._eval(expr.body, env, enter_state),
            lambda s, _v: self._unroll(expr, env, s, remaining - 1),
        )
