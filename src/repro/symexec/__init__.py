"""The off-the-shelf symbolic executor of the paper's Section 3.1.

The executor implements the big-step judgment ``Σ ⊢ ⟨S; e⟩ ⇓ ⟨S'; s⟩``
(Figures 2 and 3): typed symbolic expressions ``u:τ``, path conditions,
and a McCarthy-style memory log of writes and allocations with the
``⊢ m ok`` consistency judgment.

Design choices the paper calls out are configurable
(:class:`repro.symexec.executor.SymConfig`):

- **fork vs. defer** at conditionals (SEIf-True/False vs. SEIf-Defer);
- **concrete folding** (SEPlus-Conc style partial evaluation);
- **eager path pruning** (invoke the solver at forks, as KLEE/EXE do)
  versus the formalism's check-at-the-end discipline.

Like the paper's executor, it is *independent* of the type checker; the
MIX driver injects rule SETypBlock through ``typed_block_hook``.
"""

from repro.symexec.values import (
    NameSupply,
    SymClosure,
    SymEnv,
    SymValue,
    UnknownFun,
)
from repro.symexec.memory import (
    MemMerge,
    MemUpdate,
    SymMemory,
    fresh_memory,
    lower_memory,
    memory_ok,
)
from repro.symexec.executor import (
    ErrKind,
    IfStrategy,
    Outcome,
    State,
    SymConfig,
    SymExecutor,
)
from repro.symexec.concolic import ConcolicDriver, ConcolicReport, ConcolicRun
from repro.symexec.valuation import Valuation

__all__ = [
    "ConcolicDriver",
    "ConcolicReport",
    "ConcolicRun",
    "Valuation",
    "ErrKind",
    "IfStrategy",
    "MemMerge",
    "MemUpdate",
    "NameSupply",
    "Outcome",
    "State",
    "SymClosure",
    "SymConfig",
    "SymEnv",
    "SymExecutor",
    "SymMemory",
    "SymValue",
    "UnknownFun",
    "fresh_memory",
    "lower_memory",
    "memory_ok",
]
