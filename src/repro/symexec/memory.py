"""Symbolic memories: the McCarthy-style log of Figure 3.

A memory is, as in the paper's grammar::

    m ::= μ                 arbitrary well-typed base memory
        | m, (s -> s')      write log entry
        | m, (s -a-> s')    allocation log entry

plus one extension, :class:`MemMerge`, the conditional memory
``g ? m1 : m2`` needed by the SEIf-Defer rule the paper discusses under
"Deferral Versus Execution".

Memories are persistent (each update shares its parent), so forked paths
share their common prefix.  ``lower_memory`` converts a memory to an SMT
array term — allocations and writes both lower to ``store``; the
distinction matters only to the ``⊢ m ok`` judgment.

``memory_ok`` implements the judgment of Figure 3: a memory is consistent
iff every write it retains is well-typed, where a well-typed write to a
syntactically identical location *overwrites* (erases) earlier ill-typed
writes to it (rule Overwrite-OK).  With ``semantic_overwrite`` the
syntactic location equality ``≡`` is strengthened to solver-validated
equality under the current path condition, the refinement the paper
mentions ("in practice we could query a solver to validate such an
equality given the current path condition").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro import smt
from repro.symexec.values import NameSupply, SymValue, to_memory_int
from repro.typecheck.types import RefType

MEMORY_SORT = smt.array_sort(smt.INT, smt.INT)


@dataclass(frozen=True)
class MemBase:
    """μ — an arbitrary, well-typed, unknown memory."""

    name: str

    #: Log depth above the base memory (0 for μ itself).  Maintained on
    #: every node so the resource governor's ``max_memlog_depth`` check
    #: is O(1) per write instead of a walk of the log.
    depth: int = field(default=0, init=False, compare=False, repr=False)


@dataclass(frozen=True)
class MemUpdate:
    """A logged write ``(loc -> value)`` or allocation ``(loc -a-> value)``."""

    parent: "SymMemory"
    loc: SymValue
    value: SymValue
    is_alloc: bool
    depth: int = field(default=0, init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "depth", self.parent.depth + 1)


@dataclass(frozen=True)
class MemMerge:
    """``g ? then_mem : else_mem`` — conditional memory (SEIf-Defer)."""

    guard: smt.Term
    then_mem: "SymMemory"
    else_mem: "SymMemory"
    depth: int = field(default=0, init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "depth", max(self.then_mem.depth, self.else_mem.depth) + 1
        )


SymMemory = Union[MemBase, MemUpdate, MemMerge]


def fresh_memory(names: NameSupply) -> SymMemory:
    """A fresh μ, used at symbolic-block entry and after typed blocks."""
    return MemBase(names.fresh("mu"))


def write(memory: SymMemory, loc: SymValue, value: SymValue) -> SymMemory:
    """SEAssign's memory effect.  Note the paper's point: the write is
    *logged even if ill-typed* — symbolic execution permits temporary
    type-invariant violations that a type system could not."""
    return MemUpdate(memory, loc, value, is_alloc=False)


def allocate(memory: SymMemory, loc: SymValue, value: SymValue) -> SymMemory:
    """SERef's memory effect."""
    return MemUpdate(memory, loc, value, is_alloc=True)


def lower_memory(memory: SymMemory) -> smt.Term:
    """The SMT array denoting ``memory`` (booleans stored as 0/1)."""
    if isinstance(memory, MemBase):
        return smt.var(memory.name, MEMORY_SORT)
    if isinstance(memory, MemUpdate):
        parent = lower_memory(memory.parent)
        loc = memory.loc.term
        assert loc is not None
        return smt.store(parent, loc, to_memory_int(memory.value))
    return smt.ite(
        memory.guard, lower_memory(memory.then_mem), lower_memory(memory.else_mem)
    )


def read(memory: SymMemory, loc: SymValue) -> SymValue:
    """SEDeref's value: the typed symbolic expression ``m[u:τ ref]:τ``.

    The *type* of the result comes from the pointer's annotation — the
    reason the executor needs ``⊢ m ok`` before trusting it.
    """
    from repro.symexec.values import from_memory_int

    if not isinstance(loc.typ, RefType):
        raise ValueError(f"read through non-reference value {loc}")
    assert loc.term is not None
    selected = smt.select(lower_memory(memory), loc.term)
    return from_memory_int(selected, loc.typ.elem)


# ---------------------------------------------------------------------------
# The ⊢ m ok judgment
# ---------------------------------------------------------------------------


def memory_ok(
    memory: SymMemory,
    path_condition: Optional[smt.Term] = None,
    semantic_overwrite: bool = False,
) -> bool:
    """Decide ``⊢ m ok``: no ill-typed write persists in the log."""
    return not _inconsistent_writes(memory, path_condition, semantic_overwrite)


def _inconsistent_writes(
    memory: SymMemory,
    path_condition: Optional[smt.Term],
    semantic_overwrite: bool,
) -> list[MemUpdate]:
    """The set ``U`` of ``⊢ m ok U`` for the *whole* log, oldest-first."""
    if isinstance(memory, MemBase):
        return []  # Empty-OK
    if isinstance(memory, MemMerge):
        # Extension: a conditional memory is consistent iff both arms are.
        # Each arm only exists on the paths where its side of the guard
        # holds, so the arm's writes are judged under the path condition
        # *strengthened with that guard*: an overwrite whose location
        # equality is valid only under the branch guard still erases
        # (semantic_overwrite), and nothing proved under one arm's guard
        # leaks into the other arm.
        then_pc = _conjoin(path_condition, memory.guard)
        else_pc = _conjoin(path_condition, smt.not_(memory.guard))
        return _inconsistent_writes(
            memory.then_mem, then_pc, semantic_overwrite
        ) + _inconsistent_writes(memory.else_mem, else_pc, semantic_overwrite)
    inconsistent = _inconsistent_writes(
        memory.parent, path_condition, semantic_overwrite
    )
    if memory.is_alloc:
        return inconsistent  # Alloc-OK: allocations are well-typed by SERef
    if _well_typed_write(memory):
        # Overwrite-OK: this write erases earlier bad writes to ≡ locations.
        return [
            entry
            for entry in inconsistent
            if not _locations_equal(
                entry.loc, memory.loc, path_condition, semantic_overwrite
            )
        ]
    # Arbitrary-NotOK: remember this write as potentially inconsistent.
    return inconsistent + [memory]


def _conjoin(path_condition: Optional[smt.Term], guard: smt.Term) -> smt.Term:
    return guard if path_condition is None else smt.and_(path_condition, guard)


def _well_typed_write(entry: MemUpdate) -> bool:
    loc_type = entry.loc.typ
    return isinstance(loc_type, RefType) and entry.value.typ == loc_type.elem


def _locations_equal(
    a: SymValue,
    b: SymValue,
    path_condition: Optional[smt.Term],
    semantic_overwrite: bool,
) -> bool:
    assert a.term is not None and b.term is not None
    if a.term is b.term:  # syntactic ≡ — hash-consing makes this exact
        return True
    if not semantic_overwrite:
        return False
    # Solver-validated equality: the locations are equal in every model of
    # the path condition.
    assumptions = [path_condition] if path_condition is not None else []
    try:
        return smt.is_valid(smt.eq(a.term, b.term), assuming=assumptions)
    except smt.SolverError:
        return False  # undecided — conservatively not equal
