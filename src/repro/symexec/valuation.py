"""Valuations: the semantic bridge of the soundness proof (paper §3.3).

A *valuation* V maps symbolic variables α to concrete values (and base
memories μ to concrete memories); ``[[s]]^V`` denotes a symbolic
expression under V.  Theorem 1's symbolic half says: if a concrete run
and a symbolic execution start in related states and the final path
condition holds under V (``[[g(S')]]^V``), then ``[[s]]^V`` is the
concrete result.

This module makes those notions executable so the property can be
*tested*: :class:`Valuation` evaluates lowered SMT terms under concrete
bindings, :func:`matching_outcomes` selects the execution paths whose
guards a concrete input satisfies (there must be at least one, by
exhaustiveness — Corollary 1.1), and
:func:`check_outcome_abstracts` verifies ``[[s]]^V = v``.

Scope: the executable relations cover the reference-free fragment
(integers, booleans, strings); reference-carrying programs are validated
end-to-end by the differential suite instead, because relating concrete
locations to symbolic addresses needs the Λ₀·V·Λ machinery of the
appendix proof rather than a plain substitution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Union

from repro import smt
from repro.smt.terms import Kind, Term
from repro.symexec.executor import Outcome
from repro.symexec.values import SymValue, string_code
from repro.typecheck.types import BOOL, INT, STR, Type, UNIT

ConcreteValue = Union[int, bool, str, None]


class ValuationError(Exception):
    """The term mentions a symbol the valuation does not bind."""


@dataclass
class Valuation:
    """V: symbolic variable names -> concrete values."""

    bindings: dict[str, ConcreteValue] = field(default_factory=dict)

    @classmethod
    def from_inputs(
        cls, sym_env, concrete_env: Mapping[str, ConcreteValue]
    ) -> "Valuation":
        """Bind each input's fresh α to the concrete input value.

        This constructs the V of the soundness statement from a pair of
        related environments (``[[Σ]]^V = E`` by construction).
        ``sym_env`` is a :class:`repro.symexec.values.SymEnv` or a plain
        mapping of names to :class:`SymValue`.
        """
        bindings: dict[str, ConcreteValue] = {}
        for name in concrete_env:
            if isinstance(sym_env, dict):
                sym_value = sym_env.get(name)
            else:
                sym_value = sym_env.lookup(name)
            if sym_value is None or sym_value.term is None:
                continue
            term = sym_value.term
            if term.kind is Kind.VAR:
                bindings[str(term.payload)] = concrete_env[name]
        return cls(bindings)

    def eval(self, term: Term) -> Union[int, bool]:
        """``[[u]]^V`` for a lowered term (ints; strings as codes)."""
        kind = term.kind
        if kind in (Kind.CONST_BOOL, Kind.CONST_INT):
            return term.payload  # type: ignore[return-value]
        if kind is Kind.VAR:
            name = str(term.payload)
            if name not in self.bindings:
                raise ValuationError(f"unbound symbolic variable {name}")
            value = self.bindings[name]
            if isinstance(value, str):
                return string_code(value)
            if value is None:
                return 0
            return value
        if kind is Kind.NOT:
            return not self.eval(term.args[0])
        if kind is Kind.AND:
            return all(self.eval(a) for a in term.args)
        if kind is Kind.OR:
            return any(self.eval(a) for a in term.args)
        if kind is Kind.IMPLIES:
            return (not self.eval(term.args[0])) or bool(self.eval(term.args[1]))
        if kind is Kind.IFF:
            return bool(self.eval(term.args[0])) == bool(self.eval(term.args[1]))
        if kind is Kind.ITE:
            chosen = term.args[1] if self.eval(term.args[0]) else term.args[2]
            return self.eval(chosen)
        if kind is Kind.EQ:
            return self.eval(term.args[0]) == self.eval(term.args[1])
        if kind is Kind.DISTINCT:
            values = [self.eval(a) for a in term.args]
            return len(set(values)) == len(values)
        if kind is Kind.LE:
            return self.eval(term.args[0]) <= self.eval(term.args[1])  # type: ignore[operator]
        if kind is Kind.LT:
            return self.eval(term.args[0]) < self.eval(term.args[1])  # type: ignore[operator]
        if kind is Kind.ADD:
            return sum(self.eval(a) for a in term.args)  # type: ignore[arg-type]
        if kind is Kind.MUL:
            return self.eval(term.args[0]) * self.eval(term.args[1])  # type: ignore[operator]
        if kind is Kind.NEG:
            return -self.eval(term.args[0])  # type: ignore[operator]
        raise ValuationError(f"term outside the executable fragment: {term}")

    def satisfies(self, outcome: Outcome) -> bool:
        """``[[g(S')]]^V`` — does this valuation take the outcome's path?

        Definitional constraints mention fresh helper variables (division
        quotients) the input valuation does not bind; the theorem handles
        these with an extension ``V' ⊇ V``.  When plain evaluation meets
        such a variable, the check falls back to the solver: the path is
        taken iff ``guard ∧ defs ∧ (bindings as equalities)`` is
        satisfiable — the definitions are total-functional, so the
        extension exists exactly in that case.
        """
        try:
            return bool(self.eval(outcome.state.guard))
        except ValuationError:
            pass
        equalities = []
        for name, value in self.bindings.items():
            if isinstance(value, bool):
                bound = smt.var(name, smt.BOOL)
                equalities.append(bound if value else smt.not_(bound))
            else:
                code = concrete_to_code(value)
                assert isinstance(code, int)
                equalities.append(smt.eq(smt.var(name, smt.INT), smt.int_const(code)))
        try:
            return smt.is_satisfiable(
                smt.and_(outcome.state.condition(), *equalities)
            )
        except smt.SolverError:
            return False


def matching_outcomes(outcomes: list[Outcome], valuation: Valuation) -> list[Outcome]:
    """The explored paths this concrete input follows (Corollary 1.1
    requires at least one when exploration was exhaustive)."""
    return [out for out in outcomes if valuation.satisfies(out)]


def inputs_from_model(
    model,
    alphas: Mapping[str, Term],
    input_types: Mapping[str, Type],
) -> dict[str, ConcreteValue]:
    """Concretize a solver model over the input α's (model -> inputs).

    The inverse direction of :meth:`Valuation.from_inputs`, shared by the
    concolic driver (flip a branch, rerun on the new inputs) and witness
    replay (rerun a reported error path through the interpreter).  Models
    are total interpretations, so don't-care variables the solver never
    assigned come back as the defaults (0 / false) — callers get a
    complete input vector either way.
    """
    from repro.symexec.values import string_for_code

    inputs: dict[str, ConcreteValue] = {}
    for name, alpha in alphas.items():
        typ = input_types[name]
        value = model.eval(alpha)
        if typ == BOOL:
            inputs[name] = bool(value)
        elif typ == STR:
            inputs[name] = string_for_code(int(value))  # type: ignore[arg-type]
        elif typ == UNIT:
            inputs[name] = None
        else:
            assert isinstance(value, int)
            inputs[name] = value
    return inputs


def concrete_to_code(value: ConcreteValue) -> Union[int, bool]:
    """Encode a concrete value the way the executor's lowering does."""
    if isinstance(value, bool):
        return value
    if isinstance(value, str):
        return string_code(value)
    if value is None:
        return 0
    return value


def check_outcome_abstracts(
    outcome: Outcome, valuation: Valuation, concrete_value: ConcreteValue
) -> bool:
    """``[[s]]^V = v`` — the symbolic result denotes the concrete one."""
    assert outcome.value is not None and outcome.value.term is not None
    denoted = valuation.eval(outcome.value.term)
    expected = concrete_to_code(concrete_value)
    if isinstance(expected, bool) or isinstance(denoted, bool):
        return bool(denoted) == bool(expected)
    return denoted == expected
