"""Typed symbolic values ``u:τ`` and symbolic environments ``Σ``.

A :class:`SymValue` pairs an SMT term with a source-language type, exactly
like the paper's typed symbolic expressions: the annotation lets the
executor "immediately determine the type of a symbolic expression, just
like in a concrete evaluator with values".

Encodings into SMT sorts:

========  ===========================================================
source    SMT encoding
========  ===========================================================
int       ``Int``
bool      ``Bool``
str       ``Int`` — string literals are interned to distinct codes
unit      ``Int`` (always 0)
τ ref     ``Int`` — a location address; allocations take the positive
          addresses 1, 2, 3, ... while unknown locations from typed
          environments are constrained ``<= 0``, which soundly models
          the paper's requirement that "an allocation always creates a
          new location distinct from the locations in the base
          unknown memory"
τ -> τ'   not SMT-encodable — function values are closures
          (:class:`SymClosure`) or opaque unknowns (:class:`UnknownFun`)
========  ===========================================================
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Mapping, Optional, Union

from repro import smt
from repro.lang.ast import Expr
from repro.typecheck.types import BOOL, FunType, INT, RefType, STR, Type, UNIT


@dataclass(frozen=True)
class SymClosure:
    """A function value met during symbolic execution: a closure over Σ."""

    param: str
    body: Expr
    env: "SymEnv"

    def __str__(self) -> str:
        return f"<sym-fun {self.param}>"


@dataclass(frozen=True)
class UnknownFun:
    """An opaque function (e.g. a fresh α of function type at a block
    boundary).  Applying one is beyond symbolic execution — the paper's
    motivation for wrapping such calls in typed blocks."""

    typ: FunType

    def __str__(self) -> str:
        return f"<unknown-fun {self.typ}>"


FunPayload = Union[SymClosure, UnknownFun]


@dataclass(frozen=True)
class SymValue:
    """A typed symbolic expression ``u:τ``."""

    typ: Type
    term: Optional[smt.Term] = None  # None exactly for function types
    fun: Optional[FunPayload] = None

    def __post_init__(self) -> None:
        if isinstance(self.typ, FunType):
            if self.fun is None or self.term is not None:
                raise ValueError("function-typed values carry a closure, no term")
        else:
            if self.term is None or self.fun is not None:
                raise ValueError(f"value of type {self.typ} requires an SMT term")

    def __str__(self) -> str:
        inner = self.fun if self.term is None else self.term
        return f"{inner}:{self.typ}"


class SymEnv:
    """An immutable symbolic environment Σ (variable -> symbolic value)."""

    def __init__(self, bindings: Optional[Mapping[str, SymValue]] = None) -> None:
        self._bindings: dict[str, SymValue] = dict(bindings or {})

    def lookup(self, name: str) -> Optional[SymValue]:
        return self._bindings.get(name)

    def extend(self, name: str, value: SymValue) -> "SymEnv":
        child = dict(self._bindings)
        child[name] = value
        return SymEnv(child)

    def items(self):
        return iter(sorted(self._bindings.items()))

    def __contains__(self, name: str) -> bool:
        return name in self._bindings

    def __len__(self) -> int:
        return len(self._bindings)

    def __str__(self) -> str:
        inner = ", ".join(f"{k} -> {v}" for k, v in self.items())
        return f"{{{inner}}}"


class NameSupply:
    """Fresh names for symbolic variables (α) and base memories (μ)."""

    def __init__(self) -> None:
        #: next ordinal; a plain int (not itertools.count) so the
        #: cross-run block store can snapshot and fast-forward it
        self._counter = 1
        self._lock = threading.Lock()

    def fresh(self, prefix: str) -> str:
        with self._lock:
            name = f"{prefix}!{self._counter}"
            self._counter += 1
            return name

    def mark(self) -> int:
        """Peek the next ordinal (consumes nothing); the block store
        diffs two marks to learn a block's name consumption."""
        with self._lock:
            return self._counter

    def fast_forward(self, names: int) -> None:
        """Advance as if ``names`` fresh names had been drawn — store
        hits replay a skipped block's name consumption so later blocks
        name their symbols exactly as a cold run would."""
        with self._lock:
            self._counter += names

    def fresh_int(self, prefix: str = "a") -> smt.Term:
        return smt.var(self.fresh(prefix), smt.INT)

    def fresh_bool(self, prefix: str = "a") -> smt.Term:
        return smt.var(self.fresh(prefix), smt.BOOL)


# ---------------------------------------------------------------------------
# String interning
# ---------------------------------------------------------------------------

_STRING_CODES: dict[str, int] = {}
_STRING_LOCK = threading.Lock()


def string_code(value: str) -> int:
    """The distinct integer code of a string literal (stable per process)."""
    with _STRING_LOCK:
        code = _STRING_CODES.get(value)
        if code is None:
            code = len(_STRING_CODES) + 1
            _STRING_CODES[value] = code
        return code


def string_for_code(code: int) -> str:
    """Invert :func:`string_code` for concretization (model -> inputs).

    Codes the model picked that correspond to interned literals map back
    to those literals (so an ``s = "lit"`` guard concretizes to a string
    that *does* equal the literal); any other code maps to a canonical
    fresh representative, distinct from every literal the program
    mentions and equal across repeated concretizations of the same code
    — exactly what the eq-only string fragment can observe.
    """
    with _STRING_LOCK:
        for value, known in _STRING_CODES.items():
            if known == code:
                return value
    return f"s{code}"


# ---------------------------------------------------------------------------
# Value constructors and conversions
# ---------------------------------------------------------------------------


def int_value(term_or_const: Union[smt.Term, int]) -> SymValue:
    if isinstance(term_or_const, int):
        term_or_const = smt.int_const(term_or_const)
    return SymValue(INT, term_or_const)


def bool_value(term_or_const: Union[smt.Term, bool]) -> SymValue:
    if isinstance(term_or_const, bool):
        term_or_const = smt.bool_const(term_or_const)
    return SymValue(BOOL, term_or_const)


def str_value(literal: str) -> SymValue:
    return SymValue(STR, smt.int_const(string_code(literal)))


def unit_value() -> SymValue:
    return SymValue(UNIT, smt.int_const(0))


def fun_value(payload: FunPayload, typ: FunType) -> SymValue:
    return SymValue(typ, None, payload)


def fresh_of_type(typ: Type, names: NameSupply) -> tuple[SymValue, list[smt.Term]]:
    """A fresh symbolic value α of the given type, plus side constraints.

    Used by the mix rules: every variable crossing from a typed region
    into a symbolic one becomes ``α_x : Γ(x)``.  Reference-typed unknowns
    carry the base-location constraint ``α <= 0`` (see module docstring).
    """
    if typ == BOOL:
        return SymValue(BOOL, names.fresh_bool()), []
    if typ == UNIT:
        return unit_value(), []
    if isinstance(typ, FunType):
        return fun_value(UnknownFun(typ), typ), []
    term = names.fresh_int()
    if isinstance(typ, RefType):
        return SymValue(typ, term), [smt.le(term, smt.int_const(0))]
    # int and str are plain unconstrained integers.
    return SymValue(typ, term), []


def to_memory_int(value: SymValue) -> smt.Term:
    """Encode a (non-function) value as the Int stored in symbolic memory."""
    if value.term is None:
        raise ValueError("function values cannot be stored in symbolic memory")
    if value.typ == BOOL:
        return smt.ite(value.term, smt.int_const(1), smt.int_const(0))
    return value.term


def from_memory_int(term: smt.Term, typ: Type) -> SymValue:
    """Decode a memory read ``m[u:τ ref]:τ`` back to a typed value."""
    if isinstance(typ, FunType):
        raise ValueError("function values cannot be read from symbolic memory")
    if typ == BOOL:
        return SymValue(BOOL, smt.not_(smt.eq(term, smt.int_const(0))))
    if typ == UNIT:
        return unit_value()
    return SymValue(typ, term)
