"""The symbolic execution rules of Figures 2 and 3.

Evaluation implements ``Σ ⊢ ⟨S; e⟩ ⇓ ⟨S'; s⟩`` as a generator of
*outcomes*: each outcome is one execution path's final state paired with
either a typed symbolic value or an error.  Errors come in three kinds:

- ``TYPE_ERROR`` — the rules of Figure 2 have no derivation (e.g. ``+``
  applied to a boolean): "these rules form a symbolic execution engine
  that does very precise dynamic type checking";
- ``UNSUPPORTED`` — execution is beyond the engine (nonlinear
  arithmetic, applying an unknown function, storing a closure in
  memory), the situations Section 2's "Helping Symbolic Execution"
  suggests wrapping in typed blocks;
- ``LOOP_BOUND`` — a ``while`` exceeded the unroll budget, the loop
  analog of the same idiom.

A state ``S = ⟨g; m⟩`` carries the path condition ``g`` and memory ``m``
(Figure 1), plus ``defs``: definitional side constraints introduced for
fresh variables (e.g. the quotient axioms of a division).  Definitions
are kept out of the path condition so that the mix rule's
``exhaustive(g1, ..., gn)`` tautology check quantifies over program
inputs only; they are supplied as assumptions instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum, unique
from typing import Callable, Iterator, Optional

from repro import smt
from repro.budget import Budget
from repro.trace import TRACER, conjunct_count
from repro.lang.ast import (
    App,
    Assign,
    Assume,
    BinOp,
    BinOpKind,
    BoolLit,
    Check,
    Deref,
    Expr,
    Fun,
    If,
    IntLit,
    Let,
    Not,
    Ref,
    Seq,
    StrLit,
    SymBlock,
    Symbolic,
    TypedBlock,
    UnitLit,
    Var,
    While,
)
from repro.symexec import memory as mem
from repro.symexec.values import (
    NameSupply,
    SymClosure,
    SymEnv,
    SymValue,
    UnknownFun,
    bool_value,
    fun_value,
    int_value,
    str_value,
    unit_value,
)
from repro.typecheck.types import BOOL, FunType, INT, RefType, STR, Type, UNIT


@unique
class IfStrategy(Enum):
    """The deferral-versus-execution design choice at conditionals."""

    FORK = "fork"  # SEIf-True / SEIf-False (DART/KLEE style)
    DEFER = "defer"  # SEIf-Defer (push the disjunction to the solver)


@unique
class ErrKind(Enum):
    TYPE_ERROR = "type error"
    UNSUPPORTED = "unsupported"
    LOOP_BOUND = "loop bound exceeded"
    #: A resource budget (deadline, path count, memory-log depth) was
    #: breached: the frontier past this point was abandoned.  The mix
    #: rules treat this conservatively — reported in SOUND mode, warned
    #: and truncated in GOOD_ENOUGH mode (see repro.budget).
    BUDGET = "resource budget exceeded"
    #: A ``check(e)`` has a feasible falsifying path — a property
    #: failure, diagnosed like a dynamic type error (the witness model
    #: is a concrete counterexample).
    CHECK = "check failed"
    #: An ``assume(e)`` closed this path (¬e held): not an error — the
    #: mix rules never diagnose these, but their guards still count
    #: toward exhaustiveness.
    ASSUME = "assumption closed path"


@dataclass(frozen=True)
class State:
    """``S = ⟨g; m⟩`` plus definitional constraints (see module doc).

    ``decisions`` records the individual branch choices in order; the
    guard is their conjunction.  Plain symbolic execution leaves it empty
    — only the concolic driver (:mod:`repro.symexec.concolic`) populates
    it, to know what to negate.
    """

    guard: smt.Term
    memory: mem.SymMemory
    defs: tuple[smt.Term, ...] = ()
    decisions: tuple[smt.Term, ...] = ()
    #: names of the fresh α's created by ``symbolic()``, in program
    #: (creation) order along this path — witness replay feeds a model's
    #: values for them to the concrete interpreter in the same order.
    symbolics: tuple[str, ...] = ()

    def with_guard(self, guard: smt.Term) -> "State":
        return replace(self, guard=guard)

    def and_guard(self, conjunct: smt.Term) -> "State":
        return replace(self, guard=smt.and_(self.guard, conjunct))

    def with_memory(self, memory: mem.SymMemory) -> "State":
        return replace(self, memory=memory)

    def add_defs(self, *constraints: smt.Term) -> "State":
        return replace(self, defs=self.defs + constraints)

    def add_symbolic(self, name: str) -> "State":
        return replace(self, symbolics=self.symbolics + (name,))

    def condition(self) -> smt.Term:
        """Path condition including definitions — feasibility queries."""
        return smt.and_(self.guard, *self.defs)


@dataclass(frozen=True)
class Outcome:
    """One path's result: a value (ok) or an error description."""

    state: State
    value: Optional[SymValue] = None
    error: Optional[str] = None
    kind: Optional[ErrKind] = None
    pos: Optional[object] = None
    #: which engine produced the error: "symbolic" for the executor's own
    #: dynamic checks, "typed" for a typed-block rejection surfaced as an
    #: outcome.  Witness replay (repro.witness) only lets a *dynamic*
    #: claim diverge: a static typed-block judgment has no concrete run
    #: to contradict it.
    origin: str = "symbolic"

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SymConfig:
    """Tunable design choices (each an ablation axis; see DESIGN.md)."""

    if_strategy: IfStrategy = IfStrategy.FORK
    #: fold operations on concrete operands (SEPlus-Conc / partial evaluation)
    concrete_folding: bool = True
    #: invoke the solver at forks to prune infeasible paths (KLEE/EXE
    #: style); off = the formalism's explore-then-discard discipline
    prune_infeasible: bool = True
    #: unroll budget for ``while`` (the formalism has no loops)
    max_loop_unroll: int = 64
    #: solver-validated location equality in the ⊢ m ok judgment
    semantic_overwrite: bool = False
    #: check ``⊢ m ok`` at each dereference, as rule SEDeref requires
    check_mem_ok_on_deref: bool = True
    #: the paper's nondeterministic SEVar variant: reading an integer
    #: variable returns an arbitrary concrete value v and records
    #: ``Σ(x) = v`` in the path condition — "a style that resembles
    #: hybrid concolic testing".  Under-approximating: pair it with
    #: SoundnessMode.GOOD_ENOUGH.
    concretize_variables: bool = False


# Hook type for rule SETypBlock, installed by the MIX driver:
# (Σ, S, block) -> iterator of outcomes (normally exactly one).
TypedBlockHook = Callable[[SymEnv, State, TypedBlock], Iterator[Outcome]]


class SymExecutor:
    """The symbolic execution engine."""

    def __init__(
        self,
        config: Optional[SymConfig] = None,
        names: Optional[NameSupply] = None,
        typed_block_hook: Optional[TypedBlockHook] = None,
        budget: Optional[Budget] = None,
    ) -> None:
        self.config = config or SymConfig()
        self.names = names or NameSupply()
        self.typed_block_hook = typed_block_hook
        #: The run's resource budget (shared with the solver service and
        #: the driver); None = ungoverned.
        self.budget = budget
        self.stats = {
            "forks": 0,
            "paths_pruned": 0,
            "solver_calls": 0,
            "deref_checks": 0,
            "merges": 0,
            "budget_breaches": 0,
        }

    @property
    def solver_stats(self) -> "smt.SolverStats":
        """Counters of the shared solver service (queries, cache tiers)."""
        return smt.get_service().stats

    # -- public API --------------------------------------------------------------

    def initial_state(self) -> State:
        return State(smt.true(), mem.fresh_memory(self.names))

    def execute(
        self, expr: Expr, env: Optional[SymEnv] = None, state: Optional[State] = None
    ) -> Iterator[Outcome]:
        """All execution paths of ``expr`` from the given Σ and S.

        Under a path budget, each yielded outcome charges one path; the
        moment the budget is breached the remaining frontier collapses
        into a single ``ErrKind.BUDGET`` outcome and exploration stops —
        graceful degradation instead of unbounded enumeration.
        """
        outcomes = self._eval(expr, env or SymEnv(), state or self.initial_state())
        budget = self.budget
        if budget is None or budget.max_paths is None:
            if not TRACER.enabled:
                yield from outcomes
                return
            for out in outcomes:
                TRACER.event("path.complete")
                yield out
            return
        for out in outcomes:
            if not budget.charge_path():
                yield from self._budget_breach(
                    out.state,
                    "path_budget_breaches",
                    f"path budget exhausted ({budget.max_paths} paths): "
                    "the remaining frontier was abandoned",
                )
                return
            if TRACER.enabled:
                TRACER.event("path.complete")
            yield out

    def execute_all(
        self, expr: Expr, env: Optional[SymEnv] = None, state: Optional[State] = None
    ) -> list[Outcome]:
        return list(self.execute(expr, env, state))

    # -- plumbing ----------------------------------------------------------------

    def _ok(self, state: State, value: SymValue) -> Iterator[Outcome]:
        yield Outcome(state, value=value)

    def _err(
        self, state: State, kind: ErrKind, message: str, expr: Optional[Expr] = None
    ) -> Iterator[Outcome]:
        pos = getattr(expr, "pos", None) if expr is not None else None
        yield Outcome(state, error=message, kind=kind, pos=pos)

    def _bind(
        self,
        outcomes: Iterator[Outcome],
        fn: Callable[[State, SymValue], Iterator[Outcome]],
    ) -> Iterator[Outcome]:
        """Sequence computation across every ok path; pass errors through."""
        for out in outcomes:
            if not out.ok:
                yield out
            else:
                assert out.value is not None
                yield from fn(out.state, out.value)

    def _concretize_var(self, state: State, value: SymValue) -> Iterator[Outcome]:
        """Nondeterministic SEVar: pick a model value and pin it."""
        assert value.term is not None
        self.stats["solver_calls"] += 1
        try:
            model = smt.get_service().model(state.condition())
        except (smt.SolverError, smt.SortError):
            yield from self._ok(state, value)  # dead or undecided: no-op
            return
        concrete = model.eval(value.term)
        assert isinstance(concrete, int)
        pinned = smt.eq(value.term, smt.int_const(concrete))
        yield from self._ok(state.and_guard(pinned), int_value(concrete))

    def _fold(self, term: smt.Term) -> smt.Term:
        if self.config.concrete_folding:
            from repro.smt.simplify import simplify

            return simplify(term)
        return term

    def _feasible(self, state: State) -> bool:
        """Ask the solver whether the path is worth continuing."""
        self.stats["solver_calls"] += 1
        try:
            return smt.is_satisfiable(state.condition())
        except smt.SolverError:
            return True  # undecided — keep the path (sound)

    # -- resource governance -------------------------------------------------------

    def _deadline_hit(self) -> bool:
        return self.budget is not None and self.budget.expired()

    def _budget_breach(
        self, state: State, counter: str, message: str, expr: Optional[Expr] = None
    ) -> Iterator[Outcome]:
        """One conservative ``BUDGET`` outcome standing in for a frontier."""
        self.stats["budget_breaches"] += 1
        stats = smt.get_service().stats
        setattr(stats, counter, getattr(stats, counter) + 1)
        if TRACER.enabled:
            TRACER.event("budget.breach", counter=counter)
        return self._err(state, ErrKind.BUDGET, message, expr)

    # -- the rules -----------------------------------------------------------------

    def _eval(self, expr: Expr, env: SymEnv, state: State) -> Iterator[Outcome]:
        if isinstance(expr, Var):  # SEVar
            value = env.lookup(expr.name)
            if value is None:
                yield from self._err(
                    state, ErrKind.TYPE_ERROR, f"unbound variable {expr.name}", expr
                )
            elif (
                self.config.concretize_variables
                and value.typ == INT
                and value.term is not None
                and not value.term.is_const
            ):
                yield from self._concretize_var(state, value)
            else:
                yield from self._ok(state, value)
        elif isinstance(expr, IntLit):  # SEVal with typeof(n) = int
            yield from self._ok(state, int_value(expr.value))
        elif isinstance(expr, BoolLit):
            yield from self._ok(state, bool_value(expr.value))
        elif isinstance(expr, StrLit):
            yield from self._ok(state, str_value(expr.value))
        elif isinstance(expr, UnitLit):
            yield from self._ok(state, unit_value())
        elif isinstance(expr, BinOp):
            yield from self._eval_binop(expr, env, state)
        elif isinstance(expr, Not):  # SENot
            def negate(s: State, v: SymValue) -> Iterator[Outcome]:
                if v.typ != BOOL:
                    return self._err(
                        s, ErrKind.TYPE_ERROR, f"'not' applied to {v.typ}", expr
                    )
                assert v.term is not None
                return self._ok(s, SymValue(BOOL, self._fold(smt.not_(v.term))))

            yield from self._bind(self._eval(expr.operand, env, state), negate)
        elif isinstance(expr, If):
            yield from self._eval_if(expr, env, state)
        elif isinstance(expr, Let):  # SELet
            yield from self._eval_let(expr, env, state)
        elif isinstance(expr, Seq):
            yield from self._bind(
                self._eval(expr.first, env, state),
                lambda s, _v: self._eval(expr.second, env, s),
            )
        elif isinstance(expr, Ref):  # SERef
            yield from self._eval_ref(expr, env, state)
        elif isinstance(expr, Deref):  # SEDeref
            yield from self._eval_deref(expr, env, state)
        elif isinstance(expr, Assign):  # SEAssign
            yield from self._eval_assign(expr, env, state)
        elif isinstance(expr, While):
            yield from self._eval_while(expr, env, state)
        elif isinstance(expr, Fun):
            typ = FunType(expr.param_type, _body_type_unknown())
            closure = SymClosure(expr.param, expr.body, env)
            yield from self._ok(state, fun_value(closure, typ))
        elif isinstance(expr, App):
            yield from self._eval_app(expr, env, state)
        elif isinstance(expr, TypedBlock):  # SETypBlock — via the MIX hook
            if self.typed_block_hook is None:
                yield from self._err(
                    state,
                    ErrKind.UNSUPPORTED,
                    "typed block encountered but no type checker is attached "
                    "(run under MIX)",
                    expr,
                )
            else:
                yield from self.typed_block_hook(env, state, expr)
        elif isinstance(expr, SymBlock):
            # Symbolic-in-symbolic passes through (trivial, as the paper notes).
            yield from self._eval(expr.body, env, state)
        elif isinstance(expr, Symbolic):
            alpha = self.names.fresh_int("symbolic")
            yield from self._ok(
                state.add_symbolic(str(alpha.payload)), int_value(alpha)
            )
        elif isinstance(expr, Assume):
            yield from self._eval_assume(expr, env, state)
        elif isinstance(expr, Check):
            yield from self._eval_check(expr, env, state)
        else:
            yield from self._err(
                state, ErrKind.UNSUPPORTED, f"unknown node {type(expr).__name__}", expr
            )

    # -- operators ---------------------------------------------------------------

    def _eval_binop(self, expr: BinOp, env: SymEnv, state: State) -> Iterator[Outcome]:
        def with_left(s1: State, left: SymValue) -> Iterator[Outcome]:
            def with_right(s2: State, right: SymValue) -> Iterator[Outcome]:
                return self._apply_binop(expr, s2, left, right)

            return self._bind(self._eval(expr.right, env, s1), with_right)

        yield from self._bind(self._eval(expr.left, env, state), with_left)

    def _apply_binop(
        self, expr: BinOp, state: State, left: SymValue, right: SymValue
    ) -> Iterator[Outcome]:
        op = expr.op
        if op in (BinOpKind.AND, BinOpKind.OR):  # SEAnd (and its 'or' dual)
            if left.typ != BOOL or right.typ != BOOL:
                return self._err(
                    state,
                    ErrKind.TYPE_ERROR,
                    f"'{op.value}' applied to {left.typ} and {right.typ}",
                    expr,
                )
            assert left.term is not None and right.term is not None
            build = smt.and_ if op is BinOpKind.AND else smt.or_
            return self._ok(state, SymValue(BOOL, self._fold(build(left.term, right.term))))
        if op is BinOpKind.EQ:  # SEEq
            return self._apply_equality(expr, state, left, right)
        if op in (BinOpKind.LT, BinOpKind.LE):
            if left.typ != INT or right.typ != INT:
                return self._err(
                    state,
                    ErrKind.TYPE_ERROR,
                    f"'{op.value}' applied to {left.typ} and {right.typ}",
                    expr,
                )
            assert left.term is not None and right.term is not None
            build = smt.lt if op is BinOpKind.LT else smt.le
            return self._ok(state, SymValue(BOOL, self._fold(build(left.term, right.term))))
        # Arithmetic: SEPlus and friends.
        if left.typ != INT or right.typ != INT:
            return self._err(
                state,
                ErrKind.TYPE_ERROR,
                f"'{op.value}' applied to {left.typ} and {right.typ}",
                expr,
            )
        assert left.term is not None and right.term is not None
        if op is BinOpKind.ADD:
            return self._ok(state, int_value(self._fold(smt.add(left.term, right.term))))
        if op is BinOpKind.SUB:
            return self._ok(state, int_value(self._fold(smt.sub(left.term, right.term))))
        if op is BinOpKind.MUL:
            return self._apply_mul(expr, state, left.term, right.term)
        if op is BinOpKind.DIV:
            return self._apply_div(expr, state, left.term, right.term)
        raise AssertionError(f"unhandled operator {op}")

    def _apply_equality(
        self, expr: BinOp, state: State, left: SymValue, right: SymValue
    ) -> Iterator[Outcome]:
        if isinstance(left.typ, FunType) or isinstance(right.typ, FunType):
            return self._err(
                state, ErrKind.TYPE_ERROR, "'=' applied to function values", expr
            )
        if left.typ != right.typ:
            return self._err(
                state,
                ErrKind.TYPE_ERROR,
                f"'=' compares {left.typ} with {right.typ}",
                expr,
            )
        assert left.term is not None and right.term is not None
        return self._ok(state, SymValue(BOOL, self._fold(smt.eq(left.term, right.term))))

    def _apply_mul(
        self, expr: BinOp, state: State, left: smt.Term, right: smt.Term
    ) -> Iterator[Outcome]:
        left = self._fold(left)
        right = self._fold(right)
        if not (left.is_const or right.is_const):
            # Beyond the solver's linear fragment: the "helping symbolic
            # execution" situation — wrap the operation in a typed block.
            return self._err(
                state,
                ErrKind.UNSUPPORTED,
                "nonlinear multiplication of two symbolic integers",
                expr,
            )
        return self._ok(state, int_value(self._fold(smt.mul(left, right))))

    def _apply_div(
        self, expr: BinOp, state: State, dividend: smt.Term, divisor: smt.Term
    ) -> Iterator[Outcome]:
        dividend = self._fold(dividend)
        divisor = self._fold(divisor)
        if not divisor.is_const:
            return self._err(
                state,
                ErrKind.UNSUPPORTED,
                "division by a symbolic integer",
                expr,
            )
        c = divisor.payload
        assert isinstance(c, int)
        if c == 0:
            # The language's division is total: x / 0 = 0.
            return self._ok(state, int_value(smt.int_const(0)))
        from repro.smt.encodings import encode_trunc_div, trunc_div_constant

        if dividend.is_const:
            a = dividend.payload
            assert isinstance(a, int)
            return self._ok(state, int_value(smt.int_const(trunc_div_constant(a, c))))
        # Truncating division by a constant: introduce the quotient as a
        # fresh variable pinned by a definitional constraint.
        quotient = self.names.fresh_int("q")
        definition = encode_trunc_div(dividend, c, quotient)
        return self._ok(state.add_defs(definition), int_value(quotient))

    # -- control -----------------------------------------------------------------

    def _eval_if(self, expr: If, env: SymEnv, state: State) -> Iterator[Outcome]:
        def with_cond(s1: State, cond: SymValue) -> Iterator[Outcome]:
            if cond.typ != BOOL:
                return self._err(
                    s1, ErrKind.TYPE_ERROR, f"'if' condition has type {cond.typ}", expr
                )
            assert cond.term is not None
            guard = self._fold(cond.term)
            if guard.is_true:  # concrete folding took the branch
                return self._eval(expr.then, env, s1)
            if guard.is_false:
                return self._eval(expr.els, env, s1)
            if self.config.if_strategy is IfStrategy.DEFER:
                return self._defer_if(expr, env, s1, guard)
            return self._fork_if(expr, env, s1, guard)

        yield from self._bind(self._eval(expr.cond, env, state), with_cond)

    def _fork_if(
        self, expr: If, env: SymEnv, state: State, guard: smt.Term
    ) -> Iterator[Outcome]:
        """SEIf-True and SEIf-False: explore both extensions of g."""
        if self._deadline_hit():
            yield from self._budget_breach(
                state,
                "deadline_breaches",
                "run deadline reached at a fork: both branches abandoned",
                expr,
            )
            return
        self.stats["forks"] += 1
        if TRACER.enabled:
            TRACER.event("path.fork", pc_size=conjunct_count(state.condition()))
        for branch, extension in ((expr.then, guard), (expr.els, smt.not_(guard))):
            branch_state = state.and_guard(extension)
            if self.config.prune_infeasible and not self._feasible(branch_state):
                self.stats["paths_pruned"] += 1
                continue
            yield from self._eval(branch, env, branch_state)

    def _defer_if(
        self, expr: If, env: SymEnv, state: State, guard: smt.Term
    ) -> Iterator[Outcome]:
        """SEIf-Defer: one outcome with an ite value and merged memory.

        The rule as stated requires a single execution per branch and
        branches of equal type; when a branch itself forks (or errs) we
        degrade gracefully to forking semantics for this conditional.
        """
        then_outs = list(self._eval(expr.then, env, state.and_guard(guard)))
        else_outs = list(self._eval(expr.els, env, state.and_guard(smt.not_(guard))))
        mergeable = (
            len(then_outs) == 1
            and len(else_outs) == 1
            and then_outs[0].ok
            and else_outs[0].ok
        )
        if mergeable:
            t, e = then_outs[0], else_outs[0]
            assert t.value is not None and e.value is not None
            if t.value.typ == e.value.typ and t.value.term is not None:
                assert e.value.term is not None
                self.stats["merges"] += 1
                if TRACER.enabled:
                    TRACER.event(
                        "path.merge", pc_size=conjunct_count(state.condition())
                    )
                merged_value = SymValue(
                    t.value.typ, self._fold(smt.ite(guard, t.value.term, e.value.term))
                )
                merged_state = State(
                    guard=self._fold(smt.ite(guard, t.state.guard, e.state.guard)),
                    memory=mem.MemMerge(guard, t.state.memory, e.state.memory),
                    defs=_merge_defs(state.defs, t.state.defs, e.state.defs),
                    symbolics=t.state.symbolics
                    + tuple(
                        n for n in e.state.symbolics if n not in t.state.symbolics
                    ),
                )
                yield Outcome(merged_state, value=merged_value)
                return
            yield from self._err(
                state,
                ErrKind.TYPE_ERROR,
                f"deferred 'if' branches disagree: {t.value.typ} vs {e.value.typ}",
                expr,
            )
            return
        # A branch forked or erred: degrade the deferred 'if' to forking.
        self.stats["forks"] += 1
        if TRACER.enabled:
            TRACER.event(
                "path.fork", pc_size=conjunct_count(state.condition()), deferred=True
            )
        yield from then_outs
        yield from else_outs

    def _eval_assume(self, expr: Assume, env: SymEnv, state: State) -> Iterator[Outcome]:
        """``assume(e)``: constrain the path with e; the ¬e extension is a
        terminal ``ASSUME`` outcome (never diagnosed, but its guard keeps
        the outcome set exhaustive)."""

        def with_cond(s1: State, cond: SymValue) -> Iterator[Outcome]:
            if cond.typ != BOOL:
                return self._err(
                    s1, ErrKind.TYPE_ERROR, f"'assume' condition has type {cond.typ}", expr
                )
            assert cond.term is not None
            guard = self._fold(cond.term)
            if guard.is_true:
                return self._ok(s1, unit_value())
            if guard.is_false:
                return self._err(
                    s1, ErrKind.ASSUME, "assumption is false on this path", expr
                )
            return self._split_assume(expr, s1, guard)

        yield from self._bind(self._eval(expr.cond, env, state), with_cond)

    def _split_assume(
        self, expr: Assume, state: State, guard: smt.Term
    ) -> Iterator[Outcome]:
        # The closed arm is never pruned: the mix rules need its guard to
        # keep exhaustive(g1, ..., gn) a tautology.
        yield Outcome(
            state.and_guard(self._fold(smt.not_(guard))),
            error="assumption is false on this path",
            kind=ErrKind.ASSUME,
            pos=expr.pos,
        )
        kept = state.and_guard(guard)
        if self.config.prune_infeasible and not self._feasible(kept):
            self.stats["paths_pruned"] += 1
            return
        yield Outcome(kept, value=unit_value())

    def _eval_check(self, expr: Check, env: SymEnv, state: State) -> Iterator[Outcome]:
        """``check(e)``: fork on e; a feasible ¬e extension is a property
        failure (``ErrKind.CHECK``), the e extension continues."""

        def with_cond(s1: State, cond: SymValue) -> Iterator[Outcome]:
            if cond.typ != BOOL:
                return self._err(
                    s1, ErrKind.TYPE_ERROR, f"'check' condition has type {cond.typ}", expr
                )
            assert cond.term is not None
            guard = self._fold(cond.term)
            if guard.is_true:
                return self._ok(s1, unit_value())
            if guard.is_false:
                return self._err(
                    s1, ErrKind.CHECK, "checked property is false on this path", expr
                )
            return self._split_check(expr, s1, guard)

        yield from self._bind(self._eval(expr.cond, env, state), with_cond)

    def _split_check(
        self, expr: Check, state: State, guard: smt.Term
    ) -> Iterator[Outcome]:
        if self._deadline_hit():
            yield from self._budget_breach(
                state,
                "deadline_breaches",
                "run deadline reached at a check: both extensions abandoned",
                expr,
            )
            return
        self.stats["forks"] += 1
        if TRACER.enabled:
            TRACER.event("path.fork", pc_size=conjunct_count(state.condition()))
        failing = state.and_guard(self._fold(smt.not_(guard)))
        if self.config.prune_infeasible and not self._feasible(failing):
            # The property holds on every extension of this path.
            self.stats["paths_pruned"] += 1
        else:
            yield Outcome(
                failing,
                error="checked property is false on this path",
                kind=ErrKind.CHECK,
                pos=expr.pos,
            )
        passing = state.and_guard(guard)
        if self.config.prune_infeasible and not self._feasible(passing):
            self.stats["paths_pruned"] += 1
            return
        yield Outcome(passing, value=unit_value())

    def _eval_let(self, expr: Let, env: SymEnv, state: State) -> Iterator[Outcome]:
        def bind_body(s1: State, bound: SymValue) -> Iterator[Outcome]:
            if (
                expr.annotation is not None
                and not isinstance(bound.typ, FunType)  # closure results are latent
                and bound.typ != expr.annotation
            ):
                return self._err(
                    state,
                    ErrKind.TYPE_ERROR,
                    f"let annotation {expr.annotation} does not match {bound.typ}",
                    expr,
                )
            return self._eval(expr.body, env.extend(expr.name, bound), s1)

        yield from self._bind(self._eval(expr.bound, env, state), bind_body)

    def _eval_while(self, expr: While, env: SymEnv, state: State) -> Iterator[Outcome]:
        yield from self._unroll(expr, env, state, self.config.max_loop_unroll)

    def _unroll(
        self, expr: While, env: SymEnv, state: State, remaining: int
    ) -> Iterator[Outcome]:
        def with_cond(s1: State, cond: SymValue) -> Iterator[Outcome]:
            if cond.typ != BOOL:
                return self._err(
                    s1,
                    ErrKind.TYPE_ERROR,
                    f"'while' condition has type {cond.typ}",
                    expr,
                )
            assert cond.term is not None
            guard = self._fold(cond.term)
            return self._unroll_branches(expr, env, s1, guard, remaining)

        yield from self._bind(self._eval(expr.cond, env, state), with_cond)

    def _unroll_branches(
        self, expr: While, env: SymEnv, state: State, guard: smt.Term, remaining: int
    ) -> Iterator[Outcome]:
        if self._deadline_hit():
            yield from self._budget_breach(
                state,
                "deadline_breaches",
                "run deadline reached inside a loop unroll: "
                "remaining iterations abandoned",
                expr,
            )
            return
        # Exit path.
        if not guard.is_true:
            exit_state = state.and_guard(self._fold(smt.not_(guard)))
            if (
                guard.is_false
                or not self.config.prune_infeasible
                or self._feasible(exit_state)
            ):
                yield Outcome(exit_state, value=unit_value())
            elif self.config.prune_infeasible:
                self.stats["paths_pruned"] += 1
        # Continue path.
        if not guard.is_false:
            enter_state = state if guard.is_true else state.and_guard(guard)
            if (
                not guard.is_true
                and self.config.prune_infeasible
                and not self._feasible(enter_state)
            ):
                self.stats["paths_pruned"] += 1
                return
            if remaining <= 0:
                yield Outcome(
                    enter_state,
                    error=(
                        "loop exceeded the unroll budget — symbolic execution "
                        "would not terminate; wrap the loop in a typed block"
                    ),
                    kind=ErrKind.LOOP_BOUND,
                    pos=expr.pos,
                )
                return
            yield from self._bind(
                self._eval(expr.body, env, enter_state),
                lambda s, _v: self._unroll(expr, env, s, remaining - 1),
            )

    # -- references ----------------------------------------------------------------

    def _eval_ref(self, expr: Ref, env: SymEnv, state: State) -> Iterator[Outcome]:
        def alloc(s1: State, init: SymValue) -> Iterator[Outcome]:
            if isinstance(init.typ, FunType):
                return self._err(
                    s1,
                    ErrKind.UNSUPPORTED,
                    "storing a function value in symbolic memory",
                    expr,
                )
            address = int(self.names.fresh("loc").split("!")[1])
            loc = SymValue(RefType(init.typ), smt.int_const(address))
            return self._ok(s1.with_memory(mem.allocate(s1.memory, loc, init)), loc)

        yield from self._bind(self._eval(expr.init, env, state), alloc)

    def _eval_deref(self, expr: Deref, env: SymEnv, state: State) -> Iterator[Outcome]:
        def deref(s1: State, target: SymValue) -> Iterator[Outcome]:
            if not isinstance(target.typ, RefType):
                return self._err(
                    s1, ErrKind.TYPE_ERROR, f"dereference of {target.typ}", expr
                )
            if isinstance(target.typ.elem, FunType):
                return self._err(
                    s1,
                    ErrKind.UNSUPPORTED,
                    "reading a function value from symbolic memory",
                    expr,
                )
            if self.config.check_mem_ok_on_deref:
                self.stats["deref_checks"] += 1
                if not mem.memory_ok(
                    s1.memory, s1.condition(), self.config.semantic_overwrite
                ):
                    return self._err(
                        s1,
                        ErrKind.TYPE_ERROR,
                        "memory is not consistently typed at this dereference "
                        "(an ill-typed write persists: ⊢ m ok fails)",
                        expr,
                    )
            value = mem.read(s1.memory, target)
            value = SymValue(value.typ, self._fold(value.term)) if value.term else value
            return self._ok(s1, value)

        yield from self._bind(self._eval(expr.ref, env, state), deref)

    def _eval_assign(self, expr: Assign, env: SymEnv, state: State) -> Iterator[Outcome]:
        def with_target(s1: State, target: SymValue) -> Iterator[Outcome]:
            if not isinstance(target.typ, RefType):
                return self._err(
                    s1, ErrKind.TYPE_ERROR, f"assignment through {target.typ}", expr
                )

            def with_value(s2: State, value: SymValue) -> Iterator[Outcome]:
                if isinstance(value.typ, FunType):
                    return self._err(
                        s2,
                        ErrKind.UNSUPPORTED,
                        "storing a function value in symbolic memory",
                        expr,
                    )
                # SEAssign: the write is logged unconditionally — even if it
                # violates the pointer's type annotation.  ⊢ m ok decides
                # later whether the violation persists.
                written = mem.write(s2.memory, target, value)
                if self.budget is not None and self.budget.memlog_exceeded(
                    written.depth
                ):
                    return self._budget_breach(
                        s2,
                        "memlog_breaches",
                        f"memory log deeper than {self.budget.max_memlog_depth} "
                        "entries: path abandoned",
                        expr,
                    )
                return self._ok(s2.with_memory(written), value)

            return self._bind(self._eval(expr.value, env, s1), with_value)

        yield from self._bind(self._eval(expr.target, env, state), with_target)

    # -- functions -------------------------------------------------------------------

    def _eval_app(self, expr: App, env: SymEnv, state: State) -> Iterator[Outcome]:
        def with_fn(s1: State, fn: SymValue) -> Iterator[Outcome]:
            def with_arg(s2: State, arg: SymValue) -> Iterator[Outcome]:
                if isinstance(fn.fun, SymClosure):
                    closure = fn.fun
                    callee_env = closure.env.extend(closure.param, arg)
                    return self._eval(closure.body, callee_env, s2)
                if isinstance(fn.fun, UnknownFun):
                    return self._err(
                        s2,
                        ErrKind.UNSUPPORTED,
                        "call to an unknown function (no source available); "
                        "wrap the call in a typed block",
                        expr,
                    )
                return self._err(
                    s2, ErrKind.TYPE_ERROR, f"application of {fn.typ}", expr
                )

            return self._bind(self._eval(expr.arg, env, s1), with_arg)

        yield from self._bind(self._eval(expr.fn, env, state), with_fn)


class _UnknownResult(Type):
    """Placeholder result type for closures: the executor types a function
    by *running* it at its call sites, so a closure's result type is not
    known until application (the context-sensitivity the paper exploits in
    the ``div`` example)."""

    def __str__(self) -> str:  # pragma: no cover - debug only
        return "?"


_UNKNOWN_RESULT = _UnknownResult()


def _body_type_unknown() -> Type:
    return _UNKNOWN_RESULT


def _merge_defs(
    base: tuple[smt.Term, ...], then_defs: tuple[smt.Term, ...], else_defs: tuple[smt.Term, ...]
) -> tuple[smt.Term, ...]:
    merged = list(base)
    for extra in (then_defs, else_defs):
        for term in extra:
            if term not in merged:
                merged.append(term)
    return tuple(merged)
