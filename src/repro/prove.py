"""Property proving — `repro prove` (docs/ARCHITECTURE.md §1.10).

A *property file* is an ordinary mini-ML or mini-C program that uses
the three language-level proving constructs:

- ``symbolic()`` — an unconstrained integer input,
- ``assume(e)`` — restrict attention to runs where ``e`` holds,
- ``check(e)`` — the proof obligation: ``e`` must hold on every
  non-vacuous path.

The prover runs the file through the existing MIX / MIXY machinery
(symbolic entry, witness validation forced on) and classifies the
outcome into one verdict per file:

``PROVED``
    Exhaustive exploration found no feasible falsifying path — or every
    path was closed by an ``assume`` (a *vacuous* proof, flagged in the
    detail text so suites can notice contradictory assumptions).
``COUNTEREXAMPLE``
    A falsifying path is feasible **and** its SAT model, concretized to
    integer inputs and replayed through the concrete interpreter,
    reproduces the failure (witness verdict CONFIRMED).  The inputs are
    printed — this is trust ring 1 applied to property proving: a
    reported counterexample is a *demonstrated* counterexample.
``UNCONFIRMED``
    A falsifying path looked feasible but the replay could not
    reproduce the failure (abstraction in the block, model gaps).
    Neither a proof nor a refutation; exit-code-wise this is
    incompleteness, not a counterexample.
``BUDGET``
    Exploration was truncated (loop bound, recursion depth, deadline,
    path cap) before the obligation was discharged.
``ERROR``
    The file does not parse, faults before the property is reached
    (e.g. a dynamic type error or NULL dereference on some path), or
    uses something the engines cannot model — no verdict on the
    property itself.

Suite exit codes (``repro prove f1 f2 ...``):

- 0 — every property PROVED;
- 1 — at least one COUNTEREXAMPLE (demonstrated falsification wins);
- 2 — no counterexample, but at least one ERROR;
- 3 — no counterexample or error, but incomplete (BUDGET/UNCONFIRMED).

Determinism contract: verdict lines are byte-identical across
``--jobs 1`` / ``--jobs N`` (files fan out over a fork pool; each
worker analyzes serially after :func:`repro.serve.fresh_equivalence_state`,
and results are emitted in sorted-file order regardless of completion
order), across daemon vs one-shot runs, and across ``PYTHONHASHSEED``
values (qualifier ids are per-inference ordinals; see
docs/ARCHITECTURE.md "identity contract").
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

# -- verdict lattice ---------------------------------------------------------

PROVED = "PROVED"
COUNTEREXAMPLE = "COUNTEREXAMPLE"
UNCONFIRMED = "UNCONFIRMED"
BUDGET = "BUDGET"
ERROR = "ERROR"

VERDICTS = (PROVED, COUNTEREXAMPLE, UNCONFIRMED, BUDGET, ERROR)

EXIT_PROVED = 0
EXIT_COUNTEREXAMPLE = 1
EXIT_ERROR = 2
EXIT_INCOMPLETE = 3


@dataclass(frozen=True)
class PropertyResult:
    """One property file's classification."""

    name: str
    verdict: str
    detail: str = ""
    #: sorted ``(input, rendered value)`` pairs from a confirmed (or
    #: attempted) counterexample model; empty otherwise.
    inputs: tuple[tuple[str, str], ...] = ()

    def line(self) -> str:
        rendered = f"{self.verdict}: {self.name}"
        if self.inputs:
            pairs = ", ".join(f"{k}={v}" for k, v in self.inputs)
            rendered += f" (inputs: {pairs})"
        if self.detail:
            rendered += f" -- {self.detail}"
        return rendered


def language_for(path: str) -> str:
    """``mixy`` for ``.c`` files, ``mix`` otherwise (``.ml``/``.mix``)."""
    return "mixy" if path.endswith(".c") else "mix"


def _render_inputs(inputs: dict) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), repr(v)) for k, v in inputs.items()))


# -- single-property classification ------------------------------------------


def prove_source(
    lang: str,
    source: str,
    options: dict,
    name: str = "<property>",
    store=None,
    request_deadline: Optional[float] = None,
) -> PropertyResult:
    """Classify one property program.  Mirrors
    :func:`repro.serve.analyze_source`'s entry discipline: a fresh
    equivalence state, a per-request budget, and no dependence on
    process history — the same source and options yield the same
    verdict in a one-shot run, a pool worker, or a daemon."""
    from repro.budget import Budget
    from repro.serve import fresh_equivalence_state

    budget = Budget.from_request(options, request_deadline)
    fresh_equivalence_state()
    if lang == "mixy":
        return _prove_mixy(source, options, budget, store, name)
    if lang == "mix":
        return _prove_mix(source, options, budget, store, name)
    raise ValueError(f"unknown lang {lang!r}; expected 'mix' or 'mixy'")


def _prove_mix(source, options, budget, store, name) -> PropertyResult:
    from repro.core import MixConfig, SoundnessMode, analyze
    from repro.lang.lexer import LexError
    from repro.lang.parser import ParseError, parse, parse_type
    from repro.symexec import ErrKind, SymConfig
    from repro.typecheck.types import TypeEnv
    from repro.witness import WitnessVerdict

    try:
        program = parse(source)
        bindings = {}
        for item in filter(
            None, (part.strip() for part in options.get("env", "").split(","))
        ):
            ident, _, type_text = item.partition(":")
            if not type_text:
                raise ValueError(f"bad env entry {item!r}; expected name:type")
            bindings[ident.strip()] = parse_type(type_text.strip())
        env = TypeEnv(bindings)
    except (ParseError, LexError, ValueError) as error:
        return PropertyResult(name, ERROR, f"parse error: {error}")
    config = MixConfig(
        sym=SymConfig(max_loop_unroll=int(options.get("max_unroll", 64))),
        # Proof requires exhaustiveness: GOOD_ENOUGH truncation would
        # let a falsifiable property come back "accepted".
        soundness=SoundnessMode.SOUND,
        budget=budget,
        validate_witnesses=True,
    )
    # Within-property query warming (repro.parallel); inert inside the
    # suite driver's file-level fork workers, where the engine refuses
    # to fan out again.
    config.jobs = int(options.get("jobs", 1))
    config.store = store
    try:
        report = analyze(program, env, "symbolic", config)
    except Exception as error:  # deterministic for a given source
        return PropertyResult(name, ERROR, f"analysis crashed: {error!r}")
    if report.ok:
        return PropertyResult(name, PROVED, "all paths satisfy every check")
    diag = report.diagnostics[0]
    if diag.kind is ErrKind.ASSUME:
        return PropertyResult(
            name, PROVED, f"vacuously ({diag.message})"
        )
    if diag.kind is ErrKind.CHECK:
        witness = diag.witness
        if witness is not None and witness.verdict is WitnessVerdict.CONFIRMED:
            return PropertyResult(
                name, COUNTEREXAMPLE, witness.reason, _render_inputs(witness.inputs)
            )
        detail = diag.message
        if witness is not None and witness.reason:
            detail += f" ({witness.reason})"
        return PropertyResult(name, UNCONFIRMED, detail)
    if diag.kind in (ErrKind.BUDGET, ErrKind.LOOP_BOUND):
        return PropertyResult(name, BUDGET, diag.message)
    return PropertyResult(name, ERROR, diag.message)


def _prove_mixy(source, options, budget, store, name) -> PropertyResult:
    from repro.mixy import Mixy, MixyConfig
    from repro.mixy.c.parser import CParseError
    from repro.mixy.symexec import CErrKind
    from repro.witness import WitnessVerdict

    config = MixyConfig(
        enable_cache=not options.get("no_cache", False),
        budget=budget,
        validate_witnesses=True,
    )
    # Within-property speculative warming over the fixpoint's symbolic
    # frontier (typed entry only; see repro.parallel).  Inert inside the
    # suite driver's file-level fork workers.
    config.jobs = int(options.get("jobs", 1))
    config.schedule = options.get("schedule", "fifo")
    config.sched_hints = options.get("sched_hints")
    config.store = store
    try:
        mixy = Mixy(source, config)
        mixy.run(
            # "typed" proves checks embedded in MIX(symbolic) blocks of a
            # larger program via the qualifier/fixpoint machinery;
            # "symbolic" (the default) explores the entry exhaustively.
            entry=options.get("entry", "symbolic"),
            entry_function=options.get("entry_function", "main"),
        )
    except CParseError as error:
        return PropertyResult(name, ERROR, f"parse error: {error}")
    except KeyError as error:
        return PropertyResult(name, ERROR, f"no such function {error}")
    except Exception as error:  # deterministic for a given source
        return PropertyResult(name, ERROR, f"analysis crashed: {error!r}")
    # Mixy.warnings() drops LOOP_BOUND from user-facing output; proving
    # needs it as an incompleteness signal, so read the executor's raw
    # warning list (plus the qualifier engine's).
    executor_warnings = list(mixy.executor.warnings)
    checks = [w for w in executor_warnings if w.kind is CErrKind.CHECK_FAIL]
    for warning in checks:
        witness = mixy.executor.witnesses.get(warning.key)
        if (
            witness is not None
            and witness.verdict is WitnessVerdict.CONFIRMED
        ):
            return PropertyResult(
                name, COUNTEREXAMPLE, warning.message, _render_inputs(witness.inputs)
            )
    if checks:
        warning = checks[0]
        witness = mixy.executor.witnesses.get(warning.key)
        detail = warning.message
        if witness is not None and witness.reason:
            detail += f" ({witness.reason})"
        return PropertyResult(name, UNCONFIRMED, detail)
    faults = [
        w
        for w in executor_warnings
        if w.kind
        in (CErrKind.NULL_DEREF, CErrKind.UNSUPPORTED, CErrKind.CRASH)
    ]
    qual_warnings = mixy.qual.warnings()
    if faults or qual_warnings:
        first = faults[0].message if faults else str(qual_warnings[0])
        return PropertyResult(name, ERROR, f"program faults before the property: {first}")
    truncated = [
        w
        for w in executor_warnings
        if w.kind
        in (CErrKind.LOOP_BOUND, CErrKind.RECURSION, CErrKind.BUDGET)
    ]
    if truncated:
        return PropertyResult(name, BUDGET, truncated[0].message)
    return PropertyResult(name, PROVED, "all explored paths satisfy every check")


# -- suite driver ------------------------------------------------------------


def exit_code(results: Sequence[PropertyResult]) -> int:
    verdicts = {result.verdict for result in results}
    if COUNTEREXAMPLE in verdicts:
        return EXIT_COUNTEREXAMPLE
    if ERROR in verdicts:
        return EXIT_ERROR
    if verdicts - {PROVED}:
        return EXIT_INCOMPLETE
    return EXIT_PROVED


def summary_line(results: Sequence[PropertyResult]) -> str:
    counts = {verdict: 0 for verdict in VERDICTS}
    for result in results:
        counts[result.verdict] += 1
    parts = ", ".join(
        f"{counts[v]} {v.lower()}" for v in VERDICTS if counts[v]
    )
    return f"{len(results)} propert{'y' if len(results) == 1 else 'ies'}: {parts or 'none'}"


def _prove_path(path: str, options: dict) -> PropertyResult:
    try:
        with open(path, "r") as handle:
            source = handle.read()
    except OSError as error:
        return PropertyResult(path, ERROR, f"cannot read: {error}")
    return prove_source(language_for(path), source, options, name=path)


def _pool_worker(path: str, options: dict) -> PropertyResult:
    # fresh_equivalence_state() inside prove_source resets per-request
    # determinism state; mark_forked_child ran in the pool initializer.
    return _prove_path(path, options)


def _pool_init() -> None:
    from repro.parallel import mark_forked_child

    mark_forked_child()


def expand_paths(paths: Sequence[str]) -> list[str]:
    """Flatten directory arguments into the property files directly
    inside them (sorted; hidden files skipped), so a whole suite can be
    named as ``repro prove examples/properties/``.  Non-directories pass
    through untouched — an unreadable path becomes an ERROR verdict at
    prove time, not a crash here."""
    expanded: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            expanded.extend(
                entry.path
                for entry in sorted(os.scandir(path), key=lambda e: e.name)
                if entry.is_file() and not entry.name.startswith(".")
            )
        else:
            expanded.append(path)
    return expanded


def prove_files(
    paths: Sequence[str],
    options: dict,
    jobs: int = 1,
    emit: Callable[[str], None] = print,
) -> int:
    """Prove every file in ``paths``; emit one verdict line per file in
    sorted-file order plus a summary line, and return the suite exit
    code.  Directory arguments expand to the files inside them.
    ``jobs > 1`` fans files out over a fork pool — output is identical
    to ``jobs == 1`` by construction (workers analyze serially;
    emission order is the sorted submission order)."""
    ordered = sorted(expand_paths(paths))
    if jobs > 1 and len(ordered) > 1:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(ordered)),
            mp_context=context,
            initializer=_pool_init,
        ) as pool:
            pending = [pool.submit(_pool_worker, path, options) for path in ordered]
            results = [future.result() for future in pending]
    else:
        results = [_prove_path(path, options) for path in ordered]
    for result in results:
        emit(result.line())
    emit(summary_line(results))
    return exit_code(results)
