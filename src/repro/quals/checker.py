"""A sign-qualified type checker for the MIX source language.

Judgments extend the standard checker's with a sign qualifier on every
``int``: ``Γ ⊢ e : int(q)`` where ``q ∈ {pos, neg, zero, unknown}``.
The client property is **division-by-zero freedom**: ``e1 / e2`` is well
typed only when the divisor's sign excludes zero.  Like the standard
checker, this one is flow- and path-insensitive — ``if x = 0 then 1 else
10 / x`` is a false positive — which is exactly the imprecision the
paper's §2 sign example removes with a symbolic block.

The checker is off the shelf in the MIX sense: its single extension
point is ``symbolic_block_hook``, installed by
:class:`repro.quals.mix.SignMix`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from repro.lang.ast import (
    App,
    Assign,
    BinOp,
    BinOpKind,
    BoolLit,
    Deref,
    Expr,
    Fun,
    If,
    IntLit,
    Let,
    Not,
    Pos,
    Ref,
    Seq,
    StrLit,
    SymBlock,
    TypedBlock,
    UnitLit,
    Var,
    While,
)
from repro.quals import signs
from repro.quals.signs import Sign, sign_of_int
from repro.typecheck.checker import TypeError_
from repro.typecheck.types import (
    BOOL,
    FunType,
    INT,
    RefType,
    STR,
    Type,
    UNIT,
)


class QualTypeError(TypeError_):
    """A sign-qualifier type error (includes division-by-zero risks)."""


@dataclass(frozen=True)
class QType:
    """A type with a sign qualifier on (exactly) integer types."""

    typ: Type
    sign: Optional[Sign] = None

    def __post_init__(self) -> None:
        if (self.typ == INT) != (self.sign is not None):
            raise ValueError("exactly integer types carry a sign")

    def __str__(self) -> str:
        if self.sign is None:
            return str(self.typ)
        return f"{self.sign} {self.typ}"


def int_q(sign: Sign) -> QType:
    return QType(INT, sign)


class SignEnv:
    """Γ for the qualified system: variable -> qualified type."""

    def __init__(self, bindings: Optional[Mapping[str, QType]] = None) -> None:
        self._bindings = dict(bindings or {})

    def lookup(self, name: str) -> Optional[QType]:
        return self._bindings.get(name)

    def extend(self, name: str, qt: QType) -> "SignEnv":
        child = dict(self._bindings)
        child[name] = qt
        return SignEnv(child)

    def items(self):
        return iter(sorted(self._bindings.items()))

    def __contains__(self, name: str) -> bool:
        return name in self._bindings


SymbolicBlockHook = Callable[["SignEnv", SymBlock], QType]


@dataclass
class SignChecker:
    """The qualified checker; plug ``symbolic_block_hook`` to mix."""

    symbolic_block_hook: Optional[SymbolicBlockHook] = None
    #: reject division whose divisor may be zero (the client property)
    strict_division: bool = True

    def check(self, expr: Expr, env: Optional[SignEnv] = None) -> QType:
        return self._check(expr, env or SignEnv())

    # -- rules -----------------------------------------------------------------

    def _check(self, expr: Expr, env: SignEnv) -> QType:
        if isinstance(expr, Var):
            qt = env.lookup(expr.name)
            if qt is None:
                raise QualTypeError(f"unbound variable {expr.name}", expr.pos)
            return qt
        if isinstance(expr, IntLit):
            return int_q(sign_of_int(expr.value))
        if isinstance(expr, BoolLit):
            return QType(BOOL)
        if isinstance(expr, StrLit):
            return QType(STR)
        if isinstance(expr, UnitLit):
            return QType(UNIT)
        if isinstance(expr, BinOp):
            return self._check_binop(expr, env)
        if isinstance(expr, Not):
            self._expect(expr.operand, env, BOOL, "'not'")
            return QType(BOOL)
        if isinstance(expr, If):
            self._expect(expr.cond, env, BOOL, "'if' condition")
            then_qt = self._check(expr.then, env)
            else_qt = self._check(expr.els, env)
            if then_qt.typ != else_qt.typ:
                raise QualTypeError(
                    f"branches of 'if' disagree: {then_qt.typ} vs {else_qt.typ}",
                    expr.pos,
                )
            if then_qt.sign is not None:
                assert else_qt.sign is not None
                return int_q(signs.join(then_qt.sign, else_qt.sign))
            return then_qt
        if isinstance(expr, Let):
            bound = self._check(expr.bound, env)
            if expr.annotation is not None and expr.annotation != bound.typ:
                raise QualTypeError(
                    f"let annotation {expr.annotation} does not match {bound.typ}",
                    expr.pos,
                )
            return self._check(expr.body, env.extend(expr.name, bound))
        if isinstance(expr, Seq):
            self._check(expr.first, env)
            return self._check(expr.second, env)
        if isinstance(expr, Ref):
            init = self._check(expr.init, env)
            # References erase sign refinements: a cell's content may be
            # overwritten, so only the unqualified type is invariant.
            return QType(RefType(init.typ))
        if isinstance(expr, Deref):
            target = self._check(expr.ref, env)
            if not isinstance(target.typ, RefType):
                raise QualTypeError(f"dereference of {target.typ}", expr.pos)
            return self._of_type(target.typ.elem)
        if isinstance(expr, Assign):
            target = self._check(expr.target, env)
            if not isinstance(target.typ, RefType):
                raise QualTypeError(f"assignment through {target.typ}", expr.pos)
            value = self._check(expr.value, env)
            if value.typ != target.typ.elem:
                raise QualTypeError(
                    f"':=' writes {value.typ} into {target.typ}", expr.pos
                )
            return self._of_type(target.typ.elem)
        if isinstance(expr, While):
            self._expect(expr.cond, env, BOOL, "'while' condition")
            self._check(expr.body, env)
            return QType(UNIT)
        if isinstance(expr, Fun):
            body = self._check(
                expr.body, env.extend(expr.param, self._of_type(expr.param_type))
            )
            return QType(FunType(expr.param_type, body.typ))
        if isinstance(expr, App):
            fn = self._check(expr.fn, env)
            if not isinstance(fn.typ, FunType):
                raise QualTypeError(f"application of {fn.typ}", expr.pos)
            arg = self._check(expr.arg, env)
            if arg.typ != fn.typ.param:
                raise QualTypeError(
                    f"argument has type {arg.typ}, expected {fn.typ.param}", expr.pos
                )
            return self._of_type(fn.typ.result)
        if isinstance(expr, TypedBlock):
            return self._check(expr.body, env)
        if isinstance(expr, SymBlock):
            if self.symbolic_block_hook is None:
                raise QualTypeError(
                    "symbolic block encountered but no symbolic executor is "
                    "attached (run under SignMix)",
                    expr.pos,
                )
            return self.symbolic_block_hook(env, expr)
        raise QualTypeError(f"unknown expression node {expr!r}", expr.pos)

    def _check_binop(self, expr: BinOp, env: SignEnv) -> QType:
        op = expr.op
        if op in (BinOpKind.AND, BinOpKind.OR):
            self._expect(expr.left, env, BOOL, f"'{op.value}'")
            self._expect(expr.right, env, BOOL, f"'{op.value}'")
            return QType(BOOL)
        if op is BinOpKind.EQ:
            left = self._check(expr.left, env)
            right = self._check(expr.right, env)
            if left.typ != right.typ:
                raise QualTypeError(f"'=' compares {left.typ} with {right.typ}", expr.pos)
            if isinstance(left.typ, FunType):
                raise QualTypeError("'=' is not defined on functions", expr.pos)
            return QType(BOOL)
        if op in (BinOpKind.LT, BinOpKind.LE):
            self._expect(expr.left, env, INT, f"'{op.value}'")
            self._expect(expr.right, env, INT, f"'{op.value}'")
            return QType(BOOL)
        left = self._check(expr.left, env)
        right = self._check(expr.right, env)
        if left.typ != INT or right.typ != INT:
            raise QualTypeError(
                f"'{op.value}' applied to {left.typ} and {right.typ}", expr.pos
            )
        assert left.sign is not None and right.sign is not None
        if op is BinOpKind.ADD:
            return int_q(signs.add(left.sign, right.sign))
        if op is BinOpKind.SUB:
            return int_q(signs.sub(left.sign, right.sign))
        if op is BinOpKind.MUL:
            return int_q(signs.mul(left.sign, right.sign))
        # Division: the client property.
        if self.strict_division and not right.sign.excludes_zero:
            raise QualTypeError(
                f"divisor has sign '{right.sign}': it may be zero", expr.pos
            )
        return int_q(signs.div(left.sign, right.sign))

    def _expect(self, expr: Expr, env: SignEnv, typ: Type, context: str) -> None:
        actual = self._check(expr, env)
        if actual.typ != typ:
            raise QualTypeError(
                f"{context} has type {actual.typ}, expected {typ}", expr.pos
            )

    @staticmethod
    def _of_type(typ: Type) -> QType:
        """The top qualified type at ``typ`` (unknown sign for ints)."""
        return int_q(Sign.UNKNOWN) if typ == INT else QType(typ)
